//! §II in numbers: high-resolution sensors under egomotion produce an
//! event-rate explosion, and the in-sensor mitigation strategies
//! (downsampling, rate control) contain it.
//!
//! Run with: `cargo run --release --example sensor_sweep`

use evlab::events::downsample::{EventRateController, SpatialDownsampler};
use evlab::sensor::scene::EgomotionPan;
use evlab::sensor::{CameraConfig, EventCamera, PixelConfig, ReadoutConfig};

fn main() {
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>10}",
        "resolution", "raw events/s", "downsampled", "rate-capped", "drops"
    );
    for res in [32u16, 64, 128, 256] {
        let camera = EventCamera::new(
            CameraConfig::new((res, res))
                .with_pixel(PixelConfig::ideal())
                .with_sample_period_us(500),
        );
        // Camera pans over texture: every pixel sees contrast change.
        let scene = EgomotionPan::new(0.002, 6.0, 7);
        let stream = camera.record(&scene, 0, 20_000, 1);
        let raw_rate = stream.mean_rate_hz();

        let down = SpatialDownsampler::new(2, 1_000).apply(&stream);
        let (capped, dropped) = EventRateController::new(200_000.0, 64).apply(&stream);

        println!(
            "{:>7}x{:<3} {:>14.0} {:>14.0} {:>14.0} {:>10}",
            res,
            res,
            raw_rate,
            down.mean_rate_hz(),
            capped.mean_rate_hz(),
            dropped
        );
    }

    // Readout saturation: the same burst through two readout generations.
    println!("\nreadout saturation under a 128x128 egomotion burst:");
    for (name, readout) in [
        ("first-gen (1 Meps)", ReadoutConfig::first_generation()),
        ("GEPS-class (1.066 Geps)", ReadoutConfig::geps_class()),
    ] {
        let camera = EventCamera::new(
            CameraConfig::new((128, 128))
                .with_pixel(PixelConfig::ideal())
                .with_sample_period_us(500)
                .with_readout(readout),
        );
        let scene = EgomotionPan::new(0.002, 6.0, 7);
        let rec = camera.record_with_readout(&scene, 0, 20_000, 1);
        println!(
            "  {:<24} delivered {:>7}, dropped {:>7}, worst delay {} us",
            name,
            rec.stream.len(),
            rec.dropped,
            rec.max_delay_us
        );
    }
}
