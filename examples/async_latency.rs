//! Asynchronous event-driven inference (the §IV perspective in action):
//! streams events one by one through an event-graph network and compares
//! the per-event cost against recomputing the whole graph, and against the
//! frame-based alternative that must wait for a window to close.
//!
//! Run with: `cargo run --release --example async_latency`

use evlab::core::metrics::{price_gnn, time_to_decision_us, DeploymentStyle};
use evlab::gnn::async_update::AsyncGnn;
use evlab::gnn::build::{incremental_build, GraphConfig, IncrementalGraphBuilder};
use evlab::gnn::network::{GnnConfig, GnnNetwork};
use evlab::sensor::scene::MovingDot;
use evlab::sensor::{CameraConfig, EventCamera, PixelConfig};
use evlab::tensor::OpCount;
use evlab::util::Rng64;

fn main() {
    let camera = EventCamera::new(
        CameraConfig::new((48, 48)).with_pixel(PixelConfig::ideal()),
    );
    let scene = MovingDot::new((4.0, 24.0), (0.0015, 0.0), 3.0);
    let stream = camera.record(&scene, 0, 25_000, 3);
    println!("streaming {} events", stream.len());

    let graph_config = GraphConfig::new();
    let mut rng = Rng64::seed_from_u64(1);

    // Asynchronous: per-event incremental update.
    let net = GnnNetwork::new(&GnnConfig::new(4), &mut rng);
    let mut engine = AsyncGnn::new(net, graph_config, 4);
    let mut async_ops = OpCount::new();
    let mut per_event_macs = Vec::new();
    for e in stream.iter() {
        let mut ops = OpCount::new();
        engine.update(*e, &mut ops);
        per_event_macs.push(ops.macs);
        async_ops += ops;
    }
    let mean_macs =
        per_event_macs.iter().sum::<u64>() as f64 / per_event_macs.len().max(1) as f64;
    println!(
        "async GNN: {:.0} MACs/event (max {}), {} MACs total",
        mean_macs,
        per_event_macs.iter().max().unwrap_or(&0),
        async_ops.macs
    );

    // Naive: rebuild + full forward after every event.
    let mut rng2 = Rng64::seed_from_u64(1);
    let mut full_net = GnnNetwork::new(&GnnConfig::new(4), &mut rng2);
    let mut builder = IncrementalGraphBuilder::new(graph_config);
    let mut full_ops = OpCount::new();
    for e in stream.iter() {
        builder.insert(*e, &mut full_ops);
        full_net.forward(builder.graph(), &mut full_ops);
    }
    println!(
        "full recompute per event: {} MACs total ({:.0}x the async cost)",
        full_ops.macs,
        full_ops.macs as f64 / async_ops.macs.max(1) as f64
    );

    // Latency comparison against a 30 ms frame pipeline.
    let mut probe_ops = OpCount::new();
    let graph = incremental_build(stream.as_slice(), &graph_config, &mut probe_ops);
    let per_event_ops = OpCount {
        macs: mean_macs as u64,
        effective_macs: mean_macs as u64,
        ..OpCount::default()
    };
    let edges_per_event = (graph.edge_count() as f64 / graph.node_count().max(1) as f64) as u64;
    let cost = price_gnn(&per_event_ops, edges_per_event, 16, 50_000);
    let gnn_latency = time_to_decision_us(DeploymentStyle::PerEvent, cost.latency_us);
    let frame_latency =
        time_to_decision_us(DeploymentStyle::Framed { window_us: 30_000.0 }, 50.0);
    println!(
        "time-to-decision: async GNN {:.2} us vs frame CNN {:.0} us ({:.0}x)",
        gnn_latency,
        frame_latency,
        frame_latency / gnn_latency.max(1e-9)
    );
}
