//! Price the same measured workloads on the accelerator families the paper
//! reviews: digital and analog neuromorphic cores, systolic arrays,
//! zero-skipping accelerators, and GNN accelerators.
//!
//! Run with: `cargo run --example hw_energy`

use evlab::hw::energy::EnergyModel;
use evlab::hw::gnn_accel::{GnnAccelerator, GnnDeployment};
use evlab::hw::snn_core::{AnalogCore, NeuromorphicCore, UpdatePolicy};
use evlab::hw::systolic::SystolicArray;
use evlab::hw::zeroskip::ZeroSkipAccelerator;
use evlab::tensor::OpCount;

fn main() {
    let energy = EnergyModel::nm45();
    println!(
        "energy constants (45 nm): add {} pJ, mult {} pJ (ratio {:.1}x), SRAM {} pJ, DRAM {} pJ\n",
        energy.add_pj,
        energy.mult_pj,
        energy.mult_add_ratio(),
        energy.sram_pj,
        energy.dram_pj
    );

    // A typical SNN inference: sparse synaptic adds + clocked decay.
    let mut snn_ops = OpCount::new();
    snn_ops.record_add(80_000);
    snn_ops.record_mult(32_000);
    snn_ops.record_compare(32_000);
    let digital = NeuromorphicCore::new(energy, UpdatePolicy::Clocked);
    let analog = AnalogCore::new(energy);
    let d = digital.price(&snn_ops, 2_000, 130_000);
    let a = analog.price(&snn_ops, 2_000);
    println!("SNN on digital neuromorphic core: {d}");
    println!(
        "  -> memory fraction {:.0}% (the [42] effect: adds-vs-mults is irrelevant)",
        d.memory_fraction() * 100.0
    );
    println!("SNN on analog core:               {a}");
    println!(
        "  -> {:.0}x lower energy, mismatch sigma {:.0}%\n",
        d.total_pj() / a.total_pj(),
        analog.mismatch_sigma * 100.0
    );

    // A CNN inference: dense-equivalent MACs, half skippable.
    let mut cnn_ops = OpCount::new();
    cnn_ops.record_mac(2_000_000, 700_000);
    let systolic = SystolicArray::new(energy);
    let zeroskip = ZeroSkipAccelerator::new(energy);
    let s = systolic.price(&cnn_ops, 120_000);
    let z = zeroskip.price(&cnn_ops, 0.0, 2.5, 120_000);
    let zs = zeroskip
        .with_structured_sparsity()
        .price(&cnn_ops, 0.0, 2.5, 120_000);
    println!("CNN on systolic array:            {s}");
    println!("CNN on zero-skip accelerator:     {z}");
    println!("CNN on structured-sparse variant: {zs}\n");

    // A GNN inference: message passing over a sliding-window graph.
    let mut gnn_ops = OpCount::new();
    gnn_ops.record_mac(400_000, 400_000);
    let edge = GnnAccelerator::new(energy, GnnDeployment::Edge);
    let dc = GnnAccelerator::new(energy, GnnDeployment::Datacenter);
    let e = edge.price(&gnn_ops, 8_000, 16, 60_000);
    let c = dc.price(&gnn_ops, 8_000, 16, 60_000);
    println!("GNN on hypothetical edge accel:   {e}");
    println!("GNN on datacenter accel:          {c}");
    println!(
        "  -> the 'hardware vacuum': DRAM gather costs {:.0}x the on-chip window",
        c.memory_pj / e.memory_pj
    );
}
