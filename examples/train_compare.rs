//! Train all three paradigms on the same synthetic dataset and print the
//! measured Table I.
//!
//! Run with: `cargo run --release --example train_compare`
//! (debug mode works but trains slowly).

use evlab::core::dichotomy::{ComparisonConfig, ComparisonRunner};
use evlab::datasets::shapes::shape_silhouettes;
use evlab::datasets::DatasetConfig;

fn main() {
    let config = DatasetConfig::new((32, 32)).with_split(8, 4);
    println!("generating shape-silhouette dataset at 32x32 ...");
    let data = shape_silhouettes(&config);
    println!(
        "  {} train / {} test samples, {:.0} events/sample mean",
        data.train.len(),
        data.test.len(),
        data.mean_events_per_sample()
    );

    println!("training SNN, CNN and GNN pipelines ...");
    let runner = ComparisonRunner::new(ComparisonConfig::fast());
    let report = runner.run(&data, 7);
    println!("\n{}", report.render());
}
