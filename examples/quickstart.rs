//! Quickstart: simulate an event camera, then look at the same stream the
//! three ways the paper compares — as a dense frame (CNN), as spike trains
//! (SNN) and as an event graph (GNN).
//!
//! Run with: `cargo run --example quickstart`

use evlab::cnn::encode::{FrameEncoder, TwoChannel};
use evlab::events::stats::sparsity;
use evlab::gnn::build::{incremental_build, GraphConfig};
use evlab::sensor::scene::MovingBar;
use evlab::sensor::{CameraConfig, EventCamera, PixelConfig};
use evlab::snn::encode::events_to_spikes;
use evlab::tensor::OpCount;

fn main() {
    // 1. Simulate a 64x64 event camera watching a bar sweep by for 30 ms.
    let camera = EventCamera::new(
        CameraConfig::new((64, 64)).with_pixel(PixelConfig::new()),
    );
    let scene = MovingBar::horizontal(0.002, 4.0); // 2000 px/s
    let stream = camera.record(&scene, 0, 30_000, 42);
    let (on, off) = stream.polarity_counts();
    println!("recorded {} events ({} ON / {} OFF)", stream.len(), on, off);
    println!(
        "mean rate {:.0} events/s over {} us",
        stream.mean_rate_hz(),
        stream.duration_us()
    );

    // 2. Data sparsity — the quantity behind Table I row 2.
    let report = sparsity(&stream, 5_000);
    println!(
        "active pixels per 5 ms window: {:.1}% (event-vs-frame compression {:.0}x)",
        report.active_pixel_fraction.mean() * 100.0,
        report.event_vs_frame_compression(stream.pixel_count())
    );

    // 3. CNN view: a dense two-channel frame.
    let mut ops = OpCount::new();
    let frame = TwoChannel::new().encode(stream.as_slice(), (64, 64), &mut ops);
    println!(
        "CNN view: {:?} frame, {:.1}% zero, built with {} adds",
        frame.shape(),
        frame.zero_fraction() * 100.0,
        ops.adds
    );

    // 4. SNN view: spike trains binned at 1 ms.
    let train = events_to_spikes(&stream, 1_000, 30);
    println!(
        "SNN view: {} inputs x {} steps, {} spikes (density {:.4})",
        train.size(),
        train.num_steps(),
        train.total_spikes(),
        train.density()
    );

    // 5. GNN view: a spatiotemporal event graph.
    let mut graph_ops = OpCount::new();
    let graph = incremental_build(stream.as_slice(), &GraphConfig::new(), &mut graph_ops);
    println!(
        "GNN view: {} nodes, {} edges (mean degree {:.1}), built with {} distance checks",
        graph.node_count(),
        graph.edge_count(),
        graph.mean_degree(),
        graph_ops.mults / 4
    );
}
