//! Crash-recovery contract of the durable serving layer
//! (`evlab::serve::durable`): a session recovered from a snapshot plus
//! write-ahead-log replay must be **bit-identical** to one that never
//! crashed — same decision history, same statistics, same op accounting,
//! same final logits — regardless of where the crash landed and of
//! `EVLAB_THREADS`.
//!
//! The suite kills the process state at *every byte offset* of the live
//! WAL tail, corrupts snapshots outright, and snapshots mid-flight with
//! events still held in the reorder buffer. In every case recovery must
//! come back clean: the durable prefix is restored exactly, the lost
//! suffix is re-ingested by the "sensor", and the result matches the
//! uncrashed oracle.

use evlab::core::online::{Decision, OnlineClassifier, OnlineConfig, SessionBuilder};
use evlab::core::prelude::*;
use evlab::datasets::shapes::shape_silhouettes;
use evlab::datasets::DatasetConfig;
use evlab::events::aer::AerCodec;
use evlab::events::{Event, Polarity};
use evlab::serve::{
    CheckpointManager, DurableConfig, ServeConfig, ServeRuntime, Session, SessionStats,
};
use evlab::tensor::OpCount;
use evlab::util::{par, Rng64};
use std::path::{Path, PathBuf};

const RECORD_BYTES: u64 = 16; // 4 (len) + 8 (AER word) + 4 (crc)

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

struct Trained {
    snn: SnnPipeline,
    cnn: CnnPipeline,
    gnn: GnnPipeline,
    resolution: (u16, u16),
}

fn train() -> Trained {
    let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(4, 1));
    let mut snn = SnnPipeline::new(SnnPipelineConfig::new().with_epochs(2).with_seed(5));
    let mut cnn = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(2).with_seed(5));
    let mut gnn = GnnPipeline::new(
        GnnPipelineConfig::new()
            .with_epochs(2)
            .with_max_nodes(48)
            .with_seed(5),
    );
    snn.fit(&data);
    cnn.fit(&data);
    gnn.fit(&data);
    Trained {
        snn,
        cnn,
        gnn,
        resolution: data.resolution,
    }
}

fn train_cnn_only() -> Trained {
    let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(4, 1));
    let mut cnn = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(2).with_seed(5));
    cnn.fit(&data);
    Trained {
        snn: SnnPipeline::new(SnnPipelineConfig::new()),
        cnn,
        gnn: GnnPipeline::new(GnnPipelineConfig::new()),
        resolution: data.resolution,
    }
}

fn classifier(tr: &Trained, which: &str) -> Box<dyn OnlineClassifier + Send> {
    let windowed = OnlineConfig::new(tr.resolution).with_window_us(2_000);
    match which {
        "snn" => SessionBuilder::new(OnlineConfig::new(tr.resolution))
            .snn(&tr.snn)
            .build()
            .unwrap(),
        "cnn" => SessionBuilder::new(windowed).cnn(&tr.cnn).build().unwrap(),
        "gnn" => SessionBuilder::new(OnlineConfig::new(tr.resolution))
            .gnn(&tr.gnn)
            .build()
            .unwrap(),
        other => panic!("unknown paradigm {other}"),
    }
}

/// A sorted random AER word stream over the trained resolution.
fn words(tr: &Trained, n: usize, span_us: u64, seed: u64) -> Vec<u64> {
    let codec = AerCodec::new(tr.resolution);
    let mut rng = Rng64::seed_from_u64(seed);
    let mut ts: Vec<u64> = (0..n).map(|_| rng.next_below(span_us)).collect();
    ts.sort_unstable();
    ts.into_iter()
        .map(|t| {
            codec.encode(&Event::new(
                t,
                rng.next_below(tr.resolution.0 as u64) as u16,
                rng.next_below(tr.resolution.1 as u64) as u16,
                if rng.bernoulli(0.5) {
                    Polarity::On
                } else {
                    Polarity::Off
                },
            ))
        })
        .collect()
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("evlab_recovery_test_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn open_durable(
    tr: &Trained,
    which: &str,
    root: &Path,
    cadence: u64,
    serve: ServeConfig,
) -> (ServeRuntime, CheckpointManager, usize) {
    let mut rt = ServeRuntime::new(serve);
    let id = rt
        .open_session(classifier(tr, which), tr.resolution)
        .unwrap();
    let mut cm = CheckpointManager::new(
        DurableConfig::new(root)
            .with_cadence_words(cadence)
            .with_drain_every(4),
    )
    .unwrap();
    cm.attach(&rt, id).unwrap();
    (rt, cm, id)
}

/// Everything observable about a session, with logits as exact bit
/// patterns.
type Fingerprint = (
    Vec<(u64, usize)>,
    SessionStats,
    OpCount,
    Option<(usize, Vec<u32>, usize, u64)>,
);

fn fingerprint(s: &Session) -> Fingerprint {
    let decision = s.last_decision().map(|d: &Decision| {
        (
            d.class,
            d.logits.iter().map(|l| l.to_bits()).collect(),
            d.events,
            d.t_us,
        )
    });
    (s.history().to_vec(), s.stats(), *s.ops(), decision)
}

/// Serves `stream` end to end with no crash and returns the final state.
fn oracle(
    tr: &Trained,
    which: &str,
    stream: &[u64],
    cadence: u64,
    serve: ServeConfig,
    tag: &str,
) -> Fingerprint {
    let root = temp_root(tag);
    let (mut rt, mut cm, id) = open_durable(tr, which, &root, cadence, serve);
    for &w in stream {
        cm.ingest(&mut rt, id, w).unwrap();
    }
    rt.drain_all();
    let fp = fingerprint(rt.session(id).unwrap());
    let _ = std::fs::remove_dir_all(&root);
    fp
}

fn newest_wal(dir: &Path) -> PathBuf {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(e) = name
            .strip_prefix("wal.")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(b, _)| e > *b) {
                best = Some((e, entry.path()));
            }
        }
    }
    best.expect("a live WAL must exist").1
}

fn newest_ckpt(dir: &Path) -> PathBuf {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(e) = name
            .strip_prefix("ckpt.")
            .and_then(|s| s.strip_suffix(".bin"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(b, _)| e > *b) {
                best = Some((e, entry.path()));
            }
        }
    }
    best.expect("a checkpoint must exist").1
}

/// Copies the flat session directory (ckpt.*.bin / wal.*.log files).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Thread-invariant crash-recovery equivalence, all three paradigms
// ---------------------------------------------------------------------------

#[test]
fn recovery_is_bit_identical_for_every_paradigm_and_thread_count() {
    let tr = train();
    let stream = words(&tr, 48, 12_000, 17);
    let cadence = 8;
    let crash_at = 29; // between checkpoints: the live WAL holds records

    for which in ["snn", "cnn", "gnn"] {
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let root = temp_root(&format!("equiv_{which}_{threads}"));
                // The process that dies mid-stream, tearing its last append.
                let (mut rt, mut cm, id) =
                    open_durable(&tr, which, &root, cadence, ServeConfig::new());
                for &w in &stream[..crash_at] {
                    cm.ingest(&mut rt, id, w).unwrap();
                }
                let dir = cm.session_dir(id);
                drop((rt, cm));
                let wal = newest_wal(&dir);
                let log = std::fs::read(&wal).unwrap();
                std::fs::write(&wal, &log[..log.len() - 3]).unwrap();

                // The process that takes over.
                let (mut rt, mut cm, id) =
                    open_durable(&tr, which, &root, cadence, ServeConfig::new());
                let report = cm.recover(&mut rt, id).unwrap();
                assert!(report.torn_tail, "{which}: the torn append must be detected");
                assert!(
                    report.words_recovered() < crash_at as u64,
                    "{which}: the torn word can never count as recovered"
                );
                for &w in &stream[report.words_recovered() as usize..] {
                    cm.ingest(&mut rt, id, w).unwrap();
                }
                rt.drain_all();
                let fp = fingerprint(rt.session(id).unwrap());
                let _ = std::fs::remove_dir_all(&root);
                fp
            })
        };
        let serial = run(1);
        let threaded = run(4);
        let straight = par::with_threads(1, || {
            oracle(
                &tr,
                which,
                &stream,
                cadence,
                ServeConfig::new(),
                &format!("equiv_oracle_{which}"),
            )
        });
        assert!(
            !straight.0.is_empty(),
            "{which}: the oracle run must produce decisions"
        );
        assert_eq!(
            serial, straight,
            "{which}: recovered session diverged from the uncrashed oracle"
        );
        assert_eq!(
            serial, threaded,
            "{which}: recovery differs across thread counts"
        );
    }
}

// ---------------------------------------------------------------------------
// Kill at every byte offset of the live WAL
// ---------------------------------------------------------------------------

#[test]
fn kill_at_every_wal_byte_offset_recovers_the_exact_record_prefix() {
    let tr = train_cnn_only();
    let stream = words(&tr, 43, 10_000, 23);
    let cadence = 8;
    let straight = oracle(
        &tr,
        "cnn",
        &stream,
        cadence,
        ServeConfig::new(),
        "offsets_oracle",
    );

    // One full ingest; its on-disk state is the crash image we truncate.
    let image = temp_root("offsets_image");
    let (mut rt, mut cm, id) = open_durable(&tr, "cnn", &image, cadence, ServeConfig::new());
    for &w in &stream {
        cm.ingest(&mut rt, id, w).unwrap();
    }
    let image_dir = cm.session_dir(id);
    drop((rt, cm));
    // 43 words at cadence 8: snapshots at 8..=40, so the live WAL holds
    // words 41–43 as three 16-byte records.
    let durable_at_snapshot = 40u64;
    let wal_len = std::fs::read(newest_wal(&image_dir)).unwrap().len() as u64;
    assert_eq!(wal_len, 3 * RECORD_BYTES);

    for offset in 0..=wal_len {
        let root = temp_root("offsets_case");
        let dir = root.join(
            image_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
        );
        copy_dir(&image_dir, &dir);
        let wal = newest_wal(&dir);
        let log = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &log[..offset as usize]).unwrap();

        let (mut rt, mut cm, id) = open_durable(&tr, "cnn", &root, cadence, ServeConfig::new());
        let report = cm.recover(&mut rt, id).unwrap();
        assert_eq!(
            report.words_recovered(),
            durable_at_snapshot + offset / RECORD_BYTES,
            "offset {offset}: recovery must restore exactly the clean record prefix"
        );
        assert_eq!(
            report.torn_tail,
            !offset.is_multiple_of(RECORD_BYTES),
            "offset {offset}: a partial record is a torn tail, a record boundary is not"
        );
        for &w in &stream[report.words_recovered() as usize..] {
            cm.ingest(&mut rt, id, w).unwrap();
        }
        rt.drain_all();
        assert_eq!(
            fingerprint(rt.session(id).unwrap()),
            straight,
            "offset {offset}: resumed session diverged from the uncrashed oracle"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&image);
}

// ---------------------------------------------------------------------------
// Snapshot corruption: fall back one epoch, never panic
// ---------------------------------------------------------------------------

#[test]
fn corrupt_snapshot_byte_flips_fall_back_and_still_converge() {
    let tr = train_cnn_only();
    let stream = words(&tr, 43, 10_000, 29);
    let cadence = 8;
    let straight = oracle(
        &tr,
        "cnn",
        &stream,
        cadence,
        ServeConfig::new(),
        "flips_oracle",
    );

    let image = temp_root("flips_image");
    let (mut rt, mut cm, id) = open_durable(&tr, "cnn", &image, cadence, ServeConfig::new());
    for &w in &stream {
        cm.ingest(&mut rt, id, w).unwrap();
    }
    let image_dir = cm.session_dir(id);
    drop((rt, cm));
    let ckpt_len = std::fs::read(newest_ckpt(&image_dir)).unwrap().len();

    // CRC32 detects any single-byte flip, so every flip must reject the
    // newest snapshot and fall back one epoch. Sample offsets across the
    // whole frame, including both framing edges.
    let mut offsets: Vec<usize> = (0..ckpt_len).step_by(13).collect();
    offsets.push(ckpt_len - 1);
    for flip_at in offsets {
        let root = temp_root("flips_case");
        let dir = root.join(
            image_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
        );
        copy_dir(&image_dir, &dir);
        let ckpt = newest_ckpt(&dir);
        let mut bytes = std::fs::read(&ckpt).unwrap();
        bytes[flip_at] ^= 0x5A;
        std::fs::write(&ckpt, &bytes).unwrap();

        let (mut rt, mut cm, id) = open_durable(&tr, "cnn", &root, cadence, ServeConfig::new());
        let report = cm.recover(&mut rt, id).unwrap();
        assert_eq!(
            report.snapshots_rejected, 1,
            "flip at {flip_at}: the damaged snapshot must be rejected"
        );
        assert_eq!(
            report.words_recovered(),
            stream.len() as u64,
            "flip at {flip_at}: the previous epoch plus both WALs cover the full stream"
        );
        rt.drain_all();
        assert_eq!(
            fingerprint(rt.session(id).unwrap()),
            straight,
            "flip at {flip_at}: fallback recovery diverged from the uncrashed oracle"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&image);
}

// ---------------------------------------------------------------------------
// Recovery across the reorder boundary (serve-level contract)
// ---------------------------------------------------------------------------

#[test]
fn recovery_preserves_reorder_holds_and_quarantines() {
    let tr = train_cnn_only();
    let codec = AerCodec::new(tr.resolution);
    // Locally shuffled timestamps within the skew tolerance, plus one
    // hopeless straggler that must be quarantined, not reordered.
    let mut rng = Rng64::seed_from_u64(31);
    let mut ts: Vec<u64> = (0..48).map(|i| 200 * i as u64).collect();
    for i in (1..ts.len() - 1).step_by(3) {
        ts.swap(i, i + 1); // 200 µs swaps, inside the 1 ms skew window
    }
    ts.insert(40, 2_000); // ~6 ms late by then: beyond any tolerance
    let stream: Vec<u64> = ts
        .into_iter()
        .map(|t| {
            codec.encode(&Event::new(
                t,
                rng.next_below(tr.resolution.0 as u64) as u16,
                rng.next_below(tr.resolution.1 as u64) as u16,
                Polarity::On,
            ))
        })
        .collect();
    let serve = || ServeConfig::new().with_reorder_skew(1_000);
    let cadence = 8;
    let straight = oracle(&tr, "cnn", &stream, cadence, serve(), "reorder_oracle");
    assert!(
        straight.1.late_dropped > 0,
        "the straggler must be quarantined even without a crash"
    );

    // Crash at a point where the reorder buffer is guaranteed to hold
    // events (it always holds the most recent skew window), then recover.
    let root = temp_root("reorder_crash");
    let crash_at = 27;
    let (mut rt, mut cm, id) = open_durable(&tr, "cnn", &root, cadence, serve());
    for &w in &stream[..crash_at] {
        cm.ingest(&mut rt, id, w).unwrap();
    }
    let dir = cm.session_dir(id);
    drop((rt, cm));
    let wal = newest_wal(&dir);
    let log = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &log[..log.len() - 3]).unwrap();

    let (mut rt, mut cm, id) = open_durable(&tr, "cnn", &root, cadence, serve());
    let report = cm.recover(&mut rt, id).unwrap();
    assert!(report.torn_tail);
    for &w in &stream[report.words_recovered() as usize..] {
        cm.ingest(&mut rt, id, w).unwrap();
    }
    rt.drain_all();
    let recovered = fingerprint(rt.session(id).unwrap());
    assert_eq!(
        recovered, straight,
        "reorder holds/quarantines diverged across the crash"
    );
    let _ = std::fs::remove_dir_all(&root);
}
