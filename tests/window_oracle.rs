//! The sliding-window contract, tested from the outside:
//!
//! 1. **Oracle equivalence** — a [`SlidingWindowGraph`] streamed through
//!    any eviction policy is *bit-identical* (same events, same neighbour
//!    lists) to a from-scratch `kdtree_build` over the trailing events the
//!    policy retains — at every checkpoint, for every seed, and under
//!    `EVLAB_THREADS` ∈ {1, 4}.
//! 2. **No reset cliff** — the windowed `GnnOnline` session keeps its live
//!    node count pinned at the window size and emits a *smoother* logit
//!    trajectory than the old bound-by-reset engine, which discarded the
//!    whole graph at the `max_nodes` boundary.

use evlab::core::prelude::*;
use evlab::datasets::shapes::shape_silhouettes;
use evlab::datasets::DatasetConfig;
use evlab::events::{Event, Polarity};
use evlab::gnn::async_update::AsyncGnn;
use evlab::gnn::build::{kdtree_build, GraphConfig};
use evlab::gnn::window::{SlidingWindowGraph, WindowPolicy};
use evlab::gnn::EventGraph;
use evlab::tensor::OpCount;
use evlab::util::{par, Rng64};

fn random_events(n: usize, res: u16, span_us: u64, seed: u64) -> Vec<Event> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut ts: Vec<u64> = (0..n).map(|_| rng.next_below(span_us)).collect();
    ts.sort_unstable();
    ts.iter()
        .map(|&t| {
            Event::new(
                t,
                rng.next_below(res as u64) as u16,
                rng.next_below(res as u64) as u16,
                if rng.bernoulli(0.5) {
                    Polarity::On
                } else {
                    Polarity::Off
                },
            )
        })
        .collect()
}

/// The trailing slice a policy retains once `events` have been pushed.
fn trailing(events: &[Event], policy: WindowPolicy) -> Vec<Event> {
    let Some(last) = events.last() else {
        return Vec::new();
    };
    let aged: Vec<Event> = match policy.max_age_us() {
        Some(age) => events
            .iter()
            .filter(|e| last.t.saturating_since(e.t) <= age)
            .copied()
            .collect(),
        None => events.to_vec(),
    };
    let skip = aged.len().saturating_sub(policy.max_nodes());
    aged[skip..].to_vec()
}

fn assert_graphs_identical(live: &EventGraph, oracle: &EventGraph, tag: &str) {
    assert_eq!(live.node_count(), oracle.node_count(), "{tag}: node count");
    for i in 0..live.node_count() {
        assert_eq!(live.event(i), oracle.event(i), "{tag}: event {i}");
        assert_eq!(
            live.in_neighbors(i),
            oracle.in_neighbors(i),
            "{tag}: neighbours of node {i}"
        );
    }
}

/// Flattened adjacency for cross-thread bit comparison.
fn adjacency(g: &EventGraph) -> Vec<Vec<u32>> {
    (0..g.node_count()).map(|i| g.in_neighbors(i).to_vec()).collect()
}

#[test]
fn windowed_graph_equals_fresh_rebuild_at_every_checkpoint() {
    let policies = [
        WindowPolicy::MaxNodes(48),
        WindowPolicy::MaxAgeUs(15_000),
        WindowPolicy::Both {
            max_nodes: 80,
            max_age_us: 25_000,
        },
    ];
    for seed in [1u64, 7, 23] {
        let events = random_events(450, 40, 90_000, seed);
        let config = GraphConfig::new();
        for policy in policies {
            let mut window = SlidingWindowGraph::new(config, policy);
            let mut ops = OpCount::new();
            for (i, e) in events.iter().enumerate() {
                window.push(*e, &mut ops);
                // Checkpoint mid-stream, not just at the end: the window
                // must be exact while it is still sliding.
                if (i + 1) % 150 == 0 || i + 1 == events.len() {
                    let seen = &events[..=i];
                    let live = trailing(seen, policy);
                    let oracle = kdtree_build(&live, &config, &mut OpCount::new());
                    assert_graphs_identical(
                        &window.to_event_graph(),
                        &oracle,
                        &format!("seed {seed}, {policy:?}, event {i}"),
                    );
                }
            }
        }
    }
}

#[test]
fn windowed_graph_is_thread_invariant() {
    // The window engine is strictly serial per session, so its output must
    // not depend on the global worker pool at all.
    let events = random_events(500, 48, 100_000, 5);
    let config = GraphConfig::new();
    let policy = WindowPolicy::Both {
        max_nodes: 96,
        max_age_us: 30_000,
    };
    let run = |threads: usize| {
        par::with_threads(threads, || {
            let mut window = SlidingWindowGraph::new(config, policy);
            let mut ops = OpCount::new();
            for e in &events {
                window.push(*e, &mut ops);
            }
            (adjacency(&window.to_event_graph()), ops.mults)
        })
    };
    let serial = run(1);
    let threaded = run(4);
    assert_eq!(serial, threaded, "window state depends on EVLAB_THREADS");
}

#[test]
fn gnn_online_has_no_reset_cliff() {
    let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(6, 2));
    let max_nodes = 40usize;
    let mut pipe = GnnPipeline::new(
        GnnPipelineConfig::new()
            .with_epochs(10)
            .with_max_nodes(max_nodes)
            .with_seed(1),
    );
    pipe.fit(&data);
    let stream = &data.test[0].stream;
    assert!(
        stream.len() > 2 * max_nodes,
        "stream long enough to cross the old reset boundary"
    );

    // New engine: windowed session via the unified builder.
    let mut session =
        GnnOnline::with_config(&pipe, &OnlineConfig::new(data.resolution)).expect("trained");
    session.begin_session();
    let mut ops = OpCount::new();
    let mut windowed_logits: Vec<Vec<f32>> = Vec::new();
    let mut saturated = false;
    for e in stream.iter() {
        session.push_event(*e, &mut ops).expect("ordered");
        let d = session.poll_decision().expect("one decision per event");
        assert!(session.node_count() <= max_nodes);
        if session.node_count() == max_nodes {
            saturated = true;
        }
        if saturated {
            // Structural pinning: once full, the window slides — the node
            // count never snaps back the way engine.reset() did.
            assert_eq!(session.node_count(), max_nodes, "reset cliff reappeared");
            windowed_logits.push(d.logits.clone());
        }
    }
    assert!(saturated, "window never filled");

    // Old behaviour, reproduced in-test: append-only engine, full reset at
    // the max_nodes boundary.
    let net = pipe.network().expect("trained").clone();
    let classes = net.classes();
    let mut old = AsyncGnn::new(net, *pipe.graph_config(), classes);
    let mut old_logits: Vec<Vec<f32>> = Vec::new();
    let mut boundary_jumps: Vec<f32> = Vec::new();
    for e in stream.iter() {
        let was_reset = old.node_count() >= max_nodes;
        if was_reset {
            old.reset();
        }
        let logits = old.update(*e, &mut ops);
        let logits = logits.as_slice().to_vec();
        if was_reset {
            if let Some(prev) = old_logits.last() {
                boundary_jumps.push(linf(prev, &logits));
            }
        }
        old_logits.push(logits);
    }
    assert!(!boundary_jumps.is_empty(), "old engine never reset");

    let windowed_max_jump = windowed_logits
        .windows(2)
        .map(|w| linf(&w[0], &w[1]))
        .fold(0.0f32, f32::max);
    let old_boundary_jump = boundary_jumps.iter().fold(0.0f32, |a, &b| a.max(b));
    assert!(
        windowed_max_jump < old_boundary_jump,
        "sliding window ({windowed_max_jump}) must be smoother than the reset \
         discontinuity it replaced ({old_boundary_jump})"
    );
}

/// A burst of events sharing one timestamp straddling the `MaxNodes`
/// boundary: eviction order among time-ties must be FIFO (arrival order),
/// exactly matching the positional trailing-slice oracle — the window may
/// not pick an arbitrary member of the tied group.
#[test]
fn max_nodes_eviction_breaks_timestamp_ties_fifo() {
    let config = GraphConfig::new();
    let policy = WindowPolicy::MaxNodes(4);
    // Six events at t=100 (distinct pixels so they are distinguishable),
    // then two later singletons that each force one more eviction into
    // the still-tied group.
    let mut events: Vec<Event> = (0..6)
        .map(|i| Event::new(100, 2 * i as u16, 3, Polarity::On))
        .collect();
    events.push(Event::new(200, 20, 3, Polarity::On));
    events.push(Event::new(300, 22, 3, Polarity::On));

    let mut window = SlidingWindowGraph::new(config, policy);
    let mut ops = OpCount::new();
    for (i, e) in events.iter().enumerate() {
        window.push(*e, &mut ops);
        let live = trailing(&events[..=i], policy);
        let oracle = kdtree_build(&live, &config, &mut OpCount::new());
        assert_graphs_identical(
            &window.to_event_graph(),
            &oracle,
            &format!("tied burst, event {i}"),
        );
    }
    // After the full stream the survivors are the last four by arrival:
    // the final two t=100 events (positions 4 and 5), then t=200, t=300.
    let survivors: Vec<(u64, u16)> = {
        let g = window.to_event_graph();
        (0..g.node_count())
            .map(|i| (g.event(i).t.as_micros(), g.event(i).x))
            .collect()
    };
    assert_eq!(
        survivors,
        vec![(100, 8), (100, 10), (200, 20), (300, 22)],
        "FIFO tie-break within the t=100 group"
    );
}

/// `MaxAgeUs` boundary semantics: a node whose age is *exactly* the bound
/// stays live (the contract is `age > max_age_us` evicts); one more
/// microsecond evicts it. Both sides checked against the trailing oracle.
#[test]
fn max_age_boundary_keeps_exactly_aged_node() {
    let config = GraphConfig::new();
    let policy = WindowPolicy::MaxAgeUs(1_000);
    let events = [
        Event::new(0, 1, 1, Polarity::On),
        // Exactly at the bound: age of the t=0 node is 1000 == max_age.
        Event::new(1_000, 3, 1, Polarity::On),
        // One past the bound relative to t=0 (age 1001) — evicts it; the
        // t=1000 node (age 1) survives.
        Event::new(1_001, 5, 1, Polarity::On),
    ];
    let mut window = SlidingWindowGraph::new(config, policy);
    let mut ops = OpCount::new();

    window.push(events[0], &mut ops);
    let outcome = window.push(events[1], &mut ops);
    assert!(
        outcome.evicted.is_empty(),
        "age exactly equal to the bound must not evict"
    );
    assert_eq!(window.node_count(), 2);

    let outcome = window.push(events[2], &mut ops);
    assert_eq!(outcome.evicted.len(), 1, "age one past the bound evicts");
    assert_eq!(window.node_count(), 2);
    for (i, _) in events.iter().enumerate() {
        let live = trailing(&events[..=i], policy);
        assert_eq!(live.len(), if i == 0 { 1 } else { 2 }, "oracle agrees at {i}");
    }
    let oracle = kdtree_build(&trailing(&events, policy), &config, &mut OpCount::new());
    assert_graphs_identical(&window.to_event_graph(), &oracle, "age boundary");
}

/// The tie-heavy streams above must also be bit-identical under
/// `EVLAB_THREADS` 1 vs 4 — every `PushOutcome` field and the final
/// adjacency, not just the surviving node set.
#[test]
fn tie_break_outcomes_are_thread_invariant() {
    let mut events = random_events(300, 32, 3_000, 11); // dense → many ties
    // Guarantee exact-boundary ages exist in the stream.
    events.push(Event::new(4_000, 1, 1, Polarity::On));
    events.push(Event::new(5_000, 2, 2, Polarity::On));
    let config = GraphConfig::new();
    let policy = WindowPolicy::Both {
        max_nodes: 24,
        max_age_us: 1_000,
    };
    let run = |threads: usize| {
        par::with_threads(threads, || {
            let mut window = SlidingWindowGraph::new(config, policy);
            let mut ops = OpCount::new();
            let mut outcomes: Vec<(u32, Vec<u32>, Vec<u32>)> = Vec::new();
            for e in &events {
                let o = window.push(*e, &mut ops);
                outcomes.push((o.inserted, o.evicted, o.reselected));
            }
            (outcomes, adjacency(&window.to_event_graph()))
        })
    };
    assert_eq!(run(1), run(4), "tie-break depends on EVLAB_THREADS");
}

fn linf(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}
