//! Observability-layer contract: pipeline stages record what they did,
//! the capped graph builder both stays bit-identical under forced thread
//! counts *and* reports its serial fallback, and the metrics snapshot
//! round-trips through the crate's own JSON parser.
//!
//! The obs registry is process-global and tests run concurrently, so every
//! assertion here is a *delta* around the workload under test, never an
//! absolute counter value.

use evlab::events::{Event, EventStream, Polarity};
use evlab::gnn::build::{incremental_build, GraphConfig};
use evlab::sensor::scene::MovingBar;
use evlab::sensor::{CameraConfig, EventCamera};
use evlab::tensor::OpCount;
use evlab::util::json::Json;
use evlab::util::{obs, par, Rng64};

fn random_stream(n: usize, res: u16, span_us: u64, seed: u64) -> EventStream {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut ts: Vec<u64> = (0..n).map(|_| rng.next_below(span_us)).collect();
    ts.sort_unstable();
    let events: Vec<Event> = ts
        .into_iter()
        .map(|t| {
            Event::new(
                t,
                rng.next_below(res as u64) as u16,
                rng.next_below(res as u64) as u16,
                if rng.bernoulli(0.5) {
                    Polarity::On
                } else {
                    Polarity::Off
                },
            )
        })
        .collect();
    EventStream::from_events((res, res), events).expect("sorted and in bounds")
}

/// The load-bearing pair of guarantees for capped cells: the build is
/// bit-for-bit the serial stream at `threads = 4`, and the forced
/// fallback is *visible* — `gnn.serial_fallback` increments instead of
/// the config silently losing its parallelism.
#[test]
fn capped_build_is_serial_exact_and_counts_its_fallback() {
    obs::set_enabled(true);
    // Past MIN_STRIPED_EVENTS (4096) so only the cap forces the fallback.
    let stream = random_stream(5_000, 32, 200_000, 91);
    let config = GraphConfig::new().with_cell_capacity(16);
    let mut ops_serial = OpCount::new();
    let serial =
        par::with_threads(1, || incremental_build(stream.as_slice(), &config, &mut ops_serial));
    let before = obs::counter_value("gnn.serial_fallback");
    let mut ops_forced = OpCount::new();
    let forced =
        par::with_threads(4, || incremental_build(stream.as_slice(), &config, &mut ops_forced));
    let after = obs::counter_value("gnn.serial_fallback");
    for i in 0..stream.len() {
        assert_eq!(
            serial.in_neighbors(i),
            forced.in_neighbors(i),
            "capped build diverged from the serial stream at node {i}"
        );
    }
    assert_eq!(ops_serial, ops_forced, "op accounting differs");
    assert!(
        after > before,
        "parallel-eligible capped build did not report its serial fallback \
         (before {before}, after {after})"
    );
}

/// An *uncapped* large build under threads > 1 takes the striped path and
/// must not claim a fallback it did not take.
#[test]
fn striped_build_does_not_count_a_fallback() {
    obs::set_enabled(true);
    let stream = random_stream(5_000, 32, 200_000, 92);
    let config = GraphConfig::new();
    let before = obs::counter_value("gnn.serial_fallback");
    let mut ops = OpCount::new();
    // Serialize against the capped test above: its own fallback increments
    // must not land inside this window, so retry until the counter was
    // stable around a striped build.
    for _ in 0..32 {
        let b = obs::counter_value("gnn.serial_fallback");
        par::with_threads(4, || incremental_build(stream.as_slice(), &config, &mut ops));
        if obs::counter_value("gnn.serial_fallback") == b {
            return;
        }
    }
    let after = obs::counter_value("gnn.serial_fallback");
    panic!("striped build kept reporting serial fallbacks (before {before}, after {after})");
}

/// Camera recordings land in the sensor counters: events emitted and the
/// band-merge span.
#[test]
fn camera_stage_records_its_activity() {
    obs::set_enabled(true);
    let events_before = obs::counter_value("sensor.camera.events");
    let recs_before = obs::counter_value("sensor.camera.recordings");
    let camera = EventCamera::new(CameraConfig::new((32, 32)));
    let scene = MovingBar::horizontal(0.002, 4.0);
    let stream = camera.record(&scene, 0, 20_000, 3);
    assert!(stream.len() > 10, "bar must generate events");
    assert!(
        obs::counter_value("sensor.camera.events") >= events_before + stream.len() as u64,
        "emitted events not counted"
    );
    assert!(
        obs::counter_value("sensor.camera.recordings") > recs_before,
        "recording not counted"
    );
    let merge = obs::spans()
        .into_iter()
        .find(|(n, _)| n == "sensor.camera.band_merge")
        .map(|(_, h)| h)
        .expect("band-merge span recorded");
    assert!(merge.count >= 1);
}

/// Histogram clamping is never silent: a duration past the top
/// power-of-two bucket still lands in that bucket (nothing is lost) and
/// increments the global `obs.span_overflow` counter, so hour-long stalls
/// can't hide inside a quietly-absorbing tail bucket.
#[test]
fn span_overflow_clamp_is_counted_not_silent() {
    obs::set_enabled(true);
    let name = "obs.itest.span_overflow";
    let before = obs::counter_value("obs.span_overflow");
    // Longest exactly-representable duration: top bucket, no clamp.
    let top_edge = (1u64 << (obs::HIST_BUCKETS as u32 - 2)) as f64;
    obs::record_duration_us(name, top_edge);
    // One doubling past the histogram range: clamped AND counted.
    obs::record_duration_us(name, 2.0 * top_edge);
    obs::record_duration_us(name, 1e30);
    let after = obs::counter_value("obs.span_overflow");
    assert!(
        after >= before + 2,
        "clamped durations not counted (before {before}, after {after})"
    );
    let hist = obs::spans()
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, h)| h)
        .expect("histogram recorded");
    assert_eq!(hist.count, 3);
    assert_eq!(
        hist.buckets[obs::HIST_BUCKETS - 1],
        3,
        "in-range edge and clamped tail all land in the top bucket"
    );
    assert_eq!(
        hist.buckets.iter().sum::<u64>(),
        hist.count,
        "no duration lost to clamping"
    );
    assert!(hist.max_us >= 1e30, "max tracks the unclamped duration");
}

/// The metrics file is written atomically and parses with the same JSON
/// implementation that produced it; the required schema keys are present.
#[test]
fn metrics_file_round_trips_through_the_parser() {
    obs::set_enabled(true);
    obs::counter_add("obs.itest.marker", 7);
    let path = std::env::temp_dir().join(format!(
        "evlab_obs_itest_{}.json",
        std::process::id()
    ));
    obs::write_metrics(&path).expect("write metrics");
    let text = std::fs::read_to_string(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    let doc = Json::parse(&text).expect("metrics file parses");
    assert_eq!(doc.get("enabled").and_then(Json::as_bool), Some(true));
    let marker = doc
        .get("counters")
        .and_then(|c| c.get("obs.itest.marker"))
        .and_then(Json::as_u64)
        .expect("marker counter present");
    assert!(marker >= 7);
    assert!(doc.get("spans").is_some(), "spans object missing");
}
