//! Determinism contract of the parallel execution layer: every
//! parallelized hot path must produce bit-identical output under
//! `EVLAB_THREADS=4` and under exact serial execution (`threads = 1`).
//!
//! Each test runs the same workload twice inside
//! [`evlab::util::par::with_threads`] and compares the results with
//! structural equality — for floats that means exact bit patterns via
//! `to_bits`, not approximate closeness. The workloads are sized past the
//! internal parallelism thresholds so the threaded runs genuinely take
//! the chunked/striped code paths.

use evlab::cnn::encode::{
    CountAndSurface, FrameEncoder, LinearTimeSurface, SignedCount, TimeSurface, TwoChannel,
    VoxelGrid,
};
use evlab::events::{Event, EventStream, Polarity};
use evlab::gnn::build::{incremental_build, kdtree_build, GraphConfig};
use evlab::sensor::scene::MovingBar;
use evlab::sensor::{CameraConfig, EventCamera};
use evlab::snn::encode::SpikeTrain;
use evlab::snn::event_driven::EventDrivenSnn;
use evlab::snn::layer::LifLayer;
use evlab::snn::network::{SnnConfig, SnnNetwork};
use evlab::snn::neuron::LifConfig;
use evlab::tensor::OpCount;
use evlab::util::{par, Rng64};

/// Exact float-slice equality: same length, same bit pattern everywhere.
fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn random_stream(n: usize, res: u16, span_us: u64, seed: u64) -> EventStream {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut ts: Vec<u64> = (0..n).map(|_| rng.next_below(span_us)).collect();
    ts.sort_unstable();
    let events: Vec<Event> = ts
        .into_iter()
        .map(|t| {
            Event::new(
                t,
                rng.next_below(res as u64) as u16,
                rng.next_below(res as u64) as u16,
                if rng.bernoulli(0.5) {
                    Polarity::On
                } else {
                    Polarity::Off
                },
            )
        })
        .collect();
    EventStream::from_events((res, res), events).expect("sorted and in bounds")
}

#[test]
fn camera_recording_is_thread_invariant() {
    let camera = EventCamera::new(CameraConfig::new((48, 48)));
    let scene = MovingBar::horizontal(0.002, 4.0);
    let serial = par::with_threads(1, || camera.record(&scene, 0, 40_000, 7));
    let threaded = par::with_threads(4, || camera.record(&scene, 0, 40_000, 7));
    assert!(serial.len() > 100, "bar must generate events");
    assert_eq!(serial, threaded, "camera events differ across thread counts");
}

#[test]
fn frame_encoders_are_thread_invariant() {
    // Past MIN_EVENTS_PER_CHUNK (8192) so the threaded run actually chunks.
    let stream = random_stream(40_000, 64, 80_000, 13);
    let events = stream.as_slice();
    let encoders: Vec<Box<dyn FrameEncoder>> = vec![
        Box::new(SignedCount::new()),
        Box::new(TwoChannel::new()),
        Box::new(TimeSurface::new(5_000.0)),
        Box::new(LinearTimeSurface::new(20_000)),
        Box::new(VoxelGrid::new(6)),
        Box::new(CountAndSurface::new()),
    ];
    for enc in &encoders {
        let mut ops_a = OpCount::new();
        let mut ops_b = OpCount::new();
        let serial = par::with_threads(1, || enc.encode(events, stream.resolution(), &mut ops_a));
        let threaded =
            par::with_threads(4, || enc.encode(events, stream.resolution(), &mut ops_b));
        assert_eq!(serial.shape(), threaded.shape());
        assert!(
            bits_equal(serial.as_slice(), threaded.as_slice()),
            "encoder output differs across thread counts"
        );
        assert_eq!(ops_a, ops_b, "op accounting differs across thread counts");
    }
}

#[test]
fn lif_layer_stepping_is_thread_invariant() {
    // 40 active inputs × 2048 outputs ≈ 84k synaptic updates per step,
    // past the layer's parallel-dispatch threshold.
    let run = |threads: usize| {
        par::with_threads(threads, || {
            let mut rng = Rng64::seed_from_u64(21);
            let mut layer = LifLayer::new(256, 2048, LifConfig::new(), &mut rng);
            let mut ops = OpCount::new();
            let mut spikes = Vec::new();
            let mut membranes = Vec::new();
            for _ in 0..4 {
                let input: Vec<f32> = (0..256)
                    .map(|_| if rng.bernoulli(0.15) { 1.0 } else { 0.0 })
                    .collect();
                let out = layer.step(&input, &mut ops);
                spikes.extend(out.spikes.iter().copied());
                membranes.extend(out.membrane.iter().copied());
            }
            (spikes, membranes, ops)
        })
    };
    let (s1, m1, o1) = run(1);
    let (s4, m4, o4) = run(4);
    assert!(bits_equal(&s1, &s4), "spikes differ across thread counts");
    assert!(bits_equal(&m1, &m4), "membranes differ across thread counts");
    assert_eq!(o1, o4, "op accounting differs across thread counts");
}

#[test]
fn event_driven_snn_is_thread_invariant() {
    // Hidden width 2048 reaches the event-driven injection's chunking
    // threshold.
    let run = |threads: usize| {
        par::with_threads(threads, || {
            let mut rng = Rng64::seed_from_u64(31);
            let net = SnnNetwork::new(SnnConfig::new(32, 5).with_hidden(vec![2048]), &mut rng);
            let mut train = SpikeTrain::new(32, 25);
            for t in 0..25 {
                for _ in 0..4 {
                    train.push(t, rng.next_index(32) as u32);
                }
            }
            let mut ed = EventDrivenSnn::from_network(&net);
            let mut ops = OpCount::new();
            let result = ed.process(&train, &mut ops);
            (result, ops)
        })
    };
    let (r1, o1) = run(1);
    let (r4, o4) = run(4);
    assert_eq!(r1.spike_counts, r4.spike_counts);
    assert!(
        bits_equal(r1.logits.as_slice(), r4.logits.as_slice()),
        "logits differ across thread counts"
    );
    assert_eq!(o1, o4, "op accounting differs across thread counts");
}

#[test]
fn with_threads_override_reaches_worker_threads() {
    // Regression: the thread-count override is a thread-local, and worker
    // threads start with fresh thread-locals — the par layer must copy the
    // override into every worker so that nested regions see it.
    let seen = par::with_threads(3, || par::map_chunks(4, |_| par::threads()));
    assert_eq!(seen, vec![3; 4], "override lost inside worker threads");
    // An inner region opened *on a worker* still wins over the propagated
    // outer override, exactly as it does on the coordinator thread.
    let inner = par::with_threads(4, || {
        par::map_chunks(2, |_| par::with_threads(2, par::threads))
    });
    assert_eq!(inner, vec![2; 2], "inner override must shadow the outer one");
}

#[test]
fn nested_with_threads_regions_stay_bit_identical() {
    // A pipeline stage that itself fans out, launched from inside a worker
    // of an outer region: with the override propagated, the inner encode
    // chunks under threads = 4 and must still match the flat serial run
    // bit for bit.
    let stream = random_stream(40_000, 64, 80_000, 13);
    let events = stream.as_slice();
    let enc = SignedCount::new();
    let mut ops = OpCount::new();
    let flat = par::with_threads(1, || enc.encode(events, stream.resolution(), &mut ops));
    let nested = par::with_threads(4, || {
        par::map_chunks(2, |_| {
            let mut ops = OpCount::new();
            enc.encode(events, stream.resolution(), &mut ops)
        })
    });
    for frame in &nested {
        assert!(
            bits_equal(flat.as_slice(), frame.as_slice()),
            "nested encode differs from the flat serial run"
        );
    }
}

#[test]
fn serve_decisions_are_thread_invariant() {
    // The serving runtime schedules sessions across worker threads, but a
    // session's decisions must be a pure function of its ingress: same
    // streams + same config => identical decision logs, latest decisions
    // (logits bit-for-bit, via Decision's PartialEq) and shed statistics
    // under EVLAB_THREADS=1 and 4 — even with shedding forced by a queue
    // much smaller than the ingest bursts.
    use evlab::core::prelude::*;
    use evlab::datasets::shapes::shape_silhouettes;
    use evlab::datasets::DatasetConfig;
    use evlab::serve::{DropPolicy, ServeConfig, ServeRuntime};

    let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(6, 2));
    let mut snn = SnnPipeline::new(SnnPipelineConfig::new().with_epochs(3).with_seed(3));
    let mut cnn = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(3).with_seed(3));
    let mut gnn = GnnPipeline::new(
        GnnPipelineConfig::new().with_epochs(3).with_max_nodes(64).with_seed(3),
    );
    snn.fit(&data);
    cnn.fit(&data);
    gnn.fit(&data);

    let run = |threads: usize| {
        par::with_threads(threads, || {
            let config = ServeConfig::new()
                .with_queue_depth(8)
                .with_policy(DropPolicy::DropOldest)
                .with_quantum(4);
            let mut rt = ServeRuntime::new(config);
            let online = OnlineConfig::new(data.resolution).with_window_us(2_000);
            for _ in 0..2 {
                rt.open_session(
                    SessionBuilder::new(online).snn(&snn).build().unwrap(),
                    data.resolution,
                )
                .unwrap();
                rt.open_session(
                    SessionBuilder::new(online).cnn(&cnn).build().unwrap(),
                    data.resolution,
                )
                .unwrap();
                rt.open_session(
                    SessionBuilder::new(OnlineConfig::new(data.resolution))
                        .gnn(&gnn)
                        .build()
                        .unwrap(),
                    data.resolution,
                )
                .unwrap();
            }
            // Bursts of 32 into depth-8 queues: most events are shed, and
            // which ones survive must still be deterministic.
            let stream = &data.test[0].stream;
            let events = stream.as_slice();
            for chunk in events.chunks(32) {
                for sid in 0..6 {
                    for e in chunk {
                        rt.offer(sid, *e);
                    }
                }
                rt.tick();
            }
            rt.drain_all();
            rt.flush_all().unwrap();
            rt.sessions()
                .iter()
                .map(|s| {
                    (
                        s.history().to_vec(),
                        s.last_decision().cloned(),
                        s.stats(),
                    )
                })
                .collect::<Vec<_>>()
        })
    };
    let serial = run(1);
    let threaded = run(4);
    assert!(
        serial.iter().any(|(h, _, _)| !h.is_empty()),
        "serving produced no decisions"
    );
    assert!(
        serial.iter().any(|(_, _, st)| st.shed() > 0),
        "overload was not forced"
    );
    assert_eq!(serial, threaded, "serve decisions differ across thread counts");
}

#[test]
fn graph_builders_are_thread_invariant() {
    // Past MIN_STRIPED_EVENTS (4096) with exact (uncapped) cells, so the
    // threaded incremental build takes the striped path.
    let stream = random_stream(8_000, 96, 300_000, 41);
    let config = GraphConfig::new();
    let mut ops_a = OpCount::new();
    let mut ops_b = OpCount::new();
    let serial = par::with_threads(1, || incremental_build(stream.as_slice(), &config, &mut ops_a));
    let threaded =
        par::with_threads(4, || incremental_build(stream.as_slice(), &config, &mut ops_b));
    assert_eq!(serial, threaded, "incremental graphs differ across thread counts");
    assert_eq!(ops_a, ops_b, "op accounting differs across thread counts");

    let mut ops_c = OpCount::new();
    let mut ops_d = OpCount::new();
    let kd_serial = par::with_threads(1, || kdtree_build(stream.as_slice(), &config, &mut ops_c));
    let kd_threaded = par::with_threads(4, || kdtree_build(stream.as_slice(), &config, &mut ops_d));
    assert_eq!(kd_serial, kd_threaded, "kd-tree graphs differ across thread counts");
    assert_eq!(ops_c, ops_d, "op accounting differs across thread counts");
}
