//! Cross-implementation equivalence on real simulated camera data: the
//! different evaluation strategies of each paradigm must agree with their
//! batch references.

use evlab::events::EventStream;
use evlab::gnn::async_update::AsyncGnn;
use evlab::gnn::build::{incremental_build, kdtree_build, naive_build, GraphConfig};
use evlab::gnn::network::{GnnConfig, GnnNetwork};
use evlab::sensor::scene::RotatingDisk;
use evlab::sensor::{CameraConfig, EventCamera, PixelConfig};
use evlab::tensor::OpCount;
use evlab::util::Rng64;

fn camera_stream() -> EventStream {
    let camera = EventCamera::new(
        CameraConfig::new((24, 24)).with_pixel(PixelConfig::ideal()),
    );
    let scene = RotatingDisk::new((12.0, 12.0), 9.0, 3e-4, 3);
    camera.record(&scene, 0, 15_000, 4)
}

#[test]
fn graph_builders_agree_on_camera_data() {
    let stream = camera_stream();
    assert!(stream.len() > 100, "disk must generate events");
    let events: Vec<_> = stream.as_slice().iter().copied().take(600).collect();
    let config = GraphConfig::new();
    let mut ops = OpCount::new();
    let a = naive_build(&events, &config, &mut ops);
    let b = kdtree_build(&events, &config, &mut ops);
    let c = incremental_build(&events, &config, &mut ops);
    for i in 0..events.len() {
        assert_eq!(a.in_neighbors(i), b.in_neighbors(i), "node {i}");
        assert_eq!(a.in_neighbors(i), c.in_neighbors(i), "node {i}");
    }
    a.assert_causal();
}

#[test]
fn async_gnn_matches_batch_on_camera_data() {
    let stream = camera_stream();
    let events: Vec<_> = stream.as_slice().iter().copied().take(200).collect();
    let config = GraphConfig::new();
    let mut ops = OpCount::new();
    let graph = incremental_build(&events, &config, &mut ops);
    let mut batch_net = GnnNetwork::new(&GnnConfig::new(3), &mut Rng64::seed_from_u64(2));
    let batch_logits = batch_net.forward(&graph, &mut ops);
    let async_net = GnnNetwork::new(&GnnConfig::new(3), &mut Rng64::seed_from_u64(2));
    let mut engine = AsyncGnn::new(async_net, config, 3);
    let mut last = evlab::tensor::Tensor::zeros(&[3]);
    for e in &events {
        last = engine.update(*e, &mut ops);
    }
    for (a, b) in batch_logits.as_slice().iter().zip(last.as_slice()) {
        assert!((a - b).abs() < 1e-3, "batch {a} vs streaming {b}");
    }
}

#[test]
fn submanifold_incremental_matches_dense_on_camera_data() {
    use evlab::cnn::submanifold::SubmanifoldNet;
    let stream = camera_stream();
    let mut rng = Rng64::seed_from_u64(3);
    let mut net = SubmanifoldNet::new(&[4, 4], 3, (24, 24), &mut rng);
    let mut ops = OpCount::new();
    for e in stream.as_slice().iter().take(300) {
        net.update(e, &mut ops);
    }
    let incremental = net.features().clone();
    net.dense_refresh(&mut ops);
    for (a, b) in incremental.as_slice().iter().zip(net.features().as_slice()) {
        assert!((a - b).abs() < 1e-3, "incremental {a} vs dense {b}");
    }
}

#[test]
fn event_driven_snn_tracks_clocked_on_camera_spikes() {
    use evlab::snn::encode::events_to_spikes;
    use evlab::snn::event_driven::EventDrivenSnn;
    use evlab::snn::network::{SnnConfig, SnnNetwork};
    let stream = camera_stream();
    let down = evlab::events::downsample::SpatialDownsampler::new(3, 1_000).apply(&stream);
    let train = events_to_spikes(&down, 1_000, 15);
    let mut rng = Rng64::seed_from_u64(5);
    let mut net = SnnNetwork::new(SnnConfig::new(2 * 64, 3).with_hidden(vec![32]), &mut rng);
    let mut ed = EventDrivenSnn::from_network(&net);
    let mut ops = OpCount::new();
    let clocked = net.forward(&train, &mut ops);
    let event = ed.process(&train, &mut ops);
    assert_eq!(
        clocked.argmax(),
        event.logits.argmax(),
        "both schedulers must reach the same decision"
    );
}
