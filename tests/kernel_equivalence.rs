//! Bit-identity tests for the cache-blocked kernels (DESIGN.md §10).
//!
//! The blocked GEMM and the im2col conv2d lowering promise the *exact*
//! bits of their naive loop-nest oracles — per output element, products
//! accumulate in ascending reduction order into a single f32 chain.
//! These tests sweep that contract across awkward geometry (odd sizes,
//! stride > 1, fat padding, 1×1 kernels) and seeded sparsity, and check
//! that the [`Scratch`] arena's buffer reuse never leaks state between
//! calls.

use evlab::cnn::model::{build_cnn, CnnConfig};
use evlab::tensor::gemm::{
    conv2d_backward, conv2d_backward_naive, conv2d_forward, conv2d_forward_naive, gemm_into,
    gemm_naive_into, ConvShape,
};
use evlab::tensor::{OpCount, Scratch, Tensor};
use evlab::util::Rng64;

fn rand_vec(rng: &mut Rng64, n: usize, zero_frac: f64) -> Vec<f32> {
    (0..n)
        .map(|_| {
            if rng.next_f64() < zero_frac {
                0.0
            } else {
                rng.next_f32() - 0.5
            }
        })
        .collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: blocked {x} vs naive {y}"
        );
    }
}

/// Geometry sweep: the two table1 conv layers plus stride-2, pad-2,
/// 1×1-kernel and odd-sized shapes that hit every im2col edge case.
fn shapes() -> Vec<ConvShape> {
    let s = |ic, oc, k, st, p, h, w| ConvShape {
        in_channels: ic,
        out_channels: oc,
        kernel: k,
        stride: st,
        padding: p,
        in_h: h,
        in_w: w,
    };
    vec![
        s(2, 8, 3, 1, 1, 32, 32),  // table1 conv1
        s(8, 16, 3, 1, 1, 16, 16), // table1 conv2
        s(3, 5, 3, 2, 1, 11, 13),  // stride 2, odd dims
        s(1, 4, 1, 1, 0, 7, 9),    // 1×1 kernel
        s(2, 3, 5, 1, 2, 9, 9),    // 5×5 kernel, padding 2
        s(4, 2, 3, 2, 2, 10, 7),   // stride 2 AND padding 2
        s(1, 1, 3, 3, 1, 8, 8),    // stride 3, single channel
    ]
}

#[test]
fn conv2d_forward_blocked_matches_naive_bits() {
    let mut rng = Rng64::seed_from_u64(0xC04F);
    let mut scratch = Scratch::new();
    for shape in shapes() {
        for &zero_frac in &[0.0, 0.6, 0.95] {
            let (oh, ow) = shape.out_hw();
            let x = rand_vec(&mut rng, shape.in_channels * shape.in_h * shape.in_w, zero_frac);
            let w = rand_vec(&mut rng, shape.out_channels * shape.col_rows(), 0.0);
            let bias = rand_vec(&mut rng, shape.out_channels, 0.0);
            let mut out_blocked = vec![0.0f32; shape.out_channels * oh * ow];
            let mut out_naive = vec![0.0f32; shape.out_channels * oh * ow];
            let eff_b = conv2d_forward(&shape, &x, &w, &bias, &mut out_blocked, &mut scratch);
            let eff_n = conv2d_forward_naive(&shape, &x, &w, &bias, &mut out_naive);
            assert_bits_eq(&out_blocked, &out_naive, "conv forward");
            assert_eq!(eff_b, eff_n, "effective MAC counts diverge");
        }
    }
}

#[test]
fn conv2d_backward_blocked_matches_naive_bits() {
    let mut rng = Rng64::seed_from_u64(0xBAC4);
    let mut scratch = Scratch::new();
    for shape in shapes() {
        let (oh, ow) = shape.out_hw();
        let x = rand_vec(&mut rng, shape.in_channels * shape.in_h * shape.in_w, 0.5);
        let w = rand_vec(&mut rng, shape.out_channels * shape.col_rows(), 0.0);
        let g = rand_vec(&mut rng, shape.out_channels * oh * ow, 0.3);
        // Gradients accumulate (`+=`), so seed both sides with identical
        // nonzero contents to exercise that contract too.
        let gi0 = rand_vec(&mut rng, shape.in_channels * shape.in_h * shape.in_w, 0.0);
        let gw0 = rand_vec(&mut rng, shape.out_channels * shape.col_rows(), 0.0);
        let gb0 = rand_vec(&mut rng, shape.out_channels, 0.0);
        let (mut gi_b, mut gw_b, mut gb_b) = (gi0.clone(), gw0.clone(), gb0.clone());
        let (mut gi_n, mut gw_n, mut gb_n) = (gi0, gw0, gb0);
        conv2d_backward(&shape, &x, &w, &g, &mut gi_b, &mut gw_b, &mut gb_b, &mut scratch);
        conv2d_backward_naive(&shape, &x, &w, &g, &mut gi_n, &mut gw_n, &mut gb_n);
        assert_bits_eq(&gi_b, &gi_n, "grad input");
        assert_bits_eq(&gw_b, &gw_n, "grad weight");
        assert_bits_eq(&gb_b, &gb_n, "grad bias");
    }
}

#[test]
fn gemm_blocked_matches_naive_bits() {
    let mut rng = Rng64::seed_from_u64(0x6E44);
    let mut scratch = Scratch::new();
    for &(m, n, k) in &[
        (1usize, 1usize, 1usize),
        (4, 8, 16),
        (5, 9, 17),   // one past the 4×8 microkernel tile
        (13, 21, 37), // ragged everywhere
        (70, 33, 40), // crosses the row-panel (MC = 64) boundary
    ] {
        let a = rand_vec(&mut rng, m * k, 0.2);
        let b = rand_vec(&mut rng, k * n, 0.2);
        let mut c_blocked = rand_vec(&mut rng, m * n, 0.0);
        let mut c_naive = c_blocked.clone(); // both accumulate (`+=`)
        gemm_into(m, n, k, &a, &b, &mut c_blocked, &mut scratch);
        gemm_naive_into(m, n, k, &a, k, 1, &b, n, 1, &mut c_naive);
        assert_bits_eq(&c_blocked, &c_naive, "gemm");
    }
}

/// Arena reuse must be invisible: repeated `forward_arena` calls through
/// a recycled [`Scratch`] give bit-identical outputs, and those outputs
/// equal the allocating `forward` path.
#[test]
fn scratch_arena_reuse_is_deterministic() {
    let mut rng = Rng64::seed_from_u64(0xA4E);
    let mut net = build_cnn(&CnnConfig::small(2, 32, 10), &mut rng);
    let x = Tensor::from_vec(&[2, 32, 32], rand_vec(&mut rng, 2 * 32 * 32, 0.8)).expect("shape");
    let mut ops = OpCount::new();
    let plain = net.forward(&x, &mut ops);
    let mut arena = Scratch::new();
    let first = net.forward_arena(&x, &mut arena, &mut ops);
    let second = net.forward_arena(&x, &mut arena, &mut ops);
    assert_bits_eq(plain.as_slice(), first.as_slice(), "arena vs plain forward");
    assert_bits_eq(first.as_slice(), second.as_slice(), "arena reuse");
    assert_eq!(first.shape(), plain.shape());
}
