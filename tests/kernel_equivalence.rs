//! Bit-identity tests for the cache-blocked kernels (DESIGN.md §10).
//!
//! The blocked GEMM and the im2col conv2d lowering promise the *exact*
//! bits of their naive loop-nest oracles — per output element, products
//! accumulate in ascending reduction order into a single f32 chain.
//! These tests sweep that contract across awkward geometry (odd sizes,
//! stride > 1, fat padding, 1×1 kernels) and seeded sparsity, and check
//! that the [`Scratch`] arena's buffer reuse never leaks state between
//! calls.

use evlab::cnn::model::{build_cnn, CnnConfig};
use evlab::tensor::gemm::{
    conv2d_backward, conv2d_backward_naive, conv2d_forward, conv2d_forward_naive, gemm_into,
    gemm_naive_into, ConvShape,
};
use evlab::tensor::{OpCount, Scratch, Tensor};
use evlab::util::{par, Rng64};

fn rand_vec(rng: &mut Rng64, n: usize, zero_frac: f64) -> Vec<f32> {
    (0..n)
        .map(|_| {
            if rng.next_f64() < zero_frac {
                0.0
            } else {
                rng.next_f32() - 0.5
            }
        })
        .collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: blocked {x} vs naive {y}"
        );
    }
}

/// Geometry sweep: the two table1 conv layers plus stride-2, pad-2,
/// 1×1-kernel and odd-sized shapes that hit every im2col edge case.
fn shapes() -> Vec<ConvShape> {
    let s = |ic, oc, k, st, p, h, w| ConvShape {
        in_channels: ic,
        out_channels: oc,
        kernel: k,
        stride: st,
        padding: p,
        in_h: h,
        in_w: w,
    };
    vec![
        s(2, 8, 3, 1, 1, 32, 32),  // table1 conv1
        s(8, 16, 3, 1, 1, 16, 16), // table1 conv2
        s(3, 5, 3, 2, 1, 11, 13),  // stride 2, odd dims
        s(1, 4, 1, 1, 0, 7, 9),    // 1×1 kernel
        s(2, 3, 5, 1, 2, 9, 9),    // 5×5 kernel, padding 2
        s(4, 2, 3, 2, 2, 10, 7),   // stride 2 AND padding 2
        s(1, 1, 3, 3, 1, 8, 8),    // stride 3, single channel
    ]
}

#[test]
fn conv2d_forward_blocked_matches_naive_bits() {
    let mut rng = Rng64::seed_from_u64(0xC04F);
    let mut scratch = Scratch::new();
    for shape in shapes() {
        for &zero_frac in &[0.0, 0.6, 0.95] {
            let (oh, ow) = shape.out_hw();
            let x = rand_vec(&mut rng, shape.in_channels * shape.in_h * shape.in_w, zero_frac);
            let w = rand_vec(&mut rng, shape.out_channels * shape.col_rows(), 0.0);
            let bias = rand_vec(&mut rng, shape.out_channels, 0.0);
            let mut out_blocked = vec![0.0f32; shape.out_channels * oh * ow];
            let mut out_naive = vec![0.0f32; shape.out_channels * oh * ow];
            let eff_b = conv2d_forward(&shape, &x, &w, &bias, &mut out_blocked, &mut scratch);
            let eff_n = conv2d_forward_naive(&shape, &x, &w, &bias, &mut out_naive);
            assert_bits_eq(&out_blocked, &out_naive, "conv forward");
            assert_eq!(eff_b, eff_n, "effective MAC counts diverge");
        }
    }
}

#[test]
fn conv2d_backward_blocked_matches_naive_bits() {
    let mut rng = Rng64::seed_from_u64(0xBAC4);
    let mut scratch = Scratch::new();
    for shape in shapes() {
        let (oh, ow) = shape.out_hw();
        let x = rand_vec(&mut rng, shape.in_channels * shape.in_h * shape.in_w, 0.5);
        let w = rand_vec(&mut rng, shape.out_channels * shape.col_rows(), 0.0);
        let g = rand_vec(&mut rng, shape.out_channels * oh * ow, 0.3);
        // Gradients accumulate (`+=`), so seed both sides with identical
        // nonzero contents to exercise that contract too.
        let gi0 = rand_vec(&mut rng, shape.in_channels * shape.in_h * shape.in_w, 0.0);
        let gw0 = rand_vec(&mut rng, shape.out_channels * shape.col_rows(), 0.0);
        let gb0 = rand_vec(&mut rng, shape.out_channels, 0.0);
        let (mut gi_b, mut gw_b, mut gb_b) = (gi0.clone(), gw0.clone(), gb0.clone());
        let (mut gi_n, mut gw_n, mut gb_n) = (gi0, gw0, gb0);
        conv2d_backward(&shape, &x, &w, &g, &mut gi_b, &mut gw_b, &mut gb_b, &mut scratch);
        conv2d_backward_naive(&shape, &x, &w, &g, &mut gi_n, &mut gw_n, &mut gb_n);
        assert_bits_eq(&gi_b, &gi_n, "grad input");
        assert_bits_eq(&gw_b, &gw_n, "grad weight");
        assert_bits_eq(&gb_b, &gb_n, "grad bias");
    }
}

#[test]
fn gemm_blocked_matches_naive_bits() {
    let mut rng = Rng64::seed_from_u64(0x6E44);
    let mut scratch = Scratch::new();
    for &(m, n, k) in &[
        (1usize, 1usize, 1usize),
        (4, 8, 16),
        (5, 9, 17),   // one past the 4×8 microkernel tile
        (13, 21, 37), // ragged everywhere
        (70, 33, 40), // crosses the row-panel (MC = 64) boundary
    ] {
        let a = rand_vec(&mut rng, m * k, 0.2);
        let b = rand_vec(&mut rng, k * n, 0.2);
        let mut c_blocked = rand_vec(&mut rng, m * n, 0.0);
        let mut c_naive = c_blocked.clone(); // both accumulate (`+=`)
        gemm_into(m, n, k, &a, &b, &mut c_blocked, &mut scratch);
        gemm_naive_into(m, n, k, &a, k, 1, &b, n, 1, &mut c_naive);
        assert_bits_eq(&c_blocked, &c_naive, "gemm");
    }
}

/// Degenerate GEMM geometry — any of `m`, `n`, `k` equal to 0 or 1 —
/// must match the naive oracle bit-for-bit at every thread count. A zero
/// `k` in particular means "accumulate an empty sum": `C` is left
/// untouched on both paths.
#[test]
fn gemm_degenerate_shapes_match_naive_at_every_thread_count() {
    let mut rng = Rng64::seed_from_u64(0xDE6E);
    let cases: &[(usize, usize, usize)] = &[
        (0, 5, 3),
        (5, 0, 3),
        (5, 3, 0),
        (0, 0, 0),
        (1, 1, 1),
        (1, 7, 1),
        (7, 1, 5),
        (1, 1, 64),
        (128, 130, 9), // crosses MC and NBAND: exercises the panel grid
    ];
    for &(m, n, k) in cases {
        let a = rand_vec(&mut rng, m * k, 0.2);
        let b = rand_vec(&mut rng, k * n, 0.2);
        let c0 = rand_vec(&mut rng, m * n, 0.0); // both sides accumulate
        let mut c_naive = c0.clone();
        gemm_naive_into(m, n, k, &a, k, 1, &b, n, 1, &mut c_naive);
        for threads in [1, 2, 4, 8] {
            par::with_threads(threads, || {
                let mut scratch = Scratch::new();
                let mut c = c0.clone();
                gemm_into(m, n, k, &a, &b, &mut c, &mut scratch);
                assert_bits_eq(&c, &c_naive, &format!("gemm {m}x{n}x{k} @{threads}t"));
            });
        }
    }
}

/// Single-pixel conv geometry (1×1 input and/or 1×1 output) round-trips
/// through im2col without touching any padding branch incorrectly, at
/// every thread count.
#[test]
fn conv2d_single_pixel_shapes_match_naive_at_every_thread_count() {
    let s = |ic, oc, k, st, p, h, w| ConvShape {
        in_channels: ic,
        out_channels: oc,
        kernel: k,
        stride: st,
        padding: p,
        in_h: h,
        in_w: w,
    };
    let cases = [
        s(3, 4, 1, 1, 0, 1, 1), // 1×1 input, 1×1 kernel
        s(2, 3, 3, 1, 0, 3, 3), // kernel covers the whole input: 1×1 output
        s(1, 1, 1, 1, 0, 1, 1), // every dimension 1
        s(1, 2, 3, 1, 1, 1, 1), // 1×1 input with padding
    ];
    let mut rng = Rng64::seed_from_u64(0x1A1);
    for shape in cases {
        let (oh, ow) = shape.out_hw();
        let x = rand_vec(&mut rng, shape.in_channels * shape.in_h * shape.in_w, 0.3);
        let w = rand_vec(&mut rng, shape.out_channels * shape.col_rows(), 0.0);
        let bias = rand_vec(&mut rng, shape.out_channels, 0.0);
        let g = rand_vec(&mut rng, shape.out_channels * oh * ow, 0.0);
        let mut out_naive = vec![0.0f32; shape.out_channels * oh * ow];
        let eff_n = conv2d_forward_naive(&shape, &x, &w, &bias, &mut out_naive);
        let zeros_i = vec![0.0f32; shape.in_channels * shape.in_h * shape.in_w];
        let zeros_w = vec![0.0f32; shape.out_channels * shape.col_rows()];
        let zeros_b = vec![0.0f32; shape.out_channels];
        let (mut gi_n, mut gw_n, mut gb_n) = (zeros_i.clone(), zeros_w.clone(), zeros_b.clone());
        conv2d_backward_naive(&shape, &x, &w, &g, &mut gi_n, &mut gw_n, &mut gb_n);
        for threads in [1, 2, 4, 8] {
            par::with_threads(threads, || {
                let mut scratch = Scratch::new();
                let mut out = vec![0.0f32; shape.out_channels * oh * ow];
                let eff = conv2d_forward(&shape, &x, &w, &bias, &mut out, &mut scratch);
                assert_bits_eq(&out, &out_naive, &format!("1px conv fwd @{threads}t"));
                assert_eq!(eff, eff_n, "effective MACs @{threads} threads");
                let (mut gi, mut gw, mut gb) =
                    (zeros_i.clone(), zeros_w.clone(), zeros_b.clone());
                conv2d_backward(&shape, &x, &w, &g, &mut gi, &mut gw, &mut gb, &mut scratch);
                assert_bits_eq(&gi, &gi_n, &format!("1px conv gi @{threads}t"));
                assert_bits_eq(&gw, &gw_n, &format!("1px conv gw @{threads}t"));
                assert_bits_eq(&gb, &gb_n, &format!("1px conv gb @{threads}t"));
            });
        }
    }
}

/// The full geometry sweep again, but with kernels fanned out across the
/// pool: results must equal the serial naive oracle bit-for-bit at every
/// thread count (large shapes cross the PAR_MIN_MACS / IM2COL_PAR_MIN
/// thresholds and actually run threaded).
#[test]
fn threaded_kernels_match_naive_bits_across_thread_counts() {
    let mut rng = Rng64::seed_from_u64(0x7EAD);
    let big = ConvShape {
        in_channels: 8,
        out_channels: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
        in_h: 32,
        in_w: 32,
    };
    let (oh, ow) = big.out_hw();
    let x = rand_vec(&mut rng, big.in_channels * big.in_h * big.in_w, 0.6);
    let w = rand_vec(&mut rng, big.out_channels * big.col_rows(), 0.0);
    let bias = rand_vec(&mut rng, big.out_channels, 0.0);
    let mut out_naive = vec![0.0f32; big.out_channels * oh * ow];
    conv2d_forward_naive(&big, &x, &w, &bias, &mut out_naive);
    let (m, n, k) = (128, 96, 64);
    let ga = rand_vec(&mut rng, m * k, 0.2);
    let gb = rand_vec(&mut rng, k * n, 0.2);
    let mut c_naive = vec![0.0f32; m * n];
    gemm_naive_into(m, n, k, &ga, k, 1, &gb, n, 1, &mut c_naive);
    for threads in [1, 2, 4, 8] {
        par::with_threads(threads, || {
            let mut scratch = Scratch::new();
            let mut out = vec![0.0f32; big.out_channels * oh * ow];
            conv2d_forward(&big, &x, &w, &bias, &mut out, &mut scratch);
            assert_bits_eq(&out, &out_naive, &format!("threaded conv @{threads}t"));
            let mut c = vec![0.0f32; m * n];
            gemm_into(m, n, k, &ga, &gb, &mut c, &mut scratch);
            assert_bits_eq(&c, &c_naive, &format!("threaded gemm @{threads}t"));
        });
    }
}

/// Arena reuse must be invisible: repeated `forward_arena` calls through
/// a recycled [`Scratch`] give bit-identical outputs, and those outputs
/// equal the allocating `forward` path.
#[test]
fn scratch_arena_reuse_is_deterministic() {
    let mut rng = Rng64::seed_from_u64(0xA4E);
    let mut net = build_cnn(&CnnConfig::small(2, 32, 10), &mut rng);
    let x = Tensor::from_vec(&[2, 32, 32], rand_vec(&mut rng, 2 * 32 * 32, 0.8)).expect("shape");
    let mut ops = OpCount::new();
    let plain = net.forward(&x, &mut ops);
    let mut arena = Scratch::new();
    let first = net.forward_arena(&x, &mut arena, &mut ops);
    let second = net.forward_arena(&x, &mut arena, &mut ops);
    assert_bits_eq(plain.as_slice(), first.as_slice(), "arena vs plain forward");
    assert_bits_eq(first.as_slice(), second.as_slice(), "arena reuse");
    assert_eq!(first.shape(), plain.shape());
}
