//! Property-based tests over the core data structures and invariants.

use evlab::events::aer::AerCodec;
use evlab::events::filters::{BackgroundActivityFilter, RefractoryFilter};
use evlab::events::{Event, EventStream, Polarity};
use evlab::gnn::build::{incremental_build, naive_build, GraphConfig};
use evlab::tensor::sparse::{CsrMatrix, SparsityMapEncoding, ZeroRunLength};
use evlab::tensor::{OpCount, Tensor};
use evlab::util::Q16;
use proptest::prelude::*;

fn arb_event(res: u16) -> impl Strategy<Value = (u64, u16, u16, bool)> {
    (0u64..1_000_000, 0..res, 0..res, any::<bool>())
}

fn arb_stream(res: u16, max_events: usize) -> impl Strategy<Value = EventStream> {
    proptest::collection::vec(arb_event(res), 0..max_events).prop_map(move |raw| {
        let events: Vec<Event> = raw
            .into_iter()
            .map(|(t, x, y, p)| {
                Event::new(t, x, y, if p { Polarity::On } else { Polarity::Off })
            })
            .collect();
        EventStream::from_unsorted((res, res), events).expect("in bounds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aer_codec_round_trips_any_event((t, x, y, p) in arb_event(720)) {
        let codec = AerCodec::new((720, 720));
        let e = Event::new(t, x, y, if p { Polarity::On } else { Polarity::Off });
        let decoded = codec.decode(codec.encode(&e)).expect("round trip");
        prop_assert_eq!(decoded, e);
    }

    #[test]
    fn filters_return_sorted_subsets(stream in arb_stream(16, 200)) {
        for filtered in [
            RefractoryFilter::new(100).apply(&stream),
            BackgroundActivityFilter::new(1_000).apply(&stream),
        ] {
            prop_assert!(filtered.len() <= stream.len());
            for pair in filtered.as_slice().windows(2) {
                prop_assert!(pair[0].t <= pair[1].t);
            }
            // Every surviving event exists in the original.
            for e in filtered.iter() {
                prop_assert!(stream.as_slice().contains(e));
            }
        }
    }

    #[test]
    fn windows_partition_the_stream(stream in arb_stream(16, 200), w in 1u64..100_000) {
        let total: usize = stream.windows(w).iter().map(|win| win.len()).sum();
        prop_assert_eq!(total, stream.len());
    }

    #[test]
    fn graph_builders_agree_on_random_streams(stream in arb_stream(32, 120)) {
        let config = GraphConfig::new();
        let mut ops = OpCount::new();
        let a = naive_build(stream.as_slice(), &config, &mut ops);
        let b = incremental_build(stream.as_slice(), &config, &mut ops);
        for i in 0..stream.len() {
            prop_assert_eq!(a.in_neighbors(i), b.in_neighbors(i));
        }
        a.assert_causal();
        // Degree bound.
        for i in 0..stream.len() {
            prop_assert!(a.in_neighbors(i).len() <= config.max_degree);
        }
    }

    #[test]
    fn sparse_encodings_round_trip(values in proptest::collection::vec(
        prop_oneof![3 => Just(0.0f32), 1 => -100.0f32..100.0], 0..500)) {
        let zrle = ZeroRunLength::encode(&values);
        prop_assert_eq!(zrle.decode(), values.clone());
        let map = SparsityMapEncoding::encode(&values);
        prop_assert_eq!(map.decode(), values);
    }

    #[test]
    fn csr_spmv_matches_dense(rows in 1usize..8, cols in 1usize..8,
                              seed in any::<u64>()) {
        let mut rng = evlab::util::Rng64::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| if rng.bernoulli(0.6) { 0.0 } else { rng.next_f32() - 0.5 })
            .collect();
        let dense = Tensor::from_vec(&[rows, cols], data).expect("shape");
        let csr = CsrMatrix::from_dense(&dense);
        prop_assert_eq!(csr.to_dense(), dense.clone());
        let x: Vec<f32> = (0..cols).map(|_| rng.next_f32()).collect();
        let y = csr.spmv(&x);
        for r in 0..rows {
            let expected: f32 = (0..cols)
                .map(|c| dense.at(&[r, c]) * x[c])
                .sum();
            prop_assert!((y[r] - expected).abs() < 1e-4);
        }
    }

    #[test]
    fn q16_addition_is_commutative_and_bounded(a in -30000.0f64..30000.0,
                                               b in -30000.0f64..30000.0) {
        let qa = Q16::from_f64(a);
        let qb = Q16::from_f64(b);
        prop_assert_eq!(qa + qb, qb + qa);
        let sum = (qa + qb).to_f64();
        // Saturating arithmetic never exceeds the format range.
        prop_assert!(sum.abs() <= 32768.0);
        // When no saturation occurs the result is accurate.
        if (a + b).abs() < 32000.0 {
            prop_assert!((sum - (a + b)).abs() < 2.0 * Q16::epsilon() + 1e-9);
        }
    }

    #[test]
    fn tensor_matmul_is_distributive(seed in any::<u64>()) {
        let mut rng = evlab::util::Rng64::seed_from_u64(seed);
        let rand_t = |rng: &mut evlab::util::Rng64, shape: &[usize]| {
            let mut t = Tensor::zeros(shape);
            for v in t.as_mut_slice() {
                *v = (rng.next_f32() - 0.5) * 2.0;
            }
            t
        };
        let a = rand_t(&mut rng, &[3, 4]);
        let b = rand_t(&mut rng, &[4, 2]);
        let c = rand_t(&mut rng, &[4, 2]);
        // a (b + c) == a b + a c
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-4);
        }
    }

    #[test]
    fn spike_encoding_conserves_events_within_horizon(stream in arb_stream(8, 100)) {
        use evlab::snn::encode::events_to_spikes;
        let steps = 50usize;
        let dt = 20_000u64;
        let train = events_to_spikes(&stream, dt, steps);
        let t0 = stream.start().map(|t| t.as_micros()).unwrap_or(0);
        let within: usize = stream
            .iter()
            .filter(|e| (e.t.as_micros() - t0) / dt < steps as u64)
            .count();
        prop_assert_eq!(train.total_spikes(), within);
    }
}
