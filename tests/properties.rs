//! Property-based tests over the core data structures and invariants.
//!
//! These are hand-rolled randomized property checks driven by the
//! workspace's own [`Rng64`] generator (64 seeded cases per property), so
//! the suite needs no external property-testing crates and stays
//! bit-reproducible across runs.

use evlab::events::aer::AerCodec;
use evlab::events::filters::{BackgroundActivityFilter, RefractoryFilter};
use evlab::events::{Event, EventStream, Polarity};
use evlab::gnn::build::{incremental_build, naive_build, GraphConfig};
use evlab::tensor::sparse::{CsrMatrix, SparsityMapEncoding, ZeroRunLength};
use evlab::tensor::{OpCount, Tensor};
use evlab::util::{Q16, Rng64};

const CASES: u64 = 64;

fn rand_event(rng: &mut Rng64, res: u16) -> Event {
    let t = rng.next_u64() % 1_000_000;
    let x = (rng.next_u64() % res as u64) as u16;
    let y = (rng.next_u64() % res as u64) as u16;
    let p = if rng.bernoulli(0.5) {
        Polarity::On
    } else {
        Polarity::Off
    };
    Event::new(t, x, y, p)
}

fn rand_stream(rng: &mut Rng64, res: u16, max_events: usize) -> EventStream {
    let n = (rng.next_u64() % (max_events as u64 + 1)) as usize;
    let events: Vec<Event> = (0..n).map(|_| rand_event(rng, res)).collect();
    EventStream::from_unsorted((res, res), events).expect("in bounds")
}

#[test]
fn aer_codec_round_trips_any_event() {
    let codec = AerCodec::new((720, 720));
    let mut rng = Rng64::seed_from_u64(0xAE2);
    for _ in 0..CASES {
        let e = rand_event(&mut rng, 720);
        let decoded = codec.decode(codec.encode(&e)).expect("round trip");
        assert_eq!(decoded, e);
    }
}

#[test]
fn filters_return_sorted_subsets() {
    let mut rng = Rng64::seed_from_u64(0xF117);
    for _ in 0..CASES {
        let stream = rand_stream(&mut rng, 16, 200);
        for filtered in [
            RefractoryFilter::new(100).apply(&stream),
            BackgroundActivityFilter::new(1_000).apply(&stream),
        ] {
            assert!(filtered.len() <= stream.len());
            for pair in filtered.as_slice().windows(2) {
                assert!(pair[0].t <= pair[1].t);
            }
            // Every surviving event exists in the original.
            for e in filtered.iter() {
                assert!(stream.as_slice().contains(e));
            }
        }
    }
}

#[test]
fn windows_partition_the_stream() {
    let mut rng = Rng64::seed_from_u64(0x317D0);
    for _ in 0..CASES {
        let stream = rand_stream(&mut rng, 16, 200);
        let w = 1 + rng.next_u64() % 99_999;
        let total: usize = stream.windows(w).iter().map(|win| win.len()).sum();
        assert_eq!(total, stream.len());
    }
}

#[test]
fn graph_builders_agree_on_random_streams() {
    let mut rng = Rng64::seed_from_u64(0x62A9);
    for _ in 0..CASES {
        let stream = rand_stream(&mut rng, 32, 120);
        let config = GraphConfig::new();
        let mut ops = OpCount::new();
        let a = naive_build(stream.as_slice(), &config, &mut ops);
        let b = incremental_build(stream.as_slice(), &config, &mut ops);
        for i in 0..stream.len() {
            assert_eq!(a.in_neighbors(i), b.in_neighbors(i));
        }
        a.assert_causal();
        // Degree bound.
        for i in 0..stream.len() {
            assert!(a.in_neighbors(i).len() <= config.max_degree);
        }
    }
}

#[test]
fn sparse_encodings_round_trip() {
    let mut rng = Rng64::seed_from_u64(0x59A25E);
    for _ in 0..CASES {
        let n = (rng.next_u64() % 500) as usize;
        // ~3:1 zeros to random values, matching real activation sparsity.
        let values: Vec<f32> = (0..n)
            .map(|_| {
                if rng.bernoulli(0.75) {
                    0.0
                } else {
                    (rng.next_f32() - 0.5) * 200.0
                }
            })
            .collect();
        let zrle = ZeroRunLength::encode(&values);
        assert_eq!(zrle.decode(), values.clone());
        let map = SparsityMapEncoding::encode(&values);
        assert_eq!(map.decode(), values);
    }
}

#[test]
fn csr_spmv_matches_dense() {
    let mut rng = Rng64::seed_from_u64(0xC52);
    for _ in 0..CASES {
        let rows = 1 + (rng.next_u64() % 7) as usize;
        let cols = 1 + (rng.next_u64() % 7) as usize;
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                if rng.bernoulli(0.6) {
                    0.0
                } else {
                    rng.next_f32() - 0.5
                }
            })
            .collect();
        let dense = Tensor::from_vec(&[rows, cols], data).expect("shape");
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.to_dense(), dense.clone());
        let x: Vec<f32> = (0..cols).map(|_| rng.next_f32()).collect();
        let y = csr.spmv(&x);
        for (r, &yr) in y.iter().enumerate() {
            let expected: f32 = (0..cols).map(|c| dense.at(&[r, c]) * x[c]).sum();
            assert!((yr - expected).abs() < 1e-4);
        }
        // The buffer-reusing variant must overwrite stale contents and
        // produce the exact same bits as the allocating wrapper.
        let mut y_into = vec![f32::NAN; rows];
        csr.spmv_into(&x, &mut y_into);
        for (a, b) in y.iter().zip(&y_into) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn q16_addition_is_commutative_and_bounded() {
    let mut rng = Rng64::seed_from_u64(0x916);
    for _ in 0..CASES {
        let a = (rng.next_f64() - 0.5) * 60_000.0;
        let b = (rng.next_f64() - 0.5) * 60_000.0;
        let qa = Q16::from_f64(a);
        let qb = Q16::from_f64(b);
        assert_eq!(qa + qb, qb + qa);
        let sum = (qa + qb).to_f64();
        // Saturating arithmetic never exceeds the format range.
        assert!(sum.abs() <= 32768.0);
        // When no saturation occurs the result is accurate.
        if (a + b).abs() < 32000.0 {
            assert!((sum - (a + b)).abs() < 2.0 * Q16::epsilon() + 1e-9);
        }
    }
}

#[test]
fn tensor_matmul_is_distributive() {
    let mut rng = Rng64::seed_from_u64(0x7E9502);
    let rand_t = |rng: &mut Rng64, shape: &[usize]| {
        let mut t = Tensor::zeros(shape);
        for v in t.as_mut_slice() {
            *v = (rng.next_f32() - 0.5) * 2.0;
        }
        t
    };
    for _ in 0..CASES {
        let a = rand_t(&mut rng, &[3, 4]);
        let b = rand_t(&mut rng, &[4, 2]);
        let c = rand_t(&mut rng, &[4, 2]);
        // a (b + c) == a b + a c
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((l - r).abs() < 1e-4);
        }
    }
}

#[test]
fn spike_encoding_conserves_events_within_horizon() {
    use evlab::snn::encode::events_to_spikes;
    let mut rng = Rng64::seed_from_u64(0x59135);
    for _ in 0..CASES {
        let stream = rand_stream(&mut rng, 8, 100);
        let steps = 50usize;
        let dt = 20_000u64;
        let train = events_to_spikes(&stream, dt, steps);
        let t0 = stream.start().map(|t| t.as_micros()).unwrap_or(0);
        let within: usize = stream
            .iter()
            .filter(|e| (e.t.as_micros() - t0) / dt < steps as u64)
            .count();
        assert_eq!(train.total_spikes(), within);
    }
}

#[test]
fn rollover_wrap_then_unwrap_round_trips() {
    use evlab::events::reorder::TimeUnwrapper;
    use evlab::util::fault::{FaultInjector, FaultSpec, RawEvent, ROLLOVER_PERIOD_US};
    let mut rng = Rng64::seed_from_u64(0xF0_110);
    for case in 0..CASES {
        // A sorted stream whose timestamps straddle the 32-bit boundary
        // once the offset is added; gaps stay far below half a period, so
        // the unwrapper's epoch heuristic must recover the exact times.
        let offset = ROLLOVER_PERIOD_US - 1 - rng.next_below(500_000);
        let n = 50 + rng.next_below(200);
        let mut t = 0u64;
        let raw: Vec<RawEvent> = (0..n)
            .map(|i| {
                t += rng.next_below(10_000);
                RawEvent {
                    t_us: t,
                    x: (i % 16) as u16,
                    y: (i % 16) as u16,
                    on: rng.bernoulli(0.5),
                }
            })
            .collect();
        let spec = FaultSpec {
            rollover_offset_us: Some(offset),
            seed: case,
            ..FaultSpec::default()
        };
        let mut inj = FaultInjector::new(&spec);
        let wrapped = inj.apply_events(&raw, (16, 16));
        assert_eq!(wrapped.len(), raw.len());
        let mut unwrapper = TimeUnwrapper::new();
        for (orig, w) in raw.iter().zip(&wrapped) {
            assert_eq!(
                unwrapper.unwrap_us(w.t_us),
                orig.t_us + offset,
                "case {case}: unwrap lost the original timeline"
            );
        }
        if wrapped.iter().any(|e| e.t_us < offset) {
            assert!(unwrapper.rollovers() > 0, "case {case}: wrap went unnoticed");
        }
    }
}

/// Watermark boundary property (inclusive release): a monotone stream
/// whose inter-event gap equals the skew tolerance *exactly* places every
/// prior event exactly on the watermark — each push must release its
/// predecessor immediately (never hold it), nothing is late-dropped, and
/// a full round trip preserves the stream.
#[test]
fn reorder_buffer_releases_exactly_at_the_watermark() {
    use evlab::events::reorder::ReorderBuffer;
    let mut rng = Rng64::seed_from_u64(0xB0DA);
    for case in 0..CASES {
        let skew = 1 + rng.next_below(1_000);
        let n = 3 + rng.next_below(60) as usize;
        let t0 = rng.next_below(10_000);
        let events: Vec<Event> = (0..n as u64).map(|i| {
            Event::new(
                t0 + i * skew,
                (i % 9) as u16,
                (i % 11) as u16,
                if i % 2 == 0 { Polarity::On } else { Polarity::Off },
            )
        }).collect();
        let mut buf = ReorderBuffer::new(skew);
        let mut out = Vec::new();
        for (i, e) in events.iter().enumerate() {
            let released = buf.push(*e, &mut out);
            if i == 0 {
                assert_eq!(released, 0, "case {case}: first event has no watermark yet");
            } else {
                assert_eq!(
                    released, 1,
                    "case {case}: predecessor sits exactly on the watermark and must release"
                );
            }
        }
        buf.flush(&mut out);
        assert_eq!(buf.late_dropped(), 0, "case {case}");
        assert_eq!(out, events, "case {case}: boundary round trip must be lossless");
    }
}

#[test]
fn reorder_buffer_round_trips_bounded_jitter() {
    use evlab::events::reorder::ReorderBuffer;
    use evlab::util::fault::{FaultInjector, FaultSpec, RawEvent};
    let mut rng = Rng64::seed_from_u64(0x2E02DE2);
    for case in 0..CASES {
        let skew = 50 + rng.next_below(400);
        let stream = rand_stream(&mut rng, 16, 300);
        let raw: Vec<RawEvent> = stream
            .as_slice()
            .iter()
            .map(|e| RawEvent {
                t_us: e.t.as_micros(),
                x: e.x,
                y: e.y,
                on: e.polarity == Polarity::On,
            })
            .collect();
        let spec = FaultSpec::parse(&format!("seed={case},reorder=1.0:{skew}"))
            .expect("valid spec");
        let jittered = FaultInjector::new(&spec).apply_events(&raw, (16, 16));
        assert_eq!(jittered.len(), raw.len());
        // Jitter displaces each event by at most `skew`, so a buffer
        // tolerating twice that must salvage every event: the released
        // output is the jittered multiset, restored to sorted order.
        let mut buf = ReorderBuffer::new(2 * skew);
        let mut released: Vec<Event> = Vec::new();
        for r in &jittered {
            let p = if r.on { Polarity::On } else { Polarity::Off };
            buf.push(Event::new(r.t_us, r.x, r.y, p), &mut released);
        }
        buf.flush(&mut released);
        assert_eq!(buf.late_dropped(), 0, "case {case}: salvageable event lost");
        assert_eq!(released.len(), jittered.len());
        for pair in released.windows(2) {
            assert!(pair[0].t <= pair[1].t, "case {case}: output not sorted");
        }
        let mut want: Vec<(u64, u16, u16, bool)> = jittered
            .iter()
            .map(|r| (r.t_us, r.x, r.y, r.on))
            .collect();
        want.sort_unstable();
        let mut got: Vec<(u64, u16, u16, bool)> = released
            .iter()
            .map(|e| (e.t.as_micros(), e.x, e.y, e.polarity == Polarity::On))
            .collect();
        got.sort_unstable();
        assert_eq!(got, want, "case {case}: multiset changed in transit");
    }
}

#[test]
fn truncated_aer_files_salvage_the_exact_prefix_and_never_panic() {
    use evlab::events::io::{read_stream, read_stream_prefix, ReadStreamError};

    // The on-disk format: 18-byte header (magic, version, resolution,
    // count) followed by 8-byte AER words.
    const HEADER: usize = 18;
    let mut rng = Rng64::seed_from_u64(0x7AE5);
    for case in 0..CASES {
        let stream = rand_stream(&mut rng, 32, 48);
        let mut bytes = Vec::new();
        evlab::events::io::write_stream(&stream, &mut bytes).expect("write");
        assert_eq!(bytes.len(), HEADER + 8 * stream.len());

        // Cut the file at EVERY byte offset: the strict reader must fail
        // with the typed `Truncated` error (never a panic, never a bare
        // EOF), and the salvage reader must return exactly the events
        // whose records survived intact — no phantom tail event.
        for off in 0..bytes.len() {
            let cut = &bytes[..off];
            match read_stream(cut) {
                Err(ReadStreamError::Truncated { expected, got }) => {
                    if off >= HEADER {
                        assert_eq!(expected, stream.len() as u64, "case {case} offset {off}");
                        assert_eq!(got as usize, (off - HEADER) / 8, "case {case} offset {off}");
                    } else {
                        assert_eq!((expected, got), (0, 0), "case {case} offset {off}");
                    }
                }
                Ok(_) => panic!("case {case} offset {off}: truncated file read as complete"),
                Err(e) => panic!("case {case} offset {off}: wrong error kind {e:?}"),
            }
            match read_stream_prefix(cut) {
                Ok((prefix, Some(ReadStreamError::Truncated { .. }))) => {
                    assert!(off >= HEADER, "case {case} offset {off}: salvaged a cut header");
                    let intact = (off - HEADER) / 8;
                    assert_eq!(
                        prefix.as_slice(),
                        &stream.as_slice()[..intact],
                        "case {case} offset {off}: salvage prefix mismatch"
                    );
                }
                Err(ReadStreamError::Truncated { .. }) => {
                    assert!(off < HEADER, "case {case} offset {off}: lost a salvageable prefix")
                }
                Ok((_, tail)) => {
                    panic!("case {case} offset {off}: unexpected salvage tail {tail:?}")
                }
                Err(e) => panic!("case {case} offset {off}: wrong salvage error {e:?}"),
            }
        }

        // The untruncated file still round-trips through both readers.
        let full = read_stream(&bytes[..]).expect("full read");
        assert_eq!(full.as_slice(), stream.as_slice());
        let (salvaged, tail) = read_stream_prefix(&bytes[..]).expect("full salvage");
        assert!(tail.is_none(), "clean file reported a tail error");
        assert_eq!(salvaged.as_slice(), stream.as_slice());
    }
}
