//! End-to-end integration: sensor simulation → dataset generation → each
//! paradigm trained and evaluated through the unified API.

use evlab::core::cnn_pipeline::{CnnPipeline, CnnPipelineConfig};
use evlab::core::gnn_pipeline::{GnnPipeline, GnnPipelineConfig};
use evlab::core::pipeline::{test_accuracy, EventClassifier};
use evlab::core::snn_pipeline::{SnnPipeline, SnnPipelineConfig};
use evlab::datasets::shapes::shape_silhouettes;
use evlab::datasets::DatasetConfig;
use evlab::tensor::OpCount;

fn data() -> evlab::datasets::Dataset {
    shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(5, 2))
}

#[test]
fn all_three_paradigms_beat_chance_through_the_unified_api() {
    let data = data();
    let chance = 1.0 / data.num_classes as f32;
    let mut classifiers: Vec<Box<dyn EventClassifier>> = vec![
        Box::new(CnnPipeline::new(
            CnnPipelineConfig::new().with_epochs(15).with_seed(5),
        )),
        Box::new(SnnPipeline::new(
            SnnPipelineConfig::new()
                .with_hidden(vec![48])
                .with_epochs(30)
                .with_seed(5),
        )),
        Box::new(GnnPipeline::new(
            GnnPipelineConfig::new().with_epochs(20).with_seed(5),
        )),
    ];
    for clf in classifiers.iter_mut() {
        let report = clf.fit(&data);
        assert!(
            report.train_accuracy > chance,
            "{} failed to learn: {}",
            clf.name(),
            report.train_accuracy
        );
        let mut ops = OpCount::new();
        let acc = test_accuracy(clf.as_mut(), &data, &mut ops);
        assert!(
            acc > chance,
            "{} test accuracy {acc} at or below chance",
            clf.name()
        );
        assert!(ops.mem_accesses() > 0, "{} reported no memory traffic", clf.name());
        assert!(clf.param_count() > 0);
    }
}

#[test]
fn paradigms_disagree_on_cost_not_on_interface() {
    // The three paradigms expose identical interfaces but radically
    // different cost profiles — the dichotomy in one assertion set.
    let data = data();
    let mut cnn = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(3).with_seed(1));
    let mut snn = SnnPipeline::new(SnnPipelineConfig::new().with_epochs(3).with_seed(1));
    cnn.fit(&data);
    snn.fit(&data);
    let stream = &data.test[0].stream;
    let mut cnn_ops = OpCount::new();
    cnn.predict(stream, &mut cnn_ops);
    let mut snn_ops = OpCount::new();
    snn.predict(stream, &mut snn_ops);
    assert!(cnn_ops.macs > 0, "CNN inference is MAC-based");
    assert_eq!(snn_ops.macs, 0, "SNN inference has no MACs at all");
    assert!(snn_ops.adds > 0, "SNN inference is addition-based");
}

#[test]
fn camera_to_prediction_roundtrip() {
    // Fresh events straight from the simulator (not from the dataset
    // generator) must flow through a trained classifier.
    use evlab::sensor::scene::MovingGlyph;
    use evlab::sensor::{CameraConfig, EventCamera, PixelConfig};
    let data = data();
    let mut clf = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(10).with_seed(3));
    clf.fit(&data);
    let camera = EventCamera::new(
        CameraConfig::new((16, 16)).with_pixel(PixelConfig::ideal()),
    );
    let glyph = MovingGlyph::from_pattern(
        &["#######", "#.....#", "#.....#", "#.....#", "#.....#", "#.....#", "#######"],
        (2.0, 2.0),
        (0.0002, 0.0),
        1.5,
    );
    let stream = camera.record(&glyph, 0, 20_000, 8).rebased();
    assert!(!stream.is_empty());
    let mut ops = OpCount::new();
    let prediction = clf.predict(&stream, &mut ops);
    assert!(prediction < data.num_classes);
}
