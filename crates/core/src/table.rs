//! Rendering the measured Table I.


/// The paper's published qualitative grades, `[SNN, CNN, GNN]` per row, in
/// the row order of Table I.
pub const PAPER_GRADES: [[&str; 3]; 12] = [
    ["++", "-", "++"],     // Exploit temporal information
    ["++", "-", "++"],     // Data sparsity
    ["++", "+", "-"],      // Data preparation (lower better)
    ["++", "+", "++"],     // Computation sparsity
    ["+", "-", "++"],      // # Operations (lower better)
    ["-", "+", "++"],      // Accuracy
    ["+", "++", "-"],      // Hardware maturity
    ["+", "++", "?"],      // Memory footprint
    ["+", "-", "?"],       // Memory bandwidth
    ["++", "+", "?"],      // Energy efficiency
    ["-", "++", "++ (?)"], // Configurability / scalability
    ["++", "-", "++ (?)"], // Latency
];

/// One measured row of the comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (matching the paper's).
    pub label: String,
    /// Measured values in `[snn, cnn, gnn]` order.
    pub values: [f64; 3],
    /// Whether lower values are better for this axis.
    pub lower_is_better: bool,
    /// What the values mean.
    pub unit: String,
    /// Derived grades in `[snn, cnn, gnn]` order.
    pub grades: [String; 3],
    /// The paper's published grades.
    pub paper: [String; 3],
}

impl Row {
    /// Creates an ungraded row.
    pub fn new(label: &str, values: [f64; 3], lower_is_better: bool, unit: &str) -> Self {
        Row {
            label: label.to_string(),
            values,
            lower_is_better,
            unit: unit.to_string(),
            grades: Default::default(),
            paper: Default::default(),
        }
    }
}

/// Derives `++`/`+`/`-` grades from the measured values: the best value
/// gets `++`, anything within 3× (or 75 % for higher-is-better fractions)
/// of the best gets `+`, the rest `-`. Ties share grades.
pub fn grade_row(mut row: Row, paper: [&str; 3]) -> Row {
    let best = if row.lower_is_better {
        row.values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(1e-12)
    } else {
        row.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    };
    for (i, &v) in row.values.iter().enumerate() {
        let ratio = if row.lower_is_better {
            v / best
        } else if v <= 0.0 {
            f64::INFINITY
        } else {
            best / v
        };
        row.grades[i] = if ratio <= 1.25 {
            "++".to_string()
        } else if ratio <= 4.0 {
            "+".to_string()
        } else {
            "-".to_string()
        };
    }
    row.paper = [
        paper[0].to_string(),
        paper[1].to_string(),
        paper[2].to_string(),
    ];
    row
}

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-2 {
        format!("{v:.2e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders the full report as an aligned text table.
pub fn render(report: &crate::dichotomy::DichotomyReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table I (measured) — dataset: {}\n\n",
        report.dataset
    ));
    out.push_str(&format!(
        "{:<42} {:>12} {:>12} {:>12}   {:<17} {:<17}\n",
        "Axis", "SNN", "CNN", "GNN", "measured grades", "paper grades"
    ));
    out.push_str(&"-".repeat(120));
    out.push('\n');
    for row in &report.rows {
        out.push_str(&format!(
            "{:<42} {:>12} {:>12} {:>12}   {:<17} {:<17}\n",
            row.label,
            fmt_value(row.values[0]),
            fmt_value(row.values[1]),
            fmt_value(row.values[2]),
            format!("{}/{}/{}", row.grades[0], row.grades[1], row.grades[2]),
            format!("{}/{}/{}", row.paper[0], row.paper[1], row.paper[2]),
        ));
        out.push_str(&format!("{:<42} ({})\n", "", row.unit));
    }
    out.push('\n');
    out.push_str("Paradigm summaries:\n");
    for m in &report.paradigms {
        out.push_str(&format!(
            "  {:<4} acc {:.2} (scrambled {:.2}), params {}, state {} words, {:.1} ops/inf, {:.3} uJ, {:.1} us latency\n",
            m.name,
            m.test_accuracy,
            m.scrambled_accuracy,
            m.params,
            m.state_words,
            m.effective_ops,
            m.energy_uj,
            m.latency_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grading_orders_correctly_lower_better() {
        let row = grade_row(
            Row::new("ops", [100.0, 1000.0, 110.0], true, "ops"),
            ["+", "-", "++"],
        );
        assert_eq!(row.grades[0], "++");
        assert_eq!(row.grades[1], "-");
        assert_eq!(row.grades[2], "++");
        assert_eq!(row.paper[2], "++");
    }

    #[test]
    fn grading_orders_correctly_higher_better() {
        let row = grade_row(
            Row::new("acc", [0.5, 0.9, 0.3], false, "accuracy"),
            ["-", "+", "++"],
        );
        assert_eq!(row.grades[1], "++");
        assert_eq!(row.grades[0], "+");
        assert_eq!(row.grades[2], "+");
    }

    #[test]
    fn zero_values_grade_worst_when_higher_better() {
        let row = grade_row(
            Row::new("x", [0.0, 1.0, 0.5], false, "u"),
            ["-", "-", "-"],
        );
        assert_eq!(row.grades[0], "-");
        assert_eq!(row.grades[1], "++");
    }

    #[test]
    fn formatting_covers_ranges() {
        assert_eq!(fmt_value(0.0), "0");
        assert!(fmt_value(1.5e9).contains('e'));
        assert_eq!(fmt_value(123.0), "123");
        assert_eq!(fmt_value(0.5), "0.500");
    }

    #[test]
    fn paper_grades_cover_all_rows() {
        assert_eq!(PAPER_GRADES.len(), 12);
    }
}
