//! The comparison runner: trains all three paradigms on one dataset and
//! measures every Table I axis.

use crate::cnn_pipeline::{CnnPipeline, CnnPipelineConfig};
use crate::gnn_pipeline::{GnnPipeline, GnnPipelineConfig};
use crate::metrics::{price_cnn, price_gnn, price_snn, time_to_decision_us, DeploymentStyle};
use crate::pipeline::EventClassifier;
use crate::snn_pipeline::{SnnPipeline, SnnPipelineConfig};
use crate::table::{grade_row, Row, PAPER_GRADES};
use evlab_datasets::Dataset;
use evlab_events::{Event, EventStream};
use evlab_tensor::OpCount;
use evlab_util::json::Json;
use evlab_util::Rng64;

/// Everything measured about one paradigm on one dataset.
#[derive(Debug, Clone)]
pub struct ParadigmMeasurement {
    /// Paradigm name.
    pub name: String,
    /// Accuracy on the test split.
    pub test_accuracy: f64,
    /// Accuracy on the test split with per-sample timestamp scrambling —
    /// the temporal-information probe.
    pub scrambled_accuracy: f64,
    /// Trainable parameters.
    pub params: usize,
    /// Deployed state words.
    pub state_words: usize,
    /// Data-preparation arithmetic per test sample.
    pub prep_ops: f64,
    /// Effective (executed) arithmetic per inference.
    pub effective_ops: f64,
    /// Nominal (dense-equivalent) arithmetic per inference.
    pub nominal_ops: f64,
    /// Fraction of nominal work skipped.
    pub computation_sparsity: f64,
    /// Cost ratio quiet/busy input: how much of the per-inference cost is
    /// *fixed* rather than activity-proportional (1.0 = fully fixed, the
    /// dense-frame failure mode; →0 = fully data-driven).
    pub fixed_cost_fraction: f64,
    /// Memory traffic per inference in bytes (32-bit words).
    pub mem_bytes: f64,
    /// Energy per inference on the paradigm's natural accelerator (µJ).
    pub energy_uj: f64,
    /// Time-to-decision latency (µs).
    pub latency_us: f64,
    /// Model memory footprint in bytes (params + state at 32 bit).
    pub footprint_bytes: f64,
    /// Accuracy per kiloparameter — the parameter-efficiency proxy used
    /// for the scalability row.
    pub accuracy_per_kparam: f64,
}

/// Configuration of the full comparison.
#[derive(Debug, Clone)]
pub struct ComparisonConfig {
    /// CNN pipeline settings.
    pub cnn: CnnPipelineConfig,
    /// SNN pipeline settings.
    pub snn: SnnPipelineConfig,
    /// GNN pipeline settings.
    pub gnn: GnnPipelineConfig,
}

impl ComparisonConfig {
    /// Full-strength settings (for the release-mode table binary).
    pub fn new() -> Self {
        ComparisonConfig {
            cnn: CnnPipelineConfig::new().with_epochs(30),
            snn: SnnPipelineConfig::new().with_epochs(40),
            gnn: GnnPipelineConfig::new().with_epochs(40),
        }
    }

    /// Reduced settings for tests and smoke runs.
    pub fn fast() -> Self {
        ComparisonConfig {
            cnn: CnnPipelineConfig::new().with_epochs(8),
            snn: SnnPipelineConfig {
                hidden: vec![32],
                epochs: 10,
                ..SnnPipelineConfig::new()
            },
            gnn: GnnPipelineConfig {
                hidden: vec![12, 12],
                epochs: 10,
                max_nodes: 128,
                ..GnnPipelineConfig::new()
            },
        }
    }
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        ComparisonConfig::new()
    }
}

/// The full dichotomy report: per-paradigm measurements plus the graded
/// Table I rows.
#[derive(Debug, Clone)]
pub struct DichotomyReport {
    /// Dataset the comparison ran on.
    pub dataset: String,
    /// Measurements in `[snn, cnn, gnn]` order.
    pub paradigms: Vec<ParadigmMeasurement>,
    /// The twelve graded rows of Table I.
    pub rows: Vec<Row>,
}

impl DichotomyReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        crate::table::render(self)
    }

    /// Serializes the report to pretty JSON (for archiving measured
    /// results alongside EXPERIMENTS.md). Uses the workspace's own
    /// [`evlab_util::json`] writer so the build stays free of external
    /// serialization crates.
    pub fn to_json(&self) -> String {
        let paradigms = self.paradigms.iter().map(|m| {
            Json::obj([
                ("name", Json::str(m.name.clone())),
                ("test_accuracy", Json::from(m.test_accuracy)),
                ("scrambled_accuracy", Json::from(m.scrambled_accuracy)),
                ("params", Json::from(m.params)),
                ("state_words", Json::from(m.state_words)),
                ("prep_ops", Json::from(m.prep_ops)),
                ("effective_ops", Json::from(m.effective_ops)),
                ("nominal_ops", Json::from(m.nominal_ops)),
                ("computation_sparsity", Json::from(m.computation_sparsity)),
                ("fixed_cost_fraction", Json::from(m.fixed_cost_fraction)),
                ("mem_bytes", Json::from(m.mem_bytes)),
                ("energy_uj", Json::from(m.energy_uj)),
                ("latency_us", Json::from(m.latency_us)),
                ("footprint_bytes", Json::from(m.footprint_bytes)),
                ("accuracy_per_kparam", Json::from(m.accuracy_per_kparam)),
            ])
        });
        let rows = self.rows.iter().map(|r| {
            Json::obj([
                ("label", Json::str(r.label.clone())),
                ("values", Json::arr(r.values.iter().map(|&v| Json::from(v)))),
                ("lower_is_better", Json::from(r.lower_is_better)),
                ("unit", Json::str(r.unit.clone())),
                (
                    "grades",
                    Json::arr(r.grades.iter().map(|g| Json::str(g.clone()))),
                ),
                (
                    "paper",
                    Json::arr(r.paper.iter().map(|g| Json::str(g.clone()))),
                ),
            ])
        });
        Json::obj([
            ("dataset", Json::str(self.dataset.clone())),
            ("paradigms", Json::arr(paradigms)),
            ("rows", Json::arr(rows)),
        ])
        .to_string_pretty()
    }
}

/// Scrambles event timing within a stream: timestamps keep their sorted
/// order, but which (x, y, polarity) tuple occurs at which time is
/// permuted. Spatial histograms are untouched; temporal structure is
/// destroyed.
pub fn scramble_times(stream: &EventStream, rng: &mut Rng64) -> EventStream {
    let times: Vec<u64> = stream.iter().map(|e| e.t.as_micros()).collect();
    let mut payloads: Vec<(u16, u16, evlab_events::Polarity)> =
        stream.iter().map(|e| (e.x, e.y, e.polarity)).collect();
    rng.shuffle(&mut payloads);
    let events: Vec<Event> = times
        .into_iter()
        .zip(payloads)
        .map(|(t, (x, y, p))| Event::new(t, x, y, p))
        .collect();
    EventStream::from_events(stream.resolution(), events).expect("times stay sorted")
}

/// Runs the three-paradigm comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRunner {
    config: ComparisonConfig,
}

impl ComparisonRunner {
    /// Creates a runner.
    pub fn new(config: ComparisonConfig) -> Self {
        ComparisonRunner { config }
    }

    fn measure(
        &self,
        clf: &mut dyn EventClassifier,
        data: &Dataset,
        style: DeploymentStyle,
        seed: u64,
    ) -> (ParadigmMeasurement, OpCount) {
        clf.fit(data);
        // Per-sample inference measurements.
        let mut total_ops = OpCount::new();
        let mut correct = 0usize;
        for s in &data.test {
            let mut ops = OpCount::new();
            if clf.predict(&s.stream, &mut ops) == s.label {
                correct += 1;
            }
            total_ops += ops;
        }
        let n = data.test.len().max(1) as f64;
        let test_accuracy = correct as f64 / n;
        // Temporal probe.
        let mut rng = Rng64::seed_from_u64(seed ^ 0x7E3A);
        let mut scrambled_correct = 0usize;
        for s in &data.test {
            let scrambled = scramble_times(&s.stream, &mut rng);
            let mut ops = OpCount::new();
            if clf.predict(&scrambled, &mut ops) == s.label {
                scrambled_correct += 1;
            }
        }
        let scrambled_accuracy = scrambled_correct as f64 / n;
        // Preparation cost.
        let prep: f64 = data
            .test
            .iter()
            .map(|s| clf.preparation_ops(&s.stream).total_arithmetic() as f64)
            .sum::<f64>()
            / n;
        let effective_ops = total_ops.effective_arithmetic() as f64 / n;
        let nominal_ops = total_ops.total_arithmetic() as f64 / n;
        let params = clf.param_count();
        let state_words = clf.state_words();
        let footprint_bytes = (params + state_words) as f64 * 4.0;
        // Paradigm-appropriate sparsity definition (trait override):
        // skipped MACs for frame CNNs, skipped dense-equivalent synapses
        // for SNNs, untouched pixel sites for GNNs.
        let sparsity = data
            .test
            .first()
            .map(|s| clf.computation_sparsity(&s.stream))
            .unwrap_or(0.0);
        // Data-sparsity exploitation: does cost track activity? Process a
        // near-silent stream (first 2% of events) and the full stream and
        // compare total work.
        let fixed_cost_fraction = data
            .test
            .first()
            .map(|s| {
                let full = s.stream.clone();
                let cutoff = full
                    .as_slice()
                    .get(full.len() / 50)
                    .map(|e| e.t.as_micros() + 1)
                    .unwrap_or(1);
                let quiet = EventStream::from_events(
                    full.resolution(),
                    full.window(0, cutoff).to_vec(),
                )
                .expect("prefix stays sorted");
                if quiet.is_empty() {
                    return 1.0;
                }
                let mut ops_quiet = OpCount::new();
                clf.predict(&quiet, &mut ops_quiet);
                let mut ops_full = OpCount::new();
                clf.predict(&full, &mut ops_full);
                (ops_quiet.effective_arithmetic() as f64
                    / ops_full.effective_arithmetic().max(1) as f64)
                    .min(1.0)
            })
            .unwrap_or(1.0);
        let measurement = ParadigmMeasurement {
            name: clf.name().to_string(),
            test_accuracy,
            scrambled_accuracy,
            params,
            state_words,
            prep_ops: prep,
            effective_ops,
            nominal_ops,
            computation_sparsity: sparsity,
            fixed_cost_fraction,
            mem_bytes: total_ops.mem_bytes(4) as f64 / n,
            energy_uj: 0.0,  // filled by the caller (accelerator-specific)
            latency_us: 0.0, // filled by the caller
            footprint_bytes,
            accuracy_per_kparam: test_accuracy / (params.max(1) as f64 / 1000.0),
        };
        let style_latency = style;
        let _ = style_latency;
        (measurement, total_ops)
    }

    /// Trains and measures all three paradigms on `data`.
    pub fn run(&self, data: &Dataset, seed: u64) -> DichotomyReport {
        let n = data.test.len().max(1) as f64;
        let mean_events: f64 = data
            .test
            .iter()
            .map(|s| s.stream.len() as f64)
            .sum::<f64>()
            / n;

        // --- SNN ---
        let mut snn = SnnPipeline::new(self.config.snn.clone().with_seed(seed));
        let dt_us = self.config.snn.dt_us as f64;
        let (mut snn_m, snn_ops) = self.measure(
            &mut snn,
            data,
            DeploymentStyle::Stepped { dt_us },
            seed,
        );
        let mut per_sample_ops = scale_ops(&snn_ops, 1.0 / n);
        let snn_cost = price_snn(&per_sample_ops, snn_m.params, snn_m.state_words);
        snn_m.energy_uj = snn_cost.total_uj();
        // Per-step latency: one timestep of work.
        let steps = self.config.snn.steps.max(1) as f64;
        let step_cost = price_snn(
            &scale_ops(&per_sample_ops, 1.0 / steps),
            snn_m.params,
            snn_m.state_words,
        );
        snn_m.latency_us =
            time_to_decision_us(DeploymentStyle::Stepped { dt_us }, step_cost.latency_us);

        // --- CNN ---
        let mut cnn = CnnPipeline::new(self.config.cnn.with_seed(seed));
        let window_us = data.duration_us as f64;
        let (mut cnn_m, cnn_ops) = self.measure(
            &mut cnn,
            data,
            DeploymentStyle::Framed { window_us },
            seed,
        );
        per_sample_ops = scale_ops(&cnn_ops, 1.0 / n);
        let cnn_cost = price_cnn(&per_sample_ops, cnn_m.params, cnn_m.computation_sparsity);
        cnn_m.energy_uj = cnn_cost.total_uj();
        cnn_m.latency_us = time_to_decision_us(
            DeploymentStyle::Framed { window_us },
            cnn_cost.latency_us,
        );

        // --- GNN ---
        let mut gnn = GnnPipeline::new(self.config.gnn.clone().with_seed(seed));
        let (mut gnn_m, gnn_ops) = self.measure(&mut gnn, data, DeploymentStyle::PerEvent, seed);
        per_sample_ops = scale_ops(&gnn_ops, 1.0 / n);
        // Edge count of a representative graph.
        let mut probe_ops = OpCount::new();
        let edges = data
            .test
            .first()
            .map(|s| gnn.build_graph(&s.stream, &mut probe_ops).edge_count() as u64)
            .unwrap_or(0);
        let feature_dim = self.config.gnn.hidden.last().copied().unwrap_or(16);
        let gnn_cost = price_gnn(
            &per_sample_ops,
            edges,
            feature_dim,
            gnn_m.params + gnn_m.state_words,
        );
        gnn_m.energy_uj = gnn_cost.total_uj();
        // Per-event latency: the asynchronous update touches ~1/N of the
        // batch work.
        let per_event = scale_ops(&per_sample_ops, 1.0 / mean_events.max(1.0));
        let per_event_cost = price_gnn(
            &per_event,
            (edges as f64 / mean_events.max(1.0)).ceil() as u64,
            feature_dim,
            gnn_m.params + gnn_m.state_words,
        );
        gnn_m.latency_us =
            time_to_decision_us(DeploymentStyle::PerEvent, per_event_cost.latency_us);

        let paradigms = vec![snn_m, cnn_m, gnn_m];
        let rows = build_rows(&paradigms, data);
        DichotomyReport {
            dataset: data.name.clone(),
            paradigms,
            rows,
        }
    }
}

fn scale_ops(ops: &OpCount, factor: f64) -> OpCount {
    let s = |v: u64| (v as f64 * factor).round() as u64;
    OpCount {
        macs: s(ops.macs),
        effective_macs: s(ops.effective_macs),
        mults: s(ops.mults),
        adds: s(ops.adds),
        comparisons: s(ops.comparisons),
        mem_reads: s(ops.mem_reads),
        mem_writes: s(ops.mem_writes),
    }
}

fn build_rows(p: &[ParadigmMeasurement], data: &Dataset) -> Vec<Row> {
    let (snn, cnn, gnn) = (&p[0], &p[1], &p[2]);
    let mut rows = Vec::new();
    // 1. Temporal information: accuracy retained above chance after
    //    scrambling, inverted — higher means more temporal exploitation.
    let chance = 1.0 / data.num_classes as f64;
    let temporal = |m: &ParadigmMeasurement| {
        let span = (m.test_accuracy - chance).max(1e-9);
        ((m.test_accuracy - m.scrambled_accuracy) / span).clamp(0.0, 1.0)
    };
    rows.push(grade_row(
        Row::new(
            "Data - Exploit temporal information",
            [temporal(snn), temporal(cnn), temporal(gnn)],
            false,
            "accuracy drop under time-scrambling (fraction of margin)",
        ),
        PAPER_GRADES[0],
    ));
    // 2. Data sparsity exploitation: fraction of the inference cost that is
    //    fixed (paid even for a near-silent input). Frame pipelines pay the
    //    dense grid regardless of activity; event-driven pipelines scale
    //    with the data.
    rows.push(grade_row(
        Row::new(
            "Data - Sparsity",
            [
                snn.fixed_cost_fraction,
                cnn.fixed_cost_fraction,
                gnn.fixed_cost_fraction,
            ],
            true,
            "cost(quiet input) / cost(busy input) — fixed-cost fraction",
        ),
        PAPER_GRADES[1],
    ));
    rows.push(grade_row(
        Row::new(
            "Data - Preparation (down)",
            [snn.prep_ops, cnn.prep_ops, gnn.prep_ops],
            true,
            "arithmetic ops to prepare one sample",
        ),
        PAPER_GRADES[2],
    ));
    rows.push(grade_row(
        Row::new(
            "Computation - Sparsity",
            [
                snn.computation_sparsity,
                cnn.computation_sparsity,
                gnn.computation_sparsity,
            ],
            false,
            "fraction of nominal compute skipped",
        ),
        PAPER_GRADES[3],
    ));
    rows.push(grade_row(
        Row::new(
            "Computation - # Operations (down)",
            [snn.effective_ops, cnn.effective_ops, gnn.effective_ops],
            true,
            "executed arithmetic per inference",
        ),
        PAPER_GRADES[4],
    ));
    rows.push(grade_row(
        Row::new(
            "Application - Accuracy",
            [snn.test_accuracy, cnn.test_accuracy, gnn.test_accuracy],
            false,
            "test accuracy",
        ),
        PAPER_GRADES[5],
    ));
    // 7. Hardware maturity: survey constant (count of silicon-proven
    //    accelerator families reviewed in §III/§IV).
    rows.push(grade_row(
        Row::new(
            "Hardware - Maturity",
            [2.0, 3.0, 0.0],
            false,
            "silicon-proven accelerator families (survey constant)",
        ),
        PAPER_GRADES[6],
    ));
    rows.push(grade_row(
        Row::new(
            "Memory - Footprint (down)",
            [snn.footprint_bytes, cnn.footprint_bytes, gnn.footprint_bytes],
            true,
            "params + state, bytes",
        ),
        PAPER_GRADES[7],
    ));
    rows.push(grade_row(
        Row::new(
            "Memory - Bandwidth (down)",
            [snn.mem_bytes, cnn.mem_bytes, gnn.mem_bytes],
            true,
            "bytes moved per inference",
        ),
        PAPER_GRADES[8],
    ));
    rows.push(grade_row(
        Row::new(
            "System - Energy Efficiency",
            [
                1.0 / snn.energy_uj.max(1e-12),
                1.0 / cnn.energy_uj.max(1e-12),
                1.0 / gnn.energy_uj.max(1e-12),
            ],
            false,
            "inferences per uJ on the natural accelerator",
        ),
        PAPER_GRADES[9],
    ));
    rows.push(grade_row(
        Row::new(
            "System - Configurability / Scalability",
            [
                snn.accuracy_per_kparam,
                cnn.accuracy_per_kparam,
                gnn.accuracy_per_kparam,
            ],
            false,
            "accuracy per kiloparameter (parameter-efficiency proxy)",
        ),
        PAPER_GRADES[10],
    ));
    rows.push(grade_row(
        Row::new(
            "System - Latency (down)",
            [snn.latency_us, cnn.latency_us, gnn.latency_us],
            true,
            "time-to-decision, us",
        ),
        PAPER_GRADES[11],
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_datasets::shapes::shape_silhouettes;
    use evlab_datasets::DatasetConfig;

    #[test]
    fn scramble_preserves_histogram_destroys_order() {
        let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)));
        let stream = &data.train[0].stream;
        let mut rng = Rng64::seed_from_u64(1);
        let scrambled = scramble_times(stream, &mut rng);
        assert_eq!(scrambled.len(), stream.len());
        assert_eq!(scrambled.duration_us(), stream.duration_us());
        // Same spatial histogram.
        let hist = |s: &EventStream| {
            let mut h = vec![0u32; 256];
            for e in s.iter() {
                h[e.y as usize * 16 + e.x as usize] += 1;
            }
            h
        };
        assert_eq!(hist(stream), hist(&scrambled));
        assert_ne!(stream, &scrambled, "order must change");
    }

    #[test]
    fn full_comparison_produces_all_rows() {
        let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(4, 2));
        let runner = ComparisonRunner::new(ComparisonConfig::fast());
        let report = runner.run(&data, 3);
        assert_eq!(report.rows.len(), 12);
        assert_eq!(report.paradigms.len(), 3);
        for m in &report.paradigms {
            assert!(m.test_accuracy >= 0.0 && m.test_accuracy <= 1.0);
            assert!(m.energy_uj > 0.0, "{} energy", m.name);
            assert!(m.latency_us > 0.0, "{} latency", m.name);
            assert!(m.params > 0, "{} params", m.name);
        }
        let rendered = report.render();
        assert!(rendered.contains("Latency"));
        assert!(rendered.contains("snn") || rendered.contains("SNN"));
    }

    #[test]
    fn report_serializes_to_json() {
        let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(2, 1));
        let runner = ComparisonRunner::new(ComparisonConfig::fast());
        let report = runner.run(&data, 1);
        let json = report.to_json();
        assert!(json.contains("\"dataset\""));
        assert!(json.contains("\"paradigms\""));
        let parsed = Json::parse(&json).expect("valid json");
        assert_eq!(
            parsed.get("rows").and_then(Json::as_array).expect("rows").len(),
            12
        );
    }

    #[test]
    fn expected_shape_cnn_latency_worst() {
        let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(4, 2));
        let runner = ComparisonRunner::new(ComparisonConfig::fast());
        let report = runner.run(&data, 3);
        let (snn, cnn, gnn) = (
            &report.paradigms[0],
            &report.paradigms[1],
            &report.paradigms[2],
        );
        // The robust shape claims of Table I:
        assert!(
            cnn.latency_us > snn.latency_us && cnn.latency_us > gnn.latency_us,
            "frame latency must dominate: snn {} cnn {} gnn {}",
            snn.latency_us,
            cnn.latency_us,
            gnn.latency_us
        );
        assert!(
            cnn.prep_ops > snn.prep_ops,
            "frame building beats spike binning: {} vs {}",
            cnn.prep_ops,
            snn.prep_ops
        );
        assert!(
            cnn.nominal_ops > cnn.effective_ops,
            "sparse frames must let the CNN skip work: {} vs {}",
            cnn.nominal_ops,
            cnn.effective_ops
        );
        // NOTE: at this tiny 16x16 scale the paper's "GNN needs orders of
        // magnitude fewer operations" does NOT hold (128 graph nodes vs 256
        // pixels); the crossover with resolution is asserted in
        // `gnn_ops_advantage_grows_with_resolution` below and measured in
        // the table1 bench at realistic sizes.
        let _ = gnn;
    }

    #[test]
    fn gnn_ops_advantage_grows_with_resolution() {
        // Dense CNN work scales with pixel count; event-graph work scales
        // with event count. Measure forward-pass ops of untrained models
        // at two resolutions with the same number of events.
        use evlab_cnn::model::{build_cnn, CnnConfig};
        use evlab_gnn::build::{incremental_build, GraphConfig};
        use evlab_gnn::network::{GnnConfig, GnnNetwork};
        let mut rng = Rng64::seed_from_u64(9);
        let ratio_at = |res: usize, rng: &mut Rng64| {
            let mut cnn = build_cnn(&CnnConfig::small(2, res, 4), rng);
            let mut ops_cnn = OpCount::new();
            cnn.forward(
                &evlab_tensor::Tensor::filled(&[2, res, res], 1.0),
                &mut ops_cnn,
            );
            let events: Vec<Event> = (0..256u64)
                .map(|i| {
                    Event::new(
                        i * 50,
                        (i % res as u64) as u16,
                        ((i * 7) % res as u64) as u16,
                        evlab_events::Polarity::On,
                    )
                })
                .collect();
            let mut ops_gnn = OpCount::new();
            let graph = incremental_build(&events, &GraphConfig::new(), &mut ops_gnn);
            let mut gnn = GnnNetwork::new(&GnnConfig::new(4), rng);
            gnn.forward(&graph, &mut ops_gnn);
            ops_cnn.total_arithmetic() as f64 / ops_gnn.total_arithmetic() as f64
        };
        let r32 = ratio_at(32, &mut rng);
        let r64 = ratio_at(64, &mut rng);
        assert!(
            r64 > 2.0 * r32,
            "CNN/GNN ops ratio must grow ~4x per resolution doubling: {r32} -> {r64}"
        );
        assert!(r64 > 2.0, "at 64x64 the GNN is already cheaper: {r64}");
    }
}
