//! Session-facing online classification: the streaming counterpart of
//! [`crate::pipeline::EventClassifier`].
//!
//! A batch classifier sees a whole recording at once; a *served* classifier
//! sees one event at a time and must decide as it goes. This module defines
//! the [`OnlineClassifier`] trait (begin a session, push events, poll for
//! decisions, flush) plus one native session per paradigm, each owning its
//! state so a serving runtime can move it onto a worker thread:
//!
//! * [`SnnOnline`] — per-event stepping through an
//!   [`evlab_snn::event_driven::EventDrivenSnn`]; a decision after every
//!   injected spike, windows rolling every `steps × dt_us`.
//! * [`CnnOnline`] — windowed micro-batching: events accumulate into a
//!   frame buffer and the CNN runs once per flush window (the per-frame
//!   cadence of §III-B).
//! * [`GnnOnline`] — per-event asynchronous graph updates via
//!   [`evlab_gnn::window::WindowedGnn`]: a true sliding window whose
//!   eviction policy bounds memory without ever rebuilding the graph, so
//!   the logit trajectory has no reset cliffs.
//!
//! Sessions are built uniformly through [`SessionBuilder`]: pick a
//! paradigm, share one [`OnlineConfig`], get a boxed
//! [`OnlineClassifier`]. The per-paradigm constructors remain available as
//! `with_config`; the old positional `new` constructors are deprecated
//! shims over them.
//!
//! Any existing batch [`EventClassifier`] is servable through the
//! [`Batched`] adapter, which buffers the session's events and classifies
//! on flush.

use crate::cnn_pipeline::{make_encoder, CnnPipeline, CnnPipelineConfig};
use crate::gnn_pipeline::GnnPipeline;
use crate::pipeline::EventClassifier;
use crate::snn_pipeline::SnnPipeline;
use evlab_cnn::encode::normalize;
use evlab_events::{Event, EventStream, Polarity};
use evlab_gnn::window::{WindowPolicy, WindowedGnn};
use evlab_snn::event_driven::EventDrivenSnn;
use evlab_tensor::{OpCount, Sequential};
use evlab_util::frame::{Decoder, Encoder, FrameError, StateSnapshot};
use evlab_util::EvlabError;

/// One classification emitted by an online session.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Predicted class index.
    pub class: usize,
    /// Class logits backing the prediction (empty when the underlying
    /// classifier only exposes the argmax, as with [`Batched`]).
    pub logits: Vec<f32>,
    /// Events consumed since the previous decision (including any the
    /// session's own preprocessing discarded).
    pub events: usize,
    /// Timestamp (µs) of the last event that contributed.
    pub t_us: u64,
}

impl Decision {
    /// Repairs a fault-poisoned decision in place: non-finite logits
    /// (NaN/±Inf) are replaced with `f32::MIN` and the class is recomputed
    /// from the repaired logits; a class index outside the logit vector is
    /// likewise recomputed. Returns the number of repairs performed — `0`
    /// means the decision was already valid.
    ///
    /// Corrupted ingress can drive a network's activations non-finite;
    /// serving must degrade to a valid (if low-confidence) decision rather
    /// than propagate poison into histories and benchmarks.
    pub fn sanitize(&mut self) -> usize {
        let mut repaired = 0usize;
        for v in &mut self.logits {
            if !v.is_finite() {
                *v = f32::MIN;
                repaired += 1;
            }
        }
        if !self.logits.is_empty() && (repaired > 0 || self.class >= self.logits.len()) {
            let fixed = argmax(&self.logits);
            if repaired == 0 && fixed != self.class {
                repaired = 1;
            }
            self.class = fixed;
        }
        repaired
    }
}

fn argmax(logits: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best
}

/// A classifier driven one event at a time.
///
/// Lifecycle: [`OnlineClassifier::begin_session`] resets all session state;
/// [`OnlineClassifier::push_event`] feeds events in timestamp order;
/// [`OnlineClassifier::poll_decision`] takes the newest decision if one was
/// produced since the last poll; [`OnlineClassifier::flush`] forces a
/// decision from whatever has accumulated (e.g. a partial CNN window).
pub trait OnlineClassifier {
    /// Paradigm name ("snn", "cnn", "gnn", or the wrapped batch name).
    fn name(&self) -> &'static str;

    /// Starts a fresh session, dropping all accumulated state.
    fn begin_session(&mut self);

    /// Feeds one event, recording any work into `ops`.
    ///
    /// # Errors
    ///
    /// Returns an error if the event is older than a previously pushed one
    /// — sessions require per-session timestamp order.
    fn push_event(&mut self, event: Event, ops: &mut OpCount) -> Result<(), EvlabError>;

    /// Takes the newest decision produced since the last poll, if any.
    fn poll_decision(&mut self) -> Option<Decision>;

    /// Forces a decision from the accumulated state (if any events arrived
    /// since the last decision), recording the work into `ops`.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying classifier cannot process the
    /// accumulated window.
    fn flush(&mut self, ops: &mut OpCount) -> Result<Option<Decision>, EvlabError>;

    /// The session's durable state, when the paradigm supports
    /// crash-consistent checkpointing. The native sessions ([`SnnOnline`],
    /// [`CnnOnline`], [`GnnOnline`]) all do; adapters without a
    /// serializable core (e.g. [`Batched`]) return `None` and are served
    /// without durability.
    fn as_snapshot(&self) -> Option<&dyn StateSnapshot> {
        None
    }

    /// Mutable access to the durable state, for restore.
    fn as_snapshot_mut(&mut self) -> Option<&mut dyn StateSnapshot> {
        None
    }
}

// ---------------------------------------------------------------------------
// Snapshot plumbing shared by the native sessions.
// ---------------------------------------------------------------------------

/// Serializes a [`Decision`] for snapshot payloads (logit bit patterns
/// preserved exactly).
pub fn save_decision(d: &Decision, enc: &mut Encoder) {
    enc.put_u64(d.class as u64);
    enc.put_f32_slice(&d.logits);
    enc.put_u64(d.events as u64);
    enc.put_u64(d.t_us);
}

/// Decodes a [`Decision`] written by [`save_decision`].
///
/// # Errors
///
/// Returns [`FrameError`] on a truncated or corrupt payload.
pub fn load_decision(dec: &mut Decoder) -> Result<Decision, FrameError> {
    Ok(Decision {
        class: dec.take_u64()? as usize,
        logits: dec.take_f32_vec()?,
        events: dec.take_u64()? as usize,
        t_us: dec.take_u64()?,
    })
}

/// Serializes an optional [`Decision`] (presence byte + payload).
pub fn save_opt_decision(d: &Option<Decision>, enc: &mut Encoder) {
    match d {
        Some(d) => {
            enc.put_bool(true);
            save_decision(d, enc);
        }
        None => enc.put_bool(false),
    }
}

/// Decodes an optional [`Decision`] written by [`save_opt_decision`].
///
/// # Errors
///
/// Returns [`FrameError`] on a truncated or corrupt payload.
pub fn load_opt_decision(dec: &mut Decoder) -> Result<Option<Decision>, FrameError> {
    if dec.take_bool()? {
        Ok(Some(load_decision(dec)?))
    } else {
        Ok(None)
    }
}

fn save_event(e: &Event, enc: &mut Encoder) {
    enc.put_u64(e.t.as_micros());
    enc.put_u16(e.x);
    enc.put_u16(e.y);
    enc.put_bool(e.polarity == Polarity::On);
}

fn load_event(dec: &mut Decoder) -> Result<Event, FrameError> {
    let t = dec.take_u64()?;
    let x = dec.take_u16()?;
    let y = dec.take_u16()?;
    let p = if dec.take_bool()? { Polarity::On } else { Polarity::Off };
    Ok(Event::new(t, x, y, p))
}

/// Tracks the per-session ordering requirement shared by all sessions.
#[derive(Debug, Clone, Default)]
struct OrderGuard {
    last_t: Option<u64>,
}

impl OrderGuard {
    fn check(&mut self, t: u64) -> Result<(), EvlabError> {
        if let Some(last) = self.last_t {
            if t < last {
                return Err(EvlabError::serve(format!(
                    "out-of-order event: t={t}µs after t={last}µs"
                )));
            }
        }
        self.last_t = Some(t);
        Ok(())
    }

    fn reset(&mut self) {
        self.last_t = None;
    }
}

// ---------------------------------------------------------------------------
// Unified session construction.
// ---------------------------------------------------------------------------

/// Default CNN micro-batch flush window (µs) when [`OnlineConfig`] leaves
/// the window unset.
pub const DEFAULT_CNN_WINDOW_US: u64 = 2_000;

/// Paradigm-independent session parameters, interpreted by each paradigm
/// for its own notion of "window" and "batch":
///
/// | field        | SNN      | CNN                         | GNN                              |
/// |--------------|----------|-----------------------------|----------------------------------|
/// | `resolution` | required | required                    | ignored (graphs are coordinate-free) |
/// | `window_us`  | ignored  | flush interval (default [`DEFAULT_CNN_WINDOW_US`]) | max node age (adds an age bound) |
/// | `batch`      | ignored  | ignored                     | max live nodes (default: the pipeline's `max_nodes`) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineConfig {
    /// Sensor resolution of the incoming streams.
    pub resolution: (u16, u16),
    /// Temporal window in µs, where the paradigm has one.
    pub window_us: Option<u64>,
    /// Spatial/batch capacity, where the paradigm has one.
    pub batch: Option<usize>,
}

impl OnlineConfig {
    /// Config for the given sensor resolution with paradigm defaults for
    /// everything else.
    pub fn new(resolution: (u16, u16)) -> Self {
        OnlineConfig {
            resolution,
            window_us: None,
            batch: None,
        }
    }

    /// Sets the temporal window (CNN flush interval / GNN max node age).
    pub fn with_window_us(mut self, window_us: u64) -> Self {
        self.window_us = Some(window_us);
        self
    }

    /// Sets the capacity bound (GNN max live nodes).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = Some(batch);
        self
    }
}

enum Paradigm<'a> {
    Snn(&'a SnnPipeline),
    Cnn(&'a CnnPipeline),
    Gnn(&'a GnnPipeline),
}

/// Uniform entry point for opening online sessions: one config, one
/// paradigm choice, one boxed [`OnlineClassifier`] ready for
/// `evlab_serve`'s runtime.
///
/// # Examples
///
/// ```no_run
/// use evlab_core::online::{OnlineConfig, SessionBuilder};
/// use evlab_core::gnn_pipeline::{GnnPipeline, GnnPipelineConfig};
///
/// let pipe = GnnPipeline::new(GnnPipelineConfig::new());
/// // (fit the pipeline first in real code)
/// let session = SessionBuilder::new(
///     OnlineConfig::new((32, 32)).with_window_us(50_000).with_batch(512),
/// )
/// .gnn(&pipe)
/// .build()?;
/// # Ok::<(), evlab_util::EvlabError>(())
/// ```
pub struct SessionBuilder<'a> {
    config: OnlineConfig,
    paradigm: Option<Paradigm<'a>>,
}

impl<'a> SessionBuilder<'a> {
    /// Starts a builder from shared session parameters.
    pub fn new(config: OnlineConfig) -> Self {
        SessionBuilder {
            config,
            paradigm: None,
        }
    }

    /// Serves the spiking paradigm from a trained [`SnnPipeline`].
    pub fn snn(mut self, pipeline: &'a SnnPipeline) -> Self {
        self.paradigm = Some(Paradigm::Snn(pipeline));
        self
    }

    /// Serves the frame paradigm from a trained [`CnnPipeline`].
    pub fn cnn(mut self, pipeline: &'a CnnPipeline) -> Self {
        self.paradigm = Some(Paradigm::Cnn(pipeline));
        self
    }

    /// Serves the event-graph paradigm from a trained [`GnnPipeline`].
    pub fn gnn(mut self, pipeline: &'a GnnPipeline) -> Self {
        self.paradigm = Some(Paradigm::Gnn(pipeline));
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// Returns an error if no paradigm was selected, the chosen pipeline
    /// is untrained, or the config is invalid for the paradigm.
    pub fn build(self) -> Result<Box<dyn OnlineClassifier + Send>, EvlabError> {
        match self.paradigm {
            None => Err(EvlabError::serve(
                "SessionBuilder: no paradigm selected — call .snn(), .cnn() or .gnn()",
            )),
            Some(Paradigm::Snn(p)) => Ok(Box::new(SnnOnline::with_config(p, &self.config)?)),
            Some(Paradigm::Cnn(p)) => Ok(Box::new(CnnOnline::with_config(p, &self.config)?)),
            Some(Paradigm::Gnn(p)) => Ok(Box::new(GnnOnline::with_config(p, &self.config)?)),
        }
    }
}

// ---------------------------------------------------------------------------
// SNN: per-event stepping.
// ---------------------------------------------------------------------------

/// Streaming SNN session: spatial downsampling and spike binning applied
/// per event, injections through the event-driven engine, decisions read
/// from the decayed readout membranes after every injection.
#[derive(Debug, Clone)]
pub struct SnnOnline {
    ed: EventDrivenSnn,
    downsample: u16,
    dt_us: u64,
    steps: usize,
    out_res: (u16, u16),
    /// Per-block last-forwarded timestamp (dead time = one dt, matching
    /// [`SnnPipeline::encode`]).
    block_last: Vec<Option<u64>>,
    t0: Option<u64>,
    order: OrderGuard,
    pending: Option<Decision>,
    events_since: usize,
    current_step: u64,
}

impl SnnOnline {
    /// Builds a session over a trained pipeline. Only
    /// [`OnlineConfig::resolution`] is used: the SNN's temporal windowing
    /// comes from the pipeline's own `dt_us × steps`.
    ///
    /// # Errors
    ///
    /// Returns an error if the pipeline is untrained or was trained for a
    /// different resolution.
    pub fn with_config(pipeline: &SnnPipeline, config: &OnlineConfig) -> Result<Self, EvlabError> {
        let resolution = config.resolution;
        let net = pipeline
            .network()
            .ok_or_else(|| EvlabError::serve("SNN pipeline is untrained"))?;
        let config = pipeline.config();
        let dw = resolution.0.div_ceil(config.downsample);
        let dh = resolution.1.div_ceil(config.downsample);
        let expected = 2 * dw as usize * dh as usize;
        let ed = EventDrivenSnn::from_network(net);
        if ed.input_size() != expected {
            return Err(EvlabError::serve(format!(
                "SNN trained for {} inputs but {}x{} at {}x downsample needs {}",
                ed.input_size(),
                resolution.0,
                resolution.1,
                config.downsample,
                expected
            )));
        }
        Ok(SnnOnline {
            ed,
            downsample: config.downsample,
            dt_us: config.dt_us,
            steps: config.steps,
            out_res: (dw, dh),
            block_last: vec![None; dw as usize * dh as usize],
            t0: None,
            order: OrderGuard::default(),
            pending: None,
            events_since: 0,
            current_step: 0,
        })
    }

    /// Positional constructor, superseded by the unified config path.
    ///
    /// # Errors
    ///
    /// As [`SnnOnline::with_config`].
    #[deprecated(note = "use SnnOnline::with_config or SessionBuilder")]
    pub fn new(pipeline: &SnnPipeline, resolution: (u16, u16)) -> Result<Self, EvlabError> {
        Self::with_config(pipeline, &OnlineConfig::new(resolution))
    }
}

impl OnlineClassifier for SnnOnline {
    fn name(&self) -> &'static str {
        "snn"
    }

    fn begin_session(&mut self) {
        self.ed.reset();
        self.block_last.iter_mut().for_each(|b| *b = None);
        self.t0 = None;
        self.order.reset();
        self.pending = None;
        self.events_since = 0;
        self.current_step = 0;
    }

    fn push_event(&mut self, event: Event, ops: &mut OpCount) -> Result<(), EvlabError> {
        let t = event.t.as_micros();
        self.order.check(t)?;
        self.events_since += 1;
        let t0 = *self.t0.get_or_insert(t);
        let mut step = (t - t0) / self.dt_us;
        if step >= self.steps as u64 {
            // Window rolled over: a fresh decision window starts here.
            self.ed.reset();
            self.block_last.iter_mut().for_each(|b| *b = None);
            self.t0 = Some(t);
            step = 0;
        }
        self.current_step = step;
        // Block-wise dead time, as in the batch encoder.
        let bx = event.x / self.downsample;
        let by = event.y / self.downsample;
        let block = by as usize * self.out_res.0 as usize + bx as usize;
        let keep = match self.block_last[block] {
            Some(prev) => t.saturating_sub(prev) >= self.dt_us,
            None => true,
        };
        if !keep {
            ops.record_compare(1);
            return Ok(());
        }
        self.block_last[block] = Some(t);
        let pixels = self.out_res.0 as usize * self.out_res.1 as usize;
        let index = event.polarity.channel() * pixels
            + by as usize * self.out_res.0 as usize
            + bx as usize;
        self.ed.inject_input(index, step + 1, ops);
        let mut logits = self.ed.logits_at(step + 1);
        // Faulted ingress must degrade decisions, never poison membranes.
        evlab_tensor::guard::sanitize_finite(&mut logits);
        self.pending = Some(Decision {
            class: argmax(&logits),
            logits,
            events: std::mem::take(&mut self.events_since),
            t_us: t,
        });
        Ok(())
    }

    fn poll_decision(&mut self) -> Option<Decision> {
        self.pending.take()
    }

    fn flush(&mut self, _ops: &mut OpCount) -> Result<Option<Decision>, EvlabError> {
        if self.t0.is_none() {
            return Ok(None);
        }
        // Decay the readout to the end of the current window.
        let mut logits = self.ed.logits_at(self.steps as u64);
        evlab_tensor::guard::sanitize_finite(&mut logits);
        Ok(Some(Decision {
            class: argmax(&logits),
            logits,
            events: std::mem::take(&mut self.events_since),
            t_us: self.order.last_t.unwrap_or(0),
        }))
    }

    fn as_snapshot(&self) -> Option<&dyn StateSnapshot> {
        Some(self)
    }

    fn as_snapshot_mut(&mut self) -> Option<&mut dyn StateSnapshot> {
        Some(self)
    }
}

impl StateSnapshot for SnnOnline {
    fn state_kind(&self) -> &'static str {
        "snn-online"
    }

    fn save_state(&self, enc: &mut Encoder) {
        // Construction parameters, recorded for shape validation only.
        enc.put_u16(self.downsample);
        enc.put_u64(self.dt_us);
        enc.put_u64(self.steps as u64);
        enc.put_u16(self.out_res.0);
        enc.put_u16(self.out_res.1);
        // Session-mutable state.
        enc.put_u64(self.block_last.len() as u64);
        for b in &self.block_last {
            enc.put_opt_u64(*b);
        }
        enc.put_opt_u64(self.t0);
        enc.put_opt_u64(self.order.last_t);
        save_opt_decision(&self.pending, enc);
        enc.put_u64(self.events_since as u64);
        enc.put_u64(self.current_step);
        self.ed.save_state(enc);
    }

    fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
        if dec.take_u16()? != self.downsample
            || dec.take_u64()? != self.dt_us
            || dec.take_u64()? != self.steps as u64
            || dec.take_u16()? != self.out_res.0
            || dec.take_u16()? != self.out_res.1
        {
            return Err(dec.corrupt("SNN session built with different parameters"));
        }
        let n = dec.take_u64()? as usize;
        if n != self.block_last.len() {
            return Err(dec.corrupt(format!(
                "snapshot has {n} blocks, session has {}",
                self.block_last.len()
            )));
        }
        let mut block_last = Vec::with_capacity(n);
        for _ in 0..n {
            block_last.push(dec.take_opt_u64()?);
        }
        let t0 = dec.take_opt_u64()?;
        let last_t = dec.take_opt_u64()?;
        let pending = load_opt_decision(dec)?;
        let events_since = dec.take_u64()? as usize;
        let current_step = dec.take_u64()?;
        // The engine commits atomically; only then commit the scalars so a
        // failed load leaves this session untouched.
        self.ed.load_state(dec)?;
        self.block_last = block_last;
        self.t0 = t0;
        self.order.last_t = last_t;
        self.pending = pending;
        self.events_since = events_since;
        self.current_step = current_step;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// CNN: windowed micro-batch flushes.
// ---------------------------------------------------------------------------

/// Streaming CNN session: events accumulate into a window buffer; the
/// frame encoder and network run once per `window_us` micro-batch (and on
/// [`OnlineClassifier::flush`]).
#[derive(Clone)]
pub struct CnnOnline {
    net: Sequential,
    config: CnnPipelineConfig,
    resolution: (u16, u16),
    window_us: u64,
    buffer: Vec<Event>,
    window_start: Option<u64>,
    order: OrderGuard,
    pending: Option<Decision>,
    events_since: usize,
}

impl CnnOnline {
    /// Builds a session over a trained pipeline; the network weights are
    /// cloned so the session is independent of the pipeline.
    /// [`OnlineConfig::window_us`] is the micro-batch flush interval
    /// (default [`DEFAULT_CNN_WINDOW_US`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the pipeline is untrained or the window is 0.
    pub fn with_config(pipeline: &CnnPipeline, config: &OnlineConfig) -> Result<Self, EvlabError> {
        let window_us = config.window_us.unwrap_or(DEFAULT_CNN_WINDOW_US);
        let net = pipeline
            .network()
            .ok_or_else(|| EvlabError::serve("CNN pipeline is untrained"))?
            .clone();
        if window_us == 0 {
            return Err(EvlabError::serve("CNN flush window must be positive"));
        }
        Ok(CnnOnline {
            net,
            config: *pipeline.config(),
            resolution: config.resolution,
            window_us,
            buffer: Vec::new(),
            window_start: None,
            order: OrderGuard::default(),
            pending: None,
            events_since: 0,
        })
    }

    /// Positional constructor, superseded by the unified config path.
    ///
    /// # Errors
    ///
    /// As [`CnnOnline::with_config`].
    #[deprecated(note = "use CnnOnline::with_config or SessionBuilder")]
    pub fn new(
        pipeline: &CnnPipeline,
        resolution: (u16, u16),
        window_us: u64,
    ) -> Result<Self, EvlabError> {
        Self::with_config(
            pipeline,
            &OnlineConfig::new(resolution).with_window_us(window_us),
        )
    }

    /// Encodes the buffered window and runs the network.
    fn flush_window(&mut self, ops: &mut OpCount) -> Decision {
        let encoder = make_encoder(self.config.frame);
        let frame = encoder.encode(&self.buffer, self.resolution, ops);
        let n = frame.len() as u64;
        ops.record_add(n);
        ops.record_mult(2 * n);
        let input = normalize(&frame);
        let mut logits = self.net.forward(&input, ops);
        // Faulted ingress must degrade decisions, never poison the frame
        // path.
        evlab_tensor::guard::sanitize_tensor(&mut logits);
        let t_us = self.buffer.last().map(|e| e.t.as_micros()).unwrap_or(0);
        self.buffer.clear();
        self.window_start = None;
        Decision {
            class: logits.argmax(),
            logits: logits.as_slice().to_vec(),
            events: std::mem::take(&mut self.events_since),
            t_us,
        }
    }
}

impl OnlineClassifier for CnnOnline {
    fn name(&self) -> &'static str {
        "cnn"
    }

    fn begin_session(&mut self) {
        self.buffer.clear();
        self.window_start = None;
        self.order.reset();
        self.pending = None;
        self.events_since = 0;
    }

    fn push_event(&mut self, event: Event, ops: &mut OpCount) -> Result<(), EvlabError> {
        let t = event.t.as_micros();
        self.order.check(t)?;
        self.events_since += 1;
        let start = *self.window_start.get_or_insert(t);
        if t.saturating_sub(start) >= self.window_us && !self.buffer.is_empty() {
            let decision = self.flush_window(ops);
            self.pending = Some(decision);
            self.window_start = Some(t);
        }
        self.buffer.push(event);
        Ok(())
    }

    fn poll_decision(&mut self) -> Option<Decision> {
        self.pending.take()
    }

    fn flush(&mut self, ops: &mut OpCount) -> Result<Option<Decision>, EvlabError> {
        if self.buffer.is_empty() {
            return Ok(None);
        }
        Ok(Some(self.flush_window(ops)))
    }

    fn as_snapshot(&self) -> Option<&dyn StateSnapshot> {
        Some(self)
    }

    fn as_snapshot_mut(&mut self) -> Option<&mut dyn StateSnapshot> {
        Some(self)
    }
}

impl StateSnapshot for CnnOnline {
    fn state_kind(&self) -> &'static str {
        "cnn-online"
    }

    fn save_state(&self, enc: &mut Encoder) {
        // Construction parameters, recorded for shape validation only.
        enc.put_u16(self.resolution.0);
        enc.put_u16(self.resolution.1);
        enc.put_u64(self.window_us);
        // Session-mutable state: the whole undecided micro-batch.
        enc.put_u64(self.buffer.len() as u64);
        for e in &self.buffer {
            save_event(e, enc);
        }
        enc.put_opt_u64(self.window_start);
        enc.put_opt_u64(self.order.last_t);
        save_opt_decision(&self.pending, enc);
        enc.put_u64(self.events_since as u64);
    }

    fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
        if dec.take_u16()? != self.resolution.0
            || dec.take_u16()? != self.resolution.1
            || dec.take_u64()? != self.window_us
        {
            return Err(dec.corrupt("CNN session built with different parameters"));
        }
        let n = dec.take_u64()? as usize;
        // 13 bytes per serialized event: a corrupt count cannot over-allocate.
        if n > dec.remaining() / 13 {
            return Err(dec.corrupt(format!("{n} buffered events exceed the payload")));
        }
        let mut buffer = Vec::with_capacity(n);
        for _ in 0..n {
            buffer.push(load_event(dec)?);
        }
        let window_start = dec.take_opt_u64()?;
        let last_t = dec.take_opt_u64()?;
        let pending = load_opt_decision(dec)?;
        let events_since = dec.take_u64()? as usize;
        self.buffer = buffer;
        self.window_start = window_start;
        self.order.last_t = last_t;
        self.pending = pending;
        self.events_since = events_since;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// GNN: per-event asynchronous updates.
// ---------------------------------------------------------------------------

/// Streaming GNN session: each event updates a *true sliding window*
/// ([`WindowedGnn`]) in graph-size-independent work. The eviction policy
/// bounds memory continuously — the engine never rebuilds the graph, so
/// there is no periodic logit cliff at a node-count boundary.
#[derive(Clone)]
pub struct GnnOnline {
    engine: WindowedGnn,
    order: OrderGuard,
    pending: Option<Decision>,
    events_since: usize,
    last_decision: Option<Decision>,
}

impl GnnOnline {
    /// Builds a session over a trained pipeline; the network weights are
    /// cloned so the session is independent of the pipeline.
    ///
    /// [`OnlineConfig::batch`] caps the live node count (default: the
    /// pipeline's `max_nodes`); [`OnlineConfig::window_us`], when set,
    /// additionally evicts nodes older than that age.
    /// [`OnlineConfig::resolution`] is ignored — event graphs carry their
    /// own coordinates.
    ///
    /// # Errors
    ///
    /// Returns an error if the pipeline is untrained.
    pub fn with_config(pipeline: &GnnPipeline, config: &OnlineConfig) -> Result<Self, EvlabError> {
        let net = pipeline
            .network()
            .ok_or_else(|| EvlabError::serve("GNN pipeline is untrained"))?
            .clone();
        let classes = net.classes();
        let max_nodes = config.batch.unwrap_or(pipeline.config().max_nodes).max(1);
        let policy = match config.window_us {
            Some(max_age_us) => WindowPolicy::Both {
                max_nodes,
                max_age_us,
            },
            None => WindowPolicy::MaxNodes(max_nodes),
        };
        let engine = WindowedGnn::new(net, *pipeline.graph_config(), policy, classes);
        Ok(GnnOnline {
            engine,
            order: OrderGuard::default(),
            pending: None,
            events_since: 0,
            last_decision: None,
        })
    }

    /// Positional constructor, superseded by the unified config path.
    /// Served with the pipeline's `max_nodes` as the count bound and no
    /// age bound.
    ///
    /// # Errors
    ///
    /// As [`GnnOnline::with_config`].
    #[deprecated(note = "use GnnOnline::with_config or SessionBuilder")]
    pub fn new(pipeline: &GnnPipeline) -> Result<Self, EvlabError> {
        // Resolution is unused by the graph paradigm; any value works.
        Self::with_config(pipeline, &OnlineConfig::new((0, 0)))
    }

    /// Number of live nodes currently in the sliding window.
    pub fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    /// The window's eviction policy.
    pub fn policy(&self) -> WindowPolicy {
        self.engine.graph().policy()
    }
}

impl OnlineClassifier for GnnOnline {
    fn name(&self) -> &'static str {
        "gnn"
    }

    fn begin_session(&mut self) {
        self.engine.reset();
        self.order.reset();
        self.pending = None;
        self.events_since = 0;
        self.last_decision = None;
    }

    fn push_event(&mut self, event: Event, ops: &mut OpCount) -> Result<(), EvlabError> {
        let t = event.t.as_micros();
        self.order.check(t)?;
        self.events_since += 1;
        // The window slides by itself: eviction happens inside the engine,
        // one node at a time, with no full-graph reset.
        let mut logits = self.engine.update(event, ops);
        // Faulted ingress must degrade decisions, never poison the graph.
        evlab_tensor::guard::sanitize_tensor(&mut logits);
        let decision = Decision {
            class: logits.argmax(),
            logits: logits.as_slice().to_vec(),
            events: std::mem::take(&mut self.events_since),
            t_us: t,
        };
        self.last_decision = Some(decision.clone());
        self.pending = Some(decision);
        Ok(())
    }

    fn poll_decision(&mut self) -> Option<Decision> {
        self.pending.take()
    }

    fn flush(&mut self, _ops: &mut OpCount) -> Result<Option<Decision>, EvlabError> {
        Ok(self.last_decision.take())
    }

    fn as_snapshot(&self) -> Option<&dyn StateSnapshot> {
        Some(self)
    }

    fn as_snapshot_mut(&mut self) -> Option<&mut dyn StateSnapshot> {
        Some(self)
    }
}

impl StateSnapshot for GnnOnline {
    fn state_kind(&self) -> &'static str {
        "gnn-online"
    }

    fn save_state(&self, enc: &mut Encoder) {
        self.engine.save_state(enc);
        enc.put_opt_u64(self.order.last_t);
        save_opt_decision(&self.pending, enc);
        enc.put_u64(self.events_since as u64);
        save_opt_decision(&self.last_decision, enc);
    }

    fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
        // Load into a clone so a failure further down the payload leaves
        // the live engine untouched.
        let mut engine = self.engine.clone();
        engine.load_state(dec)?;
        let last_t = dec.take_opt_u64()?;
        let pending = load_opt_decision(dec)?;
        let events_since = dec.take_u64()? as usize;
        let last_decision = load_opt_decision(dec)?;
        self.engine = engine;
        self.order.last_t = last_t;
        self.pending = pending;
        self.events_since = events_since;
        self.last_decision = last_decision;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Batch adapter.
// ---------------------------------------------------------------------------

/// Adapts any batch [`EventClassifier`] to the online interface by
/// buffering the session's events and classifying on flush — the
/// "store-then-process" fallback every paradigm supports, at the cost of
/// decision latency equal to the session length.
pub struct Batched<C: EventClassifier> {
    clf: C,
    resolution: (u16, u16),
    buffer: Vec<Event>,
    order: OrderGuard,
    events_since: usize,
}

impl<C: EventClassifier> Batched<C> {
    /// Wraps a (typically trained) batch classifier for streams of the
    /// given sensor resolution.
    pub fn new(clf: C, resolution: (u16, u16)) -> Self {
        Batched {
            clf,
            resolution,
            buffer: Vec::new(),
            order: OrderGuard::default(),
            events_since: 0,
        }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.clf
    }

    /// Mutable access to the wrapped classifier (e.g. to fit it).
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.clf
    }
}

impl<C: EventClassifier> OnlineClassifier for Batched<C> {
    fn name(&self) -> &'static str {
        self.clf.name()
    }

    fn begin_session(&mut self) {
        self.buffer.clear();
        self.order.reset();
        self.events_since = 0;
    }

    fn push_event(&mut self, event: Event, _ops: &mut OpCount) -> Result<(), EvlabError> {
        self.order.check(event.t.as_micros())?;
        self.events_since += 1;
        self.buffer.push(event);
        Ok(())
    }

    fn poll_decision(&mut self) -> Option<Decision> {
        None
    }

    fn flush(&mut self, ops: &mut OpCount) -> Result<Option<Decision>, EvlabError> {
        if self.buffer.is_empty() {
            return Ok(None);
        }
        let events = std::mem::take(&mut self.buffer);
        let t_us = events.last().map(|e| e.t.as_micros()).unwrap_or(0);
        let stream = EventStream::from_events(self.resolution, events)
            .map_err(EvlabError::event_order)?;
        let class = self.clf.predict(&stream, ops);
        Ok(Some(Decision {
            class,
            logits: Vec::new(),
            events: std::mem::take(&mut self.events_since),
            t_us,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn_pipeline::CnnPipelineConfig;
    use crate::gnn_pipeline::GnnPipelineConfig;
    use crate::snn_pipeline::SnnPipelineConfig;
    use evlab_datasets::shapes::shape_silhouettes;
    use evlab_datasets::{Dataset, DatasetConfig};
    use evlab_events::Polarity;

    fn tiny_data() -> Dataset {
        shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(6, 2))
    }

    #[test]
    fn snn_online_replays_batch_prediction() {
        let data = tiny_data();
        let mut pipe = SnnPipeline::new(
            SnnPipelineConfig::new().with_epochs(10).with_seed(1),
        );
        pipe.fit(&data);
        let stream = &data.test[0].stream;
        let mut batch_ops = OpCount::new();
        let batch_class = pipe.predict(stream, &mut batch_ops);
        let mut session =
            SnnOnline::with_config(&pipe, &OnlineConfig::new(data.resolution)).expect("trained");
        session.begin_session();
        let mut ops = OpCount::new();
        for e in stream.iter() {
            session.push_event(*e, &mut ops).expect("ordered");
        }
        let decision = session.flush(&mut ops).expect("flush").expect("decision");
        assert_eq!(decision.class, batch_class, "streaming replay agrees");
        assert!(decision.events > 0);
    }

    #[test]
    fn cnn_online_flushes_micro_batches() {
        let data = tiny_data();
        let mut pipe = CnnPipeline::new(
            CnnPipelineConfig::new().with_epochs(10).with_seed(1),
        );
        pipe.fit(&data);
        let stream = &data.test[0].stream;
        // Window much shorter than the sample: several mid-stream flushes.
        let mut session = CnnOnline::with_config(
            &pipe,
            &OnlineConfig::new(data.resolution).with_window_us(5_000),
        )
        .expect("trained");
        session.begin_session();
        let mut ops = OpCount::new();
        let mut decisions = 0usize;
        for e in stream.iter() {
            session.push_event(*e, &mut ops).expect("ordered");
            if session.poll_decision().is_some() {
                decisions += 1;
            }
        }
        if session.flush(&mut ops).expect("flush").is_some() {
            decisions += 1;
        }
        assert!(decisions >= 2, "micro-batching produced {decisions} decisions");
        // Whole-sample window + flush reproduces the batch prediction.
        let mut whole = CnnOnline::with_config(
            &pipe,
            &OnlineConfig::new(data.resolution).with_window_us(u64::MAX),
        )
        .expect("trained");
        whole.begin_session();
        for e in stream.iter() {
            whole.push_event(*e, &mut ops).expect("ordered");
        }
        let decision = whole.flush(&mut ops).expect("flush").expect("decision");
        let mut batch_ops = OpCount::new();
        assert_eq!(decision.class, pipe.predict(stream, &mut batch_ops));
    }

    #[test]
    fn gnn_online_bounds_graph_state() {
        let data = tiny_data();
        let mut pipe = GnnPipeline::new(
            GnnPipelineConfig::new()
                .with_epochs(10)
                .with_max_nodes(40)
                .with_seed(1),
        );
        pipe.fit(&data);
        let mut session =
            GnnOnline::with_config(&pipe, &OnlineConfig::new(data.resolution)).expect("trained");
        session.begin_session();
        let mut ops = OpCount::new();
        let mut decisions = 0usize;
        let mut saturated_at = None;
        for (i, e) in data.test[0].stream.iter().enumerate() {
            session.push_event(*e, &mut ops).expect("ordered");
            if let Some(d) = session.poll_decision() {
                assert!(d.class < data.num_classes);
                decisions += 1;
            }
            assert!(session.node_count() <= 40, "graph state stays bounded");
            if session.node_count() == 40 && saturated_at.is_none() {
                saturated_at = Some(i);
            }
            if saturated_at.is_some() {
                // The window slides instead of resetting: once full it
                // stays full — the old engine dropped back to 1 node here.
                assert_eq!(session.node_count(), 40, "no reset cliff at event {i}");
            }
        }
        assert_eq!(decisions, data.test[0].stream.len(), "one decision per event");
        assert!(saturated_at.is_some(), "stream long enough to fill the window");
    }

    #[test]
    fn gnn_online_age_window_evicts_stale_nodes() {
        let data = tiny_data();
        let mut pipe = GnnPipeline::new(
            GnnPipelineConfig::new().with_epochs(2).with_seed(1),
        );
        pipe.fit(&data);
        let config = OnlineConfig::new(data.resolution)
            .with_batch(64)
            .with_window_us(2_000);
        let mut session = GnnOnline::with_config(&pipe, &config).expect("trained");
        assert_eq!(
            session.policy(),
            WindowPolicy::Both { max_nodes: 64, max_age_us: 2_000 }
        );
        session.begin_session();
        let mut ops = OpCount::new();
        for i in 0..10u64 {
            session
                .push_event(Event::new(i * 100, 1, 1, Polarity::On), &mut ops)
                .expect("ordered");
        }
        assert_eq!(session.node_count(), 10);
        // A long silence ages everything out except the newcomer.
        session
            .push_event(Event::new(1_000_000, 2, 2, Polarity::On), &mut ops)
            .expect("ordered");
        assert_eq!(session.node_count(), 1, "age bound slid the window");
    }

    #[test]
    fn batched_adapter_serves_any_classifier() {
        let data = tiny_data();
        let mut pipe = CnnPipeline::new(
            CnnPipelineConfig::new().with_epochs(10).with_seed(1),
        );
        pipe.fit(&data);
        let stream = data.test[0].stream.clone();
        let mut batch_ops = OpCount::new();
        let expected = pipe.predict(&stream, &mut batch_ops);
        let mut session = Batched::new(pipe, data.resolution);
        session.begin_session();
        let mut ops = OpCount::new();
        for e in stream.iter() {
            session.push_event(*e, &mut ops).expect("ordered");
        }
        assert!(session.poll_decision().is_none(), "batch adapter decides on flush");
        let decision = session.flush(&mut ops).expect("flush").expect("decision");
        assert_eq!(decision.class, expected);
        assert_eq!(decision.events, stream.len());
    }

    #[test]
    fn sessions_reject_out_of_order_events() {
        let data = tiny_data();
        let mut pipe = GnnPipeline::new(GnnPipelineConfig::new().with_epochs(2).with_seed(1));
        pipe.fit(&data);
        let mut session = SessionBuilder::new(OnlineConfig::new(data.resolution))
            .gnn(&pipe)
            .build()
            .expect("trained");
        session.begin_session();
        let mut ops = OpCount::new();
        session
            .push_event(Event::new(1_000, 1, 1, Polarity::On), &mut ops)
            .expect("ordered");
        let err = session
            .push_event(Event::new(500, 1, 1, Polarity::On), &mut ops)
            .unwrap_err();
        assert!(err.to_string().contains("out-of-order"));
    }

    /// Pushes half the stream, snapshots, restores into `fresh`, then runs
    /// both to the end asserting bit-identical decision trajectories.
    fn assert_snapshot_resumes(
        mut live: Box<dyn OnlineClassifier + Send>,
        mut fresh: Box<dyn OnlineClassifier + Send>,
        stream: &EventStream,
    ) {
        live.begin_session();
        fresh.begin_session();
        let mut ops = OpCount::new();
        let half = stream.len() / 2;
        for e in stream.iter().take(half) {
            live.push_event(*e, &mut ops).expect("ordered");
        }
        let bytes =
            evlab_util::frame::snapshot_to_bytes(live.as_snapshot().expect("native session"));
        evlab_util::frame::restore_from_bytes(
            fresh.as_snapshot_mut().expect("native session"),
            &bytes,
        )
        .expect("valid snapshot");
        for e in stream.iter().skip(half) {
            live.push_event(*e, &mut ops).expect("ordered");
            fresh.push_event(*e, &mut ops).expect("ordered");
            let a = live.poll_decision();
            let b = fresh.poll_decision();
            match (&a, &b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.class, b.class);
                    assert_eq!(a.events, b.events);
                    assert_eq!(a.t_us, b.t_us);
                    for (x, y) in a.logits.iter().zip(&b.logits) {
                        assert_eq!(x.to_bits(), y.to_bits(), "bit-exact logits");
                    }
                }
                (None, None) => {}
                _ => panic!("decision cadence diverged after restore"),
            }
        }
        let fa = live.flush(&mut ops).expect("flush");
        let fb = fresh.flush(&mut ops).expect("flush");
        assert_eq!(fa.is_some(), fb.is_some());
        if let (Some(a), Some(b)) = (fa, fb) {
            assert_eq!(a.class, b.class);
            for (x, y) in a.logits.iter().zip(&b.logits) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn snn_session_snapshot_resumes_bit_identically() {
        let data = tiny_data();
        let mut pipe = SnnPipeline::new(SnnPipelineConfig::new().with_epochs(2).with_seed(1));
        pipe.fit(&data);
        let config = OnlineConfig::new(data.resolution);
        let make = || SessionBuilder::new(config).snn(&pipe).build().expect("trained");
        assert_snapshot_resumes(make(), make(), &data.test[0].stream);
    }

    #[test]
    fn cnn_session_snapshot_resumes_bit_identically() {
        let data = tiny_data();
        let mut pipe = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(2).with_seed(1));
        pipe.fit(&data);
        let config = OnlineConfig::new(data.resolution).with_window_us(5_000);
        let make = || SessionBuilder::new(config).cnn(&pipe).build().expect("trained");
        assert_snapshot_resumes(make(), make(), &data.test[0].stream);
    }

    #[test]
    fn gnn_session_snapshot_resumes_bit_identically() {
        let data = tiny_data();
        let mut pipe = GnnPipeline::new(
            GnnPipelineConfig::new().with_epochs(2).with_max_nodes(30).with_seed(1),
        );
        pipe.fit(&data);
        let config = OnlineConfig::new(data.resolution);
        let make = || SessionBuilder::new(config).gnn(&pipe).build().expect("trained");
        assert_snapshot_resumes(make(), make(), &data.test[0].stream);
    }

    #[test]
    fn snapshot_rejects_cross_paradigm_and_mismatched_sessions() {
        let data = tiny_data();
        let mut gnn = GnnPipeline::new(GnnPipelineConfig::new().with_epochs(2).with_seed(1));
        gnn.fit(&data);
        let mut cnn = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(2).with_seed(1));
        cnn.fit(&data);
        let config = OnlineConfig::new(data.resolution);
        let g = SessionBuilder::new(config).gnn(&gnn).build().expect("trained");
        let bytes = evlab_util::frame::snapshot_to_bytes(g.as_snapshot().expect("native"));
        let mut c = SessionBuilder::new(config).cnn(&cnn).build().expect("trained");
        assert!(matches!(
            evlab_util::frame::restore_from_bytes(c.as_snapshot_mut().expect("native"), &bytes),
            Err(FrameError::KindMismatch { .. })
        ));
        // Same paradigm, different construction parameters.
        let mut narrow = CnnOnline::with_config(
            &cnn,
            &OnlineConfig::new(data.resolution).with_window_us(1_234),
        )
        .expect("trained");
        let wide = CnnOnline::with_config(&cnn, &config).expect("trained");
        let bytes = evlab_util::frame::snapshot_to_bytes(&wide);
        assert!(narrow.load_state(&mut Decoder::new(&[])).is_err());
        assert!(matches!(
            evlab_util::frame::restore_from_bytes(&mut narrow, &bytes),
            Err(FrameError::Corrupt { .. })
        ));
    }

    #[test]
    fn batched_adapter_has_no_snapshot() {
        let data = tiny_data();
        let pipe = CnnPipeline::new(CnnPipelineConfig::new());
        let session = Batched::new(pipe, data.resolution);
        assert!(session.as_snapshot().is_none());
    }

    #[test]
    fn sanitize_repairs_nonfinite_decisions() {
        let mut d = Decision {
            class: 0,
            logits: vec![f32::NAN, 1.0, f32::INFINITY],
            events: 1,
            t_us: 0,
        };
        assert_eq!(d.sanitize(), 2);
        assert_eq!(d.class, 1, "argmax over repaired logits");
        assert!(d.logits.iter().all(|v| v.is_finite()));
        assert_eq!(d.sanitize(), 0, "already valid");
        let mut oob = Decision {
            class: 9,
            logits: vec![0.5, 2.0],
            events: 1,
            t_us: 0,
        };
        assert_eq!(oob.sanitize(), 1);
        assert_eq!(oob.class, 1, "out-of-range class recomputed");
    }

    #[test]
    fn untrained_pipelines_yield_typed_errors() {
        let config = OnlineConfig::new((16, 16));
        let snn = SnnPipeline::new(SnnPipelineConfig::new());
        assert!(SessionBuilder::new(config).snn(&snn).build().is_err());
        let cnn = CnnPipeline::new(CnnPipelineConfig::new());
        assert!(SessionBuilder::new(config).cnn(&cnn).build().is_err());
        let gnn = GnnPipeline::new(GnnPipelineConfig::new());
        assert!(SessionBuilder::new(config).gnn(&gnn).build().is_err());
        let err = SessionBuilder::new(config).build().map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("no paradigm"), "{err}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_delegate_to_config_path() {
        let data = tiny_data();
        let mut pipe = GnnPipeline::new(GnnPipelineConfig::new().with_epochs(2).with_seed(1));
        pipe.fit(&data);
        let via_new = GnnOnline::new(&pipe).expect("trained");
        let via_config =
            GnnOnline::with_config(&pipe, &OnlineConfig::new((0, 0))).expect("trained");
        assert_eq!(via_new.policy(), via_config.policy());
        let snn = SnnPipeline::new(SnnPipelineConfig::new());
        assert!(SnnOnline::new(&snn, (16, 16)).is_err());
        let cnn = CnnPipeline::new(CnnPipelineConfig::new());
        assert!(CnnOnline::new(&cnn, (16, 16), 1_000).is_err());
    }
}
