//! System-level metrics for the Table I comparison.

use evlab_hw::energy::EnergyModel;
use evlab_hw::gnn_accel::{GnnAccelerator, GnnDeployment};
use evlab_hw::snn_core::{NeuromorphicCore, UpdatePolicy};
use evlab_hw::zeroskip::ZeroSkipAccelerator;
use evlab_hw::CostReport;
use evlab_tensor::OpCount;
use evlab_util::obs;

/// How a paradigm is deployed, for latency accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeploymentStyle {
    /// Frame-based: decisions only when a window closes.
    Framed {
        /// Frame period in microseconds.
        window_us: f64,
    },
    /// Clocked event-driven: decisions every timestep.
    Stepped {
        /// Timestep in microseconds.
        dt_us: f64,
    },
    /// Fully event-driven: a decision after every event.
    PerEvent,
}

/// Time-to-decision latency: how long after the *decisive* event arrives
/// can the system react, given its deployment style and its compute
/// latency for one decision.
///
/// * Framed: on average half a window of waiting, plus preparation and a
///   full inference.
/// * Stepped: half a timestep plus one step of computation.
/// * Per-event: just the per-event computation.
pub fn time_to_decision_us(style: DeploymentStyle, compute_latency_us: f64) -> f64 {
    match style {
        DeploymentStyle::Framed { window_us } => window_us / 2.0 + compute_latency_us,
        DeploymentStyle::Stepped { dt_us } => dt_us / 2.0 + compute_latency_us,
        DeploymentStyle::PerEvent => compute_latency_us,
    }
}

/// Prices an SNN inference on the digital neuromorphic core.
pub fn price_snn(ops: &OpCount, param_words: usize, state_words: usize) -> CostReport {
    let _span = obs::span("core.metrics.price_snn");
    NeuromorphicCore::new(EnergyModel::nm45(), UpdatePolicy::Clocked)
        .price(ops, state_words, param_words)
}

/// Prices a CNN inference on the zero-skipping accelerator.
///
/// `activation_sparsity` feeds the compression model (NullHop stores
/// feature maps compressed).
pub fn price_cnn(ops: &OpCount, param_words: usize, activation_sparsity: f64) -> CostReport {
    let _span = obs::span("core.metrics.price_cnn");
    let compression = 1.0 / (1.0 - activation_sparsity.clamp(0.0, 0.95) + 0.0625);
    ZeroSkipAccelerator::new(EnergyModel::nm45()).price(ops, 0.0, compression.max(1.0), param_words)
}

/// Prices a GNN inference on the edge graph accelerator.
pub fn price_gnn(
    ops: &OpCount,
    edges: u64,
    feature_dim: usize,
    graph_words: usize,
) -> CostReport {
    let _span = obs::span("core.metrics.price_gnn");
    GnnAccelerator::new(EnergyModel::nm45(), GnnDeployment::Edge)
        .price(ops, edges, feature_dim, graph_words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framed_latency_dominated_by_window() {
        let framed = time_to_decision_us(DeploymentStyle::Framed { window_us: 30_000.0 }, 100.0);
        let per_event = time_to_decision_us(DeploymentStyle::PerEvent, 100.0);
        assert!(framed > 100.0 * per_event);
        assert_eq!(per_event, 100.0);
    }

    #[test]
    fn stepped_latency_between_the_two() {
        let framed = time_to_decision_us(DeploymentStyle::Framed { window_us: 30_000.0 }, 10.0);
        let stepped = time_to_decision_us(DeploymentStyle::Stepped { dt_us: 2_000.0 }, 10.0);
        let per_event = time_to_decision_us(DeploymentStyle::PerEvent, 10.0);
        assert!(per_event < stepped && stepped < framed);
    }

    #[test]
    fn pricing_functions_produce_nonzero_costs() {
        let mut ops = OpCount::new();
        ops.record_mac(10_000, 5_000);
        ops.record_add(1_000);
        let snn = price_snn(&ops, 10_000, 1_000);
        let cnn = price_cnn(&ops, 10_000, 0.5);
        let gnn = price_gnn(&ops, 2_000, 16, 20_000);
        for (name, r) in [("snn", snn), ("cnn", cnn), ("gnn", gnn)] {
            assert!(r.total_pj() > 0.0, "{name} zero energy");
            assert!(r.latency_us > 0.0, "{name} zero latency");
        }
    }

    #[test]
    fn cnn_compression_grows_with_sparsity() {
        let mut ops = OpCount::new();
        ops.record_mac(100_000, 50_000);
        let dense = price_cnn(&ops, 10_000, 0.0);
        let sparse = price_cnn(&ops, 10_000, 0.9);
        assert!(sparse.memory_pj < dense.memory_pj);
    }
}
