//! The event-graph pipeline: events → (optional uniform subsampling) →
//! incremental graph construction → graph convolutions.

use crate::pipeline::{EventClassifier, FitReport};
use evlab_datasets::Dataset;
use evlab_events::{Event, EventStream};
use evlab_gnn::build::{incremental_build, GraphConfig};
use evlab_gnn::network::{evaluate, train_batch, GnnConfig, GnnNetwork};
use evlab_gnn::EventGraph;
use evlab_tensor::optim::Adam;
use evlab_tensor::OpCount;
use evlab_util::Rng64;

/// Pipeline hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GnnPipelineConfig {
    /// Graph construction parameters.
    pub graph: GraphConfig,
    /// Maximum nodes per sample; longer streams are uniformly subsampled
    /// (standard practice in event-graph models to bound cost).
    pub max_nodes: usize,
    /// Hidden feature dimensions.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// `Some(k)` uses the B-spline edge kernel with `k` control points per
    /// dimension; `None` uses the linear relational kernel.
    pub kernel_size: Option<usize>,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl GnnPipelineConfig {
    /// Default: ≤ 256 nodes, two 16-dim relational conv layers.
    pub fn new() -> Self {
        GnnPipelineConfig {
            graph: GraphConfig::new(),
            max_nodes: 256,
            hidden: vec![16, 16],
            epochs: 25,
            batch: 8,
            lr: 0.01,
            kernel_size: None,
            seed: 0,
        }
    }

    /// Returns a copy with a different graph construction configuration.
    pub fn with_graph(mut self, graph: GraphConfig) -> Self {
        self.graph = graph;
        self
    }

    /// Returns a copy with a different node cap.
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Returns a copy with different hidden sizes.
    pub fn with_hidden(mut self, hidden: Vec<usize>) -> Self {
        self.hidden = hidden;
        self
    }

    /// Returns a copy with different epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with a different mini-batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Returns a copy with a different learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Returns a copy using the B-spline edge kernel with `k` control
    /// points per dimension.
    pub fn with_kernel_size(mut self, k: usize) -> Self {
        self.kernel_size = Some(k);
        self
    }

    /// Returns a copy with a different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for GnnPipelineConfig {
    fn default() -> Self {
        GnnPipelineConfig::new()
    }
}

/// The event-graph classifier.
pub struct GnnPipeline {
    config: GnnPipelineConfig,
    net: Option<GnnNetwork>,
}

impl GnnPipeline {
    /// Creates an untrained pipeline; the RNG seed comes from
    /// [`GnnPipelineConfig::seed`] (see
    /// [`GnnPipelineConfig::with_seed`]).
    pub fn new(config: GnnPipelineConfig) -> Self {
        GnnPipeline { config, net: None }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &GnnPipelineConfig {
        &self.config
    }

    /// Uniformly subsamples a stream to at most `max_nodes` events.
    fn subsample(&self, stream: &EventStream) -> Vec<Event> {
        let events = stream.as_slice();
        if events.len() <= self.config.max_nodes {
            return events.to_vec();
        }
        let stride = events.len() as f64 / self.config.max_nodes as f64;
        (0..self.config.max_nodes)
            .map(|i| events[(i as f64 * stride) as usize])
            .collect()
    }

    /// Builds the event graph for a stream (subsampling + incremental
    /// insertion), recording construction cost.
    pub fn build_graph(&self, stream: &EventStream, ops: &mut OpCount) -> EventGraph {
        let events = self.subsample(stream);
        incremental_build(&events, &self.config.graph, ops)
    }

    /// The trained network, if any.
    pub fn network(&self) -> Option<&GnnNetwork> {
        self.net.as_ref()
    }

    /// Mutable access to the trained network (for streaming inference).
    pub fn network_mut(&mut self) -> Option<&mut GnnNetwork> {
        self.net.as_mut()
    }

    /// The graph construction configuration.
    pub fn graph_config(&self) -> &GraphConfig {
        &self.config.graph
    }
}

impl EventClassifier for GnnPipeline {
    fn name(&self) -> &'static str {
        "gnn"
    }

    fn fit(&mut self, data: &Dataset) -> FitReport {
        let mut rng = Rng64::seed_from_u64(self.config.seed);
        let mut gnn_config =
            GnnConfig::new(data.num_classes).with_hidden(self.config.hidden.clone());
        if let Some(k) = self.config.kernel_size {
            gnn_config = gnn_config.with_spline_kernel(k);
        }
        gnn_config.offset_scale = [
            self.config.graph.radius as f32,
            self.config.graph.radius as f32,
            (self.config.graph.horizon_us as f64 * self.config.graph.beta) as f32,
        ];
        let mut net = GnnNetwork::new(&gnn_config, &mut rng);
        let mut ops = OpCount::new();
        let samples: Vec<(EventGraph, usize)> = data
            .train
            .iter()
            .filter(|s| !s.stream.is_empty())
            .map(|s| (self.build_graph(&s.stream, &mut ops), s.label))
            .collect();
        let mut opt = Adam::new(self.config.lr);
        let mut last_loss = 0.0;
        for _ in 0..self.config.epochs {
            for chunk in samples.chunks(self.config.batch) {
                let (loss, _) = train_batch(&mut net, chunk, &mut opt, &mut ops);
                last_loss = loss;
            }
        }
        let train_accuracy = evaluate(&mut net, &samples, &mut ops);
        self.net = Some(net);
        FitReport {
            train_accuracy,
            final_loss: last_loss,
            epochs: self.config.epochs,
            train_ops: ops,
        }
    }

    fn predict(&mut self, stream: &EventStream, ops: &mut OpCount) -> usize {
        let graph = self.build_graph(stream, ops);
        let net = self.net.as_mut().expect("fit before predict");
        if graph.node_count() == 0 {
            return 0;
        }
        net.predict(&graph, ops)
    }

    fn preparation_ops(&mut self, stream: &EventStream) -> OpCount {
        let mut ops = OpCount::new();
        self.build_graph(stream, &mut ops);
        ops
    }

    fn param_count(&self) -> usize {
        self.net.as_ref().map(|n| n.param_count()).unwrap_or(0)
    }

    fn state_words(&self) -> usize {
        // Deployed state: cached features of the sliding-window graph.
        let feature_words: usize = self.config.hidden.iter().sum();
        self.config.max_nodes * (feature_words + 4) // + (x, y, t, p)
    }

    /// GNN computation sparsity: fraction of the sensor's pixel sites that
    /// trigger no computation at all — graph convolutions only run where
    /// events exist ("computation follows the data", §IV).
    fn computation_sparsity(&mut self, stream: &EventStream) -> f64 {
        let mut ops = OpCount::new();
        let graph = self.build_graph(stream, &mut ops);
        let mut active = std::collections::HashSet::new();
        for e in graph.events() {
            active.insert((e.x, e.y));
        }
        1.0 - active.len() as f64 / stream.pixel_count().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::test_accuracy;
    use evlab_datasets::shapes::shape_silhouettes;
    use evlab_datasets::DatasetConfig;

    fn tiny_data() -> Dataset {
        shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(6, 2))
    }

    #[test]
    fn gnn_pipeline_learns_shapes() {
        let data = tiny_data();
        let mut clf = GnnPipeline::new(GnnPipelineConfig::new().with_epochs(30).with_seed(1));
        let report = clf.fit(&data);
        assert!(report.train_accuracy > 0.7, "train acc {}", report.train_accuracy);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &data, &mut ops);
        assert!(acc > 0.4, "test acc {acc} above 4-class chance");
    }

    #[test]
    fn subsampling_caps_nodes() {
        let data = shape_silhouettes(&DatasetConfig::tiny((32, 32)).with_split(1, 0));
        let config = GnnPipelineConfig {
            max_nodes: 50,
            ..GnnPipelineConfig::new()
        };
        let clf = GnnPipeline::new(config.with_seed(1));
        let mut ops = OpCount::new();
        for s in &data.train {
            let g = clf.build_graph(&s.stream, &mut ops);
            assert!(g.node_count() <= 50);
        }
    }

    #[test]
    fn preparation_never_exceeds_naive_scan() {
        // On a tiny 16x16 array with a 5 px radius the spatial hash cannot
        // prune much (everything is local), but it must never cost more
        // than the naive scan; on larger arrays it wins by orders of
        // magnitude (see evlab-gnn::build tests and the graph_build bench).
        let data = tiny_data();
        let clf = GnnPipeline::new(GnnPipelineConfig::new().with_seed(1));
        let stream = &data.test[0].stream;
        let mut prep = OpCount::new();
        clf.build_graph(stream, &mut prep);
        let events: Vec<_> = stream.as_slice().iter().copied().take(256).collect();
        let mut naive = OpCount::new();
        evlab_gnn::build::naive_build(&events, clf.graph_config(), &mut naive);
        assert!(
            prep.mults <= naive.mults,
            "incremental {} must not exceed naive {}",
            prep.mults,
            naive.mults
        );
    }
}
