//! The spiking pipeline: events → (optional spatial downsample) → spike
//! train → LIF network trained with surrogate-gradient BPTT.

use crate::pipeline::{EventClassifier, FitReport};
use evlab_datasets::Dataset;
use evlab_events::downsample::SpatialDownsampler;
use evlab_events::EventStream;
use evlab_snn::encode::{events_to_spikes, SpikeTrain};
use evlab_snn::network::{evaluate, train_batch, SnnConfig, SnnNetwork};
use evlab_tensor::optim::Adam;
use evlab_tensor::OpCount;
use evlab_util::Rng64;

/// Pipeline hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SnnPipelineConfig {
    /// Spatial downsampling factor before spike encoding (1 disables).
    pub downsample: u16,
    /// Timestep duration in microseconds.
    pub dt_us: u64,
    /// Number of timesteps simulated per sample.
    pub steps: usize,
    /// Hidden layer sizes.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl SnnPipelineConfig {
    /// Default: 2× downsample, 2 ms steps, 16 steps, one hidden layer.
    pub fn new() -> Self {
        SnnPipelineConfig {
            downsample: 2,
            dt_us: 2_000,
            steps: 16,
            hidden: vec![64],
            epochs: 25,
            batch: 8,
            lr: 0.005,
            seed: 0,
        }
    }

    /// Returns a copy with a different spatial downsampling factor.
    pub fn with_downsample(mut self, downsample: u16) -> Self {
        self.downsample = downsample;
        self
    }

    /// Returns a copy with a different timestep duration.
    pub fn with_dt_us(mut self, dt_us: u64) -> Self {
        self.dt_us = dt_us;
        self
    }

    /// Returns a copy with a different number of timesteps.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Returns a copy with different hidden sizes.
    pub fn with_hidden(mut self, hidden: Vec<usize>) -> Self {
        self.hidden = hidden;
        self
    }

    /// Returns a copy with different epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with a different mini-batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Returns a copy with a different learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Returns a copy with a different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SnnPipelineConfig {
    fn default() -> Self {
        SnnPipelineConfig::new()
    }
}

/// The spiking classifier.
pub struct SnnPipeline {
    config: SnnPipelineConfig,
    net: Option<SnnNetwork>,
    input_size: usize,
}

impl SnnPipeline {
    /// Creates an untrained pipeline; the RNG seed comes from
    /// [`SnnPipelineConfig::seed`] (see
    /// [`SnnPipelineConfig::with_seed`]).
    pub fn new(config: SnnPipelineConfig) -> Self {
        SnnPipeline {
            config,
            net: None,
            input_size: 0,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SnnPipelineConfig {
        &self.config
    }

    /// Encodes a stream into the pipeline's spike representation.
    pub fn encode(&self, stream: &EventStream, ops: &mut OpCount) -> SpikeTrain {
        let reduced = if self.config.downsample > 1 {
            // Dead time = one timestep: a block forwards at most one event
            // per step, which is all the binning can see anyway.
            let down = SpatialDownsampler::new(self.config.downsample, self.config.dt_us);
            let out = down.apply(stream);
            ops.record_compare(stream.len() as u64);
            out
        } else {
            stream.clone()
        };
        // Binning writes one spike record per surviving event.
        ops.record_write(reduced.len() as u64);
        events_to_spikes(&reduced, self.config.dt_us, self.config.steps)
    }

    /// The trained network, if any.
    pub fn network(&self) -> Option<&SnnNetwork> {
        self.net.as_ref()
    }
}

impl EventClassifier for SnnPipeline {
    fn name(&self) -> &'static str {
        "snn"
    }

    fn fit(&mut self, data: &Dataset) -> FitReport {
        let mut rng = Rng64::seed_from_u64(self.config.seed);
        let (w, h) = data.resolution;
        let dw = w.div_ceil(self.config.downsample);
        let dh = h.div_ceil(self.config.downsample);
        self.input_size = 2 * dw as usize * dh as usize;
        let snn_config = SnnConfig::new(self.input_size, data.num_classes)
            .with_hidden(self.config.hidden.clone());
        let mut net = SnnNetwork::new(snn_config, &mut rng);
        let mut ops = OpCount::new();
        let samples: Vec<(SpikeTrain, usize)> = data
            .train
            .iter()
            .map(|s| (self.encode(&s.stream, &mut ops), s.label))
            .collect();
        let mut opt = Adam::new(self.config.lr);
        let mut last_loss = 0.0;
        for _ in 0..self.config.epochs {
            for chunk in samples.chunks(self.config.batch) {
                let (loss, _) = train_batch(&mut net, chunk, &mut opt, &mut ops);
                last_loss = loss;
            }
        }
        let train_accuracy = evaluate(&mut net, &samples, &mut ops);
        self.net = Some(net);
        FitReport {
            train_accuracy,
            final_loss: last_loss,
            epochs: self.config.epochs,
            train_ops: ops,
        }
    }

    fn predict(&mut self, stream: &EventStream, ops: &mut OpCount) -> usize {
        let train = self.encode(stream, ops);
        let net = self.net.as_mut().expect("fit before predict");
        net.predict(&train, ops)
    }

    fn preparation_ops(&mut self, stream: &EventStream) -> OpCount {
        let mut ops = OpCount::new();
        self.encode(stream, &mut ops);
        ops
    }

    fn param_count(&self) -> usize {
        self.net.as_ref().map(|n| n.param_count()).unwrap_or(0)
    }

    fn state_words(&self) -> usize {
        self.net.as_ref().map(|n| n.state_count()).unwrap_or(0)
    }

    /// SNN computation sparsity: fraction of the *dense-equivalent*
    /// synaptic work (every input wired every step) skipped because inputs
    /// and hidden neurons stay silent — the event-driven advantage of
    /// §III-A.
    fn computation_sparsity(&mut self, stream: &EventStream) -> f64 {
        let mut ops = OpCount::new();
        self.predict(stream, &mut ops);
        let net = self.net.as_ref().expect("fit before sparsity probe");
        let dense_synaptic: u64 = net
            .layers()
            .iter()
            .map(|l| (l.in_size() * l.out_size()) as u64)
            .sum::<u64>()
            * self.config.steps as u64;
        if dense_synaptic == 0 {
            return 0.0;
        }
        (1.0 - ops.adds as f64 / dense_synaptic as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::test_accuracy;
    use evlab_datasets::shapes::shape_silhouettes;
    use evlab_datasets::DatasetConfig;

    fn tiny_data() -> Dataset {
        shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(6, 2))
    }

    #[test]
    fn snn_pipeline_learns_shapes() {
        let data = tiny_data();
        let config = SnnPipelineConfig {
            hidden: vec![48],
            epochs: 40,
            ..SnnPipelineConfig::new()
        };
        let mut clf = SnnPipeline::new(config.with_seed(1));
        let report = clf.fit(&data);
        assert!(report.train_accuracy > 0.6, "train acc {}", report.train_accuracy);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &data, &mut ops);
        assert!(acc > 0.4, "test acc {acc} above 4-class chance");
        // Event-driven inference: add-dominated.
        assert!(ops.adds > 0 && ops.macs == 0);
    }

    #[test]
    fn encoding_downsamples_input() {
        let data = tiny_data();
        let clf = SnnPipeline::new(SnnPipelineConfig::new().with_seed(1));
        let mut ops = OpCount::new();
        let train = clf.encode(&data.test[0].stream, &mut ops);
        // 16x16 at 2x downsample -> 8x8 -> 2*64 inputs.
        assert_eq!(train.size(), 128);
        assert_eq!(train.num_steps(), 16);
    }

    #[test]
    fn preparation_is_cheap() {
        let data = tiny_data();
        let mut clf = SnnPipeline::new(SnnPipelineConfig::new().with_seed(1));
        let prep = clf.preparation_ops(&data.test[0].stream);
        assert_eq!(prep.macs, 0);
        assert_eq!(prep.adds, 0, "no arithmetic — events pass through");
    }
}
