//! The dichotomy framework — the paper's central contribution, made
//! executable.
//!
//! The paper compares three ways of processing event-camera data (dense
//! frame CNNs, SNNs, event-graph GNNs) along twelve qualitative axes
//! (its Table I). This crate turns that comparison into a measurement:
//!
//! * [`pipeline::EventClassifier`] — one trait unifying the three
//!   paradigms: fit on an event [`Dataset`], predict on an event stream,
//!   report parameters/state and per-inference operation counts.
//! * [`cnn_pipeline`], [`snn_pipeline`], [`gnn_pipeline`] — the three
//!   implementations, each assembled from the corresponding paradigm crate.
//! * [`metrics`] — the system-level metrics of Table I: time-to-decision
//!   latency, preparation cost, sparsity, memory traffic.
//! * [`dichotomy`] — [`dichotomy::ComparisonRunner`]: trains all three on
//!   the same dataset and measures every axis.
//! * [`table`] — renders the measured Table I with derived `++`/`+`/`−`
//!   grades next to the paper's published grades.
//! * [`online`] — [`online::OnlineClassifier`]: the streaming counterpart
//!   of the batch trait, driven one event at a time by `evlab-serve`.
//! * [`prelude`] — one `use evlab_core::prelude::*;` for the whole
//!   session-facing API (pipelines, configs, both traits).
//!
//! # Examples
//!
//! ```no_run
//! use evlab_core::dichotomy::{ComparisonConfig, ComparisonRunner};
//! use evlab_datasets::{shapes::shape_silhouettes, DatasetConfig};
//!
//! let data = shape_silhouettes(&DatasetConfig::new((32, 32)));
//! let runner = ComparisonRunner::new(ComparisonConfig::fast());
//! let report = runner.run(&data, 42);
//! println!("{}", report.render());
//! ```

pub mod cnn_pipeline;
pub mod dichotomy;
pub mod flow;
pub mod gnn_pipeline;
pub mod metrics;
pub mod online;
pub mod pipeline;
pub mod snn_pipeline;
pub mod table;

pub use dichotomy::{ComparisonConfig, ComparisonRunner, DichotomyReport};
pub use evlab_datasets::Dataset;
pub use pipeline::{EventClassifier, FitReport};

/// Everything a session-facing consumer needs in one import: the three
/// pipelines with their builder-style configs, the batch and streaming
/// classification traits, and the native online sessions.
pub mod prelude {
    pub use crate::cnn_pipeline::{CnnPipeline, CnnPipelineConfig, FrameKind};
    pub use crate::dichotomy::{ComparisonConfig, ComparisonRunner, DichotomyReport};
    pub use crate::gnn_pipeline::{GnnPipeline, GnnPipelineConfig};
    pub use crate::online::{
        Batched, CnnOnline, Decision, GnnOnline, OnlineClassifier, OnlineConfig,
        SessionBuilder, SnnOnline,
    };
    pub use crate::pipeline::{test_accuracy, EventClassifier, FitReport};
    pub use crate::snn_pipeline::{SnnPipeline, SnnPipelineConfig};
    pub use evlab_datasets::Dataset;
}
