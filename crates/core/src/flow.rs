//! Event-based optical-flow estimation (paper §IV task list, [53],[57],[72]).
//!
//! Two estimators over the [`FlowDataset`]:
//!
//! * [`plane_fit_flow`] — the classical local-plane-fit method: moving
//!   edges trace planes in (x, y, t) space, and the gradient of the local
//!   time surface is the inverse normal velocity. No learning; the
//!   domain baseline every event-flow paper compares against.
//! * [`GnnFlowRegressor`] — an event-graph network with a 2-output
//!   regression head trained with MSE, predicting the global (vx, vy):
//!   the §IV "event-GNNs do flow" claim in miniature.

use evlab_datasets::flow::{FlowDataset, FlowSample};
use evlab_events::EventStream;
use evlab_gnn::build::GraphConfig;
use evlab_gnn::network::{GnnConfig, GnnNetwork};
use evlab_gnn::EventGraph;
use evlab_tensor::loss::mse;
use evlab_tensor::optim::{Adam, Optimizer};
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;

/// Endpoint error between an estimate and the ground truth, in px/µs.
pub fn endpoint_error(estimate: (f64, f64), truth: (f64, f64)) -> f64 {
    ((estimate.0 - truth.0).powi(2) + (estimate.1 - truth.1).powi(2)).sqrt()
}

/// Classical plane-fit flow: for each event, least-squares fit
/// `t = a + b·x + c·y` over the recent events in its spatial
/// neighbourhood; the local normal flow is `(b, c) / (b² + c²)`. The
/// global estimate is the component-wise median of the local fits (robust
/// to the aperture problem on textured scenes).
///
/// Returns `None` when fewer than `min_fits` neighbourhoods produce a
/// stable fit.
pub fn plane_fit_flow(
    stream: &EventStream,
    radius: u16,
    window_us: u64,
    min_fits: usize,
) -> Option<(f64, f64)> {
    let (w, h) = stream.resolution();
    // Polarity-separated time surfaces: ON and OFF edges trace *different*
    // planes (offset by the object width over speed); mixing them corrupts
    // the fit.
    let mut last: Vec<Option<u64>> = vec![None; 2 * w as usize * h as usize];
    let mut vx = Vec::new();
    let mut vy = Vec::new();
    for e in stream.iter() {
        let p = e.polarity.channel();
        // Gather the most recent same-polarity timestamps nearby.
        let mut pts: Vec<(f64, f64, f64)> = Vec::new();
        for dy in -(radius as i32)..=radius as i32 {
            for dx in -(radius as i32)..=radius as i32 {
                let nx = e.x as i32 + dx;
                let ny = e.y as i32 + dy;
                if nx < 0 || ny < 0 || nx >= w as i32 || ny >= h as i32 {
                    continue;
                }
                let idx = (p * h as usize + ny as usize) * w as usize + nx as usize;
                if let Some(t) = last[idx] {
                    if e.t.as_micros().saturating_sub(t) <= window_us {
                        pts.push((nx as f64, ny as f64, t as f64));
                    }
                }
            }
        }
        last[(p * h as usize + e.y as usize) * w as usize + e.x as usize] =
            Some(e.t.as_micros());
        if pts.len() < 6 {
            continue;
        }
        if let Some((b, c)) = fit_plane(&pts) {
            let mag_sq = b * b + c * c;
            // Reject near-flat fits (no motion information) and absurd
            // slopes (noise). Slopes are in us/px: accept speeds in
            // [1e-4, 0.1] px/us.
            if (1e2..1e8).contains(&mag_sq) {
                vx.push(b / mag_sq);
                vy.push(c / mag_sq);
            }
        }
    }
    if vx.len() < min_fits {
        return None;
    }
    Some((median(&mut vx), median(&mut vy)))
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values[values.len() / 2]
}

/// Least-squares plane `t = a + b x + c y`; returns `(b, c)`.
fn fit_plane(pts: &[(f64, f64, f64)]) -> Option<(f64, f64)> {
    let n = pts.len() as f64;
    let (mut sx, mut sy, mut st) = (0.0, 0.0, 0.0);
    for &(x, y, t) in pts {
        sx += x;
        sy += y;
        st += t;
    }
    let (mx, my, mt) = (sx / n, sy / n, st / n);
    let (mut sxx, mut sxy, mut syy, mut sxt, mut syt) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(x, y, t) in pts {
        let (dx, dy, dt) = (x - mx, y - my, t - mt);
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
        sxt += dx * dt;
        syt += dy * dt;
    }
    let det = sxx * syy - sxy * sxy;
    if det.abs() < 1e-9 {
        return None;
    }
    Some(((syt * -sxy + sxt * syy) / det, (syt * sxx - sxt * sxy) / det))
}

/// Evaluates the plane-fit estimator over a dataset; returns the mean
/// endpoint error in px/µs (skipped samples count as the mean speed —
/// the "predict nothing" penalty).
pub fn plane_fit_epe(data: &FlowDataset, radius: u16, window_us: u64) -> f64 {
    let fallback = data.mean_speed();
    let samples: Vec<&FlowSample> = data.test.iter().collect();
    let mut total = 0.0;
    for s in &samples {
        let err = match plane_fit_flow(&s.stream, radius, window_us, 10) {
            Some(est) => endpoint_error(est, s.velocity),
            None => fallback,
        };
        total += err;
    }
    total / samples.len().max(1) as f64
}

/// An event-graph flow regressor: graph convolutions + mean pooling + a
/// 2-output linear head trained with MSE.
pub struct GnnFlowRegressor {
    net: GnnNetwork,
    graph: GraphConfig,
    max_nodes: usize,
    /// Velocity normalization: targets are divided by this scale during
    /// training (px/µs).
    pub velocity_scale: f64,
}

impl GnnFlowRegressor {
    /// Creates an untrained regressor.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        GnnFlowRegressor {
            net: GnnNetwork::new(&GnnConfig::new(2).with_hidden(vec![16, 16]), &mut rng),
            graph: GraphConfig::new(),
            max_nodes: 256,
            velocity_scale: 0.003,
        }
    }

    fn build_graph(&self, stream: &EventStream, ops: &mut OpCount) -> EventGraph {
        let events = stream.as_slice();
        let sampled: Vec<_> = if events.len() <= self.max_nodes {
            events.to_vec()
        } else {
            let stride = events.len() as f64 / self.max_nodes as f64;
            (0..self.max_nodes)
                .map(|i| events[(i as f64 * stride) as usize])
                .collect()
        };
        evlab_gnn::build::incremental_build(&sampled, &self.graph, ops)
    }

    /// Predicts `(vx, vy)` in px/µs.
    pub fn predict(&mut self, stream: &EventStream, ops: &mut OpCount) -> (f64, f64) {
        let graph = self.build_graph(stream, ops);
        if graph.node_count() == 0 {
            return (0.0, 0.0);
        }
        let out = self.net.forward(&graph, ops);
        (
            out.as_slice()[0] as f64 * self.velocity_scale,
            out.as_slice()[1] as f64 * self.velocity_scale,
        )
    }

    /// Trains for `epochs` over the dataset's training split; returns the
    /// final mean training loss.
    pub fn fit(&mut self, data: &FlowDataset, epochs: usize, ops: &mut OpCount) -> f32 {
        let graphs: Vec<(EventGraph, Tensor)> = data
            .train
            .iter()
            .filter(|s| !s.stream.is_empty())
            .map(|s| {
                let target = Tensor::from_vec(
                    &[2],
                    vec![
                        (s.velocity.0 / self.velocity_scale) as f32,
                        (s.velocity.1 / self.velocity_scale) as f32,
                    ],
                )
                .expect("shape");
                (self.build_graph(&s.stream, ops), target)
            })
            .collect();
        let mut opt = Adam::new(0.01);
        let mut last = 0.0;
        for _ in 0..epochs {
            let mut loss_sum = 0.0;
            for (graph, target) in &graphs {
                let out = self.net.forward(graph, ops);
                let (loss, grad) = mse(&out, target);
                loss_sum += loss;
                self.net.backward(graph, &grad, ops);
                let mut params = self.net.params_mut();
                let scale = 1.0;
                for p in params.iter_mut() {
                    p.grad.scale_assign(scale);
                }
                opt.step(&mut params);
            }
            last = loss_sum / graphs.len().max(1) as f32;
        }
        last
    }

    /// Mean endpoint error over the test split, px/µs.
    pub fn epe(&mut self, data: &FlowDataset, ops: &mut OpCount) -> f64 {
        let mut total = 0.0;
        for s in &data.test {
            let est = self.predict(&s.stream, ops);
            total += endpoint_error(est, s.velocity);
        }
        total / data.test.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_datasets::DatasetConfig;
    use evlab_sensor::scene::MovingBar;
    use evlab_sensor::{CameraConfig, EventCamera, PixelConfig};

    #[test]
    fn plane_fit_recovers_bar_velocity() {
        // A vertical bar sweeping at a known speed: the time surface is an
        // exact plane t = x / v.
        let v = 0.002; // px/us
        let camera = EventCamera::new(
            CameraConfig::new((48, 16)).with_pixel(PixelConfig::ideal()),
        );
        let stream = camera.record(&MovingBar::horizontal(v, 3.0), 0, 20_000, 1);
        let (vx, vy) =
            plane_fit_flow(&stream, 3, 5_000, 10).expect("enough structure");
        assert!(
            (vx - v).abs() < 0.3 * v,
            "vx {vx} vs truth {v}"
        );
        assert!(vy.abs() < 0.3 * v, "vy {vy} should be ~0");
    }

    #[test]
    fn plane_fit_beats_blind_guess_on_texture() {
        let config = DatasetConfig::tiny((32, 32)).with_split(2, 3);
        let data = evlab_datasets::flow::translating_texture(&config);
        let epe = plane_fit_epe(&data, 2, 3_000);
        let blind = data.mean_speed(); // error of predicting zero motion
        assert!(
            epe < blind,
            "plane fit EPE {epe} must beat zero-motion {blind}"
        );
    }

    #[test]
    fn gnn_regressor_learns_flow() {
        let config = DatasetConfig::tiny((32, 32)).with_split(4, 2);
        let data = evlab_datasets::flow::translating_texture(&config);
        let mut ops = OpCount::new();
        let mut reg = GnnFlowRegressor::new(3);
        let before = reg.epe(&data, &mut ops);
        let final_loss = reg.fit(&data, 30, &mut ops);
        let after = reg.epe(&data, &mut ops);
        assert!(
            after < before,
            "training must reduce EPE: {before} -> {after} (loss {final_loss})"
        );
        assert!(
            after < data.mean_speed(),
            "EPE {after} must beat zero-motion {}",
            data.mean_speed()
        );
    }

    #[test]
    fn endpoint_error_is_a_metric() {
        assert_eq!(endpoint_error((1.0, 0.0), (1.0, 0.0)), 0.0);
        assert!((endpoint_error((0.0, 0.0), (3.0, 4.0)) - 5.0).abs() < 1e-12);
    }
}
