//! The dense-frame CNN pipeline.
//!
//! Events are accumulated into a frame over the whole sample window (the
//! "simplest solution" of §III-B) or a voxel grid (which retains coarse
//! timing), then classified with the LeNet-style CNN of `evlab-cnn`.

use crate::pipeline::{EventClassifier, FitReport};
use evlab_cnn::encode::{normalize, FrameEncoder, Hats, TwoChannel, VoxelGrid};
use evlab_cnn::model::{build_cnn, CnnConfig};
use evlab_datasets::Dataset;
use evlab_events::EventStream;
use evlab_tensor::network::{evaluate, train_batch};
use evlab_tensor::optim::Adam;
use evlab_tensor::{OpCount, Sequential, Tensor};
use evlab_util::Rng64;

/// Which frame representation the pipeline feeds the CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Two-channel polarity histogram — discards intra-window timing.
    TwoChannel,
    /// Voxel grid with the given temporal bins — retains coarse timing.
    VoxelGrid(usize),
    /// Histograms of averaged time surfaces over `cell`-pixel regions with
    /// a 3×3 surface patch — the HATS descriptor [Sironi et al. 2018].
    Hats {
        /// Cell size in pixels.
        cell: usize,
    },
}

/// Pipeline hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnnPipelineConfig {
    /// Frame representation.
    pub frame: FrameKind,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Width multiplier over the base architecture.
    pub width: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl CnnPipelineConfig {
    /// Default: two-channel frames, 20 epochs.
    pub fn new() -> Self {
        CnnPipelineConfig {
            frame: FrameKind::TwoChannel,
            epochs: 20,
            batch: 8,
            lr: 0.003,
            width: 1,
            seed: 0,
        }
    }

    /// Returns a copy with a different frame kind.
    pub fn with_frame(mut self, frame: FrameKind) -> Self {
        self.frame = frame;
        self
    }

    /// Returns a copy with different epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with a different mini-batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Returns a copy with a different learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Returns a copy with a different width multiplier.
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// Returns a copy with a different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for CnnPipelineConfig {
    fn default() -> Self {
        CnnPipelineConfig::new()
    }
}

/// Builds the frame encoder for a [`FrameKind`] (shared between the batch
/// pipeline and the online session in `crate::online`).
pub(crate) fn make_encoder(frame: FrameKind) -> Box<dyn FrameEncoder> {
    match frame {
        FrameKind::TwoChannel => Box::new(TwoChannel::new()),
        FrameKind::VoxelGrid(bins) => Box::new(VoxelGrid::new(bins)),
        FrameKind::Hats { cell } => Box::new(Hats::new(cell, 1, 10_000.0)),
    }
}

/// The dense-frame CNN classifier.
pub struct CnnPipeline {
    config: CnnPipelineConfig,
    net: Option<Sequential>,
    resolution: (u16, u16),
    num_classes: usize,
}

impl CnnPipeline {
    /// Creates an untrained pipeline; the RNG seed comes from
    /// [`CnnPipelineConfig::seed`] (see
    /// [`CnnPipelineConfig::with_seed`]).
    pub fn new(config: CnnPipelineConfig) -> Self {
        CnnPipeline {
            config,
            net: None,
            resolution: (0, 0),
            num_classes: 0,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &CnnPipelineConfig {
        &self.config
    }

    pub(crate) fn encoder(&self) -> Box<dyn FrameEncoder> {
        make_encoder(self.config.frame)
    }

    /// Encodes a stream into a normalized frame tensor.
    ///
    /// The normalization pass is part of the preparation cost: it touches
    /// every dense pixel (mean, variance, scaling) regardless of how few
    /// events arrived — the fixed per-frame cost §III-B attributes to
    /// dense-frame pipelines.
    pub fn encode(&self, stream: &EventStream, ops: &mut OpCount) -> Tensor {
        let frame = self
            .encoder()
            .encode(stream.as_slice(), stream.resolution(), ops);
        let n = frame.len() as u64;
        ops.record_add(n); // power accumulation
        ops.record_mult(2 * n); // squaring + scaling
        normalize(&frame)
    }

    /// The trained network, if any.
    pub fn network(&self) -> Option<&Sequential> {
        self.net.as_ref()
    }

    /// Mutable access to the trained network (e.g. for pruning passes).
    pub fn network_mut(&mut self) -> Option<&mut Sequential> {
        self.net.as_mut()
    }
}

impl EventClassifier for CnnPipeline {
    fn name(&self) -> &'static str {
        "cnn"
    }

    fn fit(&mut self, data: &Dataset) -> FitReport {
        let mut rng = Rng64::seed_from_u64(self.config.seed);
        self.resolution = data.resolution;
        self.num_classes = data.num_classes;
        let encoder = self.encoder();
        let channels = encoder.channels();
        let out_res = encoder.output_resolution(data.resolution);
        let config = CnnConfig::small(
            channels,
            out_res.0.max(out_res.1) as usize,
            data.num_classes,
        )
        .scaled(self.config.width);
        let mut net = build_cnn(&config, &mut rng);
        let mut ops = OpCount::new();
        let samples: Vec<(Tensor, usize)> = data
            .train
            .iter()
            .map(|s| (self.encode(&s.stream, &mut ops), s.label))
            .collect();
        let mut opt = Adam::new(self.config.lr);
        let mut last_loss = 0.0;
        for _ in 0..self.config.epochs {
            for chunk in samples.chunks(self.config.batch) {
                let (loss, _) = train_batch(&mut net, chunk, &mut opt, &mut ops);
                last_loss = loss;
            }
        }
        let train_accuracy = evaluate(&mut net, &samples, &mut ops);
        self.net = Some(net);
        FitReport {
            train_accuracy,
            final_loss: last_loss,
            epochs: self.config.epochs,
            train_ops: ops,
        }
    }

    fn predict(&mut self, stream: &EventStream, ops: &mut OpCount) -> usize {
        let frame = self.encode(stream, ops);
        let net = self.net.as_mut().expect("fit before predict");
        net.forward(&frame, ops).argmax()
    }

    fn preparation_ops(&mut self, stream: &EventStream) -> OpCount {
        let mut ops = OpCount::new();
        self.encode(stream, &mut ops);
        ops
    }

    fn param_count(&self) -> usize {
        self.net.as_ref().map(|n| n.param_count()).unwrap_or(0)
    }

    fn state_words(&self) -> usize {
        // Deployed state: the frame buffer being accumulated.
        let encoder = self.encoder();
        let (w, h) = encoder.output_resolution(self.resolution);
        encoder.channels() * w as usize * h as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::test_accuracy;
    use evlab_datasets::shapes::shape_silhouettes;
    use evlab_datasets::DatasetConfig;

    fn tiny_data() -> Dataset {
        shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(6, 2))
    }

    #[test]
    fn cnn_pipeline_learns_shapes() {
        let data = tiny_data();
        let mut clf = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(25).with_seed(1));
        let report = clf.fit(&data);
        assert!(report.train_accuracy > 0.7, "train acc {}", report.train_accuracy);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &data, &mut ops);
        assert!(acc > 0.5, "test acc {acc} above 4-class chance");
        assert!(clf.param_count() > 1_000);
    }

    #[test]
    fn preparation_cost_is_per_event() {
        let data = tiny_data();
        let mut clf = CnnPipeline::new(CnnPipelineConfig::new().with_seed(1));
        let prep = clf.preparation_ops(&data.test[0].stream);
        assert!(prep.adds >= data.test[0].stream.len() as u64);
        assert_eq!(prep.macs, 0, "no network work during preparation");
    }

    #[test]
    fn voxel_frames_have_more_channels() {
        let clf2 = CnnPipeline::new(CnnPipelineConfig::new().with_seed(1));
        let clf5 = CnnPipeline::new(
            CnnPipelineConfig::new().with_frame(FrameKind::VoxelGrid(5)).with_seed(1),
        );
        assert_eq!(clf2.encoder().channels(), 2);
        assert_eq!(clf5.encoder().channels(), 5);
    }

    #[test]
    fn hats_pipeline_trains_on_coarse_grid() {
        let data = tiny_data();
        let config = CnnPipelineConfig::new()
            .with_frame(FrameKind::Hats { cell: 4 })
            .with_epochs(20);
        let mut clf = CnnPipeline::new(config.with_seed(2));
        let report = clf.fit(&data);
        assert!(report.train_accuracy > 0.5, "train acc {}", report.train_accuracy);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &data, &mut ops);
        assert!(acc > 0.25, "HATS test acc {acc} above chance");
        // Coarse 4x4 cell grid: state buffer far smaller than pixel frames.
        assert_eq!(clf.state_words(), 18 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_before_fit_panics() {
        let data = tiny_data();
        let mut clf = CnnPipeline::new(CnnPipelineConfig::new().with_seed(1));
        let mut ops = OpCount::new();
        clf.predict(&data.test[0].stream, &mut ops);
    }
}
