//! The unified event-classifier interface.

use evlab_datasets::Dataset;
use evlab_events::EventStream;
use evlab_tensor::OpCount;

/// Summary of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Final training accuracy.
    pub train_accuracy: f32,
    /// Final mean training loss.
    pub final_loss: f32,
    /// Epochs executed.
    pub epochs: usize,
    /// Total training operation counts.
    pub train_ops: OpCount,
}

/// A classifier consuming raw event streams — the common interface the
/// dichotomy comparison runs against.
pub trait EventClassifier {
    /// Paradigm name ("snn", "cnn", "gnn").
    fn name(&self) -> &'static str;

    /// Trains on the dataset's training split.
    fn fit(&mut self, data: &Dataset) -> FitReport;

    /// Predicts the class of one event stream, recording *all* work —
    /// including data preparation (frame building, spike binning, graph
    /// construction) — into `ops`.
    fn predict(&mut self, stream: &EventStream, ops: &mut OpCount) -> usize;

    /// Operation count of the data-preparation stage alone for one stream.
    fn preparation_ops(&mut self, stream: &EventStream) -> OpCount;

    /// Trainable parameter count.
    fn param_count(&self) -> usize;

    /// Persistent state words the deployed model must hold besides
    /// parameters (membranes, cached features, frame buffers).
    fn state_words(&self) -> usize;

    /// Fraction of nominal compute skipped thanks to sparsity on a probe
    /// stream, in `[0, 1]`.
    fn computation_sparsity(&mut self, stream: &EventStream) -> f64 {
        let mut ops = OpCount::new();
        self.predict(stream, &mut ops);
        1.0 - ops.effective_arithmetic() as f64 / ops.total_arithmetic().max(1) as f64
    }
}

/// Evaluates accuracy of a classifier over the dataset's test split,
/// accumulating inference ops.
pub fn test_accuracy(
    clf: &mut dyn EventClassifier,
    data: &Dataset,
    ops: &mut OpCount,
) -> f32 {
    if data.test.is_empty() {
        return 0.0;
    }
    let correct = data
        .test
        .iter()
        .filter(|s| clf.predict(&s.stream, ops) == s.label)
        .count();
    correct as f32 / data.test.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_datasets::EventSample;
    use evlab_events::{Event, Polarity};

    /// A trivial classifier that counts events (even → 0, odd → 1).
    struct ParityClassifier;

    impl EventClassifier for ParityClassifier {
        fn name(&self) -> &'static str {
            "parity"
        }
        fn fit(&mut self, _data: &Dataset) -> FitReport {
            FitReport {
                train_accuracy: 1.0,
                final_loss: 0.0,
                epochs: 0,
                train_ops: OpCount::new(),
            }
        }
        fn predict(&mut self, stream: &EventStream, ops: &mut OpCount) -> usize {
            ops.record_add(stream.len() as u64);
            stream.len() % 2
        }
        fn preparation_ops(&mut self, _stream: &EventStream) -> OpCount {
            OpCount::new()
        }
        fn param_count(&self) -> usize {
            0
        }
        fn state_words(&self) -> usize {
            1
        }
    }

    fn dataset() -> Dataset {
        let make = |n: usize| {
            EventStream::from_events(
                (4, 4),
                (0..n as u64).map(|i| Event::new(i, 0, 0, Polarity::On)).collect(),
            )
            .expect("ok")
        };
        Dataset {
            name: "parity".into(),
            num_classes: 2,
            class_names: vec!["even".into(), "odd".into()],
            resolution: (4, 4),
            duration_us: 10,
            train: vec![],
            test: vec![
                EventSample { stream: make(2), label: 0 },
                EventSample { stream: make(3), label: 1 },
                EventSample { stream: make(4), label: 1 }, // mislabeled
            ],
        }
    }

    #[test]
    fn test_accuracy_counts_correct_predictions() {
        let mut clf = ParityClassifier;
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &dataset(), &mut ops);
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(ops.adds, 9);
    }

    #[test]
    fn default_sparsity_from_op_profile() {
        let mut clf = ParityClassifier;
        let s = clf.computation_sparsity(&dataset().test[0].stream);
        // record_add counts as effective work: no sparsity.
        assert_eq!(s, 0.0);
    }
}
