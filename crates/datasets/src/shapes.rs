//! The ShapeSilhouettes dataset (POKER-DVS analogue).

use crate::dataset::{Dataset, DatasetConfig, EventSample};
use crate::digits::{camera_for, render_glyph_sample};
use crate::glyphs::SHAPE_PATTERNS;
use evlab_util::Rng64;

/// Generates the 4-class shape-silhouette dataset.
///
/// # Examples
///
/// ```
/// use evlab_datasets::shapes::shape_silhouettes;
/// use evlab_datasets::DatasetConfig;
///
/// let data = shape_silhouettes(&DatasetConfig::tiny((32, 32)));
/// assert_eq!(data.num_classes, 4);
/// data.assert_consistent();
/// ```
pub fn shape_silhouettes(config: &DatasetConfig) -> Dataset {
    let camera = camera_for(config);
    let mut rng = Rng64::seed_from_u64(config.seed ^ 0x5AAE);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (class, (_, pattern)) in SHAPE_PATTERNS.iter().enumerate() {
        for i in 0..config.train_per_class + config.test_per_class {
            let stream = render_glyph_sample(pattern, config, &camera, &mut rng);
            let sample = EventSample { stream, label: class };
            if i < config.train_per_class {
                train.push(sample);
            } else {
                test.push(sample);
            }
        }
    }
    let mut shuffle_rng = Rng64::seed_from_u64(config.seed ^ 0x5F2F);
    shuffle_rng.shuffle(&mut train);
    Dataset {
        name: "shape-silhouettes".into(),
        num_classes: SHAPE_PATTERNS.len(),
        class_names: SHAPE_PATTERNS.iter().map(|(n, _)| n.to_string()).collect(),
        resolution: config.resolution,
        duration_us: config.duration_us,
        train,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_splits() {
        let data = shape_silhouettes(&DatasetConfig::tiny((32, 32)));
        data.assert_consistent();
        assert_eq!(data.train.len(), 8);
        assert_eq!(data.test.len(), 4);
        assert_eq!(data.class_names[0], "square");
    }

    #[test]
    fn shapes_produce_events() {
        let data = shape_silhouettes(&DatasetConfig::tiny((32, 32)));
        for s in &data.train {
            assert!(s.stream.len() > 20, "class {} too quiet", s.label);
        }
    }

    #[test]
    fn noise_changes_the_data() {
        let config = DatasetConfig::tiny((32, 32));
        let clean = shape_silhouettes(&config);
        let noisy = shape_silhouettes(&config.with_noise(true));
        assert_ne!(clean, noisy);
    }
}
