//! The MovingDigits dataset (N-MNIST analogue).
//!
//! Each sample is one digit glyph (class 0–9) translating across the sensor
//! with a randomized start position, direction and speed, recorded through
//! the DVS simulator. Classes differ in spatial structure, so all three
//! paradigms can in principle solve the task; it probes the Table I
//! "Application – Accuracy" row.

use crate::dataset::{Dataset, DatasetConfig, EventSample};
use crate::glyphs::DIGIT_PATTERNS;
use evlab_sensor::scene::MovingGlyph;
use evlab_sensor::{CameraConfig, EventCamera, PixelConfig};
use evlab_util::Rng64;

pub(crate) fn camera_for(config: &DatasetConfig) -> EventCamera {
    let pixel = if config.noisy {
        PixelConfig::new()
    } else {
        PixelConfig::ideal()
    };
    EventCamera::new(
        CameraConfig::new(config.resolution)
            .with_pixel(pixel)
            .with_sample_period_us(250),
    )
}

pub(crate) fn render_glyph_sample(
    pattern: &[&str],
    config: &DatasetConfig,
    camera: &EventCamera,
    rng: &mut Rng64,
) -> evlab_events::EventStream {
    let (w, h) = config.resolution;
    let scale = (w.min(h) as f64 / 16.0).max(1.0);
    let glyph_w = pattern[0].len() as f64 * scale;
    let glyph_h = pattern.len() as f64 * scale;
    // Random motion: pick a direction and a speed that keeps the glyph
    // within the frame for most of the recording.
    let angle = rng.range_f64(0.0, std::f64::consts::TAU);
    let travel = w.min(h) as f64 * 0.4;
    let speed = travel / config.duration_us as f64;
    let velocity = (speed * angle.cos(), speed * angle.sin());
    // Start centred, offset backwards along the motion so the glyph stays
    // visible.
    let start = (
        (w as f64 - glyph_w) / 2.0 - velocity.0 * config.duration_us as f64 / 2.0,
        (h as f64 - glyph_h) / 2.0 - velocity.1 * config.duration_us as f64 / 2.0,
    );
    let scene = MovingGlyph::from_pattern(pattern, start, velocity, scale);
    camera
        .record(&scene, 0, config.duration_us, rng.next_u64())
        .rebased()
}

/// Generates the 10-class MovingDigits dataset.
///
/// # Examples
///
/// ```
/// use evlab_datasets::digits::moving_digits;
/// use evlab_datasets::DatasetConfig;
///
/// let data = moving_digits(&DatasetConfig::tiny((32, 32)));
/// assert_eq!(data.train.len(), 20);
/// data.assert_consistent();
/// ```
pub fn moving_digits(config: &DatasetConfig) -> Dataset {
    let camera = camera_for(config);
    let mut rng = Rng64::seed_from_u64(config.seed ^ 0xD161);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (digit, pattern) in DIGIT_PATTERNS.iter().enumerate() {
        for i in 0..config.train_per_class + config.test_per_class {
            let stream = render_glyph_sample(pattern, config, &camera, &mut rng);
            let sample = EventSample {
                stream,
                label: digit,
            };
            if i < config.train_per_class {
                train.push(sample);
            } else {
                test.push(sample);
            }
        }
    }
    let mut shuffle_rng = Rng64::seed_from_u64(config.seed ^ 0x5F0F);
    shuffle_rng.shuffle(&mut train);
    Dataset {
        name: "moving-digits".into(),
        num_classes: 10,
        class_names: (0..10).map(|d| d.to_string()).collect(),
        resolution: config.resolution,
        duration_us: config.duration_us,
        train,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_splits() {
        let config = DatasetConfig::tiny((32, 32));
        let data = moving_digits(&config);
        data.assert_consistent();
        assert_eq!(data.train.len(), 20);
        assert_eq!(data.test.len(), 10);
        assert!(data.train_class_counts().iter().all(|&c| c == 2));
    }

    #[test]
    fn samples_contain_events() {
        let data = moving_digits(&DatasetConfig::tiny((32, 32)));
        for s in data.train.iter().chain(&data.test) {
            assert!(
                s.stream.len() > 20,
                "digit {} produced only {} events",
                s.label,
                s.stream.len()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = DatasetConfig::tiny((32, 32));
        let a = moving_digits(&config);
        let b = moving_digits(&config);
        assert_eq!(a, b);
        let c = moving_digits(&config.with_seed(123));
        assert_ne!(a, c);
    }

    #[test]
    fn samples_start_at_zero() {
        let data = moving_digits(&DatasetConfig::tiny((32, 32)));
        for s in &data.train {
            assert_eq!(s.stream.start().map(|t| t.as_micros()), Some(0));
        }
    }
}
