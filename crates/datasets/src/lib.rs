//! Synthetic labelled event-camera datasets.
//!
//! The paper's accuracy comparisons run on event-camera benchmarks
//! (N-MNIST-class datasets, gesture sets). Those recordings are not
//! redistributable here, so this crate renders *synthetic* equivalents
//! through the DVS simulator of `evlab-sensor`: every sample is a real event
//! stream produced by the same pixel model, preserving the data structure
//! (sparsity, edge-locked events, microsecond timing) the three paradigms
//! compete on.
//!
//! Three task families:
//!
//! * [`digits::moving_digits`] — 10-class moving digit glyphs (N-MNIST
//!   analogue). Solvable from spatial structure alone.
//! * [`direction::motion_direction`] — 8-class motion-direction
//!   discrimination of an identical dot. The *only* discriminative signal is
//!   the temporal ordering of events, making it the probe for the Table I
//!   "Exploit temporal information" row.
//! * [`shapes::shape_silhouettes`] — 4-class shape classification
//!   (POKER-DVS analogue).
//!
//! # Examples
//!
//! ```
//! use evlab_datasets::digits::moving_digits;
//! use evlab_datasets::DatasetConfig;
//!
//! let config = DatasetConfig::tiny((32, 32));
//! let data = moving_digits(&config);
//! assert_eq!(data.num_classes, 10);
//! assert!(!data.train.is_empty());
//! ```

pub mod dataset;
pub mod digits;
pub mod direction;
pub mod flow;
pub mod glyphs;
pub mod shapes;

pub use dataset::{Dataset, DatasetConfig, EventSample};
