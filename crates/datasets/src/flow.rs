//! Optical-flow regression dataset: translating textures with known
//! ground-truth velocity.
//!
//! §IV cites optical-flow estimation among the tasks where event-graph
//! networks beat dense-frame CNNs ([Zhu et al. EV-FlowNet], [72]). Each
//! sample is a textured scene translating at a constant, known velocity,
//! recorded through the DVS simulator.

use crate::dataset::DatasetConfig;
use evlab_events::EventStream;
use evlab_sensor::scene::EgomotionPan;
use evlab_sensor::{CameraConfig, EventCamera, PixelConfig};
use evlab_util::Rng64;

/// One labelled flow recording.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSample {
    /// The event stream (rebased to t = 0).
    pub stream: EventStream,
    /// Ground-truth image velocity in pixels per microsecond `(vx, vy)`.
    pub velocity: (f64, f64),
}

/// A flow-regression dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDataset {
    /// Sensor resolution.
    pub resolution: (u16, u16),
    /// Sample duration in microseconds.
    pub duration_us: u64,
    /// Training split.
    pub train: Vec<FlowSample>,
    /// Test split.
    pub test: Vec<FlowSample>,
}

impl FlowDataset {
    /// Mean ground-truth speed over both splits (px/us).
    pub fn mean_speed(&self) -> f64 {
        let all: Vec<f64> = self
            .train
            .iter()
            .chain(&self.test)
            .map(|s| (s.velocity.0.powi(2) + s.velocity.1.powi(2)).sqrt())
            .collect();
        if all.is_empty() {
            0.0
        } else {
            all.iter().sum::<f64>() / all.len() as f64
        }
    }
}

/// Generates a flow dataset: horizontal texture pans at random speeds and
/// *horizontal direction only* would make the task trivial, so the texture
/// is panned along a random angle by rotating the sampling frame — here
/// approximated by mixing horizontal pans with vertically-transposed
/// recordings.
///
/// Speeds are drawn from `[0.0005, 0.003]` px/µs (0.5–3 kpx/s).
pub fn translating_texture(config: &DatasetConfig) -> FlowDataset {
    let mut rng = Rng64::seed_from_u64(config.seed ^ 0xF107);
    let pixel = if config.noisy {
        PixelConfig::new()
    } else {
        PixelConfig::ideal()
    };
    let camera = EventCamera::new(
        CameraConfig::new(config.resolution)
            .with_pixel(pixel)
            .with_sample_period_us(250),
    );
    let make = |rng: &mut Rng64| {
        let speed = rng.range_f64(0.0005, 0.003);
        // EgomotionPan moves along +x; flip axes and signs for coverage of
        // the four cardinal directions (±x, ±y).
        let orientation = rng.next_below(4);
        let scene = EgomotionPan::new(speed, 5.0, rng.next_u64());
        let stream = camera
            .record(&scene, 0, config.duration_us, rng.next_u64())
            .rebased();
        let (stream, velocity) = reorient(&stream, orientation, speed);
        FlowSample { stream, velocity }
    };
    let n_train = config.train_per_class * 4;
    let n_test = config.test_per_class * 4;
    let train = (0..n_train).map(|_| make(&mut rng)).collect();
    let test = (0..n_test).map(|_| make(&mut rng)).collect();
    FlowDataset {
        resolution: config.resolution,
        duration_us: config.duration_us,
        train,
        test,
    }
}

/// Remaps a horizontal-pan recording into one of the four cardinal
/// orientations. The scene moves at `-speed` relative to the camera pan
/// direction (+x pan makes features appear to move in −x).
fn reorient(stream: &EventStream, orientation: u64, speed: f64) -> (EventStream, (f64, f64)) {
    use evlab_events::Event;
    let (w, h) = stream.resolution();
    let map = |e: &Event| -> Event {
        let (x, y) = match orientation {
            0 => (e.x, e.y),                     // features move -x
            1 => (w - 1 - e.x, e.y),             // features move +x
            2 => (e.y % w, e.x % h),             // transpose: move -y
            _ => (e.y % w, h - 1 - (e.x % h)),   // move +y
        };
        Event { x, y, ..*e }
    };
    let events: Vec<Event> = stream.iter().map(map).collect();
    let velocity = match orientation {
        0 => (-speed, 0.0),
        1 => (speed, 0.0),
        2 => (0.0, -speed),
        _ => (0.0, speed),
    };
    (
        EventStream::from_events((w, h), events).expect("order preserved"),
        velocity,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_labelled_samples() {
        let config = DatasetConfig::tiny((32, 32));
        let data = translating_texture(&config);
        assert_eq!(data.train.len(), 8);
        assert_eq!(data.test.len(), 4);
        for s in data.train.iter().chain(&data.test) {
            assert!(s.stream.len() > 100, "texture pan must be busy");
            let speed = (s.velocity.0.powi(2) + s.velocity.1.powi(2)).sqrt();
            assert!((0.0005..=0.003).contains(&speed), "speed {speed}");
        }
        assert!(data.mean_speed() > 0.0005);
    }

    #[test]
    fn all_four_directions_appear() {
        let config = DatasetConfig::tiny((32, 32)).with_split(8, 0);
        let data = translating_texture(&config);
        let mut seen = [false; 4];
        for s in &data.train {
            let dir = match (
                s.velocity.0 < 0.0,
                s.velocity.0 > 0.0,
                s.velocity.1 < 0.0,
            ) {
                (true, _, _) => 0,
                (_, true, _) => 1,
                (_, _, true) => 2,
                _ => 3,
            };
            seen[dir] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 3, "{seen:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let config = DatasetConfig::tiny((32, 32));
        assert_eq!(translating_texture(&config), translating_texture(&config));
    }
}
