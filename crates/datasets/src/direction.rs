//! The MotionDirection dataset.
//!
//! Every sample shows the *same* dot crossing the centre of the sensor; the
//! class is its direction of travel (8 compass directions). Any single
//! accumulated event-count frame over the whole recording is (nearly)
//! direction-symmetric, so the discriminative information lives in the
//! *temporal order* of the events — the probe for the paper's claim that
//! event-driven models exploit timing that dense frames discard
//! (Table I row 1).

use crate::dataset::{Dataset, DatasetConfig, EventSample};
use crate::digits::camera_for;
use evlab_sensor::scene::MovingDot;
use evlab_util::Rng64;

/// Number of direction classes.
pub const NUM_DIRECTIONS: usize = 8;

/// Direction angle in radians for a class index.
///
/// # Panics
///
/// Panics if `class >= NUM_DIRECTIONS`.
pub fn class_angle(class: usize) -> f64 {
    assert!(class < NUM_DIRECTIONS, "direction class out of range");
    class as f64 * std::f64::consts::TAU / NUM_DIRECTIONS as f64
}

/// Generates the 8-class MotionDirection dataset.
///
/// # Examples
///
/// ```
/// use evlab_datasets::direction::motion_direction;
/// use evlab_datasets::DatasetConfig;
///
/// let data = motion_direction(&DatasetConfig::tiny((32, 32)));
/// assert_eq!(data.num_classes, 8);
/// data.assert_consistent();
/// ```
pub fn motion_direction(config: &DatasetConfig) -> Dataset {
    let camera = camera_for(config);
    let mut rng = Rng64::seed_from_u64(config.seed ^ 0xD112);
    let (w, h) = config.resolution;
    let center = (w as f64 / 2.0, h as f64 / 2.0);
    let travel = w.min(h) as f64 * 0.7;
    let mut train = Vec::new();
    let mut test = Vec::new();
    for class in 0..NUM_DIRECTIONS {
        let angle = class_angle(class);
        for i in 0..config.train_per_class + config.test_per_class {
            // Small speed and lateral jitter so samples differ within a
            // class without changing the direction.
            let speed_scale = rng.range_f64(0.85, 1.15);
            let speed = travel / config.duration_us as f64 * speed_scale;
            let velocity = (speed * angle.cos(), speed * angle.sin());
            let jitter = (rng.range_f64(-1.5, 1.5), rng.range_f64(-1.5, 1.5));
            let start = (
                center.0 + jitter.0 - velocity.0 * config.duration_us as f64 / 2.0,
                center.1 + jitter.1 - velocity.1 * config.duration_us as f64 / 2.0,
            );
            let radius = w.min(h) as f64 / 12.0;
            let scene = MovingDot::new(start, velocity, radius.max(1.5));
            let stream = camera
                .record(&scene, 0, config.duration_us, rng.next_u64())
                .rebased();
            let sample = EventSample {
                stream,
                label: class,
            };
            if i < config.train_per_class {
                train.push(sample);
            } else {
                test.push(sample);
            }
        }
    }
    let mut shuffle_rng = Rng64::seed_from_u64(config.seed ^ 0x5F1F);
    shuffle_rng.shuffle(&mut train);
    Dataset {
        name: "motion-direction".into(),
        num_classes: NUM_DIRECTIONS,
        class_names: ["E", "NE", "N", "NW", "W", "SW", "S", "SE"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        resolution: config.resolution,
        duration_us: config.duration_us,
        train,
        test,
    }
}

/// Generates the unpolarized 8-class MotionDirection dataset: identical to
/// [`motion_direction`] but with every event's polarity re-drawn uniformly
/// at random.
///
/// In the polarized version the direction leaks into space — the dot's
/// leading edge emits ON events and its trailing edge OFF events, so even a
/// static frame encodes the motion vector. Randomizing polarity removes
/// that channel: opposite directions become *spatially indistinguishable*
/// (the dot sweeps the same line), and only the temporal order of events
/// identifies the class. This is the strict probe for Table I row 1.
pub fn motion_direction_unpolarized(config: &DatasetConfig) -> Dataset {
    use evlab_events::{Event, EventStream, Polarity};
    let mut data = motion_direction(config);
    let mut rng = Rng64::seed_from_u64(config.seed ^ 0x0091);
    let scrub = |stream: &EventStream, rng: &mut Rng64| {
        let events: Vec<Event> = stream
            .iter()
            .map(|e| Event {
                polarity: if rng.bernoulli(0.5) {
                    Polarity::On
                } else {
                    Polarity::Off
                },
                ..*e
            })
            .collect();
        EventStream::from_events(stream.resolution(), events).expect("order unchanged")
    };
    for s in data.train.iter_mut().chain(data.test.iter_mut()) {
        s.stream = scrub(&s.stream, &mut rng);
    }
    data.name = "motion-direction-unpolarized".into();
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_util::stats::mean;

    #[test]
    fn unpolarized_variant_has_mixed_polarity_everywhere() {
        let data = motion_direction_unpolarized(&DatasetConfig::tiny((32, 32)));
        data.assert_consistent();
        for s in &data.train {
            let (on, off) = s.stream.polarity_counts();
            // Roughly balanced — no polarity-direction correlation left.
            let total = (on + off) as f64;
            assert!(on as f64 / total > 0.3 && on as f64 / total < 0.7);
        }
        // Same event geometry as the polarized version.
        let polarized = motion_direction(&DatasetConfig::tiny((32, 32)));
        for (a, b) in data.train.iter().zip(&polarized.train) {
            assert_eq!(a.stream.len(), b.stream.len());
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn generates_balanced_splits() {
        let data = motion_direction(&DatasetConfig::tiny((32, 32)));
        data.assert_consistent();
        assert_eq!(data.train.len(), 16);
        assert_eq!(data.test.len(), 8);
    }

    #[test]
    fn direction_is_encoded_in_time_not_space() {
        // The event *centroid over the full recording* is nearly identical
        // across classes (dot crosses the centre), but the centroid of the
        // first quarter of events moves opposite to the motion direction.
        let config = DatasetConfig::tiny((32, 32)).with_split(3, 0);
        let data = motion_direction(&config);
        let mut whole_by_class = vec![Vec::new(); NUM_DIRECTIONS];
        let mut early_by_class = vec![Vec::new(); NUM_DIRECTIONS];
        for s in &data.train {
            let events = s.stream.as_slice();
            let cx = mean(&events.iter().map(|e| e.x as f64).collect::<Vec<_>>());
            whole_by_class[s.label].push(cx);
            let quarter = &events[..events.len() / 4];
            let cx_early = mean(&quarter.iter().map(|e| e.x as f64).collect::<Vec<_>>());
            early_by_class[s.label].push(cx_early);
        }
        // Class 0 moves east (+x): early events sit west of centre.
        let east_early = mean(&early_by_class[0]);
        let west_early = mean(&early_by_class[4]);
        assert!(
            east_early + 4.0 < west_early,
            "early centroids must separate: E {east_early} vs W {west_early}"
        );
        // Whole-recording centroids are much closer together than the early
        // ones — the spatial signal washes out over the full window.
        let whole_gap = (mean(&whole_by_class[0]) - mean(&whole_by_class[4])).abs();
        let early_gap = (east_early - west_early).abs();
        assert!(
            whole_gap < early_gap * 0.6,
            "whole gap {whole_gap} vs early gap {early_gap}"
        );
    }

    #[test]
    fn class_angles_cover_the_circle() {
        assert_eq!(class_angle(0), 0.0);
        assert!((class_angle(2) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((class_angle(4) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "direction class out of range")]
    fn bad_class_panics() {
        class_angle(8);
    }
}
