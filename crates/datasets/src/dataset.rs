//! Dataset container types.

use evlab_events::EventStream;

/// One labelled event recording.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSample {
    /// The recorded event stream, rebased to start at t = 0.
    pub stream: EventStream,
    /// Class index in `[0, num_classes)`.
    pub label: usize,
}

/// A labelled dataset with train/test splits.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// Number of classes.
    pub num_classes: usize,
    /// Human-readable class names (length `num_classes`).
    pub class_names: Vec<String>,
    /// Sensor resolution shared by all samples.
    pub resolution: (u16, u16),
    /// Duration of each sample in microseconds.
    pub duration_us: u64,
    /// Training split.
    pub train: Vec<EventSample>,
    /// Test split.
    pub test: Vec<EventSample>,
}

impl Dataset {
    /// Mean events per sample across both splits (0 when empty).
    pub fn mean_events_per_sample(&self) -> f64 {
        let total: usize = self
            .train
            .iter()
            .chain(&self.test)
            .map(|s| s.stream.len())
            .sum();
        let n = self.train.len() + self.test.len();
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Per-class sample counts over the training split.
    pub fn train_class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for s in &self.train {
            counts[s.label] += 1;
        }
        counts
    }

    /// Validates internal consistency (labels in range, resolutions match).
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency; meant for tests and generator
    /// debugging.
    pub fn assert_consistent(&self) {
        assert_eq!(self.class_names.len(), self.num_classes);
        for s in self.train.iter().chain(&self.test) {
            assert!(s.label < self.num_classes, "label out of range");
            assert_eq!(s.stream.resolution(), self.resolution);
        }
    }
}

/// Generator configuration shared by all dataset families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Sensor resolution.
    pub resolution: (u16, u16),
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Sample duration in microseconds.
    pub duration_us: u64,
    /// Master seed; every sample derives its own stream from it.
    pub seed: u64,
    /// Whether to simulate sensor noise (leak events, threshold mismatch,
    /// jitter). Noiseless data is useful for algorithm unit tests.
    pub noisy: bool,
}

impl DatasetConfig {
    /// A small default: 8 train + 2 test samples per class, 30 ms samples.
    pub fn new(resolution: (u16, u16)) -> Self {
        DatasetConfig {
            resolution,
            train_per_class: 8,
            test_per_class: 2,
            duration_us: 30_000,
            seed: 0x0E01_1AB5,
            noisy: true,
        }
    }

    /// A minimal configuration for unit tests: 2 train + 1 test per class,
    /// 20 ms, noiseless.
    pub fn tiny(resolution: (u16, u16)) -> Self {
        DatasetConfig {
            resolution,
            train_per_class: 2,
            test_per_class: 1,
            duration_us: 20_000,
            seed: 7,
            noisy: false,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with different split sizes.
    pub fn with_split(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        self.train_per_class = train_per_class;
        self.test_per_class = test_per_class;
        self
    }

    /// Returns a copy with noise enabled or disabled.
    pub fn with_noise(mut self, noisy: bool) -> Self {
        self.noisy = noisy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::{Event, Polarity};

    fn tiny_dataset() -> Dataset {
        let stream = EventStream::from_events(
            (8, 8),
            vec![Event::new(0, 1, 1, Polarity::On)],
        )
        .expect("ok");
        Dataset {
            name: "toy".into(),
            num_classes: 2,
            class_names: vec!["a".into(), "b".into()],
            resolution: (8, 8),
            duration_us: 100,
            train: vec![
                EventSample {
                    stream: stream.clone(),
                    label: 0,
                },
                EventSample {
                    stream: stream.clone(),
                    label: 1,
                },
            ],
            test: vec![EventSample { stream, label: 0 }],
        }
    }

    #[test]
    fn statistics() {
        let d = tiny_dataset();
        d.assert_consistent();
        assert_eq!(d.mean_events_per_sample(), 1.0);
        assert_eq!(d.train_class_counts(), vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn inconsistent_label_detected() {
        let mut d = tiny_dataset();
        d.train[0].label = 5;
        d.assert_consistent();
    }

    #[test]
    fn config_builders() {
        let c = DatasetConfig::new((32, 32))
            .with_seed(99)
            .with_split(4, 2)
            .with_noise(false);
        assert_eq!(c.seed, 99);
        assert_eq!(c.train_per_class, 4);
        assert!(!c.noisy);
    }

    #[test]
    fn clone_is_deep_and_equal() {
        let d = tiny_dataset();
        let copy = d.clone();
        assert_eq!(d, copy);
    }
}
