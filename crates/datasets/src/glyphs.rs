//! Bitmap glyphs for the dataset generators: 5×7 digits and simple shapes.

/// 5×7 bitmap patterns for digits 0–9.
pub const DIGIT_PATTERNS: [[&str; 7]; 10] = [
    [
        ".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###.",
    ],
    [
        "..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###.",
    ],
    [
        ".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####",
    ],
    [
        ".###.", "#...#", "....#", "..##.", "....#", "#...#", ".###.",
    ],
    [
        "...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#.",
    ],
    [
        "#####", "#....", "####.", "....#", "....#", "#...#", ".###.",
    ],
    [
        ".###.", "#....", "#....", "####.", "#...#", "#...#", ".###.",
    ],
    [
        "#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#...",
    ],
    [
        ".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###.",
    ],
    [
        ".###.", "#...#", "#...#", ".####", "....#", "....#", ".###.",
    ],
];

/// 7×7 bitmap patterns for the shape-silhouette dataset.
pub const SHAPE_PATTERNS: [(&str, [&str; 7]); 4] = [
    (
        "square",
        [
            "#######", "#.....#", "#.....#", "#.....#", "#.....#", "#.....#", "#######",
        ],
    ),
    (
        "cross",
        [
            "..###..", "..###..", "#######", "#######", "#######", "..###..", "..###..",
        ],
    ),
    (
        "triangle",
        [
            "...#...", "...#...", "..###..", "..###..", ".#####.", ".#####.", "#######",
        ],
    ),
    (
        "diamond",
        [
            "...#...", "..###..", ".#####.", "#######", ".#####.", "..###..", "...#...",
        ],
    ),
];

/// Number of filled cells in a pattern — used by tests to confirm the
/// classes are genuinely distinct.
pub fn pattern_mass(pattern: &[&str]) -> usize {
    pattern
        .iter()
        .map(|row| row.chars().filter(|&c| c == '#').count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_are_well_formed() {
        for (i, p) in DIGIT_PATTERNS.iter().enumerate() {
            for row in p {
                assert_eq!(row.len(), 5, "digit {i} row width");
            }
            assert!(pattern_mass(p) >= 7, "digit {i} too sparse");
        }
    }

    #[test]
    fn digits_are_pairwise_distinct() {
        for (i, a) in DIGIT_PATTERNS.iter().enumerate() {
            for (j, b) in DIGIT_PATTERNS.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "digits {i} and {j} identical");
            }
        }
    }

    #[test]
    fn shapes_are_well_formed_and_distinct() {
        for (name, p) in &SHAPE_PATTERNS {
            for row in p {
                assert_eq!(row.len(), 7, "shape {name} row width");
            }
        }
        for (i, a) in SHAPE_PATTERNS.iter().enumerate() {
            for b in SHAPE_PATTERNS.iter().skip(i + 1) {
                assert_ne!(a.1, b.1);
            }
        }
    }
}
