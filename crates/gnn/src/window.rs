//! True sliding-window event-graph engine.
//!
//! The streaming GNN path used to bound memory by discarding the whole
//! graph once it reached `max_nodes` — a periodic accuracy/latency cliff
//! that neither the CNN nor the SNN streaming paths suffer. This module
//! replaces that reset with a window that actually *slides* (after
//! Jeziorek et al., arXiv:2307.14124 / 2401.04988):
//!
//! * [`SlidingWindowGraph`] — a ring-buffer node store with **stable slot
//!   handles**: evicted nodes are tombstoned and their slots reused, so
//!   cached per-node features (keyed by slot id) survive every eviction.
//!   A uniform-grid spatial index with per-cell FIFOs answers candidate
//!   scans in O(1) expected work per event; no kd-tree is ever rebuilt.
//! * [`WindowPolicy`] — age-based, count-based, or combined eviction.
//! * [`WindowedGnn`] — incremental message passing on top of the store:
//!   each push recomputes only the layer-by-layer frontier of nodes whose
//!   neighbourhoods were touched by the insert and the evictions.
//!
//! # The oracle contract
//!
//! The windowed graph is **bit-identical** to a from-scratch
//! [`crate::build::kdtree_build`] over the same trailing events. Dropping
//! an evicted node's edges is *not* enough for that: with a degree cap, a
//! survivor that had the evicted node among its `max_degree` nearest
//! neighbours now has a free slot that some previously displaced candidate
//! must fill. So eviction *re-selects* the neighbourhood of every
//! out-neighbour of the evicted node from the still-live earlier nodes.
//! Since all policies evict oldest-first, the live set is always a
//! contiguous suffix of the insertion order, and by induction every live
//! node's list equals the oracle selection over the live earlier nodes —
//! which is exactly what a fresh build over the trailing window computes.
//!
//! Non-selected candidates never influence a neighbour list, so removing
//! one cannot change it; that is why only the out-neighbours of evicted
//! nodes need repair.
//!
//! Everything here is strictly serial per session — results are trivially
//! bit-identical across `EVLAB_THREADS`.

use crate::build::{GraphBuilder, GraphConfig};
use crate::conv::NodeFeatures;
use crate::graph::{EventGraph, GraphView};
use crate::network::GnnNetwork;
use evlab_events::Event;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::check::{self, Invariant, Report};
use evlab_util::frame::{Decoder, Encoder, FrameError};
use evlab_util::obs;
use std::collections::{HashMap, VecDeque};

/// Eviction policy bounding the live window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Keep at most this many live nodes; the oldest is evicted to make
    /// room for an insert.
    MaxNodes(usize),
    /// Keep only nodes within this age (µs) of the incoming event.
    MaxAgeUs(u64),
    /// Both bounds at once — the live set is the intersection.
    Both {
        /// Count bound.
        max_nodes: usize,
        /// Age bound in µs.
        max_age_us: u64,
    },
}

impl WindowPolicy {
    /// The count bound (`usize::MAX` when only age-bounded).
    pub fn max_nodes(&self) -> usize {
        match self {
            WindowPolicy::MaxNodes(n) => *n,
            WindowPolicy::MaxAgeUs(_) => usize::MAX,
            WindowPolicy::Both { max_nodes, .. } => *max_nodes,
        }
    }

    /// The age bound in µs, if any.
    pub fn max_age_us(&self) -> Option<u64> {
        match self {
            WindowPolicy::MaxNodes(_) => None,
            WindowPolicy::MaxAgeUs(age) => Some(*age),
            WindowPolicy::Both { max_age_us, .. } => Some(*max_age_us),
        }
    }
}

/// One node slot. Tombstoned (not deallocated) on eviction; the slot id
/// stays valid for feature caches until the slot is reused.
#[derive(Debug, Clone)]
struct Slot {
    event: Event,
    /// Monotone insertion number — the window's notion of recency. Seq
    /// order equals time order (pushes are time-ordered).
    seq: u64,
    /// In-neighbours as slot ids, ascending by seq (oldest first) —
    /// matching the ascending-index lists of the batch builders.
    nbrs: Vec<u32>,
    /// Live out-neighbours as `(seq, slot)` pairs, ascending by seq.
    outs: Vec<(u64, u32)>,
    live: bool,
}

/// What one [`SlidingWindowGraph::push`] did, for incremental feature
/// maintenance.
#[derive(Debug, Clone, Default)]
pub struct PushOutcome {
    /// Slot id of the inserted node.
    pub inserted: u32,
    /// Slots evicted by this push (tombstoned; ids reusable — possibly
    /// already reused by `inserted`).
    pub evicted: Vec<u32>,
    /// Live slots whose neighbour lists were re-selected after the
    /// evictions, ascending by seq. Disjoint from `inserted`.
    pub reselected: Vec<u32>,
}

/// Ring-buffer node store with a uniform-grid spatial index and
/// oracle-exact sliding-window eviction.
///
/// # Examples
///
/// ```
/// use evlab_events::{Event, Polarity};
/// use evlab_gnn::build::GraphConfig;
/// use evlab_gnn::window::{SlidingWindowGraph, WindowPolicy};
/// use evlab_tensor::OpCount;
///
/// let mut w = SlidingWindowGraph::new(GraphConfig::new(), WindowPolicy::MaxNodes(2));
/// let mut ops = OpCount::new();
/// w.push(Event::new(0, 1, 1, Polarity::On), &mut ops);
/// w.push(Event::new(50, 2, 1, Polarity::On), &mut ops);
/// let out = w.push(Event::new(100, 2, 2, Polarity::On), &mut ops);
/// assert_eq!(w.node_count(), 2, "count bound holds");
/// assert_eq!(out.evicted.len(), 1, "oldest evicted");
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindowGraph {
    config: GraphConfig,
    policy: WindowPolicy,
    slots: Vec<Slot>,
    /// Live slot ids, oldest (lowest seq) at the front.
    order: VecDeque<u32>,
    /// Tombstoned slots awaiting reuse, FIFO for deterministic reuse.
    free: VecDeque<u32>,
    /// Spatial cell → live slot ids, oldest first (per-cell FIFO).
    cells: HashMap<(i32, i32), VecDeque<u32>>,
    cell_size: f64,
    next_seq: u64,
    last_t: Option<u64>,
}

impl SlidingWindowGraph {
    /// Creates an empty window.
    ///
    /// # Panics
    ///
    /// Panics if the policy's count bound is zero.
    pub fn new(config: GraphConfig, policy: WindowPolicy) -> Self {
        assert!(policy.max_nodes() >= 1, "window must hold at least one node");
        SlidingWindowGraph {
            cell_size: config.radius.max(1.0),
            config,
            policy,
            slots: Vec::new(),
            order: VecDeque::new(),
            free: VecDeque::new(),
            cells: HashMap::new(),
            next_seq: 0,
            last_t: None,
        }
    }

    /// The construction parameters.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// The eviction policy.
    pub fn policy(&self) -> WindowPolicy {
        self.policy
    }

    /// Number of *live* nodes.
    pub fn node_count(&self) -> usize {
        self.order.len()
    }

    /// Total number of slots ever allocated (live + tombstoned). Feature
    /// caches keyed by slot id must cover this many rows.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether slot `i` currently holds a live node.
    pub fn is_live(&self, i: usize) -> bool {
        self.slots.get(i).map(|s| s.live).unwrap_or(false)
    }

    /// Insertion number of slot `i` (the window's recency key).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn seq(&self, i: usize) -> u64 {
        self.slots[i].seq
    }

    /// The event held in slot `i` (stale if the slot is tombstoned).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn event(&self, i: usize) -> &Event {
        &self.slots[i].event
    }

    /// Out-edges of slot `i` as `(seq, slot)` pairs, ascending by seq —
    /// the live newer nodes that selected `i` as a neighbour.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn out_edges(&self, i: usize) -> &[(u64, u32)] {
        &self.slots[i].outs
    }

    /// Live slot ids in insertion (time) order, oldest first.
    pub fn live_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.order.iter().copied()
    }

    /// Total number of directed edges among live nodes.
    pub fn edge_count(&self) -> usize {
        self.order
            .iter()
            .map(|&s| self.slots[s as usize].nbrs.len())
            .sum()
    }

    /// Drops all nodes and index state, keeping allocations.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.order.clear();
        self.free.clear();
        self.cells.clear();
        self.next_seq = 0;
        self.last_t = None;
    }

    fn cell_of(&self, e: &Event) -> (i32, i32) {
        (
            (e.x as f64 / self.cell_size).floor() as i32,
            (e.y as f64 / self.cell_size).floor() as i32,
        )
    }

    /// Scans the 3×3 cell neighbourhood of `event` for connection
    /// candidates strictly older than `seq_limit`, applying the horizon
    /// and radius filters. Returns `(slot, seq, dist²)` triples in
    /// deterministic cell-then-FIFO order.
    fn scan_candidates(
        &self,
        event: &Event,
        seq_limit: u64,
        ops: &mut OpCount,
    ) -> Vec<(u32, u64, f64)> {
        let p = self.config.point_of(event);
        let r_sq = self.config.radius * self.config.radius;
        let (cx, cy) = self.cell_of(event);
        let mut candidates = Vec::new();
        for dy in -1..=1 {
            for dx in -1..=1 {
                let Some(list) = self.cells.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &s in list {
                    let slot = &self.slots[s as usize];
                    if slot.seq >= seq_limit {
                        // Cell FIFOs are seq-ordered: everything after
                        // this entry is newer still.
                        break;
                    }
                    ops.record_mult(4);
                    ops.record_compare(2);
                    if event.t.saturating_since(slot.event.t) > self.config.horizon_us {
                        continue;
                    }
                    let d = crate::build::dist_sq(&self.config.point_of(&slot.event), &p);
                    if d <= r_sq {
                        candidates.push((s, slot.seq, d));
                    }
                }
            }
        }
        candidates
    }

    /// Mirror of `build::select_neighbors` over (distance, seq): nearest
    /// first, ties broken toward the more recent event, result ascending
    /// by seq. Seq order here corresponds one-to-one to index order in a
    /// batch build of the trailing window, so the two selections agree.
    fn select(mut candidates: Vec<(u32, u64, f64)>, max_degree: usize) -> Vec<u32> {
        candidates.sort_by(|a, b| {
            a.2.partial_cmp(&b.2)
                .unwrap_or(std::cmp::Ordering::Equal) // distances are finite
                .then(b.1.cmp(&a.1)) // tie: prefer the more recent event
        });
        candidates.truncate(max_degree);
        candidates.sort_by_key(|c| c.1);
        candidates.into_iter().map(|(s, _, _)| s).collect()
    }

    /// Evicts the globally oldest live node: removes it from the order
    /// ring and its cell FIFO, scrubs it from every out-neighbour's list
    /// (collecting those into `touched` for re-selection), tombstones the
    /// slot, and recycles it.
    fn evict_front(&mut self, evicted: &mut Vec<u32>, touched: &mut Vec<u32>) {
        let Some(s) = self.order.pop_front() else {
            return;
        };
        let slot = s as usize;
        // The oldest live node is necessarily at the front of its cell's
        // FIFO (cell lists are appended in seq order).
        let cell = self.cell_of(&self.slots[slot].event);
        if let Some(list) = self.cells.get_mut(&cell) {
            let front = list.pop_front();
            debug_assert_eq!(front, Some(s), "oldest node must head its cell FIFO");
            if list.is_empty() {
                self.cells.remove(&cell);
            }
        }
        // All of this node's in-neighbours are older, hence already
        // evicted and already scrubbed from this list.
        debug_assert!(self.slots[slot].nbrs.is_empty(), "stale in-edges at eviction");
        let outs = std::mem::take(&mut self.slots[slot].outs);
        for &(_, o) in &outs {
            let nb = &mut self.slots[o as usize].nbrs;
            if let Some(pos) = nb.iter().position(|&x| x == s) {
                nb.remove(pos);
            }
            touched.push(o);
        }
        self.slots[slot].nbrs.clear();
        self.slots[slot].live = false;
        self.free.push_back(s);
        evicted.push(s);
    }

    /// Re-selects the neighbourhood of live slot `i` from the currently
    /// live earlier nodes, updating the out-edge lists of removed/added
    /// neighbours.
    fn reselect(&mut self, i: u32, ops: &mut OpCount) {
        let slot = i as usize;
        let event = self.slots[slot].event;
        let seq_i = self.slots[slot].seq;
        let candidates = self.scan_candidates(&event, seq_i, ops);
        let new_nbrs = Self::select(candidates, self.config.max_degree);
        let old = std::mem::replace(&mut self.slots[slot].nbrs, new_nbrs);
        // Diff the (tiny, ≤ max_degree) lists to keep out-edges exact.
        let new_ref = self.slots[slot].nbrs.clone();
        for &j in &old {
            if !new_ref.contains(&j) {
                self.slots[j as usize].outs.retain(|&(_, o)| o != i);
            }
        }
        for &j in &new_ref {
            if !old.contains(&j) {
                let outs = &mut self.slots[j as usize].outs;
                let pos = outs.partition_point(|&(sq, _)| sq < seq_i);
                outs.insert(pos, (seq_i, i));
            }
        }
        obs::counter_add("gnn.window.reselects", 1);
    }

    /// Inserts one event: applies the eviction policy, repairs the touched
    /// neighbourhoods, then connects the new node — all in the order a
    /// from-scratch build over the resulting trailing window would see.
    ///
    /// # Panics
    ///
    /// Panics if the event is older than the previous push.
    pub fn push(&mut self, event: Event, ops: &mut OpCount) -> PushOutcome {
        let t = event.t.as_micros();
        if let Some(last) = self.last_t {
            assert!(t >= last, "events must arrive in time order");
        }
        self.last_t = Some(t);

        let mut evicted = Vec::new();
        let mut touched: Vec<u32> = Vec::new();
        // 1. Age bound relative to the incoming event.
        if let Some(age) = self.policy.max_age_us() {
            while let Some(&oldest) = self.order.front() {
                if event.t.saturating_since(self.slots[oldest as usize].event.t) > age {
                    self.evict_front(&mut evicted, &mut touched);
                } else {
                    break;
                }
            }
        }
        // 2. Count bound: make room for the insert.
        let cap = self.policy.max_nodes();
        while self.order.len() >= cap {
            self.evict_front(&mut evicted, &mut touched);
        }
        // 3. Repair the survivors whose lists lost an evicted neighbour —
        //    after *all* evictions, so re-selection never sees a node that
        //    this same push is about to remove.
        touched.retain(|&i| self.slots[i as usize].live);
        touched.sort_by_key(|&i| self.slots[i as usize].seq);
        touched.dedup();
        for &i in &touched {
            self.reselect(i, ops);
        }
        // 4. Insert and connect the new node.
        let seq = self.next_seq;
        self.next_seq += 1;
        let candidates = self.scan_candidates(&event, seq, ops);
        let nbrs = Self::select(candidates, self.config.max_degree);
        let s = match self.free.pop_front() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    event,
                    seq,
                    nbrs: Vec::new(),
                    outs: Vec::new(),
                    live: false,
                });
                (self.slots.len() - 1) as u32
            }
        };
        {
            let sl = &mut self.slots[s as usize];
            sl.event = event;
            sl.seq = seq;
            sl.nbrs.clear();
            sl.nbrs.extend_from_slice(&nbrs);
            sl.outs.clear();
            sl.live = true;
        }
        for &j in &nbrs {
            // The new node has the maximum seq: appending keeps the
            // out-edge lists sorted.
            self.slots[j as usize].outs.push((seq, s));
        }
        self.order.push_back(s);
        self.cells.entry(self.cell_of(&event)).or_default().push_back(s);
        ops.record_write(1);
        obs::counter_add("gnn.window.inserts", 1);
        obs::counter_add("gnn.window.evictions", evicted.len() as u64);
        check::run(self);
        PushOutcome {
            inserted: s,
            evicted,
            reselected: touched,
        }
    }

    /// Serializes the full window state — slot table (events, seqs,
    /// neighbour and out-edge lists, tombstones), live order, free list
    /// and time cursor. The spatial cell index is *not* recorded: it is
    /// rebuilt on load by replaying the live order, which reproduces the
    /// per-cell seq-ordered FIFOs exactly. Construction parameters
    /// (config, policy) are not recorded either; the recovery path
    /// rebuilds the window with the same parameters before
    /// [`SlidingWindowGraph::load_state`].
    pub fn save_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.slots.len() as u64);
        for s in &self.slots {
            enc.put_u64(s.event.t.as_micros());
            enc.put_u16(s.event.x);
            enc.put_u16(s.event.y);
            enc.put_bool(s.event.polarity == evlab_events::Polarity::On);
            enc.put_u64(s.seq);
            enc.put_u32_slice(&s.nbrs);
            enc.put_u64(s.outs.len() as u64);
            for &(sq, o) in &s.outs {
                enc.put_u64(sq);
                enc.put_u32(o);
            }
            enc.put_bool(s.live);
        }
        enc.put_u32_slice(&self.order.iter().copied().collect::<Vec<u32>>());
        enc.put_u32_slice(&self.free.iter().copied().collect::<Vec<u32>>());
        enc.put_u64(self.next_seq);
        enc.put_opt_u64(self.last_t);
    }

    /// Restores state written by [`SlidingWindowGraph::save_state`] into
    /// an identically-configured window, bit-exactly (the compacted graph,
    /// every future push outcome and the spatial index all match the
    /// uninterrupted original).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on truncation or on slot references outside
    /// the serialized table; the window is left untouched then.
    pub fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
        let n = dec.take_u64()? as usize;
        // Each slot is at least 38 bytes: a corrupt count cannot
        // over-allocate.
        if n as u64 > dec.remaining() as u64 / 38 {
            return Err(dec.corrupt(format!("{n} slots exceed the payload")));
        }
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let t = dec.take_u64()?;
            let x = dec.take_u16()?;
            let y = dec.take_u16()?;
            let on = dec.take_bool()?;
            let seq = dec.take_u64()?;
            let nbrs = dec.take_u32_vec()?;
            let m = dec.take_u64()? as usize;
            if m as u64 > dec.remaining() as u64 / 12 {
                return Err(dec.corrupt(format!("{m} out-edges exceed the payload")));
            }
            let mut outs = Vec::with_capacity(m);
            for _ in 0..m {
                let sq = dec.take_u64()?;
                let o = dec.take_u32()?;
                outs.push((sq, o));
            }
            let live = dec.take_bool()?;
            slots.push(Slot {
                event: Event::new(
                    t,
                    x,
                    y,
                    if on {
                        evlab_events::Polarity::On
                    } else {
                        evlab_events::Polarity::Off
                    },
                ),
                seq,
                nbrs,
                outs,
                live,
            });
        }
        let order = dec.take_u32_vec()?;
        let free = dec.take_u32_vec()?;
        let next_seq = dec.take_u64()?;
        let last_t = dec.take_opt_u64()?;
        let in_range = |i: u32| (i as usize) < slots.len();
        for s in &slots {
            if !s.nbrs.iter().copied().all(in_range)
                || !s.outs.iter().all(|&(_, o)| in_range(o))
            {
                return Err(dec.corrupt("edge references a slot outside the table"));
            }
        }
        if !order.iter().copied().all(in_range) || !free.iter().copied().all(in_range) {
            return Err(dec.corrupt("order/free list references a slot outside the table"));
        }
        // Assemble a candidate, rebuilding the spatial index from the
        // live order (`order` ascends by seq, so appending reproduces the
        // seq-sorted cell FIFOs the live push path maintains), then hold
        // it to the full window invariants before committing: a
        // checksum-passing but semantically corrupt snapshot must surface
        // as a typed error with the window left untouched.
        let mut candidate = SlidingWindowGraph {
            config: self.config,
            policy: self.policy,
            slots,
            order: order.into_iter().collect(),
            free: free.into_iter().collect(),
            cells: HashMap::new(),
            cell_size: self.cell_size,
            next_seq,
            last_t,
        };
        let live_order: Vec<u32> = candidate.order.iter().copied().collect();
        for s in live_order {
            let cell = candidate.cell_of(&candidate.slots[s as usize].event);
            candidate.cells.entry(cell).or_default().push_back(s);
        }
        if let Some(violation) = check::verify(&candidate).into_iter().next() {
            return Err(dec.corrupt(format!("snapshot violates invariant: {violation}")));
        }
        *self = candidate;
        Ok(())
    }

    /// Compacts the live window into a dense [`EventGraph`]: nodes in seq
    /// (time) order, neighbour slot ids remapped to dense indices. This is
    /// the bridge to every batch consumer — and the object the oracle
    /// property test compares against a from-scratch build.
    pub fn to_event_graph(&self) -> EventGraph {
        let mut map = vec![u32::MAX; self.slots.len()];
        for (dense, &s) in self.order.iter().enumerate() {
            map[s as usize] = dense as u32;
        }
        let mut g = EventGraph::new(self.config.beta);
        for &s in &self.order {
            let sl = &self.slots[s as usize];
            let nbrs: Vec<u32> = sl.nbrs.iter().map(|&j| map[j as usize]).collect();
            g.push_node(sl.event, nbrs);
        }
        g
    }
}

/// Machine-checked form of the slot-stability contract
/// ([`evlab_util::check`]): run after every `push` and against every
/// restored snapshot.
impl Invariant for SlidingWindowGraph {
    fn invariant_name(&self) -> &'static str {
        "sliding-window"
    }

    fn check_invariants(&self, r: &mut Report) {
        // Every slot is either live (on the order ring) or tombstoned
        // (on the free list) — slots are never leaked or double-booked.
        r.require(self.order.len() + self.free.len() == self.slots.len(), || {
            format!(
                "{} live + {} free != {} slots",
                self.order.len(),
                self.free.len(),
                self.slots.len()
            )
        });
        r.require(self.order.len() <= self.policy.max_nodes(), || {
            format!(
                "{} live nodes exceed the count bound {}",
                self.order.len(),
                self.policy.max_nodes()
            )
        });
        if !self.order.is_empty() {
            r.require(self.last_t.is_some(), || {
                "live nodes but no time cursor".to_string()
            });
        }
        let in_range = |i: u32| (i as usize) < self.slots.len();
        let mut prev_seq: Option<u64> = None;
        for &s in &self.order {
            if !in_range(s) {
                r.require(false, || format!("order entry {s} out of range"));
                continue;
            }
            let sl = &self.slots[s as usize];
            r.require(sl.live, || format!("order entry {s} is tombstoned"));
            r.require(sl.seq < self.next_seq, || {
                format!("slot {s} seq {} not below next_seq {}", sl.seq, self.next_seq)
            });
            r.require(prev_seq.is_none_or(|p| p < sl.seq), || {
                format!("order ring not strictly seq-ascending at slot {s}")
            });
            prev_seq = Some(sl.seq);
            let t = sl.event.t.as_micros();
            r.require(self.last_t.is_some_and(|last| t <= last), || {
                format!("live slot {s} at t {t} is newer than the cursor {:?}", self.last_t)
            });
            if let (Some(age), Some(last)) = (self.policy.max_age_us(), self.last_t) {
                r.require(last.saturating_sub(t) <= age, || {
                    format!("live slot {s} is {}us old, bound {age}us", last - t)
                });
            }
            r.require(sl.nbrs.len() <= self.config.max_degree, || {
                format!("slot {s} holds {} in-edges, cap {}", sl.nbrs.len(), self.config.max_degree)
            });
            // In-neighbours: live, strictly older, seq-ascending, and
            // mirrored by the neighbour's out-edge list.
            let mut prev_nbr: Option<u64> = None;
            for &j in &sl.nbrs {
                if !in_range(j) {
                    r.require(false, || format!("slot {s} in-edge {j} out of range"));
                    continue;
                }
                let nb = &self.slots[j as usize];
                r.require(nb.live, || format!("slot {s} in-edge to tombstoned {j}"));
                r.require(nb.seq < sl.seq, || {
                    format!("slot {s} in-edge to non-older {j}")
                });
                r.require(prev_nbr.is_none_or(|p| p < nb.seq), || {
                    format!("slot {s} in-edges not strictly seq-ascending")
                });
                prev_nbr = Some(nb.seq);
                r.require(nb.outs.iter().any(|&(sq, o)| sq == sl.seq && o == s), || {
                    format!("slot {s} in-edge to {j} lacks the mirror out-edge")
                });
            }
            // Out-edges: live newer nodes, seq-ascending, mirrored.
            let mut prev_out: Option<u64> = None;
            for &(sq, o) in &sl.outs {
                if !in_range(o) {
                    r.require(false, || format!("slot {s} out-edge {o} out of range"));
                    continue;
                }
                let ob = &self.slots[o as usize];
                r.require(ob.live && ob.seq == sq && sq > sl.seq, || {
                    format!("slot {s} out-edge ({sq}, {o}) is stale")
                });
                r.require(prev_out.is_none_or(|p| p < sq), || {
                    format!("slot {s} out-edges not strictly seq-ascending")
                });
                prev_out = Some(sq);
                r.require(ob.nbrs.contains(&s), || {
                    format!("slot {s} out-edge to {o} lacks the mirror in-edge")
                });
            }
        }
        for &s in &self.free {
            if !in_range(s) {
                r.require(false, || format!("free entry {s} out of range"));
                continue;
            }
            let sl = &self.slots[s as usize];
            r.require(!sl.live, || format!("free entry {s} is still live"));
            r.require(sl.nbrs.is_empty() && sl.outs.is_empty(), || {
                format!("tombstoned slot {s} kept stale edges")
            });
        }
        // Spatial index: per-cell FIFOs hold exactly the live set, each
        // id under its own cell key, oldest first.
        let mut indexed = 0usize;
        for (key, list) in &self.cells {
            let mut prev: Option<u64> = None;
            for &s in list {
                indexed += 1;
                if !in_range(s) {
                    r.require(false, || format!("cell entry {s} out of range"));
                    continue;
                }
                let sl = &self.slots[s as usize];
                r.require(sl.live, || format!("cell {key:?} indexes tombstoned {s}"));
                r.require(self.cell_of(&sl.event) == *key, || {
                    format!("slot {s} filed under the wrong cell {key:?}")
                });
                r.require(prev.is_none_or(|p| p < sl.seq), || {
                    format!("cell {key:?} FIFO not seq-ascending")
                });
                prev = Some(sl.seq);
            }
            r.require(!list.is_empty(), || format!("empty cell {key:?} not pruned"));
        }
        r.require(indexed == self.order.len(), || {
            format!("{indexed} indexed ids != {} live nodes", self.order.len())
        });
    }
}

impl GraphView for SlidingWindowGraph {
    fn in_neighbors(&self, i: usize) -> &[u32] {
        &self.slots[i].nbrs
    }

    fn relative_offset(&self, i: usize, j: usize) -> [f32; 3] {
        let a = &self.slots[i].event;
        let b = &self.slots[j].event;
        [
            a.x as f32 - b.x as f32,
            a.y as f32 - b.y as f32,
            ((a.t.as_micros() as f64 - b.t.as_micros() as f64) * self.config.beta) as f32,
        ]
    }

    fn node_features(&self, i: usize) -> [f32; 2] {
        match self.slots[i].event.polarity {
            evlab_events::Polarity::On => [1.0, 0.0],
            evlab_events::Polarity::Off => [0.0, 1.0],
        }
    }
}

/// [`GraphBuilder`] adapter over the windowed store: streams events
/// through the window and snapshots the live graph on `finish`. With an
/// unbounded policy this is a fourth full-graph construction strategy,
/// equivalent to the other three.
#[derive(Debug, Clone)]
pub struct WindowedGraphBuilder {
    window: SlidingWindowGraph,
    snapshot: EventGraph,
    built: bool,
}

impl WindowedGraphBuilder {
    /// Creates a builder over a window with the given policy.
    pub fn new(config: GraphConfig, policy: WindowPolicy) -> Self {
        WindowedGraphBuilder {
            snapshot: EventGraph::new(config.beta),
            window: SlidingWindowGraph::new(config, policy),
            built: false,
        }
    }

    /// The live window behind the builder.
    pub fn window(&self) -> &SlidingWindowGraph {
        &self.window
    }

    /// Consumes the builder, returning the snapshot graph (callers should
    /// `finish` first).
    pub fn into_graph(self) -> EventGraph {
        self.snapshot
    }
}

impl GraphBuilder for WindowedGraphBuilder {
    fn name(&self) -> &'static str {
        "windowed"
    }

    fn insert(&mut self, event: Event, ops: &mut OpCount) {
        self.window.push(event, ops);
        self.built = false;
    }

    fn finish(&mut self, _ops: &mut OpCount) {
        if self.built {
            return;
        }
        self.snapshot = self.window.to_event_graph();
        self.built = true;
        crate::build::record_build_obs(&self.snapshot);
    }

    fn graph(&self) -> &EventGraph {
        &self.snapshot
    }
}

/// Streaming inference engine over a [`SlidingWindowGraph`]: per-event
/// logits with bounded memory and **no full-graph rebuilds**.
///
/// Per-slot feature rows are cached for every layer; a push recomputes
/// only the frontier of nodes whose inputs changed:
///
/// * frontier₀ = the re-selected survivors ∪ the inserted node (input
///   polarity features never change, so nothing else can change at the
///   first layer);
/// * frontierₗ₊₁ = frontierₗ ∪ out-neighbours(frontierₗ) (a layer-`l`
///   change propagates exactly one hop along out-edges per layer).
///
/// The running mean-pool is kept as an f64 sum: evicted rows are
/// subtracted, recomputed rows swapped, so pooling stays O(classes) per
/// event regardless of window size.
#[derive(Clone)]
pub struct WindowedGnn {
    net: GnnNetwork,
    graph: SlidingWindowGraph,
    /// Polarity input features, row per slot.
    input_features: NodeFeatures,
    /// Cached per-layer node features, rows per slot.
    layer_features: Vec<NodeFeatures>,
    /// Running sum of live final-layer rows (f64 so long streams of
    /// add/subtract pairs cannot drift the pool).
    pool_sum: Vec<f64>,
    classes: usize,
}

impl WindowedGnn {
    /// Creates an engine over a trained network, graph configuration and
    /// window policy.
    pub fn new(
        net: GnnNetwork,
        config: GraphConfig,
        policy: WindowPolicy,
        classes: usize,
    ) -> Self {
        let dims: Vec<usize> = net.convs().iter().map(|c| c.out_dim()).collect();
        let last = *dims
            .last()
            .unwrap_or_else(|| panic!("at least one conv layer"));
        WindowedGnn {
            graph: SlidingWindowGraph::new(config, policy),
            input_features: NodeFeatures::zeros(0, 2),
            layer_features: dims.iter().map(|&d| NodeFeatures::zeros(0, d)).collect(),
            pool_sum: vec![0.0; last],
            net,
            classes,
        }
    }

    /// Number of live nodes in the window.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The window store.
    pub fn graph(&self) -> &SlidingWindowGraph {
        &self.graph
    }

    /// Shared access to the wrapped network.
    pub fn network(&self) -> &GnnNetwork {
        &self.net
    }

    /// Drops all window state (nodes, cached features, pooled sum) while
    /// keeping the trained weights — session start, not memory bounding:
    /// steady-state memory is bounded by the eviction policy alone.
    pub fn reset(&mut self) {
        self.graph.clear();
        self.input_features = NodeFeatures::zeros(0, 2);
        for f in &mut self.layer_features {
            *f = NodeFeatures::zeros(0, f.dim());
        }
        for s in &mut self.pool_sum {
            *s = 0.0;
        }
    }

    /// Serializes the session-mutable state: the window store, the
    /// per-slot feature caches for every layer, and the running f64 pool
    /// accumulator (exact bit pattern — the pool is history-dependent, so
    /// recomputing it from the restored rows would *not* reproduce the
    /// pre-crash bits). The trained network is a construction input and
    /// is not recorded.
    pub fn save_state(&self, enc: &mut Encoder) {
        self.graph.save_state(enc);
        save_features(&self.input_features, enc);
        enc.put_u64(self.layer_features.len() as u64);
        for f in &self.layer_features {
            save_features(f, enc);
        }
        enc.put_f64_slice(&self.pool_sum);
    }

    /// Restores state written by [`WindowedGnn::save_state`] into an
    /// identically-constructed engine, bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on truncation, corruption, or shapes that
    /// do not match this engine's layer dimensions.
    pub fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
        let mut graph = self.graph.clone();
        graph.load_state(dec)?;
        let input_features = load_features(2, dec)?;
        let layers = dec.take_u64()? as usize;
        if layers != self.layer_features.len() {
            return Err(dec.corrupt(format!(
                "snapshot has {layers} feature layers, engine has {}",
                self.layer_features.len()
            )));
        }
        let mut layer_features = Vec::with_capacity(layers);
        for f in &self.layer_features {
            layer_features.push(load_features(f.dim(), dec)?);
        }
        let pool_sum = dec.take_f64_vec()?;
        if pool_sum.len() != self.pool_sum.len() {
            return Err(dec.corrupt(format!(
                "pool width {} != engine width {}",
                pool_sum.len(),
                self.pool_sum.len()
            )));
        }
        self.graph = graph;
        self.input_features = input_features;
        self.layer_features = layer_features;
        self.pool_sum = pool_sum;
        Ok(())
    }

    /// Processes one event and returns the updated class logits.
    pub fn update(&mut self, event: Event, ops: &mut OpCount) -> Tensor {
        let outcome = self.graph.push(event, ops);
        let last = self.layer_features.len() - 1;
        // Evicted rows leave the pool before anything is recomputed.
        for &e in &outcome.evicted {
            if (e as usize) < self.layer_features[last].nodes() {
                let row = self.layer_features[last].row(e as usize);
                for (s, &v) in self.pool_sum.iter_mut().zip(row) {
                    *s -= v as f64;
                }
            }
        }
        ops.record_add((outcome.evicted.len() * self.pool_sum.len()) as u64);
        // Feature caches are slot-indexed; grow them with the slot table.
        let slots = self.graph.slot_count();
        self.input_features.resize_nodes(slots);
        for f in &mut self.layer_features {
            f.resize_nodes(slots);
        }
        let inserted = outcome.inserted;
        let feat = self.graph.node_features(inserted as usize);
        self.input_features
            .row_mut(inserted as usize)
            .copy_from_slice(&feat);

        // Frontier as (seq, slot), ascending by seq; the inserted node has
        // the maximum seq, so appending keeps the order.
        let mut frontier: Vec<(u64, u32)> = outcome
            .reselected
            .iter()
            .map(|&s| (self.graph.seq(s as usize), s))
            .collect();
        frontier.push((self.graph.seq(inserted as usize), inserted));
        let mut recomputed = 0u64;
        for l in 0..=last {
            recomputed += frontier.len() as u64;
            for &(_, fi) in &frontier {
                let idx = fi as usize;
                let mut row = {
                    let prev = if l == 0 {
                        &self.input_features
                    } else {
                        &self.layer_features[l - 1]
                    };
                    self.net.convs()[l].node_forward(&self.graph, prev, idx, ops)
                };
                for v in &mut row {
                    *v = v.max(0.0);
                }
                if l == last {
                    // Swap this node's contribution in the running pool.
                    let old = self.layer_features[last].row(idx);
                    if fi != inserted {
                        for (s, &v) in self.pool_sum.iter_mut().zip(old) {
                            *s -= v as f64;
                        }
                    }
                    for (s, &v) in self.pool_sum.iter_mut().zip(&row) {
                        *s += v as f64;
                    }
                    ops.record_add(2 * self.pool_sum.len() as u64);
                }
                self.layer_features[l].row_mut(idx).copy_from_slice(&row);
            }
            if l < last {
                // One-hop propagation: out-neighbours inherit the change.
                let mut next = frontier.clone();
                for &(_, fi) in &frontier {
                    next.extend_from_slice(self.graph.out_edges(fi as usize));
                }
                next.sort_by_key(|&(sq, _)| sq);
                next.dedup();
                frontier = next;
            }
        }
        obs::counter_add("gnn.window.updates", 1);
        obs::counter_add("gnn.window.recomputed_rows", recomputed);

        let n = self.graph.node_count() as f64;
        let pooled: Vec<f32> = self.pool_sum.iter().map(|&s| (s / n) as f32).collect();
        ops.record_mult(pooled.len() as u64);
        let logits = self.net.head_logits(&pooled, ops);
        Tensor::from_vec(&[self.classes], logits)
            .unwrap_or_else(|e| panic!("logit shape: {e}"))
    }
}

/// Serializes a slot-indexed feature cache: row count, then every row's
/// f32 bit patterns (the dimension is a construction input).
fn save_features(f: &NodeFeatures, enc: &mut Encoder) {
    enc.put_u64(f.nodes() as u64);
    for i in 0..f.nodes() {
        for &v in f.row(i) {
            enc.put_f32(v);
        }
    }
}

/// Restores a feature cache written by [`save_features`] at a known
/// dimension.
fn load_features(dim: usize, dec: &mut Decoder) -> Result<NodeFeatures, FrameError> {
    let n = dec.take_u64()?;
    if n.saturating_mul(dim.max(1) as u64).saturating_mul(4) > dec.remaining() as u64 {
        return Err(dec.corrupt(format!("{n} feature rows exceed the payload")));
    }
    let mut f = NodeFeatures::zeros(n as usize, dim);
    for i in 0..n as usize {
        for v in f.row_mut(i) {
            *v = dec.take_f32()?;
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::kdtree_build;
    use crate::network::GnnConfig;
    use evlab_events::Polarity;
    use evlab_util::Rng64;

    fn random_events(n: usize, res: u16, span_us: u64, seed: u64) -> Vec<Event> {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut ts: Vec<u64> = (0..n).map(|_| rng.next_below(span_us)).collect();
        ts.sort_unstable();
        ts.iter()
            .map(|&t| {
                Event::new(
                    t,
                    rng.next_below(res as u64) as u16,
                    rng.next_below(res as u64) as u16,
                    if rng.bernoulli(0.5) {
                        Polarity::On
                    } else {
                        Polarity::Off
                    },
                )
            })
            .collect()
    }

    /// The trailing slice a policy should retain after all events pushed.
    fn trailing(events: &[Event], policy: WindowPolicy) -> Vec<Event> {
        let Some(last) = events.last() else {
            return Vec::new();
        };
        let aged: Vec<Event> = match policy.max_age_us() {
            Some(age) => events
                .iter()
                .filter(|e| last.t.saturating_since(e.t) <= age)
                .copied()
                .collect(),
            None => events.to_vec(),
        };
        let cap = policy.max_nodes();
        let skip = aged.len().saturating_sub(cap);
        aged[skip..].to_vec()
    }

    fn assert_graphs_identical(a: &EventGraph, b: &EventGraph, tag: &str) {
        assert_eq!(a.node_count(), b.node_count(), "{tag}: node count");
        for i in 0..a.node_count() {
            assert_eq!(a.event(i), b.event(i), "{tag}: event {i}");
            assert_eq!(a.in_neighbors(i), b.in_neighbors(i), "{tag}: nbrs {i}");
        }
    }

    #[test]
    fn window_matches_fresh_rebuild_for_every_policy() {
        let events = random_events(600, 48, 120_000, 11);
        let config = GraphConfig::new();
        for policy in [
            WindowPolicy::MaxNodes(64),
            WindowPolicy::MaxAgeUs(20_000),
            WindowPolicy::Both {
                max_nodes: 100,
                max_age_us: 30_000,
            },
        ] {
            let mut w = SlidingWindowGraph::new(config, policy);
            let mut ops = OpCount::new();
            for e in &events {
                w.push(*e, &mut ops);
            }
            let live = trailing(&events, policy);
            assert_eq!(w.node_count(), live.len(), "{policy:?}: live count");
            let mut oracle_ops = OpCount::new();
            let oracle = kdtree_build(&live, &config, &mut oracle_ops);
            assert_graphs_identical(
                &w.to_event_graph(),
                &oracle,
                &format!("{policy:?}"),
            );
        }
    }

    #[test]
    fn eviction_reselects_displaced_candidates() {
        // Node capacity forces the degree cap to matter: coincident
        // events make everyone a candidate of everyone, so evictions must
        // promote previously displaced candidates into the freed slots.
        let events: Vec<Event> = (0..120)
            .map(|i| Event::new(i, 10, 10, Polarity::On))
            .collect();
        let config = GraphConfig::new().with_max_degree(4);
        let policy = WindowPolicy::MaxNodes(16);
        let mut w = SlidingWindowGraph::new(config, policy);
        let mut ops = OpCount::new();
        let mut any_reselect = false;
        for e in &events {
            let out = w.push(*e, &mut ops);
            any_reselect |= !out.reselected.is_empty();
        }
        assert!(any_reselect, "degree-capped evictions must trigger repairs");
        let live = trailing(&events, policy);
        let oracle = kdtree_build(&live, &config, &mut OpCount::new());
        assert_graphs_identical(&w.to_event_graph(), &oracle, "coincident");
    }

    #[test]
    fn slot_handles_are_stable_and_reused() {
        let mut w = SlidingWindowGraph::new(GraphConfig::new(), WindowPolicy::MaxNodes(3));
        let mut ops = OpCount::new();
        for i in 0..3u64 {
            w.push(Event::new(i * 10, i as u16, 0, Polarity::On), &mut ops);
        }
        assert_eq!(w.slot_count(), 3);
        let out = w.push(Event::new(40, 3, 0, Polarity::On), &mut ops);
        // The evicted slot is recycled for the insert: no new allocation.
        assert_eq!(w.slot_count(), 3, "ring reuses tombstoned slots");
        assert_eq!(out.evicted, vec![out.inserted], "FIFO slot reuse");
        assert!(w.is_live(out.inserted as usize));
        assert_eq!(w.node_count(), 3);
    }

    #[test]
    fn windowed_builder_agrees_with_batch_builders() {
        let events = random_events(400, 32, 80_000, 3);
        let config = GraphConfig::new();
        let mut ops = OpCount::new();
        let mut b = WindowedGraphBuilder::new(config, WindowPolicy::MaxNodes(usize::MAX));
        for e in &events {
            GraphBuilder::insert(&mut b, *e, &mut ops);
        }
        GraphBuilder::finish(&mut b, &mut ops);
        let oracle = kdtree_build(&events, &config, &mut OpCount::new());
        assert_graphs_identical(b.graph(), &oracle, "unbounded window");
    }

    #[test]
    fn windowed_logits_match_full_recompute_over_trailing_window() {
        // The engine's incremental frontier updates must agree with a full
        // forward pass over the compacted trailing graph (approximately:
        // the engine pools in f64, the batch path in f32).
        let events = random_events(300, 24, 60_000, 7);
        let config = GraphConfig::new();
        let policy = WindowPolicy::MaxNodes(48);
        let net = GnnNetwork::new(
            &GnnConfig::new(3).with_hidden(vec![6, 6]),
            &mut Rng64::seed_from_u64(1),
        );
        let mut engine = WindowedGnn::new(net, config, policy, 3);
        let mut ops = OpCount::new();
        let mut last = Tensor::zeros(&[3]);
        for e in &events {
            last = engine.update(*e, &mut ops);
        }
        let mut batch_net = GnnNetwork::new(
            &GnnConfig::new(3).with_hidden(vec![6, 6]),
            &mut Rng64::seed_from_u64(1),
        );
        let compact = engine.graph().to_event_graph();
        let batch_logits = batch_net.forward(&compact, &mut ops);
        for (a, b) in batch_logits.as_slice().iter().zip(last.as_slice()) {
            assert!((a - b).abs() < 1e-3, "batch {a} vs windowed {b}");
        }
    }

    #[test]
    fn per_event_cost_stays_flat_as_the_window_slides() {
        let events = random_events(2_000, 48, 400_000, 9);
        let net = GnnNetwork::new(&GnnConfig::new(2), &mut Rng64::seed_from_u64(2));
        let mut engine = WindowedGnn::new(
            net,
            GraphConfig::new(),
            WindowPolicy::MaxNodes(256),
            2,
        );
        let mut early = 0u64;
        let mut late = 0u64;
        for (i, e) in events.iter().enumerate() {
            let mut ops = OpCount::new();
            engine.update(*e, &mut ops);
            // Compare saturated steady state (window already full) early
            // vs late: sliding must not introduce growth or spikes.
            if (400..600).contains(&i) {
                early += ops.macs;
            }
            if (1_800..2_000).contains(&i) {
                late += ops.macs;
            }
        }
        assert!(
            late < 3 * early,
            "per-event cost grew as the window slid: early {early} vs late {late}"
        );
    }

    #[test]
    fn window_state_round_trip_resumes_bit_identically() {
        let events = random_events(400, 32, 80_000, 21);
        let config = GraphConfig::new();
        let policy = WindowPolicy::MaxNodes(48);
        let mut oracle = SlidingWindowGraph::new(config, policy);
        let mut ops = OpCount::new();
        for e in &events[..200] {
            oracle.push(*e, &mut ops);
        }
        let mut enc = Encoder::new();
        oracle.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = SlidingWindowGraph::new(config, policy);
        restored
            .load_state(&mut Decoder::new(&bytes))
            .expect("valid state");
        // The restored window must behave identically from here on —
        // same push outcomes, same compacted graph.
        for e in &events[200..] {
            let a = oracle.push(*e, &mut ops);
            let b = restored.push(*e, &mut ops);
            assert_eq!(a.inserted, b.inserted);
            assert_eq!(a.evicted, b.evicted);
            assert_eq!(a.reselected, b.reselected);
        }
        assert_graphs_identical(
            &oracle.to_event_graph(),
            &restored.to_event_graph(),
            "restored window",
        );
    }

    #[test]
    fn engine_state_round_trip_resumes_bit_identically() {
        let events = random_events(300, 24, 60_000, 23);
        let config = GraphConfig::new();
        let policy = WindowPolicy::MaxNodes(48);
        let make_net = || {
            GnnNetwork::new(
                &GnnConfig::new(3).with_hidden(vec![6, 6]),
                &mut Rng64::seed_from_u64(1),
            )
        };
        let mut oracle = WindowedGnn::new(make_net(), config, policy, 3);
        let mut ops = OpCount::new();
        for e in &events[..150] {
            oracle.update(*e, &mut ops);
        }
        let mut enc = Encoder::new();
        oracle.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = WindowedGnn::new(make_net(), config, policy, 3);
        restored
            .load_state(&mut Decoder::new(&bytes))
            .expect("valid state");
        for e in &events[150..] {
            let a = oracle.update(*e, &mut ops);
            let b = restored.update(*e, &mut ops);
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "logits must be bit-identical");
            }
        }
    }

    #[test]
    fn engine_load_rejects_mismatched_shapes() {
        let config = GraphConfig::new();
        let policy = WindowPolicy::MaxNodes(16);
        let net = GnnNetwork::new(
            &GnnConfig::new(3).with_hidden(vec![6, 6]),
            &mut Rng64::seed_from_u64(1),
        );
        let engine = WindowedGnn::new(net, config, policy, 3);
        let mut enc = Encoder::new();
        engine.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let other_net = GnnNetwork::new(
            &GnnConfig::new(3).with_hidden(vec![6]),
            &mut Rng64::seed_from_u64(1),
        );
        let mut other = WindowedGnn::new(other_net, config, policy, 3);
        assert!(other.load_state(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn age_policy_empties_after_a_long_gap() {
        let mut w = SlidingWindowGraph::new(
            GraphConfig::new(),
            WindowPolicy::MaxAgeUs(1_000),
        );
        let mut ops = OpCount::new();
        for i in 0..5u64 {
            w.push(Event::new(i * 100, 1, 1, Polarity::On), &mut ops);
        }
        assert_eq!(w.node_count(), 5);
        let out = w.push(Event::new(1_000_000, 2, 2, Polarity::On), &mut ops);
        assert_eq!(out.evicted.len(), 5, "everything aged out");
        assert_eq!(w.node_count(), 1);
        assert_eq!(w.to_event_graph().in_neighbors(0), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_rejected() {
        let mut w = SlidingWindowGraph::new(GraphConfig::new(), WindowPolicy::MaxNodes(8));
        let mut ops = OpCount::new();
        w.push(Event::new(100, 1, 1, Polarity::On), &mut ops);
        w.push(Event::new(50, 1, 1, Polarity::On), &mut ops);
    }
}
