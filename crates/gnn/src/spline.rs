//! B-spline graph convolution (paper §IV, [Fey et al. SplineCNN]).
//!
//! Where [`crate::conv::GraphConv`] maps edge offsets linearly, SplineCNN
//! learns a *continuous kernel* over the offset space: the 3-D offset
//! `(Δx, Δy, βΔt)` is normalized into `[0, 1]³`, and degree-1 B-spline
//! bases interpolate between `K³` learned weight matrices. The kernel can
//! therefore represent non-monotone functions of the offset (e.g. oriented
//! edge detectors in space-time), which a single linear map cannot.

use crate::graph::{EventGraph, GraphView};
use evlab_tensor::init::he_normal;
use evlab_tensor::layer::Param;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;

pub use crate::conv::NodeFeatures;

/// A degree-1 (linear) B-spline graph convolution layer.
#[derive(Debug, Clone)]
pub struct SplineConv {
    w_self: Param,   // [out, in]
    w_kernel: Param, // [K*K*K, out, in]
    bias: Param,     // [out]
    kernel_size: usize,
    /// Normalization of (Δx, Δy, βΔt) into [-1, 1] before binning.
    offset_scale: [f32; 3],
    in_dim: usize,
    out_dim: usize,
    cached_input: Option<NodeFeatures>,
    cached_mask: Option<Vec<bool>>,
}

/// One corner of the interpolation support: flat kernel index and basis
/// coefficient.
type BasisEntry = (usize, f32);

impl SplineConv {
    /// Creates a layer with `kernel_size` control points per offset
    /// dimension; `offset_scale` should be the expected maximum magnitude
    /// of each offset component (e.g. the graph radius).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `kernel_size < 2`, or a scale is
    /// non-positive.
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        kernel_size: usize,
        offset_scale: [f32; 3],
        rng: &mut Rng64,
    ) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "zero-sized layer");
        assert!(kernel_size >= 2, "need at least two control points");
        assert!(
            offset_scale.iter().all(|&s| s > 0.0),
            "scales must be positive"
        );
        let k3 = kernel_size * kernel_size * kernel_size;
        SplineConv {
            w_self: Param::new(he_normal(&[out_dim, in_dim], in_dim, rng)),
            w_kernel: Param::new(he_normal(&[k3, out_dim, in_dim], in_dim * 4, rng)),
            bias: Param::new(Tensor::zeros(&[out_dim])),
            kernel_size,
            offset_scale,
            in_dim,
            out_dim,
            cached_input: None,
            cached_mask: None,
        }
    }

    /// Output feature dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.w_self.len() + self.w_kernel.len() + self.bias.len()
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_self, &mut self.w_kernel, &mut self.bias]
    }

    /// The eight interpolation corners and their coefficients for an edge
    /// offset. Coefficients form a partition of unity.
    pub fn basis(&self, offset: [f32; 3]) -> Vec<BasisEntry> {
        let k = self.kernel_size;
        let mut idx = [0usize; 3];
        let mut frac = [0.0f32; 3];
        for d in 0..3 {
            // Normalize to [0, 1] then to the control-point grid.
            let u = ((offset[d] / self.offset_scale[d]).clamp(-1.0, 1.0) + 1.0) / 2.0;
            let pos = u * (k - 1) as f32;
            let lo = (pos.floor() as usize).min(k - 2);
            idx[d] = lo;
            frac[d] = pos - lo as f32;
        }
        let mut out = Vec::with_capacity(8);
        for corner in 0..8usize {
            let mut flat = 0usize;
            let mut coeff = 1.0f32;
            for d in 0..3 {
                let hi = corner >> d & 1;
                let i = idx[d] + hi;
                coeff *= if hi == 1 { frac[d] } else { 1.0 - frac[d] };
                flat = flat * k + i;
            }
            if coeff != 0.0 {
                out.push((flat, coeff));
            }
        }
        out
    }

    /// Pre-activation message for one node (shared by batch and streaming
    /// paths), over any [`GraphView`] node store.
    pub fn node_forward<G: GraphView + ?Sized>(
        &self,
        graph: &G,
        input: &NodeFeatures,
        i: usize,
        ops: &mut OpCount,
    ) -> Vec<f32> {
        let ws = self.w_self.value.as_slice();
        let wk = self.w_kernel.value.as_slice();
        let b = self.bias.value.as_slice();
        let h_i = input.row(i);
        let mut m: Vec<f32> = (0..self.out_dim)
            .map(|o| {
                b[o]
                    + ws[o * self.in_dim..(o + 1) * self.in_dim]
                        .iter()
                        .zip(h_i)
                        .map(|(w, x)| w * x)
                        .sum::<f32>()
            })
            .collect();
        ops.record_mac(
            (self.out_dim * self.in_dim) as u64,
            (self.out_dim * self.in_dim) as u64,
        );
        let nbrs = graph.in_neighbors(i);
        if nbrs.is_empty() {
            return m;
        }
        let inv = 1.0 / nbrs.len() as f32;
        let stride = self.out_dim * self.in_dim;
        let mut mac_count = 0u64;
        for &j in nbrs {
            let h_j = input.row(j as usize);
            let r = graph.relative_offset(i, j as usize);
            for (flat, coeff) in self.basis(r) {
                let block = &wk[flat * stride..(flat + 1) * stride];
                for (o, slot) in m.iter_mut().enumerate() {
                    let msg: f32 = block[o * self.in_dim..(o + 1) * self.in_dim]
                        .iter()
                        .zip(h_j)
                        .map(|(w, x)| w * x)
                        .sum();
                    *slot += inv * coeff * msg;
                }
                mac_count += stride as u64;
            }
        }
        ops.record_mac(mac_count, mac_count);
        m
    }

    /// Batch forward with ReLU; caches for backward.
    pub fn forward(
        &mut self,
        graph: &EventGraph,
        input: &NodeFeatures,
        ops: &mut OpCount,
    ) -> NodeFeatures {
        let n = graph.node_count();
        assert_eq!(input.nodes(), n, "feature/node count mismatch");
        assert_eq!(input.dim(), self.in_dim, "feature dim mismatch");
        let mut out = NodeFeatures::zeros(n, self.out_dim);
        let mut mask = vec![false; n * self.out_dim];
        for i in 0..n {
            let m = self.node_forward(graph, input, i, ops);
            let row = out.row_mut(i);
            for (o, &v) in m.iter().enumerate() {
                if v > 0.0 {
                    row[o] = v;
                    mask[i * self.out_dim + o] = true;
                }
            }
        }
        ops.record_compare((n * self.out_dim) as u64);
        self.cached_input = Some(input.clone());
        self.cached_mask = Some(mask);
        out
    }

    /// Backward pass: accumulates parameter gradients, returns the input
    /// gradient.
    ///
    /// # Panics
    ///
    /// Panics without a preceding [`SplineConv::forward`].
    pub fn backward(
        &mut self,
        graph: &EventGraph,
        grad_output: &NodeFeatures,
        ops: &mut OpCount,
    ) -> NodeFeatures {
        let input = self
            .cached_input
            .take()
            .unwrap_or_else(|| panic!("backward without forward"));
        let mask = self
            .cached_mask
            .take()
            .unwrap_or_else(|| panic!("forward caches mask"));
        let n = graph.node_count();
        let mut grad_input = NodeFeatures::zeros(n, self.in_dim);
        let ws = self.w_self.value.as_slice().to_vec();
        let wk = self.w_kernel.value.as_slice().to_vec();
        let stride = self.out_dim * self.in_dim;
        let mut mac_count = 0u64;
        for i in 0..n {
            let nbrs = graph.in_neighbors(i).to_vec();
            let inv = if nbrs.is_empty() {
                0.0
            } else {
                1.0 / nbrs.len() as f32
            };
            let h_i = input.row(i).to_vec();
            let dm: Vec<f32> = grad_output
                .row(i)
                .iter()
                .enumerate()
                .map(|(o, &g)| if mask[i * self.out_dim + o] { g } else { 0.0 })
                .collect();
            if dm.iter().all(|&d| d == 0.0) {
                continue;
            }
            {
                let gb = self.bias.grad.as_mut_slice();
                let gs = self.w_self.grad.as_mut_slice();
                for (o, &d) in dm.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    gb[o] += d;
                    for (c, &x) in h_i.iter().enumerate() {
                        gs[o * self.in_dim + c] += d * x;
                    }
                }
            }
            {
                let gi = grad_input.row_mut(i);
                for (o, &d) in dm.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    for (c, slot) in gi.iter_mut().enumerate() {
                        *slot += d * ws[o * self.in_dim + c];
                    }
                }
            }
            for &j in &nbrs {
                let h_j = input.row(j as usize).to_vec();
                let r = graph.relative_offset(i, j as usize);
                for (flat, coeff) in self.basis(r) {
                    let gk = self.w_kernel.grad.as_mut_slice();
                    let block_grad = &mut gk[flat * stride..(flat + 1) * stride];
                    for (o, &d) in dm.iter().enumerate() {
                        if d == 0.0 {
                            continue;
                        }
                        let scaled = d * inv * coeff;
                        for (c, &x) in h_j.iter().enumerate() {
                            block_grad[o * self.in_dim + c] += scaled * x;
                        }
                    }
                    let block = &wk[flat * stride..(flat + 1) * stride];
                    let gj = grad_input.row_mut(j as usize);
                    for (o, &d) in dm.iter().enumerate() {
                        if d == 0.0 {
                            continue;
                        }
                        let scaled = d * inv * coeff;
                        for (c, slot) in gj.iter_mut().enumerate() {
                            *slot += scaled * block[o * self.in_dim + c];
                        }
                    }
                    mac_count += 2 * stride as u64;
                }
            }
        }
        ops.record_mac(mac_count, mac_count);
        grad_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::{Event, Polarity};

    fn small_graph() -> EventGraph {
        let mut g = EventGraph::new(0.001);
        g.push_node(Event::new(0, 2, 2, Polarity::On), vec![]);
        g.push_node(Event::new(100, 4, 2, Polarity::Off), vec![0]);
        g.push_node(Event::new(200, 4, 4, Polarity::On), vec![0, 1]);
        g
    }

    #[test]
    fn basis_is_a_partition_of_unity() {
        let mut rng = Rng64::seed_from_u64(1);
        let conv = SplineConv::new(2, 4, 3, [5.0, 5.0, 1.0], &mut rng);
        for offset in [
            [0.0f32, 0.0, 0.0],
            [2.5, -1.0, 0.4],
            [5.0, 5.0, 1.0],
            [-5.0, 3.3, -0.9],
            [100.0, -100.0, 7.0], // clamped
        ] {
            let total: f32 = conv.basis(offset).iter().map(|&(_, c)| c).sum();
            assert!((total - 1.0).abs() < 1e-5, "offset {offset:?}: {total}");
        }
    }

    #[test]
    fn basis_is_local() {
        let mut rng = Rng64::seed_from_u64(2);
        let conv = SplineConv::new(2, 4, 5, [1.0, 1.0, 1.0], &mut rng);
        // An offset at a grid corner activates exactly one control point.
        let entries = conv.basis([-1.0, -1.0, -1.0]);
        let nonzero: Vec<_> = entries.iter().filter(|&&(_, c)| c > 1e-6).collect();
        assert_eq!(nonzero.len(), 1);
        assert_eq!(nonzero[0].0, 0, "lowest corner maps to kernel index 0");
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng64::seed_from_u64(3);
        let g = small_graph();
        let mut conv = SplineConv::new(2, 3, 2, [5.0, 5.0, 1.0], &mut rng);
        let input = NodeFeatures::from_graph(&g);
        let mut ops = OpCount::new();
        let out = conv.forward(&g, &input, &mut ops);
        let dout = grad_ones(out.nodes(), 3);
        let din = conv.backward(&g, &dout, &mut ops);
        let objective = |conv: &mut SplineConv, input: &NodeFeatures, ops: &mut OpCount| {
            let out = conv.forward(&g, input, ops);
            (0..out.nodes()).map(|i| out.row(i).iter().sum::<f32>()).sum::<f32>()
        };
        let eps = 1e-3f32;
        // Input gradients.
        for node in 0..3 {
            for c in 0..2 {
                let mut plus = input.clone();
                plus.row_mut(node)[c] += eps;
                let mut minus = input.clone();
                minus.row_mut(node)[c] -= eps;
                let numeric = (objective(&mut conv, &plus, &mut ops)
                    - objective(&mut conv, &minus, &mut ops))
                    / (2.0 * eps);
                let a = din.row(node)[c];
                assert!(
                    (numeric - a).abs() < 2e-2,
                    "node {node} chan {c}: {numeric} vs {a}"
                );
            }
        }
        // Kernel weight gradients (sampled).
        let mut conv2 = SplineConv::new(2, 3, 2, [5.0, 5.0, 1.0], &mut Rng64::seed_from_u64(3));
        let out2 = conv2.forward(&g, &input, &mut ops);
        conv2.backward(&g, &grad_ones(out2.nodes(), 3), &mut ops);
        let analytic = conv2.params_mut()[1].grad.clone();
        for wi in [0usize, 7, analytic.len() - 1] {
            let orig = conv2.params_mut()[1].value.as_slice()[wi];
            conv2.params_mut()[1].value.as_mut_slice()[wi] = orig + eps;
            let f_plus = objective(&mut conv2, &input, &mut ops);
            conv2.params_mut()[1].value.as_mut_slice()[wi] = orig - eps;
            let f_minus = objective(&mut conv2, &input, &mut ops);
            conv2.params_mut()[1].value.as_mut_slice()[wi] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = analytic.as_slice()[wi];
            assert!((numeric - a).abs() < 2e-2, "kernel weight {wi}: {numeric} vs {a}");
        }
    }

    fn grad_ones(nodes: usize, dim: usize) -> NodeFeatures {
        let mut g = NodeFeatures::zeros(nodes, dim);
        for i in 0..nodes {
            g.row_mut(i).iter_mut().for_each(|v| *v = 1.0);
        }
        g
    }

    #[test]
    fn spline_kernel_is_offset_sensitive_beyond_linear() {
        // A linear offset map W_rel r assigns antisymmetric weights to
        // opposite offsets; the spline kernel can treat +d and -d
        // independently. Verify the *message difference* between +d and -d
        // is not forced to be proportional to the offset difference.
        let mut rng = Rng64::seed_from_u64(4);
        let conv = SplineConv::new(1, 1, 3, [5.0, 5.0, 1.0], &mut rng);
        let message = |dx: f32| -> f32 {
            // Message for unit input feature along one edge at offset dx.
            let mut acc = 0.0;
            for (flat, coeff) in conv.basis([dx, 0.0, 0.0]) {
                acc += coeff * conv.w_kernel.value.as_slice()[flat];
            }
            acc
        };
        let plus = message(2.5);
        let minus = message(-2.5);
        let zero = message(0.0);
        // For a linear kernel, m(+d) + m(-d) == 2 m(0). The spline is free
        // of that constraint with overwhelming probability.
        assert!(
            (plus + minus - 2.0 * zero).abs() > 1e-4,
            "spline kernel degenerated to linear"
        );
    }

    #[test]
    fn param_count_formula() {
        let mut rng = Rng64::seed_from_u64(5);
        let conv = SplineConv::new(2, 4, 3, [1.0, 1.0, 1.0], &mut rng);
        assert_eq!(conv.param_count(), 4 * 2 + 27 * 4 * 2 + 4);
    }
}
