//! A 3-D kd-tree over spatiotemporal points.
//!
//! The batch neighbour-search baseline: §IV notes that incorporating events
//! into a continuously evolving graph is "generally based on tree-search
//! methods" and identifies their (re)construction latency as the key
//! roadblock. This implementation supports k-nearest-neighbour and radius
//! queries and is compared against the naive scan and the incremental
//! spatial hash in `build`.

use evlab_util::par;

/// A static kd-tree over `[x, y, scaled_t]` points.
#[derive(Debug, Clone, PartialEq)]
pub struct KdTree3 {
    /// Points in build order (indices refer to the caller's original
    /// order).
    points: Vec<[f64; 3]>,
    /// Tree as an implicit structure: `order` is a permutation of point
    /// indices arranged as a balanced kd-tree in array form.
    order: Vec<u32>,
}

fn dist_sq(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

impl KdTree3 {
    /// Builds a tree from points. O(N log² N).
    ///
    /// Construction recurses subtree-per-task: after each median split the
    /// two halves are disjoint subslices, so they build concurrently on the
    /// [`evlab_util::par`] pool down to a depth budget of
    /// [`evlab_util::par::join_levels`]. The median selection is
    /// deterministic for a given subslice, so the resulting tree is
    /// identical for every thread count.
    pub fn build(points: Vec<[f64; 3]>) -> Self {
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = KdTree3 {
            points,
            order: vec![0; 0],
        };
        if !order.is_empty() {
            build_recursive(&tree.points, &mut order, 0, par::join_levels());
        }
        tree.order = order;
        tree
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within `radius` of `query`, unordered. Also
    /// returns the number of tree nodes visited (the search cost).
    pub fn within_radius(&self, query: &[f64; 3], radius: f64) -> (Vec<u32>, usize) {
        let mut out = Vec::new();
        let mut visited = 0usize;
        if !self.order.is_empty() {
            self.radius_recursive(query, radius * radius, 0, self.order.len(), 0, &mut out, &mut visited);
        }
        (out, visited)
    }

    #[allow(clippy::too_many_arguments)]
    fn radius_recursive(
        &self,
        query: &[f64; 3],
        r_sq: f64,
        lo: usize,
        hi: usize,
        axis: usize,
        out: &mut Vec<u32>,
        visited: &mut usize,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let idx = self.order[mid];
        let p = &self.points[idx as usize];
        *visited += 1;
        if dist_sq(p, query) <= r_sq {
            out.push(idx);
        }
        let diff = query[axis] - p[axis];
        let next_axis = (axis + 1) % 3;
        // Search the near side always; the far side only if the splitting
        // plane is within range.
        if diff <= 0.0 {
            self.radius_recursive(query, r_sq, lo, mid, next_axis, out, visited);
            if diff * diff <= r_sq {
                self.radius_recursive(query, r_sq, mid + 1, hi, next_axis, out, visited);
            }
        } else {
            self.radius_recursive(query, r_sq, mid + 1, hi, next_axis, out, visited);
            if diff * diff <= r_sq {
                self.radius_recursive(query, r_sq, lo, mid, next_axis, out, visited);
            }
        }
    }

    /// The `k` nearest neighbours of `query` (excluding exact index matches
    /// is the caller's concern), sorted by distance then index. Returns the
    /// pairs `(index, dist_sq)` and the visit count.
    pub fn knn(&self, query: &[f64; 3], k: usize) -> (Vec<(u32, f64)>, usize) {
        let mut best: Vec<(u32, f64)> = Vec::with_capacity(k + 1);
        let mut visited = 0usize;
        if !self.order.is_empty() && k > 0 {
            self.knn_recursive(query, k, 0, self.order.len(), 0, &mut best, &mut visited);
        }
        best.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal) // distances are finite
                .then(a.0.cmp(&b.0))
        });
        (best, visited)
    }

    #[allow(clippy::too_many_arguments)]
    fn knn_recursive(
        &self,
        query: &[f64; 3],
        k: usize,
        lo: usize,
        hi: usize,
        axis: usize,
        best: &mut Vec<(u32, f64)>,
        visited: &mut usize,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let idx = self.order[mid];
        let p = &self.points[idx as usize];
        *visited += 1;
        let d = dist_sq(p, query);
        let by_dist = |a: &(u32, f64), b: &(u32, f64)| {
            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
        };
        if best.len() < k {
            best.push((idx, d));
            best.sort_by(by_dist);
        } else if d < best[k - 1].1 {
            best[k - 1] = (idx, d);
            best.sort_by(by_dist);
        }
        let diff = query[axis] - p[axis];
        let next_axis = (axis + 1) % 3;
        let worst = if best.len() < k {
            f64::INFINITY
        } else {
            best[k - 1].1
        };
        if diff <= 0.0 {
            self.knn_recursive(query, k, lo, mid, next_axis, best, visited);
            let worst = if best.len() < k {
                f64::INFINITY
            } else {
                best[k - 1].1
            };
            if diff * diff <= worst {
                self.knn_recursive(query, k, mid + 1, hi, next_axis, best, visited);
            }
        } else {
            self.knn_recursive(query, k, mid + 1, hi, next_axis, best, visited);
            let worst2 = if best.len() < k {
                f64::INFINITY
            } else {
                best[k - 1].1
            };
            if diff * diff <= worst2.min(worst) {
                self.knn_recursive(query, k, lo, mid, next_axis, best, visited);
            }
        }
    }
}

/// Minimum subtree size before a build level spawns its sibling on a
/// worker thread; smaller subtrees finish faster than a spawn costs.
const MIN_PAR_SUBTREE: usize = 1024;

fn build_recursive(points: &[[f64; 3]], order: &mut [u32], axis: usize, par_levels: u32) {
    if order.len() <= 1 {
        return;
    }
    // Same median as the query side's implicit `(lo + hi) / 2`:
    // `floor((lo + hi) / 2) - lo == floor((hi - lo) / 2)` for all lo <= hi.
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        points[a as usize][axis]
            .partial_cmp(&points[b as usize][axis])
            .unwrap_or(std::cmp::Ordering::Equal) // coordinates are finite
    });
    let next = (axis + 1) % 3;
    let (left, rest) = order.split_at_mut(mid);
    let right = &mut rest[1..];
    if par_levels > 0 && left.len().min(right.len()) > MIN_PAR_SUBTREE {
        par::join(
            || build_recursive(points, left, next, par_levels - 1),
            || build_recursive(points, right, next, par_levels - 1),
        );
    } else {
        build_recursive(points, left, next, 0);
        build_recursive(points, right, next, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_util::Rng64;

    fn random_points(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = Rng64::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                [
                    rng.range_f64(0.0, 100.0),
                    rng.range_f64(0.0, 100.0),
                    rng.range_f64(0.0, 100.0),
                ]
            })
            .collect()
    }

    fn brute_radius(points: &[[f64; 3]], q: &[f64; 3], r: f64) -> Vec<u32> {
        let mut out: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| dist_sq(p, q) <= r * r)
            .map(|(i, _)| i as u32)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn radius_matches_brute_force() {
        let points = random_points(500, 1);
        let tree = KdTree3::build(points.clone());
        let mut rng = Rng64::seed_from_u64(2);
        for _ in 0..50 {
            let q = [
                rng.range_f64(0.0, 100.0),
                rng.range_f64(0.0, 100.0),
                rng.range_f64(0.0, 100.0),
            ];
            let (mut got, _) = tree.within_radius(&q, 15.0);
            got.sort_unstable();
            assert_eq!(got, brute_radius(&points, &q, 15.0));
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let points = random_points(300, 3);
        let tree = KdTree3::build(points.clone());
        let mut rng = Rng64::seed_from_u64(4);
        for _ in 0..30 {
            let q = [
                rng.range_f64(0.0, 100.0),
                rng.range_f64(0.0, 100.0),
                rng.range_f64(0.0, 100.0),
            ];
            let (got, _) = tree.knn(&q, 7);
            let mut brute: Vec<(u32, f64)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u32, dist_sq(p, &q)))
                .collect();
            brute.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
            brute.truncate(7);
            let got_ids: Vec<u32> = got.iter().map(|&(i, _)| i).collect();
            let brute_ids: Vec<u32> = brute.iter().map(|&(i, _)| i).collect();
            assert_eq!(got_ids, brute_ids);
        }
    }

    #[test]
    fn search_visits_sublinear_nodes() {
        let points = random_points(10_000, 5);
        let tree = KdTree3::build(points);
        let (_, visited) = tree.within_radius(&[50.0, 50.0, 50.0], 3.0);
        assert!(
            visited < 3_000,
            "kd-tree should prune most of the space: visited {visited}"
        );
    }

    #[test]
    fn empty_and_degenerate_trees() {
        let tree = KdTree3::build(vec![]);
        assert!(tree.is_empty());
        assert_eq!(tree.within_radius(&[0.0; 3], 1.0).0, Vec::<u32>::new());
        assert_eq!(tree.knn(&[0.0; 3], 3).0, Vec::new());
        let one = KdTree3::build(vec![[1.0, 2.0, 3.0]]);
        assert_eq!(one.knn(&[1.0, 2.0, 3.0], 1).0, vec![(0, 0.0)]);
    }

    #[test]
    fn duplicate_points_are_all_found() {
        let points = vec![[5.0, 5.0, 5.0]; 4];
        let tree = KdTree3::build(points);
        let (found, _) = tree.within_radius(&[5.0, 5.0, 5.0], 0.1);
        assert_eq!(found.len(), 4);
    }
}
