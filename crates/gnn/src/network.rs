//! Graph classifier: stacked graph convolutions, global mean pooling,
//! linear head.

use crate::conv::{GraphConv, NodeFeatures};
use crate::graph::{EventGraph, GraphView};
use crate::spline::SplineConv;
use evlab_tensor::init::xavier_uniform;
use evlab_tensor::layer::Param;
use evlab_tensor::loss::cross_entropy;
use evlab_tensor::optim::Optimizer;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;

/// Which edge-kernel family the convolutions use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelKind {
    /// Linear relational kernel over (Δx, Δy, βΔt) — cheap, antisymmetric.
    Relational,
    /// Degree-1 B-spline kernel (SplineCNN [68]) with the given control
    /// points per dimension — heavier, offset-shape-aware.
    Spline {
        /// Control points per offset dimension.
        kernel_size: usize,
    },
}

/// Network hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GnnConfig {
    /// Hidden feature dimensions, one per graph-conv layer.
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// Edge kernel family.
    pub kernel: KernelKind,
    /// Offset normalization for the spline kernel: expected maximum
    /// (|Δx|, |Δy|, |βΔt|).
    pub offset_scale: [f32; 3],
}

impl GnnConfig {
    /// A small default: two relational conv layers of 16 features.
    pub fn new(classes: usize) -> Self {
        GnnConfig {
            hidden: vec![16, 16],
            classes,
            kernel: KernelKind::Relational,
            offset_scale: [5.0, 5.0, 5.0],
        }
    }

    /// Returns a copy with different hidden sizes.
    pub fn with_hidden(mut self, hidden: Vec<usize>) -> Self {
        self.hidden = hidden;
        self
    }

    /// Returns a copy using the B-spline kernel.
    pub fn with_spline_kernel(mut self, kernel_size: usize) -> Self {
        self.kernel = KernelKind::Spline { kernel_size };
        self
    }
}

/// A graph-convolution layer of either kernel family.
#[derive(Debug, Clone)]
pub enum AnyConv {
    /// Linear relational kernel.
    Relational(GraphConv),
    /// B-spline kernel.
    Spline(SplineConv),
}

impl AnyConv {
    /// Output feature dimensionality.
    pub fn out_dim(&self) -> usize {
        match self {
            AnyConv::Relational(c) => c.out_dim(),
            AnyConv::Spline(c) => c.out_dim(),
        }
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        match self {
            AnyConv::Relational(c) => c.param_count(),
            AnyConv::Spline(c) => c.param_count(),
        }
    }

    /// Trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            AnyConv::Relational(c) => c.params_mut(),
            AnyConv::Spline(c) => c.params_mut(),
        }
    }

    /// Pre-activation message for a single node (streaming path), over any
    /// [`GraphView`] node store.
    pub fn node_forward<G: GraphView + ?Sized>(
        &self,
        graph: &G,
        input: &NodeFeatures,
        i: usize,
        ops: &mut OpCount,
    ) -> Vec<f32> {
        match self {
            AnyConv::Relational(c) => c.node_forward(graph, input, i, ops),
            AnyConv::Spline(c) => c.node_forward(graph, input, i, ops),
        }
    }

    /// Batch forward with ReLU (caches for backward).
    pub fn forward(
        &mut self,
        graph: &EventGraph,
        input: &NodeFeatures,
        ops: &mut OpCount,
    ) -> NodeFeatures {
        match self {
            AnyConv::Relational(c) => c.forward(graph, input, ops),
            AnyConv::Spline(c) => c.forward(graph, input, ops),
        }
    }

    /// Backward pass.
    pub fn backward(
        &mut self,
        graph: &EventGraph,
        grad: &NodeFeatures,
        ops: &mut OpCount,
    ) -> NodeFeatures {
        match self {
            AnyConv::Relational(c) => c.backward(graph, grad, ops),
            AnyConv::Spline(c) => c.backward(graph, grad, ops),
        }
    }
}

/// An event-graph classifier.
#[derive(Clone)]
pub struct GnnNetwork {
    convs: Vec<AnyConv>,
    head_w: Param, // [classes, last_hidden]
    head_b: Param, // [classes]
    classes: usize,
    cached_pool_input: Option<NodeFeatures>,
}

impl GnnNetwork {
    /// Creates a network; input features are the 2-dim polarity one-hot.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is empty.
    pub fn new(config: &GnnConfig, rng: &mut Rng64) -> Self {
        assert!(!config.hidden.is_empty(), "need at least one conv layer");
        let mut convs = Vec::new();
        let mut in_dim = 2;
        for &h in &config.hidden {
            convs.push(match config.kernel {
                KernelKind::Relational => AnyConv::Relational(GraphConv::new(in_dim, h, rng)),
                KernelKind::Spline { kernel_size } => AnyConv::Spline(SplineConv::new(
                    in_dim,
                    h,
                    kernel_size,
                    config.offset_scale,
                    rng,
                )),
            });
            in_dim = h;
        }
        GnnNetwork {
            convs,
            head_w: Param::new(xavier_uniform(
                &[config.classes, in_dim],
                in_dim,
                config.classes,
                rng,
            )),
            head_b: Param::new(Tensor::zeros(&[config.classes])),
            classes: config.classes,
            cached_pool_input: None,
        }
    }

    /// The convolution layers.
    pub fn convs(&self) -> &[AnyConv] {
        &self.convs
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.convs.iter().map(|c| c.param_count()).sum::<usize>()
            + self.head_w.len()
            + self.head_b.len()
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = self
            .convs
            .iter_mut()
            .flat_map(|c| c.params_mut())
            .collect();
        out.push(&mut self.head_w);
        out.push(&mut self.head_b);
        out
    }

    /// Runs all conv layers, returning the final per-node features.
    pub fn node_features(
        &mut self,
        graph: &EventGraph,
        ops: &mut OpCount,
    ) -> NodeFeatures {
        let mut features = NodeFeatures::from_graph(graph);
        for conv in &mut self.convs {
            features = conv.forward(graph, &features, ops);
        }
        features
    }

    /// Applies the linear head to a pooled feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `pooled` has the wrong dimensionality.
    pub fn head_logits(&self, pooled: &[f32], ops: &mut OpCount) -> Vec<f32> {
        let dim = self.head_w.value.shape()[1];
        assert_eq!(pooled.len(), dim, "pooled feature dim mismatch");
        let w = self.head_w.value.as_slice();
        let b = self.head_b.value.as_slice();
        let logits: Vec<f32> = (0..self.classes)
            .map(|c| {
                b[c] + w[c * dim..(c + 1) * dim]
                    .iter()
                    .zip(pooled)
                    .map(|(wv, x)| wv * x)
                    .sum::<f32>()
            })
            .collect();
        ops.record_mac((self.classes * dim) as u64, (self.classes * dim) as u64);
        logits
    }

    /// Class logits for a graph (caches for backward).
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn forward(&mut self, graph: &EventGraph, ops: &mut OpCount) -> Tensor {
        assert!(graph.node_count() > 0, "empty graph");
        let features = self.node_features(graph, ops);
        let pooled = features.mean_pool();
        let logits = self.head_logits(&pooled, ops);
        self.cached_pool_input = Some(features);
        Tensor::from_vec(&[self.classes], logits)
            .unwrap_or_else(|e| panic!("logit shape: {e}"))
    }

    /// Backward pass from a logit gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`GnnNetwork::forward`].
    pub fn backward(&mut self, graph: &EventGraph, grad_logits: &Tensor, ops: &mut OpCount) {
        let features = self
            .cached_pool_input
            .take()
            .unwrap_or_else(|| panic!("backward without forward"));
        let dim = features.dim();
        let n = features.nodes();
        let pooled = features.mean_pool();
        let g = grad_logits.as_slice();
        {
            let gw = self.head_w.grad.as_mut_slice();
            let gb = self.head_b.grad.as_mut_slice();
            for c in 0..self.classes {
                gb[c] += g[c];
                for (d, &p) in pooled.iter().enumerate() {
                    gw[c * dim + d] += g[c] * p;
                }
            }
        }
        // d pooled = W^T g; d h_i = (1/N) d pooled.
        let w = self.head_w.value.as_slice();
        let mut dpool = vec![0.0f32; dim];
        for c in 0..self.classes {
            for (d, slot) in dpool.iter_mut().enumerate() {
                *slot += g[c] * w[c * dim + d];
            }
        }
        let inv = 1.0 / n as f32;
        let mut grad = NodeFeatures::zeros(n, dim);
        for i in 0..n {
            for (d, slot) in grad.row_mut(i).iter_mut().enumerate() {
                *slot = dpool[d] * inv;
            }
        }
        ops.record_mac((self.classes * dim * 2) as u64, (self.classes * dim * 2) as u64);
        for conv in self.convs.iter_mut().rev() {
            grad = conv.backward(graph, &grad, ops);
        }
    }

    /// Predicted class.
    pub fn predict(&mut self, graph: &EventGraph, ops: &mut OpCount) -> usize {
        self.forward(graph, ops).argmax()
    }
}

impl std::fmt::Debug for GnnNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GnnNetwork")
            .field("layers", &self.convs.len())
            .field("classes", &self.classes)
            .field("params", &self.param_count())
            .finish()
    }
}

/// Trains on a batch of `(graph, label)` pairs with one optimizer step;
/// returns `(mean_loss, accuracy)`.
pub fn train_batch(
    net: &mut GnnNetwork,
    batch: &[(EventGraph, usize)],
    optimizer: &mut dyn Optimizer,
    ops: &mut OpCount,
) -> (f32, f32) {
    assert!(!batch.is_empty(), "empty batch");
    let mut loss_sum = 0.0;
    let mut correct = 0usize;
    for (graph, label) in batch {
        let logits = net.forward(graph, ops);
        if logits.argmax() == *label {
            correct += 1;
        }
        let (loss, grad) = cross_entropy(&logits, *label);
        loss_sum += loss;
        net.backward(graph, &grad, ops);
    }
    let scale = 1.0 / batch.len() as f32;
    let mut params = net.params_mut();
    for p in params.iter_mut() {
        p.grad.scale_assign(scale);
    }
    optimizer.step(&mut params);
    (loss_sum * scale, correct as f32 * scale)
}

/// Classification accuracy over a set of graphs.
pub fn evaluate(
    net: &mut GnnNetwork,
    samples: &[(EventGraph, usize)],
    ops: &mut OpCount,
) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|(g, label)| net.predict(g, ops) == *label)
        .count();
    correct as f32 / samples.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::{Event, Polarity};

    /// Synthetic task: class 0 graphs run left-to-right, class 1
    /// right-to-left — distinguishable only through the signed Δx of the
    /// edges.
    fn direction_graph(class: usize, seed: u64) -> EventGraph {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut g = EventGraph::new(0.001);
        let n = 12;
        for i in 0..n {
            let x = if class == 0 { 2 + i } else { 2 + n - 1 - i };
            let jitter = rng.next_below(2) as u16;
            let nbrs = if i == 0 { vec![] } else { vec![(i - 1) as u32] };
            g.push_node(
                Event::new(i as u64 * 100, x as u16, 5 + jitter, Polarity::On),
                nbrs,
            );
        }
        g
    }

    #[test]
    fn gnn_learns_motion_direction_from_edges() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut net = GnnNetwork::new(&GnnConfig::new(2).with_hidden(vec![8, 8]), &mut rng);
        let mut opt = evlab_tensor::optim::Adam::new(0.02);
        let mut ops = OpCount::new();
        let train: Vec<(EventGraph, usize)> = (0..40)
            .map(|i| (direction_graph(i % 2, i as u64), i % 2))
            .collect();
        let test: Vec<(EventGraph, usize)> = (100..120)
            .map(|i| (direction_graph(i % 2, i as u64), i % 2))
            .collect();
        for _ in 0..30 {
            for chunk in train.chunks(8) {
                train_batch(&mut net, chunk, &mut opt, &mut ops);
            }
        }
        let acc = evaluate(&mut net, &test, &mut ops);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn forward_requires_nonempty_graph() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut net = GnnNetwork::new(&GnnConfig::new(3), &mut rng);
        let g = EventGraph::new(0.001);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.forward(&g, &mut OpCount::new())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn param_count_is_consistent() {
        let mut rng = Rng64::seed_from_u64(3);
        let net = GnnNetwork::new(&GnnConfig::new(4).with_hidden(vec![8]), &mut rng);
        // conv: w_self 8*2 + w_nbr 8*2 + w_rel 8*3 + b 8 = 64; head: 4*8+4.
        assert_eq!(net.param_count(), 64 + 36);
    }

    #[test]
    fn spline_kernel_network_trains_too() {
        let mut rng = Rng64::seed_from_u64(7);
        let config = GnnConfig::new(2)
            .with_hidden(vec![8])
            .with_spline_kernel(3);
        let mut net = GnnNetwork::new(&config, &mut rng);
        assert!(net.param_count() > 8 * 2 + 27, "spline kernels carry K^3 blocks");
        let mut opt = evlab_tensor::optim::Adam::new(0.02);
        let mut ops = OpCount::new();
        let train: Vec<(EventGraph, usize)> = (0..20)
            .map(|i| (direction_graph(i % 2, i as u64), i % 2))
            .collect();
        for _ in 0..25 {
            for chunk in train.chunks(5) {
                train_batch(&mut net, chunk, &mut opt, &mut ops);
            }
        }
        let acc = evaluate(&mut net, &train, &mut ops);
        assert!(acc > 0.9, "spline network accuracy {acc}");
    }

    #[test]
    fn ops_scale_linearly_with_nodes() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut net = GnnNetwork::new(&GnnConfig::new(2), &mut rng);
        let small = direction_graph(0, 1);
        let mut big = EventGraph::new(0.001);
        for i in 0..120u64 {
            let nbrs = if i == 0 { vec![] } else { vec![(i - 1) as u32] };
            big.push_node(Event::new(i * 100, (i % 30) as u16, 0, Polarity::On), nbrs);
        }
        let mut ops_small = OpCount::new();
        net.forward(&small, &mut ops_small);
        let mut ops_big = OpCount::new();
        net.forward(&big, &mut ops_big);
        let ratio = ops_big.macs as f64 / ops_small.macs as f64;
        assert!(
            ratio > 8.0 && ratio < 12.0,
            "10x nodes -> ~10x ops, got {ratio}"
        );
    }
}
