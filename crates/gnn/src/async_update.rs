//! Asynchronous per-event inference (paper §IV, [Schaefer et al. AEGNN],
//! [72]).
//!
//! "Event-graphs are inherently sparse and amenable to event-driven
//! operation because graph convolutions could be triggered upon the
//! generation of each event." With strictly causal edges (past → new), a
//! newly inserted node never changes any existing node's neighbourhood, so
//! per-event inference only has to:
//!
//! 1. insert the event into the incremental graph,
//! 2. compute the *new node's* features through every layer from cached
//!    neighbour features,
//! 3. update the running mean pool and the logits.
//!
//! The per-event cost is `O(k · d² · L)` — independent of the graph size —
//! versus a full recompute of `O(N · k · d² · L)`.

use crate::build::{GraphConfig, IncrementalGraphBuilder};
use crate::conv::NodeFeatures;
use crate::network::GnnNetwork;
use evlab_events::Event;
use evlab_tensor::{OpCount, Tensor};

/// Streaming inference engine owning a trained [`GnnNetwork`].
///
/// Owning the network (rather than borrowing it) makes the engine a
/// self-contained unit of session state, so a serving runtime can move it
/// onto a worker thread; clone the trained network first if it is still
/// needed elsewhere.
#[derive(Clone)]
pub struct AsyncGnn {
    net: GnnNetwork,
    config: GraphConfig,
    builder: IncrementalGraphBuilder,
    /// Cached polarity input features, one row per absorbed node.
    input_features: NodeFeatures,
    /// Cached per-layer node features.
    layer_features: Vec<NodeFeatures>,
    /// Running sum of final-layer features (for O(1) mean pooling).
    pool_sum: Vec<f32>,
    classes: usize,
}

impl AsyncGnn {
    /// Creates an engine over a trained network and a graph configuration.
    pub fn new(net: GnnNetwork, config: GraphConfig, classes: usize) -> Self {
        let dims: Vec<usize> = net.convs().iter().map(|c| c.out_dim()).collect();
        let last = *dims
            .last()
            .unwrap_or_else(|| panic!("at least one conv layer"));
        AsyncGnn {
            builder: IncrementalGraphBuilder::new(config),
            input_features: NodeFeatures::zeros(0, 2),
            layer_features: dims
                .iter()
                .map(|&d| NodeFeatures::zeros(0, d))
                .collect(),
            pool_sum: vec![0.0; last],
            net,
            config,
            classes,
        }
    }

    /// Number of events absorbed so far.
    pub fn node_count(&self) -> usize {
        self.builder.graph().node_count()
    }

    /// Shared access to the wrapped network.
    pub fn network(&self) -> &GnnNetwork {
        &self.net
    }

    /// Drops all absorbed graph state (nodes, cached features, pooled sum)
    /// while keeping the trained weights, so long-lived streaming sessions
    /// can bound their memory by periodically restarting the graph.
    pub fn reset(&mut self) {
        self.builder = IncrementalGraphBuilder::new(self.config);
        self.input_features = NodeFeatures::zeros(0, 2);
        for f in &mut self.layer_features {
            *f = NodeFeatures::zeros(0, f.dim());
        }
        for s in &mut self.pool_sum {
            *s = 0.0;
        }
    }

    /// Processes one event and returns the updated class logits.
    pub fn update(&mut self, event: Event, ops: &mut OpCount) -> Tensor {
        let idx = self.builder.insert(event, ops);
        let graph = self.builder.graph();
        self.input_features.push_row(&graph.node_features(idx));
        let mut current_row: Vec<f32>;
        {
            let conv = &self.net.convs()[0];
            current_row = conv.node_forward(graph, &self.input_features, idx, ops);
            for v in &mut current_row {
                *v = v.max(0.0);
            }
            self.layer_features[0].push_row(&current_row);
        }
        for l in 1..self.net.convs().len() {
            let conv = &self.net.convs()[l];
            let prev = &self.layer_features[l - 1];
            let mut row = conv.node_forward(graph, prev, idx, ops);
            for v in &mut row {
                *v = v.max(0.0);
            }
            self.layer_features[l].push_row(&row);
            current_row = row;
        }
        // O(1) pooled update.
        for (s, &v) in self.pool_sum.iter_mut().zip(&current_row) {
            *s += v;
        }
        ops.record_add(self.pool_sum.len() as u64);
        let n = graph.node_count() as f32;
        let pooled: Vec<f32> = self.pool_sum.iter().map(|&s| s / n).collect();
        let logits = self.net.head_logits(&pooled, ops);
        Tensor::from_vec(&[self.classes], logits)
            .unwrap_or_else(|e| panic!("logit shape: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::incremental_build;
    use crate::network::GnnConfig;
    use evlab_events::Polarity;
    use evlab_util::Rng64;

    fn stream(n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| {
                Event::new(
                    i as u64 * 50,
                    (2 + i % 20) as u16,
                    (5 + (i / 20) % 5) as u16,
                    if i % 3 == 0 { Polarity::Off } else { Polarity::On },
                )
            })
            .collect()
    }

    #[test]
    fn async_logits_match_batch_forward() {
        let mut rng = Rng64::seed_from_u64(1);
        let config = GraphConfig::new();
        let events = stream(30);
        let mut net = GnnNetwork::new(&GnnConfig::new(3).with_hidden(vec![6, 6]), &mut rng);
        let mut ops = OpCount::new();
        // Batch reference.
        let graph = incremental_build(&events, &config, &mut ops);
        let batch_logits = net.forward(&graph, &mut ops);
        // Async streaming.
        let async_net =
            GnnNetwork::new(&GnnConfig::new(3).with_hidden(vec![6, 6]), &mut Rng64::seed_from_u64(1));
        let mut engine = AsyncGnn::new(async_net, config, 3);
        let mut last = Tensor::zeros(&[3]);
        for e in &events {
            last = engine.update(*e, &mut ops);
        }
        for (a, b) in batch_logits.as_slice().iter().zip(last.as_slice()) {
            assert!((a - b).abs() < 1e-3, "batch {a} vs async {b}");
        }
    }

    #[test]
    fn per_event_cost_is_constant_in_graph_size() {
        let mut rng = Rng64::seed_from_u64(2);
        let net = GnnNetwork::new(&GnnConfig::new(2), &mut rng);
        let mut engine = AsyncGnn::new(net, GraphConfig::new(), 2);
        let events = stream(200);
        let mut early_cost = 0u64;
        let mut late_cost = 0u64;
        for (i, e) in events.iter().enumerate() {
            let mut ops = OpCount::new();
            engine.update(*e, &mut ops);
            if (10..20).contains(&i) {
                early_cost += ops.macs;
            }
            if (190..200).contains(&i) {
                late_cost += ops.macs;
            }
        }
        // Per-event work must not grow with the number of absorbed events.
        assert!(
            late_cost < 3 * early_cost,
            "early {early_cost} vs late {late_cost}"
        );
    }

    #[test]
    fn async_beats_full_recompute() {
        let mut rng = Rng64::seed_from_u64(3);
        let config = GraphConfig::new();
        let events = stream(100);
        let mut net = GnnNetwork::new(&GnnConfig::new(2), &mut rng);
        // Full recompute on every event.
        let mut ops_full = OpCount::new();
        let mut builder = crate::build::IncrementalGraphBuilder::new(config);
        for e in &events {
            builder.insert(*e, &mut ops_full);
            net.forward(builder.graph(), &mut ops_full);
        }
        // Async.
        let async_net = GnnNetwork::new(&GnnConfig::new(2), &mut Rng64::seed_from_u64(3));
        let mut engine = AsyncGnn::new(async_net, config, 2);
        let mut ops_async = OpCount::new();
        for e in &events {
            engine.update(*e, &mut ops_async);
        }
        assert!(
            ops_full.macs > 20 * ops_async.macs,
            "full {} vs async {}",
            ops_full.macs,
            ops_async.macs
        );
    }
}
