//! The spatiotemporal event graph.

use evlab_events::Event;

/// Read-only view of a causal event graph: exactly what the per-node
/// message-passing kernels need. Implemented by the dense [`EventGraph`]
/// (batch training / batch inference) and by the sliding-window store
/// [`crate::window::SlidingWindowGraph`] (streaming inference), so the
/// convolution kernels run unchanged over both node stores.
///
/// Indices handed to these methods are *node handles* of the implementing
/// store — dense positions for [`EventGraph`], slot ids for the windowed
/// store. A handle obtained from the store is stable for as long as the
/// node is live.
pub trait GraphView {
    /// In-neighbours (past events) of node `i`, oldest first.
    fn in_neighbors(&self, i: usize) -> &[u32];

    /// The edge attribute for edge `j → i`: `(Δx, Δy, βΔt)` from the
    /// neighbour to the node.
    fn relative_offset(&self, i: usize, j: usize) -> [f32; 3];

    /// Initial node features: the polarity one-hot `[on, off]`.
    fn node_features(&self, i: usize) -> [f32; 2];
}

/// A directed graph over events, with edges pointing from past events to
/// newer ones (strict causality).
///
/// Node `i` stores the indices of its *in*-neighbours — the past events it
/// aggregates information from. Causality is what makes streaming insertion
/// and asynchronous inference cheap: a new node never changes the
/// neighbourhood of an existing one.
///
/// # Examples
///
/// ```
/// use evlab_events::{Event, Polarity};
/// use evlab_gnn::graph::EventGraph;
///
/// let mut g = EventGraph::new(0.01);
/// g.push_node(Event::new(0, 1, 1, Polarity::On), vec![]);
/// g.push_node(Event::new(50, 2, 1, Polarity::Off), vec![0]);
/// assert_eq!(g.edge_count(), 1);
/// let r = g.relative_offset(1, 0);
/// assert_eq!(r[0], 1.0); // dx
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventGraph {
    events: Vec<Event>,
    in_edges: Vec<Vec<u32>>,
    beta: f64,
}

impl EventGraph {
    /// Creates an empty graph with time scaling `beta` (pixels per
    /// microsecond) for the spatiotemporal metric.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative or not finite.
    pub fn new(beta: f64) -> Self {
        assert!(beta.is_finite() && beta >= 0.0, "invalid beta {beta}");
        EventGraph {
            events: Vec::new(),
            in_edges: Vec::new(),
            beta,
        }
    }

    /// The time-scaling factor.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.events.len()
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.in_edges.iter().map(|e| e.len()).sum()
    }

    /// Mean in-degree (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.edge_count() as f64 / self.events.len() as f64
        }
    }

    /// The event at node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn event(&self, i: usize) -> &Event {
        &self.events[i]
    }

    /// All events in insertion (time) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// In-neighbours (past events) of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn in_neighbors(&self, i: usize) -> &[u32] {
        &self.in_edges[i]
    }

    /// Appends a node with the given in-neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the event is earlier than the previous node, or if any
    /// neighbour index is not a strictly earlier node.
    pub fn push_node(&mut self, event: Event, neighbors: Vec<u32>) -> usize {
        if let Some(last) = self.events.last() {
            assert!(event.t >= last.t, "events must arrive in time order");
        }
        let idx = self.events.len();
        for &n in &neighbors {
            assert!((n as usize) < idx, "edges must point to past events");
        }
        self.events.push(event);
        self.in_edges.push(neighbors);
        idx
    }

    /// The edge attribute for edge `j → i`: `(Δx, Δy, βΔt)` from the
    /// neighbour to the node.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn relative_offset(&self, i: usize, j: usize) -> [f32; 3] {
        let a = &self.events[i];
        let b = &self.events[j];
        [
            a.x as f32 - b.x as f32,
            a.y as f32 - b.y as f32,
            ((a.t.as_micros() as f64 - b.t.as_micros() as f64) * self.beta) as f32,
        ]
    }

    /// Initial node features: the polarity one-hot `[on, off]`.
    pub fn node_features(&self, i: usize) -> [f32; 2] {
        match self.events[i].polarity {
            evlab_events::Polarity::On => [1.0, 0.0],
            evlab_events::Polarity::Off => [0.0, 1.0],
        }
    }

    /// Verifies the causal invariant; meant for tests.
    ///
    /// # Panics
    ///
    /// Panics if any edge points forward in time.
    pub fn assert_causal(&self) {
        for (i, nbrs) in self.in_edges.iter().enumerate() {
            for &j in nbrs {
                assert!(
                    self.events[j as usize].t <= self.events[i].t,
                    "edge {j} -> {i} violates causality"
                );
            }
        }
    }

    // There deliberately is **no** `evict_oldest` on the dense graph any
    // more. The old implementation drained the oldest rows and renumbered
    // every surviving index, which silently invalidated `in_neighbors`
    // slices and node handles held by callers (cached per-node features in
    // the streaming engines keyed rows by node index). Rather than patch
    // that contract with tombstones inside the dense store — which would
    // cost every batch consumer a liveness check — sliding-window
    // maintenance lives in [`crate::window::SlidingWindowGraph`], whose
    // slot handles are stable for a node's whole lifetime and whose
    // eviction keeps neighbour lists oracle-exact. `EventGraph` stays
    // append-only; convert a window snapshot to a dense graph with
    // [`crate::window::SlidingWindowGraph::to_event_graph`].
}

impl GraphView for EventGraph {
    fn in_neighbors(&self, i: usize) -> &[u32] {
        EventGraph::in_neighbors(self, i)
    }

    fn relative_offset(&self, i: usize, j: usize) -> [f32; 3] {
        EventGraph::relative_offset(self, i, j)
    }

    fn node_features(&self, i: usize) -> [f32; 2] {
        EventGraph::node_features(self, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::Polarity;

    fn chain(n: usize) -> EventGraph {
        let mut g = EventGraph::new(0.001);
        for i in 0..n {
            let nbrs = if i == 0 { vec![] } else { vec![(i - 1) as u32] };
            g.push_node(
                Event::new(i as u64 * 100, i as u16, 0, Polarity::On),
                nbrs,
            );
        }
        g
    }

    #[test]
    fn counts_and_degrees() {
        let g = chain(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!((g.mean_degree() - 0.8).abs() < 1e-12);
        g.assert_causal();
    }

    #[test]
    fn relative_offsets() {
        let g = chain(3);
        let r = g.relative_offset(2, 1);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 0.0);
        assert!((r[2] - 0.1).abs() < 1e-6); // 100us * 0.001
    }

    #[test]
    fn node_features_encode_polarity() {
        let mut g = EventGraph::new(0.0);
        g.push_node(Event::new(0, 0, 0, Polarity::On), vec![]);
        g.push_node(Event::new(1, 0, 0, Polarity::Off), vec![]);
        assert_eq!(g.node_features(0), [1.0, 0.0]);
        assert_eq!(g.node_features(1), [0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "edges must point to past events")]
    fn forward_edge_rejected() {
        let mut g = EventGraph::new(0.0);
        g.push_node(Event::new(0, 0, 0, Polarity::On), vec![0]);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_insert_rejected() {
        let mut g = EventGraph::new(0.0);
        g.push_node(Event::new(100, 0, 0, Polarity::On), vec![]);
        g.push_node(Event::new(50, 0, 0, Polarity::On), vec![]);
    }

    #[test]
    fn graph_view_matches_inherent_accessors() {
        fn via_view<G: GraphView>(g: &G, i: usize, j: usize) -> (Vec<u32>, [f32; 3], [f32; 2]) {
            (
                g.in_neighbors(i).to_vec(),
                g.relative_offset(i, j),
                g.node_features(i),
            )
        }
        let g = chain(4);
        let (nbrs, rel, feat) = via_view(&g, 2, 1);
        assert_eq!(nbrs, g.in_neighbors(2));
        assert_eq!(rel, g.relative_offset(2, 1));
        assert_eq!(feat, g.node_features(2));
    }
}
