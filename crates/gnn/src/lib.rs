//! The event-graph neural network paradigm (paper §IV).
//!
//! "Considering a generated stream of events as a point-cloud in two spatial
//! and one temporal dimensions, a graph can be constructed by connecting
//! events through directed edges based on their euclidean distance." This
//! crate implements that third option end to end:
//!
//! * [`graph`] — the spatiotemporal [`EventGraph`] with strictly causal
//!   (past → future) directed edges.
//! * [`kdtree`] — a 3-D kd-tree for batch neighbour search (the tree-search
//!   baseline of [Zhou et al. 2008] the paper's §IV cites as the latency
//!   bottleneck).
//! * [`build`] — three construction strategies over identical semantics:
//!   naive O(N²) scan, kd-tree batch, and *incremental* insertion with a
//!   spatial hash + sliding time horizon (the "hemispherical update" of
//!   [72] that yields the four-orders-of-magnitude speed-up).
//! * [`conv`] — relational graph convolutions over (Δx, Δy, Δt) edge
//!   offsets with full manual backprop, so the precise event timing is
//!   exploited deep in the network.
//! * [`network`] — graph classifier with global mean pooling.
//! * [`async_update`] — AEGNN-style per-event asynchronous inference: with
//!   causal edges, a new event only adds computation for its own node,
//!   never invalidating cached features.
//! * [`window`] — the true sliding-window engine: a slot-stable ring-buffer
//!   node store with per-cell FIFOs, age/count eviction policies, and
//!   incremental message passing that recomputes only the neighbourhoods
//!   touched by an insert or an evict. Streaming sessions stay within a
//!   bounded memory envelope with **no** full-graph rebuilds.
//! * [`pool`] — voxel-grid graph coarsening.
//!
//! # Examples
//!
//! ```
//! use evlab_events::{Event, EventStream, Polarity};
//! use evlab_gnn::build::{incremental_build, GraphConfig};
//! use evlab_tensor::OpCount;
//!
//! let stream = EventStream::from_events(
//!     (16, 16),
//!     vec![
//!         Event::new(0, 4, 4, Polarity::On),
//!         Event::new(100, 5, 4, Polarity::On),
//!     ],
//! )?;
//! let mut ops = OpCount::new();
//! let graph = incremental_build(stream.as_slice(), &GraphConfig::new(), &mut ops);
//! assert_eq!(graph.node_count(), 2);
//! assert_eq!(graph.edge_count(), 1, "second event links to the first");
//! # Ok::<(), evlab_events::EventOrderError>(())
//! ```

pub mod async_update;
pub mod build;
pub mod conv;
pub mod graph;
pub mod kdtree;
pub mod network;
pub mod pool;
pub mod spline;
pub mod window;

pub use build::{GraphBuilder, GraphConfig};
pub use graph::{EventGraph, GraphView};
pub use network::GnnNetwork;
pub use window::{SlidingWindowGraph, WindowPolicy, WindowedGnn};
