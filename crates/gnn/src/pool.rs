//! Voxel-grid graph coarsening.
//!
//! Deeper event-graph networks pool nodes into spatiotemporal voxels
//! between convolution stages (as in [Bi et al. 2019] and AEGNN),
//! shrinking the graph while keeping its geometry.

use crate::conv::NodeFeatures;
use crate::graph::EventGraph;
use evlab_events::{Event, Polarity, Timestamp};
use std::collections::HashMap;

/// Result of one pooling step.
#[derive(Debug, Clone, PartialEq)]
pub struct PooledGraph {
    /// The coarsened graph (one node per occupied voxel, centroid events).
    pub graph: EventGraph,
    /// Mean-pooled features per coarse node.
    pub features: NodeFeatures,
    /// For each fine node, the coarse node it was assigned to.
    pub assignment: Vec<u32>,
}

/// Pools a graph into voxels of `(cell_px, cell_us)`, averaging features and
/// re-deriving edges: coarse node `b` is an in-neighbour of coarse node `a`
/// if any fine edge crossed from `b`'s cluster into `a`'s and `b`'s centroid
/// is not later than `a`'s.
///
/// # Panics
///
/// Panics if cell sizes are zero or the feature count mismatches the graph.
pub fn voxel_pool(
    graph: &EventGraph,
    features: &NodeFeatures,
    cell_px: u16,
    cell_us: u64,
) -> PooledGraph {
    assert!(cell_px > 0 && cell_us > 0, "cell sizes must be positive");
    assert_eq!(
        features.nodes(),
        graph.node_count(),
        "feature/node count mismatch"
    );
    let dim = features.dim();
    // Assign fine nodes to voxels.
    let mut voxel_of: HashMap<(u16, u16, u64), u32> = HashMap::new();
    let mut assignment = Vec::with_capacity(graph.node_count());
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    for (i, e) in graph.events().iter().enumerate() {
        let key = (
            e.x / cell_px,
            e.y / cell_px,
            e.t.as_micros() / cell_us,
        );
        let next_id = clusters.len() as u32;
        let id = *voxel_of.entry(key).or_insert(next_id);
        if id == next_id {
            clusters.push(Vec::new());
        }
        clusters[id as usize].push(i as u32);
        assignment.push(id);
    }
    // Centroid event + mean features per cluster.
    struct Coarse {
        event: Event,
        features: Vec<f32>,
    }
    let mut coarse: Vec<Coarse> = clusters
        .iter()
        .map(|members| {
            let k = members.len() as f64;
            let mut cx = 0.0;
            let mut cy = 0.0;
            let mut ct = 0.0;
            let mut on = 0usize;
            let mut f = vec![0.0f32; dim];
            for &m in members {
                let e = graph.event(m as usize);
                cx += e.x as f64;
                cy += e.y as f64;
                ct += e.t.as_micros() as f64;
                if e.polarity == Polarity::On {
                    on += 1;
                }
                for (slot, &v) in f.iter_mut().zip(features.row(m as usize)) {
                    *slot += v;
                }
            }
            for v in &mut f {
                *v /= k as f32;
            }
            Coarse {
                event: Event {
                    t: Timestamp::from_micros((ct / k).round() as u64),
                    x: (cx / k).round() as u16,
                    y: (cy / k).round() as u16,
                    polarity: if 2 * on >= members.len() {
                        Polarity::On
                    } else {
                        Polarity::Off
                    },
                },
                features: f,
            }
        })
        .collect();
    // Coarse edges from fine edges.
    let mut edges: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); coarse.len()];
    for i in 0..graph.node_count() {
        let a = assignment[i];
        for &j in graph.in_neighbors(i) {
            let b = assignment[j as usize];
            if a != b {
                edges[a as usize].insert(b);
            }
        }
    }
    // Emit coarse nodes in centroid time order (graph requires it).
    let mut order: Vec<u32> = (0..coarse.len() as u32).collect();
    order.sort_by_key(|&c| coarse[c as usize].event.t);
    let mut new_index = vec![0u32; coarse.len()];
    for (new, &old) in order.iter().enumerate() {
        new_index[old as usize] = new as u32;
    }
    let mut out_graph = EventGraph::new(graph.beta());
    let mut out_features = NodeFeatures::zeros(0, dim);
    for &old in &order {
        let c = &mut coarse[old as usize];
        // Keep only causal edges after reordering.
        let nbrs: Vec<u32> = edges[old as usize]
            .iter()
            .map(|&b| new_index[b as usize])
            .filter(|&b| (b as usize) < out_graph.node_count() + 1 && b < new_index[old as usize])
            .collect();
        let mut nbrs = nbrs;
        nbrs.sort_unstable();
        out_graph.push_node(c.event, nbrs);
        out_features.push_row(&c.features);
    }
    // Remap assignment to the reordered ids.
    let assignment = assignment
        .into_iter()
        .map(|a| new_index[a as usize])
        .collect();
    PooledGraph {
        graph: out_graph,
        features: out_features,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fine_graph() -> (EventGraph, NodeFeatures) {
        let mut g = EventGraph::new(0.001);
        // Two spatial clusters, 4 nodes each.
        let positions = [
            (2u16, 2u16),
            (3, 2),
            (2, 3),
            (3, 3), // cluster A
            (20, 20),
            (21, 20),
            (20, 21),
            (21, 21), // cluster B
        ];
        for (i, &(x, y)) in positions.iter().enumerate() {
            let nbrs = if i == 0 || i == 4 {
                vec![]
            } else {
                vec![(i - 1) as u32]
            };
            g.push_node(Event::new(i as u64 * 10, x, y, Polarity::On), nbrs);
        }
        let mut f = NodeFeatures::zeros(8, 2);
        for i in 0..8 {
            f.row_mut(i).copy_from_slice(&[i as f32, 1.0]);
        }
        (g, f)
    }

    #[test]
    fn pooling_merges_clusters() {
        let (g, f) = fine_graph();
        let pooled = voxel_pool(&g, &f, 8, 1_000_000);
        assert_eq!(pooled.graph.node_count(), 2);
        assert_eq!(pooled.assignment.len(), 8);
        // Mean feature of cluster A nodes (0..4): first channel = 1.5.
        let a_id = pooled.assignment[0] as usize;
        assert!((pooled.features.row(a_id)[0] - 1.5).abs() < 1e-6);
        pooled.graph.assert_causal();
    }

    #[test]
    fn cross_cluster_edges_survive() {
        let (mut g, mut f) = fine_graph();
        // Bridge: a node in cluster B connecting back to cluster A.
        g.push_node(Event::new(100, 20, 22, Polarity::On), vec![3]);
        f.push_row(&[9.0, 1.0]);
        let pooled = voxel_pool(&g, &f, 8, 1_000_000);
        assert_eq!(pooled.graph.node_count(), 2);
        let b_id = pooled.assignment[8] as usize;
        assert!(
            !pooled.graph.in_neighbors(b_id).is_empty(),
            "bridge edge must appear at coarse level"
        );
    }

    #[test]
    fn identity_pooling_with_tiny_cells() {
        let (g, f) = fine_graph();
        let pooled = voxel_pool(&g, &f, 1, 1);
        assert_eq!(pooled.graph.node_count(), 8, "each node its own voxel");
        pooled.graph.assert_causal();
    }
}
