//! Graph construction strategies.
//!
//! All builders produce the *same* graph (identical semantics,
//! deterministic tie-breaking) so their costs are directly comparable —
//! experiment CL-F, the §IV claim that algorithmic innovation took graph
//! insertion from tree-search latency to real-time:
//!
//! * [`NaiveBuilder`] / [`naive_build`] — O(N²) backward scan, the
//!   reference.
//! * [`KdTreeBuilder`] / [`kdtree_build`] — batch kd-tree over all events.
//! * [`IncrementalGraphBuilder`] / [`incremental_build`] — streaming
//!   insertion with a uniform spatial hash and a sliding time horizon (the
//!   "hemispherical update": only *past* events within the horizon are
//!   candidates).
//! * [`crate::window::WindowedGraphBuilder`] — the sliding-window engine
//!   run with an unbounded window, for construction parity checks.
//!
//! Every strategy implements the [`GraphBuilder`] trait (`insert`,
//! `finish`, `graph`); the free `*_build` functions are thin wrappers that
//! stream a slice through the corresponding builder.

//! # Parallelism
//!
//! [`kdtree_build`] fans its per-event radius queries out over event
//! chunks (queries are read-only and independent), and
//! [`incremental_build`] switches to a *striped* spatial decomposition
//! for large exact builds: workers own contiguous bands of cell columns
//! and see one halo column on each side, so every cross-boundary edge is
//! resolved locally and the output graph is identical to the serial
//! stream — see [`striped_incremental_build`] for the argument.

use crate::graph::EventGraph;
use crate::kdtree::KdTree3;
use evlab_events::Event;
use evlab_tensor::OpCount;
use evlab_util::{obs, par};
use std::collections::HashMap;

/// Minimum events per chunk for the kd-tree query fan-out.
const MIN_QUERIES_PER_CHUNK: usize = 512;
/// Minimum stream length before the incremental builder stripes.
const MIN_STRIPED_EVENTS: usize = 4096;

/// Shared construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfig {
    /// Connection radius in the scaled spatiotemporal metric.
    pub radius: f64,
    /// Time scaling β in pixels per microsecond.
    pub beta: f64,
    /// Maximum in-degree per node (nearest neighbours win).
    pub max_degree: usize,
    /// Time horizon: events older than this many microseconds are never
    /// connected (and may be evicted).
    pub horizon_us: u64,
    /// Maximum *live* candidates kept per spatial cell by the incremental
    /// builder; when exceeded, the oldest are dropped. `usize::MAX` keeps
    /// the builder exact; a finite cap is the recency approximation of the
    /// hemispherical update ([72]) that bounds per-event work even under
    /// extreme local densities.
    pub cell_capacity: usize,
}

impl GraphConfig {
    /// Defaults matching event-graph literature: radius 5 px, β = 1 px/ms,
    /// degree ≤ 8, 50 ms horizon, exact (uncapped) cells.
    pub fn new() -> Self {
        GraphConfig {
            radius: 5.0,
            beta: 0.001,
            max_degree: 8,
            horizon_us: 50_000,
            cell_capacity: usize::MAX,
        }
    }

    /// Returns a copy with a finite per-cell candidate cap (the streaming
    /// approximation).
    pub fn with_cell_capacity(mut self, cell_capacity: usize) -> Self {
        self.cell_capacity = cell_capacity;
        self
    }

    /// Returns a copy with a different radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius <= 0`.
    pub fn with_radius(mut self, radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        self.radius = radius;
        self
    }

    /// Returns a copy with a different maximum degree.
    pub fn with_max_degree(mut self, max_degree: usize) -> Self {
        self.max_degree = max_degree;
        self
    }

    pub(crate) fn point_of(&self, e: &Event) -> [f64; 3] {
        [
            e.x as f64,
            e.y as f64,
            e.t.as_micros() as f64 * self.beta,
        ]
    }
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig::new()
    }
}

pub(crate) fn dist_sq(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

/// Selects up to `max_degree` candidates by (distance, recency) and returns
/// them sorted ascending by node index.
///
/// The windowed engine mirrors this exact ordering over (distance, seq) —
/// see `crate::window` — so the two selections are interchangeable.
fn select_neighbors(
    mut candidates: Vec<(u32, f64)>,
    max_degree: usize,
) -> Vec<u32> {
    candidates.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal) // distances are finite
            .then(b.0.cmp(&a.0)) // tie: prefer the more recent event
    });
    candidates.truncate(max_degree);
    let mut out: Vec<u32> = candidates.into_iter().map(|(i, _)| i).collect();
    out.sort_unstable();
    out
}

/// Uniform construction interface over every graph-assembly strategy.
///
/// Lifecycle: [`GraphBuilder::insert`] feeds events in timestamp order;
/// [`GraphBuilder::finish`] completes any deferred batch work (idempotent
/// — a second `finish` with no intervening `insert` is free);
/// [`GraphBuilder::graph`] exposes the result. Streaming strategies
/// (incremental, windowed) maintain the graph eagerly and use `finish`
/// only to snapshot/record; batch strategies (naive, kd-tree) buffer the
/// events and do all construction work in `finish`.
pub trait GraphBuilder {
    /// Strategy name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Feeds one event (events must arrive in timestamp order).
    fn insert(&mut self, event: Event, ops: &mut OpCount);

    /// Completes any deferred construction work. Idempotent until the next
    /// `insert`.
    fn finish(&mut self, ops: &mut OpCount);

    /// The graph built so far. Batch strategies return an empty graph
    /// until [`GraphBuilder::finish`] has run.
    fn graph(&self) -> &EventGraph;
}

/// Streams a slice through a builder and returns the finished graph
/// reference — the shared body of the `*_build` thin wrappers.
fn run_builder<'b, B: GraphBuilder>(
    builder: &'b mut B,
    events: &[Event],
    ops: &mut OpCount,
) -> &'b EventGraph {
    for e in events {
        builder.insert(*e, ops);
    }
    builder.finish(ops);
    builder.graph()
}

fn naive_core(events: &[Event], config: &GraphConfig, ops: &mut OpCount) -> EventGraph {
    let mut graph = EventGraph::new(config.beta);
    let r_sq = config.radius * config.radius;
    for (i, e) in events.iter().enumerate() {
        let p = config.point_of(e);
        let mut candidates = Vec::new();
        for (j, prior) in events[..i].iter().enumerate() {
            ops.record_mult(4);
            ops.record_compare(2);
            if e.t.saturating_since(prior.t) > config.horizon_us {
                continue;
            }
            let d = dist_sq(&config.point_of(prior), &p);
            if d <= r_sq {
                candidates.push((j as u32, d));
            }
        }
        graph.push_node(*e, select_neighbors(candidates, config.max_degree));
    }
    graph
}

/// O(N²) reference strategy behind [`naive_build`]: buffers events and
/// runs the full backward scan in [`GraphBuilder::finish`].
///
/// Cost accounting: one distance evaluation (4 mults + comparisons) per
/// candidate pair.
#[derive(Debug, Clone)]
pub struct NaiveBuilder {
    config: GraphConfig,
    buffer: Vec<Event>,
    graph: EventGraph,
    built: bool,
}

impl NaiveBuilder {
    /// Creates a builder.
    pub fn new(config: GraphConfig) -> Self {
        NaiveBuilder {
            graph: EventGraph::new(config.beta),
            config,
            buffer: Vec::new(),
            built: false,
        }
    }

    /// Consumes the builder, returning the graph.
    pub fn into_graph(self) -> EventGraph {
        self.graph
    }
}

impl GraphBuilder for NaiveBuilder {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn insert(&mut self, event: Event, _ops: &mut OpCount) {
        self.buffer.push(event);
        self.built = false;
    }

    fn finish(&mut self, ops: &mut OpCount) {
        if self.built {
            return;
        }
        self.graph = naive_core(&self.buffer, &self.config, ops);
        self.built = true;
        record_build_obs(&self.graph);
    }

    fn graph(&self) -> &EventGraph {
        &self.graph
    }
}

/// O(N²) reference builder: every node scans all prior events. Thin
/// wrapper over [`NaiveBuilder`].
pub fn naive_build(events: &[Event], config: &GraphConfig, ops: &mut OpCount) -> EventGraph {
    let mut builder = NaiveBuilder::new(*config);
    run_builder(&mut builder, events, ops);
    builder.into_graph()
}

/// Batch kd-tree strategy behind [`kdtree_build`]: buffers events, builds
/// one tree over all of them in [`GraphBuilder::finish`], and answers the
/// per-node radius queries with causal filtering.
#[derive(Debug, Clone)]
pub struct KdTreeBuilder {
    config: GraphConfig,
    buffer: Vec<Event>,
    graph: EventGraph,
    built: bool,
}

impl KdTreeBuilder {
    /// Creates a builder.
    pub fn new(config: GraphConfig) -> Self {
        KdTreeBuilder {
            graph: EventGraph::new(config.beta),
            config,
            buffer: Vec::new(),
            built: false,
        }
    }

    /// Consumes the builder, returning the graph.
    pub fn into_graph(self) -> EventGraph {
        self.graph
    }
}

impl GraphBuilder for KdTreeBuilder {
    fn name(&self) -> &'static str {
        "kdtree"
    }

    fn insert(&mut self, event: Event, _ops: &mut OpCount) {
        self.buffer.push(event);
        self.built = false;
    }

    fn finish(&mut self, ops: &mut OpCount) {
        if self.built {
            return;
        }
        self.graph = kdtree_core(&self.buffer, &self.config, ops);
        self.built = true;
        record_build_obs(&self.graph);
    }

    fn graph(&self) -> &EventGraph {
        &self.graph
    }
}

/// Batch kd-tree builder: one tree over all events, causal filtering per
/// query. Thin wrapper over [`KdTreeBuilder`].
pub fn kdtree_build(events: &[Event], config: &GraphConfig, ops: &mut OpCount) -> EventGraph {
    let mut builder = KdTreeBuilder::new(*config);
    run_builder(&mut builder, events, ops);
    builder.into_graph()
}

fn kdtree_core(events: &[Event], config: &GraphConfig, ops: &mut OpCount) -> EventGraph {
    let points: Vec<[f64; 3]> = events.iter().map(|e| config.point_of(e)).collect();
    let tree_span = obs::span("gnn.build.kdtree");
    let tree = KdTree3::build(points.clone());
    tree_span.finish();
    // Building the tree costs ~N log N comparisons.
    let n = events.len().max(2) as u64;
    ops.record_compare(n * (64 - n.leading_zeros() as u64));
    // Queries are read-only and per-event independent: fan out over event
    // chunks; each chunk's neighbour lists come back in event order and
    // the visit counts are integer sums, so the result is exact for any
    // thread count.
    let chunks = par::chunk_ranges(
        events.len(),
        par::chunk_count(events.len(), MIN_QUERIES_PER_CHUNK, par::threads()),
    );
    let results = par::map_chunks(chunks.len(), |c| {
        let mut neighbors = Vec::with_capacity(chunks[c].len());
        let mut visited_total = 0u64;
        for i in chunks[c].clone() {
            let e = &events[i];
            let (found, visited) = tree.within_radius(&points[i], config.radius);
            visited_total += visited as u64;
            let candidates: Vec<(u32, f64)> = found
                .into_iter()
                .filter(|&j| {
                    (j as usize) < i
                        && e.t.saturating_since(events[j as usize].t) <= config.horizon_us
                })
                .map(|j| (j, dist_sq(&points[j as usize], &points[i])))
                .collect();
            neighbors.push(select_neighbors(candidates, config.max_degree));
        }
        (neighbors, visited_total)
    });
    let mut graph = EventGraph::new(config.beta);
    let mut next_event = events.iter();
    for (neighbors, visited) in results {
        ops.record_mult(4 * visited);
        ops.record_compare(2 * visited);
        for ns in neighbors {
            let e = next_event
                .next()
                .unwrap_or_else(|| panic!("one neighbour list per event"));
            graph.push_node(*e, ns);
        }
    }
    graph
}

/// Records node/edge totals for one finished build (any strategy).
pub(crate) fn record_build_obs(graph: &EventGraph) {
    if !obs::enabled() {
        return;
    }
    obs::counter_add("gnn.build.graphs", 1);
    obs::counter_add("gnn.build.nodes", graph.node_count() as u64);
    obs::counter_add("gnn.build.edges", graph.edge_count() as u64);
}

/// Streaming builder: uniform spatial hash over (x, y) with per-cell event
/// lists pruned by the time horizon.
#[derive(Debug, Clone)]
pub struct IncrementalGraphBuilder {
    config: GraphConfig,
    graph: EventGraph,
    /// Cell → node indices, newest last.
    cells: HashMap<(i32, i32), Vec<u32>>,
    cell_size: f64,
    obs_recorded: bool,
}

impl IncrementalGraphBuilder {
    /// Creates a builder.
    pub fn new(config: GraphConfig) -> Self {
        IncrementalGraphBuilder {
            graph: EventGraph::new(config.beta),
            cell_size: config.radius.max(1.0),
            config,
            cells: HashMap::new(),
            obs_recorded: false,
        }
    }

    /// The graph built so far.
    pub fn graph(&self) -> &EventGraph {
        &self.graph
    }

    /// Consumes the builder, returning the graph.
    pub fn into_graph(self) -> EventGraph {
        self.graph
    }

    fn cell_of(&self, e: &Event) -> (i32, i32) {
        (
            (e.x as f64 / self.cell_size).floor() as i32,
            (e.y as f64 / self.cell_size).floor() as i32,
        )
    }

    /// Inserts one event, connecting it to its past neighbours. Returns the
    /// new node index.
    ///
    /// Cost: only the 3×3 cell neighbourhood is scanned, and expired
    /// entries are pruned on contact — constant expected work per event for
    /// bounded local activity, which is the four-orders-of-magnitude win
    /// over the naive scan.
    pub fn insert(&mut self, event: Event, ops: &mut OpCount) -> usize {
        let p = self.config.point_of(&event);
        let r_sq = self.config.radius * self.config.radius;
        let (cx, cy) = self.cell_of(&event);
        let mut candidates = Vec::new();
        for dy in -1..=1 {
            for dx in -1..=1 {
                let Some(list) = self.cells.get_mut(&(cx + dx, cy + dy)) else {
                    continue;
                };
                // Prune expired entries (they are time-sorted).
                let horizon = self.config.horizon_us;
                let events = self.graph.events();
                let first_live = list.partition_point(|&j| {
                    event.t.saturating_since(events[j as usize].t) > horizon
                });
                if first_live > 0 {
                    list.drain(..first_live);
                }
                for &j in list.iter() {
                    ops.record_mult(4);
                    ops.record_compare(2);
                    let q = self.config.point_of(&events[j as usize]);
                    let d = dist_sq(&q, &p);
                    if d <= r_sq {
                        candidates.push((j, d));
                    }
                }
            }
        }
        let neighbors = select_neighbors(candidates, self.config.max_degree);
        let idx = self.graph.push_node(event, neighbors);
        let cell = self.cells.entry((cx, cy)).or_default();
        cell.push(idx as u32);
        if cell.len() > self.config.cell_capacity {
            let drop = cell.len() - self.config.cell_capacity;
            cell.drain(..drop);
        }
        ops.record_write(1);
        self.obs_recorded = false;
        idx
    }
}

impl GraphBuilder for IncrementalGraphBuilder {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn insert(&mut self, event: Event, ops: &mut OpCount) {
        IncrementalGraphBuilder::insert(self, event, ops);
    }

    fn finish(&mut self, _ops: &mut OpCount) {
        // The graph is maintained eagerly; finishing only records totals.
        if !self.obs_recorded {
            record_build_obs(&self.graph);
            self.obs_recorded = true;
        }
    }

    fn graph(&self) -> &EventGraph {
        &self.graph
    }
}

/// Builds the graph by streaming all events through an
/// [`IncrementalGraphBuilder`].
///
/// Large *exact* builds (`cell_capacity == usize::MAX`) use
/// [`striped_incremental_build`], which produces the identical graph from
/// spatially partitioned workers. Capped configurations always stream
/// serially: finite-capacity eviction depends on the prune-on-contact
/// history, which a spatial decomposition cannot reproduce.
pub fn incremental_build(
    events: &[Event],
    config: &GraphConfig,
    ops: &mut OpCount,
) -> EventGraph {
    let par_eligible = par::threads() > 1 && events.len() >= MIN_STRIPED_EVENTS;
    if par_eligible && config.cell_capacity == usize::MAX {
        let graph = striped_incremental_build(events, config, ops);
        record_build_obs(&graph);
        return graph;
    }
    if par_eligible {
        // A capped configuration forced the serial stream even though the
        // input was large enough to stripe — surface it so throughput
        // regressions on multi-core hosts are diagnosable.
        obs::counter_add("gnn.serial_fallback", 1);
    }
    let mut builder = IncrementalGraphBuilder::new(*config);
    run_builder(&mut builder, events, ops);
    builder.into_graph()
}

/// Spatially partitioned incremental build.
///
/// The x axis is cut into contiguous stripes of spatial-hash columns,
/// load-balanced by per-column event counts. Each worker streams the
/// whole event slice in time order but *scans* only events in its owned
/// columns; events in the one-column halo on either side are inserted
/// into the worker's local cell lists without being scanned. Because an
/// owned event's 3×3 cell neighbourhood never reaches past the halo, the
/// worker sees exactly the candidate cells the serial builder would.
///
/// Exactness: with unbounded cells, the live candidate set of a cell at
/// time `t` is "all earlier events in that cell within the horizon" — a
/// pure function of the event times, not of when expired prefixes were
/// pruned. So per-worker pruning (which differs from the serial prune
/// schedule) cannot change any neighbour list, and per-candidate op
/// counts are integer sums over the same scans the serial builder does.
fn striped_incremental_build(
    events: &[Event],
    config: &GraphConfig,
    ops: &mut OpCount,
) -> EventGraph {
    let cell_size = config.radius.max(1.0);
    let col_of = |e: &Event| (e.x as f64 / cell_size).floor() as i32;
    let Some(max_col) = events.iter().map(col_of).max() else {
        return EventGraph::new(config.beta);
    };
    let max_col = max_col as usize;
    let mut col_counts = vec![0usize; max_col + 1];
    for e in events {
        col_counts[col_of(e) as usize] += 1;
    }
    // Greedy contiguous partition of columns into event-balanced stripes.
    let stripes = par::threads().min(max_col + 1);
    let target = events.len().div_ceil(stripes);
    let mut bounds: Vec<i32> = vec![0];
    let mut acc = 0usize;
    for (c, &n) in col_counts.iter().enumerate() {
        acc += n;
        if acc >= target && bounds.len() < stripes {
            bounds.push(c as i32 + 1);
            acc = 0;
        }
    }
    if bounds.last() != Some(&(max_col as i32 + 1)) {
        bounds.push(max_col as i32 + 1);
    }

    let r_sq = config.radius * config.radius;
    let results = par::map_chunks(bounds.len() - 1, |s| {
        let (lo, hi) = (bounds[s], bounds[s + 1]);
        let mut cells: HashMap<(i32, i32), Vec<u32>> = HashMap::new();
        let mut owned: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut scanned = 0u64;
        for (i, e) in events.iter().enumerate() {
            let c = col_of(e);
            if c < lo - 1 || c > hi {
                continue;
            }
            let (cx, cy) = (
                c,
                (e.y as f64 / cell_size).floor() as i32,
            );
            if (lo..hi).contains(&c) {
                let p = config.point_of(e);
                let mut candidates = Vec::new();
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        let Some(list) = cells.get_mut(&(cx + dx, cy + dy)) else {
                            continue;
                        };
                        let first_live = list.partition_point(|&j| {
                            e.t.saturating_since(events[j as usize].t) > config.horizon_us
                        });
                        if first_live > 0 {
                            list.drain(..first_live);
                        }
                        for &j in list.iter() {
                            scanned += 1;
                            let d = dist_sq(&config.point_of(&events[j as usize]), &p);
                            if d <= r_sq {
                                candidates.push((j, d));
                            }
                        }
                    }
                }
                owned.push((i as u32, select_neighbors(candidates, config.max_degree)));
            }
            // Owned and halo events both enter the local cell lists so
            // later owned events can scan them.
            cells.entry((cx, cy)).or_default().push(i as u32);
        }
        (owned, scanned)
    });

    let mut neighbors: Vec<Option<Vec<u32>>> = vec![None; events.len()];
    let mut scanned_total = 0u64;
    for (owned, scanned) in results {
        scanned_total += scanned;
        for (i, ns) in owned {
            neighbors[i as usize] = Some(ns);
        }
    }
    ops.record_mult(4 * scanned_total);
    ops.record_compare(2 * scanned_total);
    ops.record_write(events.len() as u64);
    let mut graph = EventGraph::new(config.beta);
    for (i, e) in events.iter().enumerate() {
        let ns = neighbors[i]
            .take()
            .unwrap_or_else(|| panic!("event {i} not owned by any stripe"));
        graph.push_node(*e, ns);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::Polarity;
    use evlab_util::Rng64;

    fn random_events(n: usize, res: u16, span_us: u64, seed: u64) -> Vec<Event> {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut ts: Vec<u64> = (0..n).map(|_| rng.next_below(span_us)).collect();
        ts.sort_unstable();
        ts.iter()
            .map(|&t| {
                Event::new(
                    t,
                    rng.next_below(res as u64) as u16,
                    rng.next_below(res as u64) as u16,
                    if rng.bernoulli(0.5) {
                        Polarity::On
                    } else {
                        Polarity::Off
                    },
                )
            })
            .collect()
    }

    #[test]
    fn all_builders_agree() {
        let events = random_events(300, 32, 100_000, 1);
        let config = GraphConfig::new();
        let mut ops = OpCount::new();
        let a = naive_build(&events, &config, &mut ops);
        let b = kdtree_build(&events, &config, &mut ops);
        let c = incremental_build(&events, &config, &mut ops);
        for i in 0..events.len() {
            assert_eq!(a.in_neighbors(i), b.in_neighbors(i), "node {i} naive vs kdtree");
            assert_eq!(a.in_neighbors(i), c.in_neighbors(i), "node {i} naive vs incr");
        }
        a.assert_causal();
    }

    #[test]
    fn builder_trait_impls_are_equivalent_across_seeds() {
        // Property test over the unified GraphBuilder interface: all four
        // strategies — naive scan, kd-tree batch, incremental insertion,
        // and the sliding window run unbounded — must produce identical
        // graphs from identical streams, whatever the stream looks like.
        // Each implementation keeps its own OpCount so their cost models
        // stay individually observable through the shared trait.
        use crate::window::{WindowPolicy, WindowedGraphBuilder};
        for seed in 1..=5u64 {
            let events = random_events(250, 24 + (seed as u16 % 3) * 16, 80_000, seed);
            let config = GraphConfig::new().with_max_degree(4 + seed as usize % 4);
            let mut naive = NaiveBuilder::new(config);
            let mut kdtree = KdTreeBuilder::new(config);
            let mut incremental = IncrementalGraphBuilder::new(config);
            let mut windowed =
                WindowedGraphBuilder::new(config, WindowPolicy::MaxNodes(usize::MAX));
            let mut builders: Vec<(&mut dyn GraphBuilder, OpCount)> = vec![
                (&mut naive, OpCount::new()),
                (&mut kdtree, OpCount::new()),
                (&mut incremental, OpCount::new()),
                (&mut windowed, OpCount::new()),
            ];
            for (builder, ops) in &mut builders {
                for e in &events {
                    builder.insert(*e, ops);
                }
                builder.finish(ops);
            }
            let reference: Vec<Vec<u32>> = (0..events.len())
                .map(|i| builders[0].0.graph().in_neighbors(i).to_vec())
                .collect();
            for (builder, ops) in &builders[1..] {
                let g = builder.graph();
                assert_eq!(g.node_count(), events.len(), "{}: node count", builder.name());
                for (i, expected) in reference.iter().enumerate() {
                    assert_eq!(
                        g.in_neighbors(i),
                        expected.as_slice(),
                        "seed {seed}, node {i}: naive vs {}",
                        builder.name()
                    );
                }
                g.assert_causal();
                assert!(ops.mults > 0, "{} recorded its own work", builder.name());
            }
            // Distinct cost models: the naive scan must dominate the
            // spatially indexed strategies.
            assert!(
                builders[0].1.mults > builders[2].1.mults,
                "seed {seed}: naive {} vs incremental {}",
                builders[0].1.mults,
                builders[2].1.mults
            );
        }
    }

    #[test]
    fn builder_insert_after_finish_resumes() {
        // The buffered builders must tolerate interleaved finish/insert:
        // finish() is idempotent and a later insert reopens the build.
        let events = random_events(60, 16, 20_000, 9);
        let mut ops = OpCount::new();
        let mut b = KdTreeBuilder::new(GraphConfig::new());
        for e in &events[..30] {
            b.insert(*e, &mut ops);
        }
        b.finish(&mut ops);
        assert_eq!(b.graph().node_count(), 30);
        b.finish(&mut ops);
        for e in &events[30..] {
            b.insert(*e, &mut ops);
        }
        b.finish(&mut ops);
        let full = kdtree_build(&events, &GraphConfig::new(), &mut OpCount::new());
        assert_eq!(b.graph().node_count(), 60);
        for i in 0..60 {
            assert_eq!(b.graph().in_neighbors(i), full.in_neighbors(i), "node {i}");
        }
    }

    #[test]
    fn degree_cap_is_respected() {
        // Many coincident events: everyone is everyone's neighbour.
        let events: Vec<Event> = (0..50)
            .map(|i| Event::new(i, 10, 10, Polarity::On))
            .collect();
        let config = GraphConfig::new().with_max_degree(4);
        let mut ops = OpCount::new();
        let g = naive_build(&events, &config, &mut ops);
        for i in 0..50 {
            assert!(g.in_neighbors(i).len() <= 4);
        }
        // The 5th node has 4 candidates -> full degree.
        assert_eq!(g.in_neighbors(10).len(), 4);
    }

    #[test]
    fn horizon_cuts_old_connections() {
        let events = vec![
            Event::new(0, 5, 5, Polarity::On),
            Event::new(200_000, 5, 5, Polarity::On), // far beyond 50ms
        ];
        let mut ops = OpCount::new();
        let g = incremental_build(&events, &GraphConfig::new(), &mut ops);
        assert_eq!(g.in_neighbors(1).len(), 0, "expired event not connected");
    }

    #[test]
    fn radius_limits_connections() {
        let events = vec![
            Event::new(0, 0, 0, Polarity::On),
            Event::new(10, 20, 20, Polarity::On), // 28 px away > radius 5
            Event::new(20, 1, 1, Polarity::On),   // sqrt(2) px from node 0
        ];
        let mut ops = OpCount::new();
        let g = naive_build(&events, &GraphConfig::new(), &mut ops);
        assert_eq!(g.in_neighbors(1).len(), 0);
        assert_eq!(g.in_neighbors(2), &[0]);
    }

    #[test]
    fn incremental_cost_beats_naive_asymptotically() {
        let events = random_events(2_000, 64, 500_000, 2);
        let config = GraphConfig::new();
        let mut ops_naive = OpCount::new();
        naive_build(&events, &config, &mut ops_naive);
        let mut ops_incr = OpCount::new();
        incremental_build(&events, &config, &mut ops_incr);
        assert!(
            ops_naive.mults > 20 * ops_incr.mults,
            "naive {} vs incremental {}",
            ops_naive.mults,
            ops_incr.mults
        );
    }

    #[test]
    fn cell_capacity_bounds_per_event_work() {
        // Everything lands on one pixel: the exact builder scans all live
        // prior events; the capped builder scans at most the cap.
        let events: Vec<Event> =
            (0..2_000).map(|i| Event::new(i, 10, 10, Polarity::On)).collect();
        let exact = GraphConfig::new();
        let capped = GraphConfig::new().with_cell_capacity(32);
        let mut ops_exact = OpCount::new();
        incremental_build(&events, &exact, &mut ops_exact);
        let mut ops_capped = OpCount::new();
        let g = incremental_build(&events, &capped, &mut ops_capped);
        assert!(
            ops_exact.mults > 20 * ops_capped.mults,
            "exact {} vs capped {}",
            ops_exact.mults,
            ops_capped.mults
        );
        // The capped graph still connects recent events at full degree.
        assert_eq!(g.in_neighbors(1_999).len(), 8);
        g.assert_causal();
    }

    #[test]
    fn striped_build_matches_serial_stream() {
        // Enough events to cross MIN_STRIPED_EVENTS and trigger striping.
        let events = random_events(6_000, 64, 300_000, 7);
        let config = GraphConfig::new();
        let mut ops_serial = OpCount::new();
        let serial = par::with_threads(1, || {
            incremental_build(&events, &config, &mut ops_serial)
        });
        for t in [2, 4] {
            let mut ops_par = OpCount::new();
            let striped =
                par::with_threads(t, || incremental_build(&events, &config, &mut ops_par));
            for i in 0..events.len() {
                assert_eq!(
                    serial.in_neighbors(i),
                    striped.in_neighbors(i),
                    "node {i}, threads {t}"
                );
            }
            assert_eq!(ops_serial, ops_par, "op totals, threads {t}");
        }
    }

    #[test]
    fn capped_build_never_stripes() {
        // Finite cell capacity must fall back to the serial stream even
        // over the striping threshold (eviction is history-dependent).
        let events = random_events(5_000, 16, 200_000, 8);
        let config = GraphConfig::new().with_cell_capacity(16);
        let mut ops_a = OpCount::new();
        let a = par::with_threads(1, || incremental_build(&events, &config, &mut ops_a));
        let mut ops_b = OpCount::new();
        let b = par::with_threads(4, || incremental_build(&events, &config, &mut ops_b));
        for i in 0..events.len() {
            assert_eq!(a.in_neighbors(i), b.in_neighbors(i), "node {i}");
        }
        assert_eq!(ops_a, ops_b);
    }

    #[test]
    fn builder_streams_and_exposes_graph() {
        let mut builder = IncrementalGraphBuilder::new(GraphConfig::new());
        let mut ops = OpCount::new();
        builder.insert(Event::new(0, 3, 3, Polarity::On), &mut ops);
        builder.insert(Event::new(100, 4, 3, Polarity::On), &mut ops);
        assert_eq!(builder.graph().node_count(), 2);
        assert_eq!(builder.graph().in_neighbors(1), &[0]);
    }
}
