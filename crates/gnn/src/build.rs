//! Graph construction strategies.
//!
//! All three builders produce the *same* graph (identical semantics,
//! deterministic tie-breaking) so their costs are directly comparable —
//! experiment CL-F, the §IV claim that algorithmic innovation took graph
//! insertion from tree-search latency to real-time:
//!
//! * [`naive_build`] — O(N²) backward scan, the reference.
//! * [`kdtree_build`] — batch kd-tree over all events.
//! * [`incremental_build`] / [`IncrementalGraphBuilder`] — streaming
//!   insertion with a uniform spatial hash and a sliding time horizon (the
//!   "hemispherical update": only *past* events within the horizon are
//!   candidates).

use crate::graph::EventGraph;
use crate::kdtree::KdTree3;
use evlab_events::Event;
use evlab_tensor::OpCount;
use std::collections::HashMap;

/// Shared construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfig {
    /// Connection radius in the scaled spatiotemporal metric.
    pub radius: f64,
    /// Time scaling β in pixels per microsecond.
    pub beta: f64,
    /// Maximum in-degree per node (nearest neighbours win).
    pub max_degree: usize,
    /// Time horizon: events older than this many microseconds are never
    /// connected (and may be evicted).
    pub horizon_us: u64,
    /// Maximum *live* candidates kept per spatial cell by the incremental
    /// builder; when exceeded, the oldest are dropped. `usize::MAX` keeps
    /// the builder exact; a finite cap is the recency approximation of the
    /// hemispherical update ([72]) that bounds per-event work even under
    /// extreme local densities.
    pub cell_capacity: usize,
}

impl GraphConfig {
    /// Defaults matching event-graph literature: radius 5 px, β = 1 px/ms,
    /// degree ≤ 8, 50 ms horizon, exact (uncapped) cells.
    pub fn new() -> Self {
        GraphConfig {
            radius: 5.0,
            beta: 0.001,
            max_degree: 8,
            horizon_us: 50_000,
            cell_capacity: usize::MAX,
        }
    }

    /// Returns a copy with a finite per-cell candidate cap (the streaming
    /// approximation).
    pub fn with_cell_capacity(mut self, cell_capacity: usize) -> Self {
        self.cell_capacity = cell_capacity;
        self
    }

    /// Returns a copy with a different radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius <= 0`.
    pub fn with_radius(mut self, radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        self.radius = radius;
        self
    }

    /// Returns a copy with a different maximum degree.
    pub fn with_max_degree(mut self, max_degree: usize) -> Self {
        self.max_degree = max_degree;
        self
    }

    fn point_of(&self, e: &Event) -> [f64; 3] {
        [
            e.x as f64,
            e.y as f64,
            e.t.as_micros() as f64 * self.beta,
        ]
    }
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig::new()
    }
}

fn dist_sq(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

/// Selects up to `max_degree` candidates by (distance, recency) and returns
/// them sorted ascending by node index.
fn select_neighbors(
    mut candidates: Vec<(u32, f64)>,
    max_degree: usize,
) -> Vec<u32> {
    candidates.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite distance")
            .then(b.0.cmp(&a.0)) // tie: prefer the more recent event
    });
    candidates.truncate(max_degree);
    let mut out: Vec<u32> = candidates.into_iter().map(|(i, _)| i).collect();
    out.sort_unstable();
    out
}

/// O(N²) reference builder: every node scans all prior events.
///
/// Cost accounting: one distance evaluation (4 mults + comparisons) per
/// candidate pair.
pub fn naive_build(events: &[Event], config: &GraphConfig, ops: &mut OpCount) -> EventGraph {
    let mut graph = EventGraph::new(config.beta);
    let r_sq = config.radius * config.radius;
    for (i, e) in events.iter().enumerate() {
        let p = config.point_of(e);
        let mut candidates = Vec::new();
        for (j, prior) in events[..i].iter().enumerate() {
            ops.record_mult(4);
            ops.record_compare(2);
            if e.t.saturating_since(prior.t) > config.horizon_us {
                continue;
            }
            let d = dist_sq(&config.point_of(prior), &p);
            if d <= r_sq {
                candidates.push((j as u32, d));
            }
        }
        graph.push_node(*e, select_neighbors(candidates, config.max_degree));
    }
    graph
}

/// Batch kd-tree builder: one tree over all events, causal filtering per
/// query.
pub fn kdtree_build(events: &[Event], config: &GraphConfig, ops: &mut OpCount) -> EventGraph {
    let points: Vec<[f64; 3]> = events.iter().map(|e| config.point_of(e)).collect();
    let tree = KdTree3::build(points.clone());
    // Building the tree costs ~N log N comparisons.
    let n = events.len().max(2) as u64;
    ops.record_compare(n * (64 - n.leading_zeros() as u64));
    let mut graph = EventGraph::new(config.beta);
    for (i, e) in events.iter().enumerate() {
        let (found, visited) = tree.within_radius(&points[i], config.radius);
        ops.record_mult(4 * visited as u64);
        ops.record_compare(2 * visited as u64);
        let candidates: Vec<(u32, f64)> = found
            .into_iter()
            .filter(|&j| {
                (j as usize) < i
                    && e.t.saturating_since(events[j as usize].t) <= config.horizon_us
            })
            .map(|j| (j, dist_sq(&points[j as usize], &points[i])))
            .collect();
        graph.push_node(*e, select_neighbors(candidates, config.max_degree));
    }
    graph
}

/// Streaming builder: uniform spatial hash over (x, y) with per-cell event
/// lists pruned by the time horizon.
#[derive(Debug, Clone)]
pub struct IncrementalGraphBuilder {
    config: GraphConfig,
    graph: EventGraph,
    /// Cell → node indices, newest last.
    cells: HashMap<(i32, i32), Vec<u32>>,
    cell_size: f64,
}

impl IncrementalGraphBuilder {
    /// Creates a builder.
    pub fn new(config: GraphConfig) -> Self {
        IncrementalGraphBuilder {
            graph: EventGraph::new(config.beta),
            cell_size: config.radius.max(1.0),
            config,
            cells: HashMap::new(),
        }
    }

    /// The graph built so far.
    pub fn graph(&self) -> &EventGraph {
        &self.graph
    }

    /// Consumes the builder, returning the graph.
    pub fn into_graph(self) -> EventGraph {
        self.graph
    }

    fn cell_of(&self, e: &Event) -> (i32, i32) {
        (
            (e.x as f64 / self.cell_size).floor() as i32,
            (e.y as f64 / self.cell_size).floor() as i32,
        )
    }

    /// Inserts one event, connecting it to its past neighbours. Returns the
    /// new node index.
    ///
    /// Cost: only the 3×3 cell neighbourhood is scanned, and expired
    /// entries are pruned on contact — constant expected work per event for
    /// bounded local activity, which is the four-orders-of-magnitude win
    /// over the naive scan.
    pub fn insert(&mut self, event: Event, ops: &mut OpCount) -> usize {
        let p = self.config.point_of(&event);
        let r_sq = self.config.radius * self.config.radius;
        let (cx, cy) = self.cell_of(&event);
        let mut candidates = Vec::new();
        for dy in -1..=1 {
            for dx in -1..=1 {
                let Some(list) = self.cells.get_mut(&(cx + dx, cy + dy)) else {
                    continue;
                };
                // Prune expired entries (they are time-sorted).
                let horizon = self.config.horizon_us;
                let events = self.graph.events();
                let first_live = list.partition_point(|&j| {
                    event.t.saturating_since(events[j as usize].t) > horizon
                });
                if first_live > 0 {
                    list.drain(..first_live);
                }
                for &j in list.iter() {
                    ops.record_mult(4);
                    ops.record_compare(2);
                    let q = self.config.point_of(&events[j as usize]);
                    let d = dist_sq(&q, &p);
                    if d <= r_sq {
                        candidates.push((j, d));
                    }
                }
            }
        }
        let neighbors = select_neighbors(candidates, self.config.max_degree);
        let idx = self.graph.push_node(event, neighbors);
        let cell = self.cells.entry((cx, cy)).or_default();
        cell.push(idx as u32);
        if cell.len() > self.config.cell_capacity {
            let drop = cell.len() - self.config.cell_capacity;
            cell.drain(..drop);
        }
        ops.record_write(1);
        idx
    }
}

/// Builds the graph by streaming all events through an
/// [`IncrementalGraphBuilder`].
pub fn incremental_build(
    events: &[Event],
    config: &GraphConfig,
    ops: &mut OpCount,
) -> EventGraph {
    let mut builder = IncrementalGraphBuilder::new(*config);
    for e in events {
        builder.insert(*e, ops);
    }
    builder.into_graph()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::Polarity;
    use evlab_util::Rng64;

    fn random_events(n: usize, res: u16, span_us: u64, seed: u64) -> Vec<Event> {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut ts: Vec<u64> = (0..n).map(|_| rng.next_below(span_us)).collect();
        ts.sort_unstable();
        ts.iter()
            .map(|&t| {
                Event::new(
                    t,
                    rng.next_below(res as u64) as u16,
                    rng.next_below(res as u64) as u16,
                    if rng.bernoulli(0.5) {
                        Polarity::On
                    } else {
                        Polarity::Off
                    },
                )
            })
            .collect()
    }

    #[test]
    fn all_builders_agree() {
        let events = random_events(300, 32, 100_000, 1);
        let config = GraphConfig::new();
        let mut ops = OpCount::new();
        let a = naive_build(&events, &config, &mut ops);
        let b = kdtree_build(&events, &config, &mut ops);
        let c = incremental_build(&events, &config, &mut ops);
        for i in 0..events.len() {
            assert_eq!(a.in_neighbors(i), b.in_neighbors(i), "node {i} naive vs kdtree");
            assert_eq!(a.in_neighbors(i), c.in_neighbors(i), "node {i} naive vs incr");
        }
        a.assert_causal();
    }

    #[test]
    fn degree_cap_is_respected() {
        // Many coincident events: everyone is everyone's neighbour.
        let events: Vec<Event> = (0..50)
            .map(|i| Event::new(i, 10, 10, Polarity::On))
            .collect();
        let config = GraphConfig::new().with_max_degree(4);
        let mut ops = OpCount::new();
        let g = naive_build(&events, &config, &mut ops);
        for i in 0..50 {
            assert!(g.in_neighbors(i).len() <= 4);
        }
        // The 5th node has 4 candidates -> full degree.
        assert_eq!(g.in_neighbors(10).len(), 4);
    }

    #[test]
    fn horizon_cuts_old_connections() {
        let events = vec![
            Event::new(0, 5, 5, Polarity::On),
            Event::new(200_000, 5, 5, Polarity::On), // far beyond 50ms
        ];
        let mut ops = OpCount::new();
        let g = incremental_build(&events, &GraphConfig::new(), &mut ops);
        assert_eq!(g.in_neighbors(1).len(), 0, "expired event not connected");
    }

    #[test]
    fn radius_limits_connections() {
        let events = vec![
            Event::new(0, 0, 0, Polarity::On),
            Event::new(10, 20, 20, Polarity::On), // 28 px away > radius 5
            Event::new(20, 1, 1, Polarity::On),   // sqrt(2) px from node 0
        ];
        let mut ops = OpCount::new();
        let g = naive_build(&events, &GraphConfig::new(), &mut ops);
        assert_eq!(g.in_neighbors(1).len(), 0);
        assert_eq!(g.in_neighbors(2), &[0]);
    }

    #[test]
    fn incremental_cost_beats_naive_asymptotically() {
        let events = random_events(2_000, 64, 500_000, 2);
        let config = GraphConfig::new();
        let mut ops_naive = OpCount::new();
        naive_build(&events, &config, &mut ops_naive);
        let mut ops_incr = OpCount::new();
        incremental_build(&events, &config, &mut ops_incr);
        assert!(
            ops_naive.mults > 20 * ops_incr.mults,
            "naive {} vs incremental {}",
            ops_naive.mults,
            ops_incr.mults
        );
    }

    #[test]
    fn cell_capacity_bounds_per_event_work() {
        // Everything lands on one pixel: the exact builder scans all live
        // prior events; the capped builder scans at most the cap.
        let events: Vec<Event> =
            (0..2_000).map(|i| Event::new(i, 10, 10, Polarity::On)).collect();
        let exact = GraphConfig::new();
        let capped = GraphConfig::new().with_cell_capacity(32);
        let mut ops_exact = OpCount::new();
        incremental_build(&events, &exact, &mut ops_exact);
        let mut ops_capped = OpCount::new();
        let g = incremental_build(&events, &capped, &mut ops_capped);
        assert!(
            ops_exact.mults > 20 * ops_capped.mults,
            "exact {} vs capped {}",
            ops_exact.mults,
            ops_capped.mults
        );
        // The capped graph still connects recent events at full degree.
        assert_eq!(g.in_neighbors(1_999).len(), 8);
        g.assert_causal();
    }

    #[test]
    fn builder_streams_and_exposes_graph() {
        let mut builder = IncrementalGraphBuilder::new(GraphConfig::new());
        let mut ops = OpCount::new();
        builder.insert(Event::new(0, 3, 3, Polarity::On), &mut ops);
        builder.insert(Event::new(100, 4, 3, Polarity::On), &mut ops);
        assert_eq!(builder.graph().node_count(), 2);
        assert_eq!(builder.graph().in_neighbors(1), &[0]);
    }
}
