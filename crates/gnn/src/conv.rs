//! Relational graph convolution over spatiotemporal offsets.
//!
//! The layer implements
//!
//! ```text
//! h'_i = ReLU( W_self·h_i + (1/|N(i)|) Σ_{j∈N(i)} (W_nbr·h_j + W_rel·r_ij) + b )
//! ```
//!
//! where `r_ij = (Δx, Δy, βΔt)` is the spatiotemporal edge offset — this is
//! how "graph convolutions can exploit the precise timing information
//! captured by an event-camera deep into a neural network" (§IV). Backward
//! passes are exact.

use crate::graph::{EventGraph, GraphView};
use evlab_tensor::init::he_normal;
use evlab_tensor::layer::Param;
use evlab_tensor::scratch::with_worker_scratch;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::{par, Rng64};

/// Minimum nodes per chunk before the batch forward fans out over the
/// kernel pool; tiny graphs stay serial.
const GNN_NODES_PER_CHUNK: usize = 64;
/// Upper bound on forward chunk count. Together with
/// [`GNN_NODES_PER_CHUNK`] the chunk count depends only on the node count
/// (never the thread count), keeping the output and op accounting bitwise
/// invariant under `EVLAB_THREADS`.
const GNN_MAX_CHUNKS: usize = 64;

/// Per-node feature matrix: `node_count × dim`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFeatures {
    dim: usize,
    data: Vec<f32>,
}

impl NodeFeatures {
    /// Creates a zeroed feature matrix.
    pub fn zeros(nodes: usize, dim: usize) -> Self {
        NodeFeatures {
            dim,
            data: vec![0.0; nodes * dim],
        }
    }

    /// Builds the initial polarity features from a graph.
    pub fn from_graph(graph: &EventGraph) -> Self {
        let mut f = NodeFeatures::zeros(graph.node_count(), 2);
        for i in 0..graph.node_count() {
            let feat = graph.node_features(i);
            f.row_mut(i).copy_from_slice(&feat);
        }
        f
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Row `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length mismatches.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row length mismatch");
        self.data.extend_from_slice(row);
    }

    /// Grows or shrinks the matrix to exactly `nodes` rows, zero-filling
    /// any new rows and keeping existing rows in place. Used by the
    /// sliding-window engine, whose rows are keyed by stable slot ids.
    pub fn resize_nodes(&mut self, nodes: usize) {
        self.data.resize(nodes * self.dim, 0.0);
    }

    /// Makes this matrix an exact copy of `src`, reusing the existing
    /// allocation whenever capacity suffices.
    pub fn copy_from(&mut self, src: &NodeFeatures) {
        self.dim = src.dim;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Column-wise mean over all nodes (global mean pooling).
    pub fn mean_pool(&self) -> Vec<f32> {
        let n = self.nodes();
        let mut out = vec![0.0f32; self.dim];
        if n == 0 {
            return out;
        }
        for i in 0..n {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        for o in &mut out {
            *o /= n as f32;
        }
        out
    }
}

/// One relational graph-convolution layer.
#[derive(Debug, Clone)]
pub struct GraphConv {
    w_self: Param, // [out, in]
    w_nbr: Param,  // [out, in]
    w_rel: Param,  // [out, 3]
    bias: Param,   // [out]
    in_dim: usize,
    out_dim: usize,
    cached_input: Option<NodeFeatures>,
    cached_mask: Option<Vec<bool>>,
    /// Recycled forward caches: backward consumes `cached_input`/
    /// `cached_mask` (preserving the backward-without-forward panic) but
    /// parks their allocations here so the next forward reuses them.
    input_pool: Option<NodeFeatures>,
    mask_pool: Option<Vec<bool>>,
    /// Reused per-node message/aggregation buffers (`out_dim` each), so
    /// message passing allocates nothing per node.
    msg_buf: Vec<f32>,
    agg_buf: Vec<f32>,
    /// Reused per-chunk op-count partials for the parallel batch forward.
    ops_buf: Vec<OpCount>,
}

impl GraphConv {
    /// Creates a layer with He initialization.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "zero-sized layer");
        GraphConv {
            w_self: Param::new(he_normal(&[out_dim, in_dim], in_dim, rng)),
            w_nbr: Param::new(he_normal(&[out_dim, in_dim], in_dim, rng)),
            w_rel: Param::new(he_normal(&[out_dim, 3], 3, rng)),
            bias: Param::new(Tensor::zeros(&[out_dim])),
            in_dim,
            out_dim,
            cached_input: None,
            cached_mask: None,
            input_pool: None,
            mask_pool: None,
            msg_buf: Vec::new(),
            agg_buf: Vec::new(),
            ops_buf: Vec::new(),
        }
    }

    /// Input feature dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.w_self,
            &mut self.w_nbr,
            &mut self.w_rel,
            &mut self.bias,
        ]
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.w_self.len() + self.w_nbr.len() + self.w_rel.len() + self.bias.len()
    }

    /// Computes the pre-activation message for a single node given the
    /// *input* features — shared by the batch forward and the asynchronous
    /// single-node update, over any [`GraphView`] node store. Convenience
    /// wrapper over [`GraphConv::node_forward_into`] that allocates the
    /// result.
    pub fn node_forward<G: GraphView + ?Sized>(
        &self,
        graph: &G,
        input: &NodeFeatures,
        i: usize,
        ops: &mut OpCount,
    ) -> Vec<f32> {
        let mut m = vec![0.0f32; self.out_dim];
        let mut agg = vec![0.0f32; self.out_dim];
        self.node_forward_into(graph, input, i, &mut m, &mut agg, ops);
        m
    }

    /// Allocation-free [`GraphConv::node_forward`]: writes the
    /// pre-activation message into `m` and uses `agg` as the neighbor
    /// aggregation buffer (both of length `out_dim`, fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if either buffer is shorter than `out_dim`.
    pub fn node_forward_into<G: GraphView + ?Sized>(
        &self,
        graph: &G,
        input: &NodeFeatures,
        i: usize,
        m: &mut [f32],
        agg: &mut [f32],
        ops: &mut OpCount,
    ) {
        assert!(m.len() >= self.out_dim && agg.len() >= self.out_dim);
        let ws = self.w_self.value.as_slice();
        let wn = self.w_nbr.value.as_slice();
        let wr = self.w_rel.value.as_slice();
        let b = self.bias.value.as_slice();
        let h_i = input.row(i);
        for (o, slot) in m.iter_mut().enumerate().take(self.out_dim) {
            *slot = b[o]
                + ws[o * self.in_dim..(o + 1) * self.in_dim]
                    .iter()
                    .zip(h_i)
                    .map(|(w, x)| w * x)
                    .sum::<f32>();
        }
        ops.record_mac(
            (self.out_dim * self.in_dim) as u64,
            (self.out_dim * self.in_dim) as u64,
        );
        let nbrs = graph.in_neighbors(i);
        if !nbrs.is_empty() {
            let inv = 1.0 / nbrs.len() as f32;
            agg[..self.out_dim].fill(0.0);
            for &j in nbrs {
                let h_j = input.row(j as usize);
                let r = graph.relative_offset(i, j as usize);
                for (o, slot) in agg.iter_mut().enumerate().take(self.out_dim) {
                    let msg: f32 = wn[o * self.in_dim..(o + 1) * self.in_dim]
                        .iter()
                        .zip(h_j)
                        .map(|(w, x)| w * x)
                        .sum::<f32>()
                        + wr[o * 3] * r[0]
                        + wr[o * 3 + 1] * r[1]
                        + wr[o * 3 + 2] * r[2];
                    *slot += msg;
                }
            }
            ops.record_mac(
                (nbrs.len() * self.out_dim * (self.in_dim + 3)) as u64,
                (nbrs.len() * self.out_dim * (self.in_dim + 3)) as u64,
            );
            for (mo, a) in m.iter_mut().zip(agg.iter()).take(self.out_dim) {
                *mo += inv * a;
            }
            ops.record_mult(self.out_dim as u64);
        }
    }

    /// Batch forward over all nodes, with ReLU. Caches for backward. The
    /// per-node message/aggregation buffers and the forward caches are
    /// reused across calls, so repeated forwards only allocate for the
    /// output features.
    ///
    /// Graphs with at least `2 ·` [`GNN_NODES_PER_CHUNK`] nodes fan node
    /// bands out over the `evlab_util::par` kernel pool. Each node's
    /// message is a self-contained computation writing a disjoint output
    /// row, and the per-chunk op-count partials are merged in ascending
    /// chunk order, so results are bitwise identical at every thread
    /// count (and to the serial loop).
    pub fn forward(
        &mut self,
        graph: &EventGraph,
        input: &NodeFeatures,
        ops: &mut OpCount,
    ) -> NodeFeatures {
        let n = graph.node_count();
        assert_eq!(input.nodes(), n, "feature/node count mismatch");
        assert_eq!(input.dim(), self.in_dim, "feature dim mismatch");
        let mut out = NodeFeatures::zeros(n, self.out_dim);
        let mut mask = self.mask_pool.take().unwrap_or_default();
        mask.clear();
        mask.resize(n * self.out_dim, false);
        let n_chunks = par::chunk_count(n, GNN_NODES_PER_CHUNK, GNN_MAX_CHUNKS);
        if n_chunks > 1 {
            let mut ops_parts = std::mem::take(&mut self.ops_buf);
            ops_parts.clear();
            ops_parts.resize(n_chunks, OpCount::new());
            let out_dim = self.out_dim;
            let out_addr = out.data.as_mut_ptr() as usize;
            let mask_addr = mask.as_mut_ptr() as usize;
            let parts_addr = ops_parts.as_mut_ptr() as usize;
            let this = &*self;
            par::for_each_chunk(n_chunks, |c| {
                // SAFETY: chunk ranges partition `0..n` into disjoint
                // intervals, so each chunk exclusively owns its node rows
                // of `out`/`mask` and its own `ops_parts[c]`; all three
                // locals outlive the region, and `this` is a shared borrow
                // (weights are only read).
                let part = unsafe { &mut *(parts_addr as *mut OpCount).add(c) };
                with_worker_scratch(|ws| {
                    let mut m = ws.take_buf(out_dim);
                    let mut agg = ws.take_buf(out_dim);
                    for i in par::chunk_range_at(n, n_chunks, c) {
                        this.node_forward_into(graph, input, i, &mut m, &mut agg, part);
                        let (row, mrow) = unsafe {
                            (
                                std::slice::from_raw_parts_mut(
                                    (out_addr as *mut f32).add(i * out_dim),
                                    out_dim,
                                ),
                                std::slice::from_raw_parts_mut(
                                    (mask_addr as *mut bool).add(i * out_dim),
                                    out_dim,
                                ),
                            )
                        };
                        for (o, &v) in m.iter().enumerate() {
                            if v > 0.0 {
                                row[o] = v;
                                mrow[o] = true;
                            }
                        }
                    }
                    ws.put_buf(agg);
                    ws.put_buf(m);
                });
            });
            for part in &ops_parts {
                *ops += *part;
            }
            self.ops_buf = ops_parts;
        } else {
            let mut m = std::mem::take(&mut self.msg_buf);
            let mut agg = std::mem::take(&mut self.agg_buf);
            m.resize(self.out_dim, 0.0);
            agg.resize(self.out_dim, 0.0);
            for i in 0..n {
                self.node_forward_into(graph, input, i, &mut m, &mut agg, ops);
                let row = out.row_mut(i);
                for (o, &v) in m.iter().enumerate() {
                    if v > 0.0 {
                        row[o] = v;
                        mask[i * self.out_dim + o] = true;
                    }
                }
            }
            self.msg_buf = m;
            self.agg_buf = agg;
        }
        ops.record_compare((n * self.out_dim) as u64);
        ops.record_write((n * self.out_dim) as u64);
        match self.input_pool.take() {
            Some(mut pooled) => {
                pooled.copy_from(input);
                self.cached_input = Some(pooled);
            }
            None => self.cached_input = Some(input.clone()),
        }
        self.cached_mask = Some(mask);
        out
    }

    /// Backward pass: given `d h'`, accumulates parameter gradients and
    /// returns `d h` (gradient at the input features).
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`GraphConv::forward`].
    pub fn backward(
        &mut self,
        graph: &EventGraph,
        grad_output: &NodeFeatures,
        ops: &mut OpCount,
    ) -> NodeFeatures {
        let input = self
            .cached_input
            .take()
            .unwrap_or_else(|| panic!("backward without forward"));
        let mask = self
            .cached_mask
            .take()
            .unwrap_or_else(|| panic!("forward caches mask"));
        let n = graph.node_count();
        let mut grad_input = NodeFeatures::zeros(n, self.in_dim);
        // `dm` (masked gradient of one node) reuses the message buffer; all
        // weight reads borrow `Param::value` while writes go to the
        // disjoint `Param::grad`, so no per-node copies are needed.
        let mut dm = std::mem::take(&mut self.msg_buf);
        dm.resize(self.out_dim, 0.0);
        let ws = self.w_self.value.as_slice();
        let wn = self.w_nbr.value.as_slice();
        for i in 0..n {
            let nbrs = graph.in_neighbors(i);
            let inv = if nbrs.is_empty() {
                0.0
            } else {
                1.0 / nbrs.len() as f32
            };
            let h_i = input.row(i);
            // dm = relu mask applied.
            for (o, (slot, &g)) in dm.iter_mut().zip(grad_output.row(i)).enumerate() {
                *slot = if mask[i * self.out_dim + o] { g } else { 0.0 };
            }
            {
                let gb = self.bias.grad.as_mut_slice();
                let gs = self.w_self.grad.as_mut_slice();
                for (o, &d) in dm.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    gb[o] += d;
                    for (c, &x) in h_i.iter().enumerate() {
                        gs[o * self.in_dim + c] += d * x;
                    }
                }
            }
            {
                let gi = grad_input.row_mut(i);
                for (o, &d) in dm.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    for (c, slot) in gi.iter_mut().enumerate() {
                        *slot += d * ws[o * self.in_dim + c];
                    }
                }
            }
            for &j in nbrs {
                let h_j = input.row(j as usize);
                let r = graph.relative_offset(i, j as usize);
                let gn = self.w_nbr.grad.as_mut_slice();
                let gr = self.w_rel.grad.as_mut_slice();
                for (o, &d) in dm.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    let dscaled = d * inv;
                    for (c, &x) in h_j.iter().enumerate() {
                        gn[o * self.in_dim + c] += dscaled * x;
                    }
                    gr[o * 3] += dscaled * r[0];
                    gr[o * 3 + 1] += dscaled * r[1];
                    gr[o * 3 + 2] += dscaled * r[2];
                }
                let gj = grad_input.row_mut(j as usize);
                for (o, &d) in dm.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    let dscaled = d * inv;
                    for (c, slot) in gj.iter_mut().enumerate() {
                        *slot += dscaled * wn[o * self.in_dim + c];
                    }
                }
            }
        }
        self.msg_buf = dm;
        self.input_pool = Some(input);
        self.mask_pool = Some(mask);
        let edges = graph.edge_count() as u64;
        ops.record_mac(
            2 * (n as u64 * (self.out_dim * self.in_dim) as u64
                + edges * (self.out_dim * (self.in_dim + 3)) as u64),
            2 * (n as u64 * (self.out_dim * self.in_dim) as u64
                + edges * (self.out_dim * (self.in_dim + 3)) as u64),
        );
        grad_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::{Event, Polarity};

    fn small_graph() -> EventGraph {
        let mut g = EventGraph::new(0.001);
        g.push_node(Event::new(0, 2, 2, Polarity::On), vec![]);
        g.push_node(Event::new(100, 3, 2, Polarity::Off), vec![0]);
        g.push_node(Event::new(200, 3, 3, Polarity::On), vec![0, 1]);
        g
    }

    #[test]
    fn forward_shapes_and_isolated_nodes() {
        let mut rng = Rng64::seed_from_u64(1);
        let g = small_graph();
        let mut conv = GraphConv::new(2, 8, &mut rng);
        let input = NodeFeatures::from_graph(&g);
        let mut ops = OpCount::new();
        let out = conv.forward(&g, &input, &mut ops);
        assert_eq!(out.nodes(), 3);
        assert_eq!(out.dim(), 8);
        assert!(ops.macs > 0);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng64::seed_from_u64(2);
        let g = small_graph();
        let mut conv = GraphConv::new(2, 4, &mut rng);
        let input = NodeFeatures::from_graph(&g);
        let mut ops = OpCount::new();
        let out = conv.forward(&g, &input, &mut ops);
        let dout = NodeFeatures {
            dim: 4,
            data: vec![1.0; out.nodes() * 4],
        };
        let din = conv.backward(&g, &dout, &mut ops);
        let objective = |conv: &mut GraphConv, input: &NodeFeatures, ops: &mut OpCount| {
            let out = conv.forward(&g, input, ops);
            out.data.iter().sum::<f32>()
        };
        let eps = 1e-3f32;
        // Input gradient check.
        for idx in 0..input.data.len() {
            let mut plus = input.clone();
            plus.data[idx] += eps;
            let mut minus = input.clone();
            minus.data[idx] -= eps;
            let numeric =
                (objective(&mut conv, &plus, &mut ops) - objective(&mut conv, &minus, &mut ops))
                    / (2.0 * eps);
            assert!(
                (numeric - din.data[idx]).abs() < 2e-2,
                "input grad {idx}: {numeric} vs {}",
                din.data[idx]
            );
        }
        // Parameter gradient check (fresh gradients).
        let mut conv2 = GraphConv::new(2, 4, &mut Rng64::seed_from_u64(2));
        let out2 = conv2.forward(&g, &input, &mut ops);
        let dout2 = NodeFeatures {
            dim: 4,
            data: vec![1.0; out2.nodes() * 4],
        };
        conv2.backward(&g, &dout2, &mut ops);
        for pi in 0..4 {
            let analytic = conv2.params_mut()[pi].grad.clone();
            for wi in [0usize, analytic.len() - 1] {
                let orig = conv2.params_mut()[pi].value.as_slice()[wi];
                conv2.params_mut()[pi].value.as_mut_slice()[wi] = orig + eps;
                let f_plus = objective(&mut conv2, &input, &mut ops);
                conv2.params_mut()[pi].value.as_mut_slice()[wi] = orig - eps;
                let f_minus = objective(&mut conv2, &input, &mut ops);
                conv2.params_mut()[pi].value.as_mut_slice()[wi] = orig;
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                let a = analytic.as_slice()[wi];
                assert!(
                    (numeric - a).abs() < 2e-2,
                    "param {pi} weight {wi}: {numeric} vs {a}"
                );
            }
        }
    }

    #[test]
    fn timing_information_reaches_the_output() {
        // Two graphs identical except for edge Δt: outputs must differ,
        // demonstrating that timing is usable by the model.
        let mut rng = Rng64::seed_from_u64(3);
        let mut conv = GraphConv::new(2, 4, &mut rng);
        let mut ops = OpCount::new();
        let make = |dt: u64| {
            let mut g = EventGraph::new(0.01);
            g.push_node(Event::new(0, 2, 2, Polarity::On), vec![]);
            g.push_node(Event::new(dt, 3, 2, Polarity::On), vec![0]);
            g
        };
        let g_fast = make(10);
        let g_slow = make(1_000);
        let input = NodeFeatures::from_graph(&g_fast);
        let out_fast = conv.forward(&g_fast, &input, &mut ops);
        let out_slow = conv.forward(&g_slow, &input, &mut ops);
        assert_ne!(
            out_fast.row(1),
            out_slow.row(1),
            "Δt must influence features"
        );
    }

    #[test]
    fn batch_forward_is_bitwise_invariant_across_thread_counts() {
        // Enough nodes to clear GNN_NODES_PER_CHUNK and fan out.
        let mut g = EventGraph::new(0.001);
        for i in 0..(3 * GNN_NODES_PER_CHUNK as u64 + 7) {
            let nbrs: Vec<u32> = (i.saturating_sub(3)..i).map(|j| j as u32).collect();
            let pol = if i % 2 == 0 { Polarity::On } else { Polarity::Off };
            g.push_node(Event::new(i * 50, (i % 64) as u16, (i % 48) as u16, pol), nbrs);
        }
        let input = NodeFeatures::from_graph(&g);
        let mut rng = Rng64::seed_from_u64(7);
        let mut conv = GraphConv::new(2, 8, &mut rng);

        // Reference: the per-node serial formula (node_forward + ReLU).
        let mut ops_ref = OpCount::new();
        let mut expected = NodeFeatures::zeros(g.node_count(), 8);
        for i in 0..g.node_count() {
            let m = conv.node_forward(&g, &input, i, &mut ops_ref);
            for (o, &v) in m.iter().enumerate() {
                if v > 0.0 {
                    expected.row_mut(i)[o] = v;
                }
            }
        }

        let mut baseline: Option<(Vec<u32>, OpCount)> = None;
        for threads in [1, 2, 4, 8] {
            evlab_util::par::with_threads(threads, || {
                let mut ops = OpCount::new();
                let out = conv.forward(&g, &input, &mut ops);
                for i in 0..g.node_count() {
                    for (a, b) in out.row(i).iter().zip(expected.row(i)) {
                        assert_eq!(a.to_bits(), b.to_bits(), "node {i} at {threads} threads");
                    }
                }
                let bits: Vec<u32> = out.data.iter().map(|v| v.to_bits()).collect();
                match &baseline {
                    None => baseline = Some((bits, ops)),
                    Some((b_bits, b_ops)) => {
                        assert_eq!(&bits, b_bits, "{threads} threads diverged");
                        assert_eq!(&ops, b_ops, "op accounting diverged at {threads} threads");
                    }
                }
            });
        }
    }

    #[test]
    fn mean_pool_averages() {
        let mut f = NodeFeatures::zeros(2, 2);
        f.row_mut(0).copy_from_slice(&[1.0, 3.0]);
        f.row_mut(1).copy_from_slice(&[3.0, 5.0]);
        assert_eq!(f.mean_pool(), vec![2.0, 4.0]);
        assert_eq!(NodeFeatures::zeros(0, 2).mean_pool(), vec![0.0, 0.0]);
    }

    #[test]
    fn ops_scale_with_edges() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut conv = GraphConv::new(2, 4, &mut rng);
        let sparse = small_graph(); // 3 edges
        let mut dense = EventGraph::new(0.001);
        for i in 0..10u64 {
            let nbrs: Vec<u32> = (0..i.min(8) as u32).collect();
            dense.push_node(Event::new(i * 10, i as u16, 0, Polarity::On), nbrs);
        }
        let mut ops_sparse = OpCount::new();
        conv.forward(&sparse, &NodeFeatures::from_graph(&sparse), &mut ops_sparse);
        let mut ops_dense = OpCount::new();
        conv.forward(&dense, &NodeFeatures::from_graph(&dense), &mut ops_dense);
        assert!(ops_dense.macs > ops_sparse.macs);
    }
}
