//! Bounded per-session ingress queues with explicit overload policies.
//!
//! A serving runtime cannot buffer an event camera's worst case — a busy
//! sensor emits tens of millions of events per second while a session's
//! classifier may sustain far fewer. The queue makes the overflow decision
//! explicit instead of letting memory grow or latency diverge: every offer
//! either enqueues the event or sheds load, and the caller learns which via
//! [`Admission`].
//!
//! All three policies preserve the relative order of surviving events, so
//! downstream sessions (which require monotonic timestamps) never observe
//! reordering — only gaps. `queue::tests::drop_policies_preserve_order`
//! pins this invariant.

use std::collections::VecDeque;
use std::time::Instant;

use evlab_events::Event;

/// What a full (or rate-limited) queue does with excess events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DropPolicy {
    /// Evict the oldest queued event to admit the newest — bounded staleness:
    /// the queue always holds the freshest window of the stream.
    DropOldest,
    /// Reject the incoming event while the queue is full — bounded effort:
    /// admitted events are never wasted, at the cost of staleness.
    DropNewest,
    /// Token-bucket rate limiting *before* the queue, mirroring
    /// `evlab_events::downsample::EventRateController` (the programmable
    /// readout-side controller of GEPS-class sensors): tokens refill at
    /// `max_rate_eps` in event time, each admitted event spends one, and an
    /// empty bucket sheds the event. Overflow past the rate gate behaves
    /// like [`DropPolicy::DropNewest`].
    ///
    /// **Initial-budget contract:** the bucket starts *full* (`burst`
    /// tokens), so a session admits up to `burst` events immediately. The
    /// first offered event defines the refill epoch — it sees `dt = 0`
    /// and earns no refill, regardless of its absolute timestamp. Time
    /// before the session (a first event at t = 1 hour is not an hour of
    /// banked credit) never refills the bucket.
    RateControl {
        /// Sustained admission rate in events/second (event time).
        max_rate_eps: f64,
        /// Burst capacity in events.
        burst: usize,
    },
}

/// The outcome of offering one event to a [`BoundedQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued without displacing anything.
    Accepted,
    /// Enqueued, evicting the oldest queued event (drop-oldest under
    /// overload).
    Evicted,
    /// Rejected because the queue is full (drop-newest under overload).
    RejectedFull,
    /// Rejected by the rate controller before reaching the queue.
    RejectedRate,
    /// Never reached the queue: the ingress payload was malformed (e.g. an
    /// undecodable AER word) and was quarantined at decode.
    Quarantined,
}

impl Admission {
    /// Whether the offered event made it into the queue.
    pub fn accepted(self) -> bool {
        matches!(self, Admission::Accepted | Admission::Evicted)
    }

    /// Whether an event (offered or queued) was shed by an overload
    /// mechanism. Quarantined ingress is counted separately — nothing
    /// valid was lost to load.
    pub fn shed(self) -> bool {
        matches!(
            self,
            Admission::Evicted | Admission::RejectedFull | Admission::RejectedRate
        )
    }
}

/// A bounded FIFO of `(event, enqueue instant)` pairs with an explicit
/// overload policy. The enqueue instant rides along so the consumer can
/// measure true event-to-decision latency including queueing delay.
#[derive(Debug, Clone)]
pub struct BoundedQueue {
    items: VecDeque<(Event, Instant)>,
    capacity: usize,
    policy: DropPolicy,
    /// Token-bucket state (rate-control policy only), advanced in event
    /// time so admission is deterministic and replayable.
    tokens: f64,
    last_t: Option<u64>,
}

impl BoundedQueue {
    /// Creates a queue holding at most `capacity` events. A zero-capacity
    /// queue is legal and admits nothing: every offer is
    /// [`Admission::RejectedFull`] — useful for draining a session's
    /// ingress without tearing it down.
    ///
    /// # Panics
    ///
    /// Panics if the policy is [`DropPolicy::RateControl`] with a
    /// non-positive rate or zero burst (mirroring
    /// `EventRateController::new`).
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        let tokens = match policy {
            DropPolicy::RateControl { max_rate_eps, burst } => {
                assert!(max_rate_eps > 0.0, "rate must be positive");
                assert!(burst >= 1, "burst must be at least 1");
                burst as f64
            }
            _ => 0.0,
        };
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            policy,
            tokens,
            last_t: None,
        }
    }

    /// Queued event count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum queued events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The overload policy.
    pub fn policy(&self) -> DropPolicy {
        self.policy
    }

    /// Offers one event, stamped with its arrival instant.
    pub fn offer(&mut self, event: Event, now: Instant) -> Admission {
        if self.capacity == 0 {
            return Admission::RejectedFull;
        }
        if let DropPolicy::RateControl { max_rate_eps, burst } = self.policy {
            let t = event.t.as_micros();
            // First event: `last = t` makes dt zero, so the session starts
            // from exactly `burst` tokens — the event's absolute timestamp
            // grants no pre-session refill credit.
            let last = self.last_t.unwrap_or(t);
            let dt_sec = t.saturating_sub(last) as f64 * 1e-6;
            self.tokens = (self.tokens + dt_sec * max_rate_eps).min(burst as f64);
            // Event time going backwards (a faulted or unrepaired stream)
            // must not rewind the refill clock: a later in-order event
            // would double-refill the interval already credited.
            self.last_t = Some(last.max(t));
            if self.tokens < 1.0 {
                return Admission::RejectedRate;
            }
            self.tokens -= 1.0;
        }
        if self.items.len() < self.capacity {
            self.items.push_back((event, now));
            return Admission::Accepted;
        }
        match self.policy {
            DropPolicy::DropOldest => {
                self.items.pop_front();
                self.items.push_back((event, now));
                Admission::Evicted
            }
            DropPolicy::DropNewest | DropPolicy::RateControl { .. } => Admission::RejectedFull,
        }
    }

    /// Takes the oldest queued event.
    pub fn pop(&mut self) -> Option<(Event, Instant)> {
        self.items.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::Polarity;

    fn burst_events(n: usize, dt_us: u64) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(i as u64 * dt_us, (i % 7) as u16, (i % 5) as u16, Polarity::On))
            .collect()
    }

    fn drain(q: &mut BoundedQueue) -> Vec<Event> {
        std::iter::from_fn(|| q.pop().map(|(e, _)| e)).collect()
    }

    /// Surviving events must be an in-order subsequence of the offered
    /// stream under every policy — sessions rely on monotonic timestamps.
    #[test]
    fn drop_policies_preserve_order() {
        let policies = [
            DropPolicy::DropOldest,
            DropPolicy::DropNewest,
            DropPolicy::RateControl { max_rate_eps: 50_000.0, burst: 4 },
        ];
        let input = burst_events(64, 10);
        for policy in policies {
            let mut q = BoundedQueue::new(4, policy);
            let mut shed = 0usize;
            let mut survivors = Vec::new();
            for (i, e) in input.iter().enumerate() {
                if q.offer(*e, Instant::now()).shed() {
                    shed += 1;
                }
                // Consume occasionally so admission happens both against a
                // full queue and a freshly drained one.
                if i.is_multiple_of(13) {
                    survivors.extend(drain(&mut q));
                }
            }
            survivors.extend(drain(&mut q));
            assert!(shed > 0, "{policy:?} never overloaded");
            for w in survivors.windows(2) {
                assert!(w[0].t <= w[1].t, "{policy:?} reordered events");
            }
            // In-order subsequence of the input (match by timestamp, which
            // is unique here).
            let mut it = input.iter();
            for s in &survivors {
                assert!(
                    it.any(|e| e.t == s.t),
                    "{policy:?} emitted an event not in input order"
                );
            }
        }
    }

    #[test]
    fn drop_oldest_keeps_freshest_window() {
        let mut q = BoundedQueue::new(4, DropPolicy::DropOldest);
        for e in burst_events(10, 10) {
            q.offer(e, Instant::now());
        }
        let kept = drain(&mut q);
        let ts: Vec<u64> = kept.iter().map(|e| e.t.as_micros()).collect();
        assert_eq!(ts, vec![60, 70, 80, 90], "queue holds the newest events");
    }

    #[test]
    fn drop_newest_keeps_oldest_window() {
        let mut q = BoundedQueue::new(4, DropPolicy::DropNewest);
        let mut rejected = 0;
        for e in burst_events(10, 10) {
            if q.offer(e, Instant::now()) == Admission::RejectedFull {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 6);
        let ts: Vec<u64> = drain(&mut q).iter().map(|e| e.t.as_micros()).collect();
        assert_eq!(ts, vec![0, 10, 20, 30], "queue holds the oldest events");
    }

    #[test]
    fn zero_capacity_queue_sheds_everything() {
        for policy in [
            DropPolicy::DropOldest,
            DropPolicy::DropNewest,
            DropPolicy::RateControl { max_rate_eps: 1_000.0, burst: 4 },
        ] {
            let mut q = BoundedQueue::new(0, policy);
            for e in burst_events(16, 10) {
                assert_eq!(
                    q.offer(e, Instant::now()),
                    Admission::RejectedFull,
                    "{policy:?} admitted into a zero-capacity queue"
                );
            }
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn rate_control_survives_backwards_event_time() {
        // A faulted stream can deliver event time that runs backwards.
        // The token bucket must neither panic (underflow) nor credit the
        // same interval twice when time recovers.
        let mut q = BoundedQueue::new(1024, DropPolicy::RateControl {
            max_rate_eps: 1_000.0,
            burst: 4,
        });
        // Burn the burst at one instant.
        for _ in 0..4 {
            assert!(q.offer(Event::new(10_000, 0, 0, Polarity::On), Instant::now()).accepted());
        }
        assert_eq!(
            q.offer(Event::new(10_000, 0, 0, Polarity::On), Instant::now()),
            Admission::RejectedRate
        );
        // A backwards jump refills nothing and must not rewind the refill
        // clock...
        assert_eq!(
            q.offer(Event::new(8_000, 0, 0, Polarity::On), Instant::now()),
            Admission::RejectedRate
        );
        // ...so recovering to just past the high-water mark credits only
        // the 1µs of genuinely new time, not the 2ms re-walked since the
        // backwards timestamp.
        assert_eq!(
            q.offer(Event::new(10_001, 0, 0, Polarity::On), Instant::now()),
            Admission::RejectedRate,
            "backwards time must not double-refill the bucket"
        );
    }

    #[test]
    fn rate_control_bucket_starts_full_without_pre_session_credit() {
        // The first event's absolute timestamp must not matter: whether
        // the session starts at t = 0 or an hour in, exactly `burst`
        // events are admitted before the first shed.
        for t0 in [0u64, 3_600_000_000] {
            let mut q = BoundedQueue::new(1024, DropPolicy::RateControl {
                max_rate_eps: 1_000.0,
                burst: 3,
            });
            for i in 0..3 {
                assert!(
                    q.offer(Event::new(t0, 0, 0, Polarity::On), Instant::now()).accepted(),
                    "t0={t0}: initial burst event {i} must be admitted"
                );
            }
            assert_eq!(
                q.offer(Event::new(t0, 0, 0, Polarity::On), Instant::now()),
                Admission::RejectedRate,
                "t0={t0}: bucket holds exactly `burst` tokens at session start"
            );
        }
    }

    #[test]
    fn rate_control_first_event_defines_the_refill_epoch() {
        // After the first event pins the epoch, refill accrues from it at
        // max_rate_eps in event time: 1 kHz means one token per 1000 µs.
        let t0 = 500_000u64;
        let mut q = BoundedQueue::new(1024, DropPolicy::RateControl {
            max_rate_eps: 1_000.0,
            burst: 1,
        });
        assert!(q.offer(Event::new(t0, 0, 0, Polarity::On), Instant::now()).accepted());
        assert_eq!(
            q.offer(Event::new(t0 + 400, 0, 0, Polarity::On), Instant::now()),
            Admission::RejectedRate,
            "400 µs at 1 kHz is well under one token"
        );
        assert!(
            q.offer(Event::new(t0 + 2_000, 0, 0, Polarity::On), Instant::now()).accepted(),
            "two full refill intervals since the epoch earn an (burst-capped) token"
        );
    }

    #[test]
    fn drop_oldest_interleaved_producers_preserve_order() {
        // Two producers interleaving offers into one session queue under
        // sustained overload: evictions happen on both producers' events,
        // and the survivors must still be a time-ordered subsequence.
        let mut q = BoundedQueue::new(3, DropPolicy::DropOldest);
        let a = burst_events(32, 20); // t = 0, 20, 40, ...
        let b: Vec<Event> = (0..32)
            .map(|i| Event::new(i * 20 + 10, 9, 9, Polarity::Off))
            .collect(); // t = 10, 30, 50, ...
        let mut survivors = Vec::new();
        for (ea, eb) in a.iter().zip(&b) {
            q.offer(*ea, Instant::now());
            q.offer(*eb, Instant::now());
            if ea.t.as_micros().is_multiple_of(160) {
                survivors.extend(drain(&mut q));
            }
        }
        survivors.extend(drain(&mut q));
        assert!(!survivors.is_empty());
        for w in survivors.windows(2) {
            assert!(w[0].t <= w[1].t, "interleaved producers reordered events");
        }
    }

    #[test]
    fn rate_control_sheds_by_event_time() {
        // 1 kHz sustained with burst 2, events arriving at 10 kHz: after
        // the burst, roughly one in ten is admitted.
        let mut q = BoundedQueue::new(1024, DropPolicy::RateControl {
            max_rate_eps: 1_000.0,
            burst: 2,
        });
        let mut admitted = 0usize;
        for e in burst_events(1000, 100) {
            if q.offer(e, Instant::now()).accepted() {
                admitted += 1;
            }
        }
        assert!((90..=120).contains(&admitted), "admitted {admitted}");
    }
}
