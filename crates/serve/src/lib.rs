//! Streaming inference runtime for event-camera classifiers.
//!
//! The paper's batch comparison answers *which paradigm is cheaper per
//! sample*; serving asks the harder operational question: what happens
//! when many sensors stream events at a shared compute budget
//! concurrently, and the offered load exceeds it? This crate gives the
//! three paradigms one serving substrate so that question is measurable:
//!
//! * **Sessions** ([`session::Session`]) — each client owns an
//!   AER-decoding ingress (reusing `evlab_events::aer`), a bounded queue,
//!   and an [`evlab_core::online::OnlineClassifier`] with its own cloned
//!   weights. No shared mutable state, no locks on the hot path.
//! * **Backpressure** ([`queue::BoundedQueue`]) — overload is an explicit
//!   policy ([`queue::DropPolicy`]): evict-oldest (bounded staleness),
//!   reject-newest (bounded effort), or token-bucket rate control
//!   mirroring the sensor-side controller in
//!   `evlab_events::downsample::EventRateController`. Every shed event is
//!   counted, never silently lost, and surviving events are never
//!   reordered.
//! * **Fair scheduling** ([`runtime::ServeRuntime`]) — quantum-bounded
//!   round robin across sessions on the `evlab_util::par` worker threads;
//!   a flooding client cannot starve a trickling one.
//! * **Graceful degradation** — ingress can be hardened against faulted
//!   transports: [`Session::ingest_aer`] quarantines undecodable AER
//!   words (`ingest.quarantined`) instead of erroring,
//!   [`ServeConfig::with_reorder_skew`] repairs bounded timestamp
//!   disorder between the queue and the classifier, decisions with
//!   NaN/Inf logits are repaired and counted, and
//!   [`ServeConfig::with_supervisor`] restarts failed sessions with
//!   doubling backoff from their last-good checkpoint.
//! * **Crash consistency** ([`durable::CheckpointManager`]) — durable
//!   session snapshots on a configurable cadence, a checksummed
//!   write-ahead log of every ingested AER word, epoch-keyed rotation,
//!   and deterministic replay recovery: after a crash at *any* byte
//!   offset, the recovered session is bit-identical to the pre-crash one
//!   (pinned by `tests/recovery.rs`).
//! * **Observability** — `serve.session.*`, `serve.queue.*`,
//!   `serve.shed.*`, quarantine/restart counters, plus `ckpt.*` / `wal.*`
//!   durability counters and spans in `evlab_util::obs`
//!   (enable with `EVLAB_OBS=1`).
//!
//! Decisions are deterministic: a session's output is a pure function of
//! its ingress stream and configuration, independent of `EVLAB_THREADS`.
//!
//! # Examples
//!
//! ```no_run
//! use evlab_core::prelude::*;
//! use evlab_datasets::{shapes::shape_silhouettes, DatasetConfig};
//! use evlab_serve::{ServeConfig, ServeRuntime};
//!
//! let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)));
//! let mut pipe = GnnPipeline::new(GnnPipelineConfig::new());
//! pipe.fit(&data);
//!
//! let mut rt = ServeRuntime::new(ServeConfig::new().with_queue_depth(128));
//! let classifier = SessionBuilder::new(OnlineConfig::new(data.resolution))
//!     .gnn(&pipe)
//!     .build()
//!     .unwrap();
//! let session = rt.open_session(classifier, data.resolution).unwrap();
//! for e in data.test[0].stream.iter() {
//!     rt.offer(session, *e);
//! }
//! rt.drain_all();
//! println!("{:?}", rt.session(session).unwrap().last_decision());
//! ```

pub mod durable;
pub mod queue;
pub mod runtime;
pub mod session;

pub use durable::{CheckpointManager, DurableConfig, RecoveryReport};
pub use queue::{Admission, BoundedQueue, DropPolicy};
pub use runtime::{ServeConfig, ServeRuntime, SupervisorPolicy};
pub use session::{Session, SessionId, SessionStats};
