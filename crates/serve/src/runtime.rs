//! The serving runtime: many sessions, one fair scheduler.
//!
//! [`ServeRuntime`] multiplexes concurrent [`Session`]s over the worker
//! threads of `evlab_util::par`. Scheduling is quantum-bounded round
//! robin: every [`ServeRuntime::tick`] lets each active session consume at
//! most [`ServeConfig::quantum`] queued events, so a flooding client can
//! never starve a trickling one — its excess waits in its own bounded
//! queue (and is shed there under overload, never in a shared buffer).
//!
//! Determinism: sessions own their classifiers and queues outright, each
//! is drained by exactly one worker per tick, and the quantum is fixed —
//! so the decision sequence of every session is a pure function of its
//! ingress, independent of `EVLAB_THREADS` (pinned by
//! `tests/par_equivalence.rs`).

use evlab_core::online::{Decision, OnlineClassifier};
use evlab_events::Event;
use evlab_util::{par, EvlabError};

use crate::queue::{Admission, DropPolicy};
use crate::session::{Session, SessionId};

/// Runtime-wide serving parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Per-session ingress queue capacity in events.
    pub queue_depth: usize,
    /// Overload policy applied by every session's queue.
    pub policy: DropPolicy,
    /// Maximum events one session may consume per [`ServeRuntime::tick`].
    pub quantum: usize,
}

impl ServeConfig {
    /// Default: 256-event queues, drop-oldest, 64-event quantum.
    pub fn new() -> Self {
        ServeConfig {
            queue_depth: 256,
            policy: DropPolicy::DropOldest,
            quantum: 64,
        }
    }

    /// Returns a copy with a different queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns a copy with a different drop policy.
    pub fn with_policy(mut self, policy: DropPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different scheduling quantum.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// Multiplexes concurrent streaming-classification sessions.
pub struct ServeRuntime {
    config: ServeConfig,
    sessions: Vec<Session>,
}

impl ServeRuntime {
    /// Creates an empty runtime.
    pub fn new(config: ServeConfig) -> Self {
        ServeRuntime {
            config,
            sessions: Vec::new(),
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Opens a session serving `classifier` for streams of `resolution`,
    /// returning its id.
    ///
    /// # Errors
    ///
    /// Returns an error if the resolution cannot be AER-encoded.
    pub fn open_session(
        &mut self,
        classifier: Box<dyn OnlineClassifier + Send>,
        resolution: (u16, u16),
    ) -> Result<SessionId, EvlabError> {
        let id = self.sessions.len();
        self.sessions.push(Session::open(
            id,
            classifier,
            resolution,
            self.config.queue_depth,
            self.config.policy,
        )?);
        Ok(id)
    }

    /// All sessions, active and closed.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Looks up a session by id.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(id)
    }

    /// Offers one decoded event to a session's ingress queue.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn offer(&mut self, id: SessionId, event: Event) -> Admission {
        self.sessions[id].offer(event)
    }

    /// Offers one AER word to a session's ingress queue.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown session or an undecodable word.
    pub fn offer_aer(&mut self, id: SessionId, word: u64) -> Result<Admission, EvlabError> {
        self.sessions
            .get_mut(id)
            .ok_or_else(|| EvlabError::serve(format!("unknown session {id}")))?
            .offer_aer(word)
    }

    /// Total events queued across all sessions.
    pub fn pending(&self) -> usize {
        self.sessions.iter().map(Session::queue_len).sum()
    }

    /// Runs one scheduling round: every active session consumes up to
    /// `quantum` queued events, sessions distributed across the worker
    /// threads of `evlab_util::par`. Returns total events processed.
    pub fn tick(&mut self) -> usize {
        let quantum = self.config.quantum;
        let before: u64 = self.sessions.iter().map(|s| s.stats().processed).sum();
        par::for_each_task(&mut self.sessions, |_, session| {
            session.drain(quantum);
        });
        let after: u64 = self.sessions.iter().map(|s| s.stats().processed).sum();
        (after - before) as usize
    }

    /// Ticks until all queues are empty (or nothing makes progress —
    /// failed sessions retain their queued events). Returns total events
    /// processed.
    pub fn drain_all(&mut self) -> usize {
        let mut total = 0;
        while self.pending() > 0 {
            let done = self.tick();
            total += done;
            if done == 0 {
                break;
            }
        }
        total
    }

    /// Flushes every active session, forcing decisions from accumulated
    /// state. Returns `(id, decision)` for each session that produced one.
    ///
    /// # Errors
    ///
    /// Returns the first flush error; remaining sessions are not flushed.
    pub fn flush_all(&mut self) -> Result<Vec<(SessionId, Decision)>, EvlabError> {
        let mut decisions = Vec::new();
        for session in &mut self.sessions {
            if let Some(d) = session.flush()? {
                decisions.push((session.id(), d));
            }
        }
        Ok(decisions)
    }

    /// Closes a session; its statistics and history stay readable.
    pub fn close_session(&mut self, id: SessionId) {
        if let Some(s) = self.sessions.get_mut(id) {
            s.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::{Event, Polarity};
    use evlab_tensor::OpCount;
    use evlab_util::obs;

    /// A deterministic stand-in classifier: one decision every `every`
    /// events, class = events seen so far modulo `classes`.
    struct Modulo {
        classes: usize,
        every: usize,
        seen: usize,
        pending: Option<Decision>,
        last_t: u64,
    }

    impl Modulo {
        fn boxed(classes: usize, every: usize) -> Box<dyn OnlineClassifier + Send> {
            Box::new(Modulo {
                classes,
                every,
                seen: 0,
                pending: None,
                last_t: 0,
            })
        }
    }

    impl OnlineClassifier for Modulo {
        fn name(&self) -> &'static str {
            "modulo"
        }

        fn begin_session(&mut self) {
            self.seen = 0;
            self.pending = None;
            self.last_t = 0;
        }

        fn push_event(&mut self, event: Event, ops: &mut OpCount) -> Result<(), EvlabError> {
            let t = event.t.as_micros();
            if t < self.last_t {
                return Err(EvlabError::serve("out-of-order"));
            }
            self.last_t = t;
            self.seen += 1;
            ops.record_add(1);
            if self.seen.is_multiple_of(self.every) {
                self.pending = Some(Decision {
                    class: self.seen % self.classes,
                    logits: Vec::new(),
                    events: self.every,
                    t_us: t,
                });
            }
            Ok(())
        }

        fn poll_decision(&mut self) -> Option<Decision> {
            self.pending.take()
        }

        fn flush(&mut self, _ops: &mut OpCount) -> Result<Option<Decision>, EvlabError> {
            Ok(Some(Decision {
                class: self.seen % self.classes,
                logits: Vec::new(),
                events: self.seen % self.every,
                t_us: self.last_t,
            }))
        }
    }

    fn events(n: usize, dt_us: u64) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(i as u64 * dt_us, (i % 16) as u16, (i % 16) as u16, Polarity::On))
            .collect()
    }

    #[test]
    fn quantum_round_robin_is_fair() {
        let config = ServeConfig::new().with_queue_depth(4096).with_quantum(16);
        let mut rt = ServeRuntime::new(config);
        let flood = rt.open_session(Modulo::boxed(4, 8), (16, 16)).unwrap();
        let trickle = rt.open_session(Modulo::boxed(4, 8), (16, 16)).unwrap();
        for e in events(1000, 10) {
            rt.offer(flood, e);
        }
        for e in events(10, 10) {
            rt.offer(trickle, e);
        }
        let done = rt.tick();
        // The flood session is capped at one quantum; the trickle session
        // clears entirely in the same round despite the flood.
        assert_eq!(rt.session(flood).unwrap().stats().processed, 16);
        assert_eq!(rt.session(trickle).unwrap().stats().processed, 10);
        assert_eq!(done, 26);
    }

    #[test]
    fn overload_sheds_without_losing_order() {
        obs::set_enabled(true);
        let shed_before = obs::counter_value("serve.shed.oldest");
        let config = ServeConfig::new().with_queue_depth(32).with_quantum(8);
        let mut rt = ServeRuntime::new(config);
        let id = rt.open_session(Modulo::boxed(4, 1), (16, 16)).unwrap();
        // 4x queue depth with no intervening ticks: forced overload.
        for e in events(128, 10) {
            rt.offer(id, e);
        }
        rt.drain_all();
        let s = rt.session(id).unwrap();
        assert_eq!(s.stats().shed_oldest, 96);
        assert_eq!(s.stats().processed, 32);
        // Decision timestamps stay monotonic: surviving events in order.
        for w in s.history().windows(2) {
            assert!(w[0].0 <= w[1].0, "decisions out of order");
        }
        assert!(obs::counter_value("serve.shed.oldest") >= shed_before + 96);
        obs::set_enabled(false);
    }

    #[test]
    fn aer_ingress_feeds_sessions() {
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = rt.open_session(Modulo::boxed(4, 1), (32, 24)).unwrap();
        let event = Event::new(1_234, 17, 9, Polarity::Off);
        let word = rt.session(id).unwrap().codec().encode(&event);
        assert!(rt.offer_aer(id, word).unwrap().accepted());
        rt.tick();
        let s = rt.session(id).unwrap();
        assert_eq!(s.stats().processed, 1);
        assert_eq!(s.last_decision().unwrap().t_us, 1_234);
    }

    #[test]
    fn failed_sessions_stop_but_keep_stats() {
        let mut rt = ServeRuntime::new(ServeConfig::new().with_quantum(4));
        let id = rt.open_session(Modulo::boxed(4, 1), (16, 16)).unwrap();
        // Two ingress bursts with a timestamp regression between them: the
        // session must fail cleanly partway, not panic.
        rt.offer(id, Event::new(1_000, 0, 0, Polarity::On));
        rt.offer(id, Event::new(500, 0, 0, Polarity::On));
        rt.tick();
        let s = rt.session(id).unwrap();
        assert!(s.error().is_some());
        assert!(!s.is_active());
        assert_eq!(s.stats().processed, 1);
        // A failed session rejects further ingress and processes nothing.
        assert_eq!(rt.offer(id, Event::new(2_000, 0, 0, Polarity::On)), Admission::RejectedFull);
        assert_eq!(rt.tick(), 0);
    }

    #[test]
    fn flush_forces_partial_decisions() {
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = rt.open_session(Modulo::boxed(4, 100), (16, 16)).unwrap();
        for e in events(5, 10) {
            rt.offer(id, e);
        }
        rt.drain_all();
        assert!(rt.session(id).unwrap().last_decision().is_none());
        let flushed = rt.flush_all().unwrap();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].1.events, 5);
    }
}
