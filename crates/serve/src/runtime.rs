//! The serving runtime: many sessions, one fair scheduler.
//!
//! [`ServeRuntime`] multiplexes concurrent [`Session`]s over the worker
//! threads of `evlab_util::par`. Scheduling is quantum-bounded round
//! robin: every [`ServeRuntime::tick`] lets each active session consume at
//! most [`ServeConfig::quantum`] queued events, so a flooding client can
//! never starve a trickling one — its excess waits in its own bounded
//! queue (and is shed there under overload, never in a shared buffer).
//!
//! Determinism: sessions own their classifiers and queues outright, each
//! is drained by exactly one worker per tick, and the quantum is fixed —
//! so the decision sequence of every session is a pure function of its
//! ingress, independent of `EVLAB_THREADS` (pinned by
//! `tests/par_equivalence.rs`).

use evlab_core::online::{Decision, OnlineClassifier};
use evlab_events::Event;
use evlab_util::{par, EvlabError};

use crate::queue::{Admission, DropPolicy};
use crate::session::{Session, SessionId};

/// Restart policy for failed sessions (retry with doubling backoff).
///
/// When configured on a [`ServeConfig`], the runtime supervises failed
/// sessions each [`ServeRuntime::tick`]: after `backoff_ticks` ticks
/// (doubling with every restart), the session's classifier begins a fresh
/// session while history, statistics and the last decision survive as the
/// last-good checkpoint, and queued events resume draining. After
/// `max_restarts` failures the session stays failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Restarts allowed per session before it stays failed.
    pub max_restarts: u32,
    /// Ticks to wait before the first restart; doubles with each restart.
    pub backoff_ticks: u32,
}

impl SupervisorPolicy {
    /// Default: up to 3 restarts, first after 1 tick.
    pub fn new() -> Self {
        SupervisorPolicy {
            max_restarts: 3,
            backoff_ticks: 1,
        }
    }

    /// Returns a copy with a different restart budget.
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Returns a copy with a different initial backoff.
    pub fn with_backoff_ticks(mut self, backoff_ticks: u32) -> Self {
        self.backoff_ticks = backoff_ticks;
        self
    }
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy::new()
    }
}

/// Runtime-wide serving parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Per-session ingress queue capacity in events.
    pub queue_depth: usize,
    /// Overload policy applied by every session's queue.
    pub policy: DropPolicy,
    /// Maximum events one session may consume per [`ServeRuntime::tick`].
    pub quantum: usize,
    /// Bounded-skew ingress repair: `Some(skew_us)` inserts a reorder
    /// buffer between each session's queue and classifier, so timestamp
    /// disorder up to `skew_us` degrades (late events quarantined) instead
    /// of failing the session. `None` (default) keeps strict-order
    /// ingress: an out-of-order event fails the session.
    pub reorder_skew_us: Option<u64>,
    /// Failed-session restart policy; `None` (default) leaves failed
    /// sessions failed.
    pub supervisor: Option<SupervisorPolicy>,
}

impl ServeConfig {
    /// Default: 256-event queues, drop-oldest, 64-event quantum, strict
    /// ingress order, no supervisor.
    pub fn new() -> Self {
        ServeConfig {
            queue_depth: 256,
            policy: DropPolicy::DropOldest,
            quantum: 64,
            reorder_skew_us: None,
            supervisor: None,
        }
    }

    /// Returns a copy with a different queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns a copy with a different drop policy.
    pub fn with_policy(mut self, policy: DropPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different scheduling quantum.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum;
        self
    }

    /// Returns a copy with bounded-skew ingress reordering enabled.
    pub fn with_reorder_skew(mut self, skew_us: u64) -> Self {
        self.reorder_skew_us = Some(skew_us);
        self
    }

    /// Returns a copy with failed-session supervision enabled.
    pub fn with_supervisor(mut self, policy: SupervisorPolicy) -> Self {
        self.supervisor = Some(policy);
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// Multiplexes concurrent streaming-classification sessions.
pub struct ServeRuntime {
    config: ServeConfig,
    sessions: Vec<Session>,
}

impl ServeRuntime {
    /// Creates an empty runtime.
    pub fn new(config: ServeConfig) -> Self {
        ServeRuntime {
            config,
            sessions: Vec::new(),
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Opens a session serving `classifier` for streams of `resolution`,
    /// returning its id.
    ///
    /// # Errors
    ///
    /// Returns an error if the resolution cannot be AER-encoded.
    pub fn open_session(
        &mut self,
        classifier: Box<dyn OnlineClassifier + Send>,
        resolution: (u16, u16),
    ) -> Result<SessionId, EvlabError> {
        let id = self.sessions.len();
        let mut session = Session::open(
            id,
            classifier,
            resolution,
            self.config.queue_depth,
            self.config.policy,
        )?;
        if let Some(skew_us) = self.config.reorder_skew_us {
            session = session.with_reorder_skew(skew_us);
        }
        self.sessions.push(session);
        Ok(id)
    }

    /// All sessions, active and closed.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Looks up a session by id.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(id)
    }

    /// Mutable session lookup for the durability layer.
    pub(crate) fn session_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        self.sessions.get_mut(id)
    }

    /// Offers one decoded event to a session's ingress queue.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn offer(&mut self, id: SessionId, event: Event) -> Admission {
        self.sessions[id].offer(event)
    }

    /// Offers one AER word to a session's ingress queue.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown session or an undecodable word.
    pub fn offer_aer(&mut self, id: SessionId, word: u64) -> Result<Admission, EvlabError> {
        self.sessions
            .get_mut(id)
            .ok_or_else(|| EvlabError::serve(format!("unknown session {id}")))?
            .offer_aer(word)
    }

    /// Offers one AER word to a session, quarantining malformed words
    /// instead of erroring (see [`Session::ingest_aer`]). Unknown sessions
    /// report [`Admission::RejectedFull`].
    pub fn ingest_aer(&mut self, id: SessionId, word: u64) -> Admission {
        self.sessions
            .get_mut(id)
            .map_or(Admission::RejectedFull, |s| s.ingest_aer(word))
    }

    /// Total events queued across all sessions.
    pub fn pending(&self) -> usize {
        self.sessions.iter().map(Session::queue_len).sum()
    }

    /// Runs one scheduling round: every active session consumes up to
    /// `quantum` queued events, sessions distributed across the worker
    /// threads of `evlab_util::par`. Returns total events processed.
    pub fn tick(&mut self) -> usize {
        let quantum = self.config.quantum;
        let before: u64 = self.sessions.iter().map(|s| s.stats().processed).sum();
        par::for_each_task(&mut self.sessions, |_, session| {
            session.drain(quantum);
        });
        // Supervision is sequential and after the drain: restart decisions
        // depend only on per-session state and the tick count, never on
        // worker scheduling, so recovery is deterministic.
        if let Some(policy) = self.config.supervisor {
            for session in &mut self.sessions {
                session.supervise(policy);
            }
        }
        let after: u64 = self.sessions.iter().map(|s| s.stats().processed).sum();
        (after - before) as usize
    }

    /// Ticks until all queues are empty (or nothing makes progress —
    /// failed sessions retain their queued events). Returns total events
    /// processed. With a supervisor configured, idle ticks while a restart
    /// backoff counts down do not end the drain.
    pub fn drain_all(&mut self) -> usize {
        let mut total = 0;
        while self.pending() > 0 {
            let done = self.tick();
            total += done;
            if done == 0 {
                // A tick can make progress without processing events: a
                // restart backoff counted down, or a session restarted
                // after this tick's drain and will consume its queue next
                // tick. Both are bounded, so this cannot spin forever.
                let recovering = self.sessions.iter().any(Session::restart_pending);
                let restarted = self.config.quantum > 0
                    && self
                        .sessions
                        .iter()
                        .any(|s| s.is_active() && s.queue_len() > 0);
                if !recovering && !restarted {
                    break;
                }
            }
        }
        total
    }

    /// Flushes every active session, forcing decisions from accumulated
    /// state. Returns `(id, decision)` for each session that produced one.
    ///
    /// # Errors
    ///
    /// Returns the first flush error; remaining sessions are not flushed.
    pub fn flush_all(&mut self) -> Result<Vec<(SessionId, Decision)>, EvlabError> {
        let mut decisions = Vec::new();
        for session in &mut self.sessions {
            if let Some(d) = session.flush()? {
                decisions.push((session.id(), d));
            }
        }
        Ok(decisions)
    }

    /// Flushes one session, forcing a decision from its accumulated
    /// state. Unlike [`ServeRuntime::flush_all`], a failure here affects
    /// only this session — chaos sweeps flush per session so one poisoned
    /// classifier cannot abort the cell (the session keeps its last-good
    /// decision as the reported outcome).
    ///
    /// # Errors
    ///
    /// Returns the classifier's flush error; the session is marked failed.
    pub fn flush_session(&mut self, id: SessionId) -> Result<Option<Decision>, EvlabError> {
        match self.sessions.get_mut(id) {
            Some(session) => session.flush(),
            None => Ok(None),
        }
    }

    /// Closes a session; its statistics and history stay readable.
    pub fn close_session(&mut self, id: SessionId) {
        if let Some(s) = self.sessions.get_mut(id) {
            s.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::{Event, Polarity};
    use evlab_tensor::OpCount;
    use evlab_util::obs;

    /// A deterministic stand-in classifier: one decision every `every`
    /// events, class = events seen so far modulo `classes`.
    struct Modulo {
        classes: usize,
        every: usize,
        seen: usize,
        pending: Option<Decision>,
        last_t: u64,
    }

    impl Modulo {
        fn boxed(classes: usize, every: usize) -> Box<dyn OnlineClassifier + Send> {
            Box::new(Modulo {
                classes,
                every,
                seen: 0,
                pending: None,
                last_t: 0,
            })
        }
    }

    impl OnlineClassifier for Modulo {
        fn name(&self) -> &'static str {
            "modulo"
        }

        fn begin_session(&mut self) {
            self.seen = 0;
            self.pending = None;
            self.last_t = 0;
        }

        fn push_event(&mut self, event: Event, ops: &mut OpCount) -> Result<(), EvlabError> {
            let t = event.t.as_micros();
            if t < self.last_t {
                return Err(EvlabError::serve("out-of-order"));
            }
            self.last_t = t;
            self.seen += 1;
            ops.record_add(1);
            if self.seen.is_multiple_of(self.every) {
                self.pending = Some(Decision {
                    class: self.seen % self.classes,
                    logits: Vec::new(),
                    events: self.every,
                    t_us: t,
                });
            }
            Ok(())
        }

        fn poll_decision(&mut self) -> Option<Decision> {
            self.pending.take()
        }

        fn flush(&mut self, _ops: &mut OpCount) -> Result<Option<Decision>, EvlabError> {
            Ok(Some(Decision {
                class: self.seen % self.classes,
                logits: Vec::new(),
                events: self.seen % self.every,
                t_us: self.last_t,
            }))
        }
    }

    fn events(n: usize, dt_us: u64) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(i as u64 * dt_us, (i % 16) as u16, (i % 16) as u16, Polarity::On))
            .collect()
    }

    #[test]
    fn quantum_round_robin_is_fair() {
        let config = ServeConfig::new().with_queue_depth(4096).with_quantum(16);
        let mut rt = ServeRuntime::new(config);
        let flood = rt.open_session(Modulo::boxed(4, 8), (16, 16)).unwrap();
        let trickle = rt.open_session(Modulo::boxed(4, 8), (16, 16)).unwrap();
        for e in events(1000, 10) {
            rt.offer(flood, e);
        }
        for e in events(10, 10) {
            rt.offer(trickle, e);
        }
        let done = rt.tick();
        // The flood session is capped at one quantum; the trickle session
        // clears entirely in the same round despite the flood.
        assert_eq!(rt.session(flood).unwrap().stats().processed, 16);
        assert_eq!(rt.session(trickle).unwrap().stats().processed, 10);
        assert_eq!(done, 26);
    }

    #[test]
    fn overload_sheds_without_losing_order() {
        obs::set_enabled(true);
        let shed_before = obs::counter_value("serve.shed.oldest");
        let config = ServeConfig::new().with_queue_depth(32).with_quantum(8);
        let mut rt = ServeRuntime::new(config);
        let id = rt.open_session(Modulo::boxed(4, 1), (16, 16)).unwrap();
        // 4x queue depth with no intervening ticks: forced overload.
        for e in events(128, 10) {
            rt.offer(id, e);
        }
        rt.drain_all();
        let s = rt.session(id).unwrap();
        assert_eq!(s.stats().shed_oldest, 96);
        assert_eq!(s.stats().processed, 32);
        // Decision timestamps stay monotonic: surviving events in order.
        for w in s.history().windows(2) {
            assert!(w[0].0 <= w[1].0, "decisions out of order");
        }
        assert!(obs::counter_value("serve.shed.oldest") >= shed_before + 96);
        obs::set_enabled(false);
    }

    #[test]
    fn aer_ingress_feeds_sessions() {
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = rt.open_session(Modulo::boxed(4, 1), (32, 24)).unwrap();
        let event = Event::new(1_234, 17, 9, Polarity::Off);
        let word = rt.session(id).unwrap().codec().encode(&event);
        assert!(rt.offer_aer(id, word).unwrap().accepted());
        rt.tick();
        let s = rt.session(id).unwrap();
        assert_eq!(s.stats().processed, 1);
        assert_eq!(s.last_decision().unwrap().t_us, 1_234);
    }

    #[test]
    fn failed_sessions_stop_but_keep_stats() {
        let mut rt = ServeRuntime::new(ServeConfig::new().with_quantum(4));
        let id = rt.open_session(Modulo::boxed(4, 1), (16, 16)).unwrap();
        // Two ingress bursts with a timestamp regression between them: the
        // session must fail cleanly partway, not panic.
        rt.offer(id, Event::new(1_000, 0, 0, Polarity::On));
        rt.offer(id, Event::new(500, 0, 0, Polarity::On));
        rt.tick();
        let s = rt.session(id).unwrap();
        assert!(s.error().is_some());
        assert!(!s.is_active());
        assert_eq!(s.stats().processed, 1);
        // A failed session rejects further ingress and processes nothing.
        assert_eq!(rt.offer(id, Event::new(2_000, 0, 0, Polarity::On)), Admission::RejectedFull);
        assert_eq!(rt.tick(), 0);
    }

    #[test]
    fn reorder_skew_salvages_disordered_ingress() {
        // The same regression that fails a strict session (see
        // `failed_sessions_stop_but_keep_stats`) is repaired when the
        // config tolerates the skew.
        let mut rt = ServeRuntime::new(ServeConfig::new().with_reorder_skew(1_000));
        let id = rt.open_session(Modulo::boxed(4, 1), (16, 16)).unwrap();
        rt.offer(id, Event::new(1_000, 0, 0, Polarity::On));
        rt.offer(id, Event::new(500, 0, 0, Polarity::On));
        rt.offer(id, Event::new(1_500, 0, 0, Polarity::On));
        rt.drain_all();
        rt.flush_all().unwrap();
        let s = rt.session(id).unwrap();
        assert!(s.error().is_none(), "skew-bounded disorder must not fail the session");
        assert!(s.is_active());
        assert_eq!(s.stats().late_dropped, 0);
        for w in s.history().windows(2) {
            assert!(w[0].0 <= w[1].0, "decisions out of order");
        }
        assert!(s.history().iter().any(|&(t, _)| t == 500), "repaired event was served");
    }

    #[test]
    fn reorder_quarantines_hopelessly_late_events() {
        let mut rt = ServeRuntime::new(ServeConfig::new().with_reorder_skew(10));
        let id = rt.open_session(Modulo::boxed(4, 1), (16, 16)).unwrap();
        rt.offer(id, Event::new(1_000, 0, 0, Polarity::On));
        rt.offer(id, Event::new(5_000, 0, 0, Polarity::On)); // releases 1_000
        rt.drain_all();
        rt.offer(id, Event::new(100, 0, 0, Polarity::On)); // beyond repair
        rt.drain_all();
        let s = rt.session(id).unwrap();
        assert!(s.is_active());
        assert_eq!(s.stats().late_dropped, 1);
    }

    #[test]
    fn supervisor_restarts_failed_sessions_from_checkpoint() {
        let policy = SupervisorPolicy::new().with_max_restarts(2).with_backoff_ticks(1);
        let mut rt = ServeRuntime::new(
            ServeConfig::new().with_quantum(4).with_supervisor(policy),
        );
        let id = rt.open_session(Modulo::boxed(4, 1), (16, 16)).unwrap();
        rt.offer(id, Event::new(1_000, 0, 0, Polarity::On));
        rt.offer(id, Event::new(500, 0, 0, Polarity::On)); // fails the session
        rt.offer(id, Event::new(2_000, 0, 0, Polarity::On));
        // drain_all keeps ticking through the backoff and the restarted
        // session serves the queued tail.
        rt.drain_all();
        let s = rt.session(id).unwrap();
        assert!(s.error().is_none(), "supervisor cleared the failure");
        assert_eq!(s.restarts(), 1);
        assert_eq!(s.stats().restarts, 1);
        // The pre-failure decision survives as the checkpoint and the
        // post-restart decision extends the same history.
        let ts: Vec<u64> = s.history().iter().map(|&(t, _)| t).collect();
        assert_eq!(ts, vec![1_000, 2_000]);
    }

    #[test]
    fn supervisor_restart_budget_is_finite() {
        let policy = SupervisorPolicy::new().with_max_restarts(1).with_backoff_ticks(0);
        let mut rt = ServeRuntime::new(
            ServeConfig::new().with_quantum(4).with_supervisor(policy),
        );
        let id = rt.open_session(Modulo::boxed(4, 1), (16, 16)).unwrap();
        // Two regressions: the first failure is restarted, the second
        // exhausts the budget and the session stays failed.
        for t in [1_000u64, 500, 2_000, 1_500] {
            rt.offer(id, Event::new(t, 0, 0, Polarity::On));
        }
        rt.drain_all();
        let s = rt.session(id).unwrap();
        assert_eq!(s.restarts(), 1);
        assert!(s.error().is_some(), "budget exhausted: session stays failed");
        assert!(!s.is_active());
    }

    #[test]
    fn ingest_aer_quarantines_malformed_words() {
        obs::set_enabled(true);
        let before = obs::counter_value("ingest.quarantined");
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = rt.open_session(Modulo::boxed(4, 1), (32, 24)).unwrap();
        let good = rt
            .session(id)
            .unwrap()
            .codec()
            .encode(&Event::new(10, 1, 1, Polarity::On));
        assert!(rt.ingest_aer(id, good).accepted());
        // An x address far outside 32x24 cannot decode.
        let bad = rt
            .session(id)
            .unwrap()
            .codec()
            .encode(&Event::new(20, 1, 1, Polarity::On))
            | 0xFFFF << 1;
        assert_eq!(rt.ingest_aer(id, bad), Admission::Quarantined);
        rt.drain_all();
        let s = rt.session(id).unwrap();
        assert!(s.is_active(), "quarantine must not fail the session");
        assert_eq!(s.stats().quarantined, 1);
        assert_eq!(s.stats().processed, 1);
        assert_eq!(obs::counter_value("ingest.quarantined"), before + 1);
        obs::set_enabled(false);
    }

    #[test]
    fn nonfinite_decisions_are_repaired_and_counted() {
        /// Emits NaN-poisoned logits on every decision.
        struct Poisoned;
        impl OnlineClassifier for Poisoned {
            fn name(&self) -> &'static str {
                "poisoned"
            }
            fn begin_session(&mut self) {}
            fn push_event(&mut self, _: Event, ops: &mut OpCount) -> Result<(), EvlabError> {
                ops.record_add(1);
                Ok(())
            }
            fn poll_decision(&mut self) -> Option<Decision> {
                Some(Decision {
                    class: 0,
                    logits: vec![f32::NAN, 1.0],
                    events: 1,
                    t_us: 0,
                })
            }
            fn flush(&mut self, _: &mut OpCount) -> Result<Option<Decision>, EvlabError> {
                Ok(None)
            }
        }
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = rt.open_session(Box::new(Poisoned), (16, 16)).unwrap();
        rt.offer(id, Event::new(10, 0, 0, Polarity::On));
        rt.drain_all();
        let s = rt.session(id).unwrap();
        assert_eq!(s.stats().nonfinite_decisions, 1);
        let d = s.last_decision().unwrap();
        assert_eq!(d.class, 1, "class recomputed from repaired logits");
        assert!(d.logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn flush_forces_partial_decisions() {
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = rt.open_session(Modulo::boxed(4, 100), (16, 16)).unwrap();
        for e in events(5, 10) {
            rt.offer(id, e);
        }
        rt.drain_all();
        assert!(rt.session(id).unwrap().last_decision().is_none());
        let flushed = rt.flush_all().unwrap();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].1.events, 5);
    }
}
