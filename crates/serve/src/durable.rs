//! Crash-consistent checkpointing: durable snapshots + an event WAL.
//!
//! A served session is long-lived state built from a stream that cannot
//! be replayed from the sensor — once the process dies, everything since
//! the last decision is gone unless serving made it durable. This module
//! gives [`crate::ServeRuntime`] the classic database recipe, adapted to
//! event streams:
//!
//! * **Snapshots** — the whole [`Session`] (classifier state, reorder
//!   buffer, statistics, history) serializes through
//!   [`evlab_util::frame::StateSnapshot`] into a CRC-framed container,
//!   written atomically (temp + rename). A torn snapshot is detected and
//!   skipped as a unit, never half-loaded.
//! * **Write-ahead log** — every ingested AER word is appended to a
//!   per-session log of checksummed, length-prefixed records *before* it
//!   reaches the runtime. A crash mid-append leaves a torn tail that
//!   [`evlab_util::frame::RecordCursor`] detects; the clean prefix
//!   replays exactly.
//! * **Epoch rotation** — each snapshot starts a new WAL epoch
//!   (`ckpt.{epoch}.bin` + `wal.{epoch}.log`). The two newest epochs are
//!   retained, so recovery can fall back one full epoch when the newest
//!   snapshot is unreadable; older artifacts are deleted at rotation.
//!
//! **Recovery** ([`CheckpointManager::recover`]) loads the newest valid
//! snapshot, then replays the WAL tail in order through the same ingress
//! path live traffic used. Because session decisions are a pure function
//! of the admitted event sequence (see `crate::runtime` on determinism),
//! the recovered session is **bit-identical** to the pre-crash session —
//! same logits, same history, same op counts — pinned by
//! `tests/recovery.rs` at every possible crash offset.
//!
//! **Shedding caveat.** The WAL records *offered* words; queue admission
//! is re-decided during replay. That reproduces the original outcome
//! exactly when draining is deterministic, which the manager guarantees
//! by ticking the runtime on the fixed cadence
//! [`DurableConfig::drain_every`] (counted in ingested words, a cadence
//! that replay reproduces from the durable word count). Keep
//! `drain_every × sessions ≤ queue_depth` and no event is ever shed.
//!
//! Observability (enable with `EVLAB_OBS=1`): `ckpt.snapshots`,
//! `ckpt.bytes`, `ckpt.load_ok`, `ckpt.load_corrupt`, `wal.appends`,
//! `wal.bytes`, `wal.rotations`, `wal.replayed`, `wal.torn_tails`
//! counters plus `ckpt.write` / `wal.replay` spans.
//!
//! # Examples
//!
//! ```no_run
//! use evlab_core::prelude::*;
//! use evlab_datasets::{shapes::shape_silhouettes, DatasetConfig};
//! use evlab_serve::{CheckpointManager, DurableConfig, ServeConfig, ServeRuntime};
//!
//! let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)));
//! let mut pipe = GnnPipeline::new(GnnPipelineConfig::new());
//! pipe.fit(&data);
//! let open = |rt: &mut ServeRuntime| {
//!     let clf = SessionBuilder::new(OnlineConfig::new(data.resolution))
//!         .gnn(&pipe).build().unwrap();
//!     rt.open_session(clf, data.resolution).unwrap()
//! };
//!
//! let mut rt = ServeRuntime::new(ServeConfig::new());
//! let id = open(&mut rt);
//! let mut cm = CheckpointManager::new(DurableConfig::new("ckpt-root")).unwrap();
//! cm.attach(&rt, id).unwrap();
//! let codec = *rt.session(id).unwrap().codec();
//! for e in data.test[0].stream.iter() {
//!     cm.ingest(&mut rt, id, codec.encode(e)).unwrap();
//! }
//! // ... the process crashes here; on restart, rebuild and recover:
//! let mut rt2 = ServeRuntime::new(ServeConfig::new());
//! let id2 = open(&mut rt2);
//! let mut cm2 = CheckpointManager::new(DurableConfig::new("ckpt-root")).unwrap();
//! let report = cm2.recover(&mut rt2, id2).unwrap();
//! println!("replayed {} words", report.words_replayed);
//! ```

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use evlab_util::frame::{
    self, snapshot_to_bytes, write_atomic_bytes, RecordCursor, RecordError,
};
use evlab_util::{obs, EvlabError};

use crate::runtime::ServeRuntime;
use crate::session::SessionId;

/// Durability parameters for a [`CheckpointManager`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableConfig {
    /// Directory holding all per-session checkpoint state.
    pub root: PathBuf,
    /// Take a durable snapshot every this many ingested words per session
    /// (`0` disables automatic cadence; call
    /// [`CheckpointManager::checkpoint`] manually).
    pub cadence_words: u64,
    /// Tick the runtime every this many ingested words per session. The
    /// fixed cadence is what makes queue admission — and therefore
    /// recovery — deterministic; it must not exceed the queue depth or
    /// overload sheds differently across replays.
    pub drain_every: u64,
}

impl DurableConfig {
    /// Durability rooted at `root` with a 64-word snapshot cadence and an
    /// 8-word drain cadence.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DurableConfig {
            root: root.into(),
            cadence_words: 64,
            drain_every: 8,
        }
    }

    /// Returns a copy with a different snapshot cadence.
    pub fn with_cadence_words(mut self, cadence_words: u64) -> Self {
        self.cadence_words = cadence_words;
        self
    }

    /// Returns a copy with a different drain cadence.
    pub fn with_drain_every(mut self, drain_every: u64) -> Self {
        self.drain_every = drain_every.max(1);
        self
    }
}

/// What [`CheckpointManager::recover`] reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the snapshot that loaded, `None` when recovery started
    /// from a fresh session (no usable snapshot on disk).
    pub epoch_loaded: Option<u64>,
    /// Snapshots tried and rejected (torn, corrupt, or mismatched) before
    /// one loaded.
    pub snapshots_rejected: u32,
    /// Ingested words covered by the loaded snapshot — the session had
    /// durably processed exactly this prefix of the stream.
    pub words_durable: u64,
    /// Words replayed from the WAL tail.
    pub words_replayed: u64,
    /// Whether a torn record ended the WAL tail (the signature of a crash
    /// mid-append; everything before it replayed).
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// Total words the recovered session has seen (durable + replayed).
    pub fn words_recovered(&self) -> u64 {
        self.words_durable + self.words_replayed
    }
}

/// Per-session durability state.
struct SessionDurability {
    id: SessionId,
    dir: PathBuf,
    /// Current WAL epoch; `ckpt.{epoch}.bin` is the snapshot that opened
    /// it (absent for epoch 0 of a fresh session).
    epoch: u64,
    wal: File,
    /// Words ingested since the last snapshot.
    words_since: u64,
    /// Words ingested over the session's whole life; serialized into each
    /// snapshot so recovery knows where the WAL tail begins.
    total_words: u64,
}

/// Wires durable snapshots and the event WAL into a [`ServeRuntime`].
///
/// One manager serves many sessions; each attached session gets its own
/// directory `root/s{id:03}/` with epoch-keyed artifacts. See the
/// [module docs](self) for the format and the recovery contract.
pub struct CheckpointManager {
    config: DurableConfig,
    sessions: Vec<SessionDurability>,
}

fn ckpt_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("ckpt.{epoch}.bin"))
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal.{epoch}.log"))
}

/// The snapshot container payload: the durable word count, then the
/// session state inline. Splitting the wrapper from [`crate::Session`]
/// keeps the word count out of the session (it belongs to the durability
/// layer, not the serving path).
struct CheckpointPayload<'a> {
    total_words: u64,
    session: &'a mut crate::session::Session,
}

impl frame::StateSnapshot for CheckpointPayload<'_> {
    fn state_kind(&self) -> &'static str {
        "serve-session-ckpt"
    }

    fn save_state(&self, enc: &mut frame::Encoder) {
        enc.put_u64(self.total_words);
        frame::StateSnapshot::save_state(&*self.session, enc);
    }

    fn load_state(&mut self, dec: &mut frame::Decoder) -> Result<(), frame::FrameError> {
        self.total_words = dec.take_u64()?;
        frame::StateSnapshot::load_state(self.session, dec)
    }
}

impl CheckpointManager {
    /// Creates a manager, creating `config.root` if needed.
    ///
    /// # Errors
    ///
    /// Returns an error if the root directory cannot be created.
    pub fn new(config: DurableConfig) -> Result<Self, EvlabError> {
        fs::create_dir_all(&config.root).map_err(EvlabError::Io)?;
        Ok(CheckpointManager {
            config,
            sessions: Vec::new(),
        })
    }

    /// The durability configuration.
    pub fn config(&self) -> &DurableConfig {
        &self.config
    }

    /// The directory holding a session's checkpoint artifacts.
    pub fn session_dir(&self, id: SessionId) -> PathBuf {
        self.config.root.join(format!("s{id:03}"))
    }

    fn tracked(&mut self, id: SessionId) -> Result<&mut SessionDurability, EvlabError> {
        self.sessions
            .iter_mut()
            .find(|s| s.id == id)
            .ok_or_else(|| EvlabError::serve(format!("session {id} is not attached")))
    }

    /// Attaches a session: creates its directory and opens its epoch-0
    /// WAL. The session must support snapshots
    /// ([`crate::Session::supports_snapshot`]).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown or non-durable session, a session
    /// already attached, or a filesystem failure.
    pub fn attach(&mut self, rt: &ServeRuntime, id: SessionId) -> Result<(), EvlabError> {
        let session = rt
            .session(id)
            .ok_or_else(|| EvlabError::serve(format!("unknown session {id}")))?;
        if !session.supports_snapshot() {
            return Err(EvlabError::serve(format!(
                "session {id} ({}) has no durable state to checkpoint",
                session.paradigm()
            )));
        }
        if self.sessions.iter().any(|s| s.id == id) {
            return Err(EvlabError::serve(format!("session {id} is already attached")));
        }
        let dir = self.session_dir(id);
        fs::create_dir_all(&dir).map_err(EvlabError::Io)?;
        let wal = open_wal(&wal_path(&dir, 0))?;
        self.sessions.push(SessionDurability {
            id,
            dir,
            epoch: 0,
            wal,
            words_since: 0,
            total_words: 0,
        });
        Ok(())
    }

    /// Ingests one AER word durably: the word is appended to the WAL
    /// *before* it reaches the runtime, then the runtime is ticked and
    /// checkpointed on the configured cadences. This is the only ingress
    /// path whose effects recovery can reproduce — words offered straight
    /// to the runtime are invisible to the log.
    ///
    /// # Errors
    ///
    /// Returns an error if the WAL append fails (the word was *not*
    /// ingested — durability is write-ahead or not at all) or if a
    /// cadence-triggered checkpoint fails.
    pub fn ingest(
        &mut self,
        rt: &mut ServeRuntime,
        id: SessionId,
        word: u64,
    ) -> Result<crate::queue::Admission, EvlabError> {
        let cadence = self.config.cadence_words;
        let drain_every = self.config.drain_every.max(1);
        let s = self.tracked(id)?;
        let mut record = Vec::with_capacity(8 + frame::RECORD_OVERHEAD);
        frame::write_record(&mut record, &word.to_le_bytes());
        s.wal.write_all(&record).map_err(EvlabError::Io)?;
        s.wal.flush().map_err(EvlabError::Io)?;
        obs::counter_add("wal.appends", 1);
        obs::counter_add("wal.bytes", record.len() as u64);
        s.words_since += 1;
        s.total_words += 1;
        let (since, total) = (s.words_since, s.total_words);
        let admission = rt.ingest_aer(id, word);
        if total.is_multiple_of(drain_every) {
            rt.tick();
        }
        if cadence > 0 && since >= cadence {
            self.checkpoint(rt, id)?;
        }
        Ok(admission)
    }

    /// Takes a durable snapshot of one session and rotates its WAL to a
    /// new epoch, pruning artifacts older than the previous epoch. The
    /// runtime is drained first (the snapshot's quiescence contract).
    ///
    /// Returns the new epoch.
    ///
    /// # Errors
    ///
    /// Returns an error for an unattached session or a filesystem
    /// failure; the previous epoch's artifacts survive any failure.
    pub fn checkpoint(&mut self, rt: &mut ServeRuntime, id: SessionId) -> Result<u64, EvlabError> {
        let span = obs::span("ckpt.write");
        rt.drain_all();
        let s = self
            .sessions
            .iter_mut()
            .find(|x| x.id == id)
            .ok_or_else(|| EvlabError::serve(format!("session {id} is not attached")))?;
        let session = rt
            .session_mut(id)
            .ok_or_else(|| EvlabError::serve(format!("unknown session {id}")))?;
        let next = s.epoch + 1;
        let payload = CheckpointPayload {
            total_words: s.total_words,
            session,
        };
        let bytes = snapshot_to_bytes(&payload);
        write_atomic_bytes(ckpt_path(&s.dir, next), &bytes)?;
        obs::counter_add("ckpt.snapshots", 1);
        obs::counter_add("ckpt.bytes", bytes.len() as u64);
        // The snapshot is durable: open the next epoch's WAL and only then
        // retire the one before the previous (keep two for fallback).
        s.wal = open_wal(&wal_path(&s.dir, next))?;
        s.epoch = next;
        s.words_since = 0;
        obs::counter_add("wal.rotations", 1);
        if next >= 2 {
            let _ = fs::remove_file(ckpt_path(&s.dir, next - 2));
            let _ = fs::remove_file(wal_path(&s.dir, next - 2));
        }
        span.finish();
        Ok(next)
    }

    /// Recovers one session after a crash: loads the newest snapshot that
    /// validates (falling back one epoch on corruption), replays the WAL
    /// tail through the live ingress path, stops cleanly at a torn tail,
    /// and seals the recovered state with a fresh checkpoint.
    ///
    /// Call on a freshly opened session (same classifier construction and
    /// serve config as the crashed process); the session must already be
    /// [attached](CheckpointManager::attach) — attach opens epoch-0
    /// artifacts, recover then supersedes them with what is on disk.
    ///
    /// Recovery never calls [`ServeRuntime::flush_session`]: a flush
    /// emits a terminal decision and would fork the recovered session's
    /// history from a run that never crashed. The recovered session is
    /// mid-stream — events held by its reorder buffer stay held, exactly
    /// as they were at the durable boundary. Flush only when the stream
    /// is truly over, crash or no crash.
    ///
    /// # Errors
    ///
    /// Returns an error for an unattached session or a filesystem
    /// failure. Corrupt snapshots and torn WAL tails are *not* errors —
    /// they are what recovery exists to absorb (counted in
    /// `ckpt.load_corrupt` / `wal.torn_tails`).
    pub fn recover(
        &mut self,
        rt: &mut ServeRuntime,
        id: SessionId,
    ) -> Result<RecoveryReport, EvlabError> {
        let span = obs::span("wal.replay");
        let drain_every = self.config.drain_every.max(1);
        let dir = self.session_dir(id);
        let epochs = on_disk_epochs(&dir)?;
        // Newest snapshot that validates wins; each rejected candidate
        // falls back one epoch (rotation retains two).
        let mut epoch_loaded = None;
        let mut snapshots_rejected = 0u32;
        let mut words_durable = 0u64;
        for &epoch in epochs.iter().rev() {
            let path = ckpt_path(&dir, epoch);
            if !path.exists() {
                continue;
            }
            let bytes = fs::read(&path).map_err(EvlabError::Io)?;
            let session = rt
                .session_mut(id)
                .ok_or_else(|| EvlabError::serve(format!("unknown session {id}")))?;
            let mut payload = CheckpointPayload {
                total_words: 0,
                session,
            };
            match frame::restore_from_bytes(&mut payload, &bytes) {
                Ok(()) => {
                    obs::counter_add("ckpt.load_ok", 1);
                    words_durable = payload.total_words;
                    epoch_loaded = Some(epoch);
                    break;
                }
                Err(_) => {
                    obs::counter_add("ckpt.load_corrupt", 1);
                    snapshots_rejected += 1;
                }
            }
        }
        // Replay the WAL tail: a snapshot closes its predecessor's log at
        // exactly the snapshot point, so `wal.{E}.log` holds only words
        // *after* snapshot E — replaying every epoch from the loaded one
        // onward, oldest first, covers the tail with no overlap.
        let start_epoch = epoch_loaded.unwrap_or(0);
        let mut words_replayed = 0u64;
        let mut torn_tail = false;
        for &epoch in epochs.iter().filter(|&&e| e >= start_epoch) {
            let path = wal_path(&dir, epoch);
            if !path.exists() {
                continue;
            }
            let log = fs::read(&path).map_err(EvlabError::Io)?;
            let mut cursor = RecordCursor::new(&log);
            loop {
                match cursor.next_record() {
                    Ok(Some(payload)) => {
                        if payload.len() != 8 {
                            // Structurally valid but not an AER record:
                            // treat like a torn tail and stop replaying.
                            obs::counter_add("wal.torn_tails", 1);
                            torn_tail = true;
                            break;
                        }
                        let mut w = [0u8; 8];
                        w.copy_from_slice(payload);
                        let word = u64::from_le_bytes(w);
                        rt.ingest_aer(id, word);
                        words_replayed += 1;
                        obs::counter_add("wal.replayed", 1);
                        if (words_durable + words_replayed).is_multiple_of(drain_every) {
                            rt.tick();
                        }
                    }
                    Ok(None) => break,
                    Err(RecordError::TornTail { .. }) => {
                        obs::counter_add("wal.torn_tails", 1);
                        torn_tail = true;
                        break;
                    }
                }
            }
            if torn_tail {
                break;
            }
        }
        rt.drain_all();
        // Seal: the recovered state becomes the newest durable epoch, and
        // the manager's counters resume from it.
        let s = self.tracked(id)?;
        s.epoch = epochs.last().copied().unwrap_or(0);
        s.total_words = words_durable + words_replayed;
        s.words_since = 0;
        self.checkpoint(rt, id)?;
        span.finish();
        Ok(RecoveryReport {
            epoch_loaded,
            snapshots_rejected,
            words_durable,
            words_replayed,
            torn_tail,
        })
    }
}

fn open_wal(path: &Path) -> Result<File, EvlabError> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(EvlabError::Io)
}

/// Epochs present in a session directory (from either artifact), sorted
/// ascending.
fn on_disk_epochs(dir: &Path) -> Result<Vec<u64>, EvlabError> {
    let mut epochs = Vec::new();
    if !dir.exists() {
        return Ok(epochs);
    }
    for entry in fs::read_dir(dir).map_err(EvlabError::Io)? {
        let entry = entry.map_err(EvlabError::Io)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let epoch = name
            .strip_prefix("ckpt.")
            .and_then(|s| s.strip_suffix(".bin"))
            .or_else(|| name.strip_prefix("wal.").and_then(|s| s.strip_suffix(".log")));
        if let Some(e) = epoch.and_then(|s| s.parse::<u64>().ok()) {
            if !epochs.contains(&e) {
                epochs.push(e);
            }
        }
    }
    epochs.sort_unstable();
    Ok(epochs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Admission;
    use crate::runtime::ServeConfig;
    use evlab_core::online::{
        load_opt_decision, save_opt_decision, Decision, OnlineClassifier,
    };
    use evlab_events::{Event, Polarity};
    use evlab_tensor::OpCount;
    use evlab_util::frame::{Decoder, Encoder, FrameError, StateSnapshot};

    /// A deterministic snapshot-capable classifier: decision per event,
    /// logits carrying the running count and timestamp so any divergence
    /// between a recovered session and its oracle shows up bit-for-bit.
    struct Stub {
        seen: u64,
        last_t: u64,
        pending: Option<Decision>,
    }

    impl Stub {
        fn boxed() -> Box<dyn OnlineClassifier + Send> {
            Box::new(Stub { seen: 0, last_t: 0, pending: None })
        }
    }

    impl OnlineClassifier for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn begin_session(&mut self) {
            self.seen = 0;
            self.last_t = 0;
            self.pending = None;
        }
        fn push_event(&mut self, event: Event, ops: &mut OpCount) -> Result<(), EvlabError> {
            let t = event.t.as_micros();
            if t < self.last_t {
                return Err(EvlabError::serve("out-of-order"));
            }
            self.last_t = t;
            self.seen += 1;
            ops.record_add(1);
            self.pending = Some(Decision {
                class: (self.seen % 3) as usize,
                logits: vec![self.seen as f32, t as f32],
                events: 1,
                t_us: t,
            });
            Ok(())
        }
        fn poll_decision(&mut self) -> Option<Decision> {
            self.pending.take()
        }
        fn flush(&mut self, _ops: &mut OpCount) -> Result<Option<Decision>, EvlabError> {
            Ok(None)
        }
        fn as_snapshot(&self) -> Option<&dyn StateSnapshot> {
            Some(self)
        }
        fn as_snapshot_mut(&mut self) -> Option<&mut dyn StateSnapshot> {
            Some(self)
        }
    }

    impl StateSnapshot for Stub {
        fn state_kind(&self) -> &'static str {
            "stub-online"
        }
        fn save_state(&self, enc: &mut Encoder) {
            enc.put_u64(self.seen);
            enc.put_u64(self.last_t);
            save_opt_decision(&self.pending, enc);
        }
        fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
            self.seen = dec.take_u64()?;
            self.last_t = dec.take_u64()?;
            self.pending = load_opt_decision(dec)?;
            Ok(())
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("evlab_durable_{tag}_{}", std::process::id()))
    }

    fn words(n: usize) -> Vec<u64> {
        let codec = evlab_events::aer::AerCodec::new((16, 16));
        (0..n)
            .map(|i| {
                codec.encode(&Event::new(
                    i as u64 * 100,
                    (i % 16) as u16,
                    (i % 16) as u16,
                    Polarity::On,
                ))
            })
            .collect()
    }

    fn open_stub(rt: &mut ServeRuntime) -> SessionId {
        rt.open_session(Stub::boxed(), (16, 16)).expect("open")
    }

    /// Ingests `words` into a fresh runtime + manager rooted at `dir`.
    fn run(dir: &Path, config: &DurableConfig, words: &[u64]) -> (ServeRuntime, CheckpointManager, SessionId) {
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = open_stub(&mut rt);
        let mut cm = CheckpointManager::new(config.clone()).expect("manager");
        cm.attach(&rt, id).expect("attach");
        for &w in words {
            assert_eq!(cm.ingest(&mut rt, id, w).expect("ingest"), Admission::Accepted);
        }
        let _ = dir; // root lives inside config
        (rt, cm, id)
    }

    /// Bit-exact session equality: counters, history, last decision, ops.
    fn assert_sessions_match(a: &crate::session::Session, b: &crate::session::Session, what: &str) {
        assert_eq!(a.stats(), b.stats(), "{what}: stats");
        assert_eq!(a.history(), b.history(), "{what}: history");
        assert_eq!(a.ops(), b.ops(), "{what}: op counts");
        match (a.last_decision(), b.last_decision()) {
            (Some(x), Some(y)) => {
                assert_eq!(x.class, y.class, "{what}: class");
                assert_eq!(x.t_us, y.t_us, "{what}: t_us");
                let xb: Vec<u32> = x.logits.iter().map(|v| v.to_bits()).collect();
                let yb: Vec<u32> = y.logits.iter().map(|v| v.to_bits()).collect();
                assert_eq!(xb, yb, "{what}: logit bits");
            }
            (None, None) => {}
            _ => panic!("{what}: decision presence diverged"),
        }
    }

    #[test]
    fn cadence_checkpoints_rotate_and_prune() {
        let root = tmp("cadence");
        let _ = fs::remove_dir_all(&root);
        let config = DurableConfig::new(&root).with_cadence_words(4).with_drain_every(2);
        let (rt, cm, id) = run(&root, &config, &words(10));
        assert_eq!(rt.session(id).unwrap().stats().processed, 10);
        let dir = cm.session_dir(id);
        // Checkpoints fired at words 4 and 8 -> epochs 1 and 2; epoch 0's
        // WAL was pruned when epoch 2 opened (retain two).
        assert!(ckpt_path(&dir, 1).exists());
        assert!(ckpt_path(&dir, 2).exists());
        assert!(wal_path(&dir, 1).exists());
        assert!(wal_path(&dir, 2).exists());
        assert!(!wal_path(&dir, 0).exists(), "epoch 0 pruned");
        // The live WAL holds exactly the two post-snapshot words.
        let log = fs::read(wal_path(&dir, 2)).expect("wal");
        assert_eq!(log.len(), 2 * (8 + frame::RECORD_OVERHEAD));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn recovery_is_bit_identical_to_the_uncrashed_run() {
        let all = words(23);
        let crash_root = tmp("crash");
        let oracle_root = tmp("crash_oracle");
        let _ = fs::remove_dir_all(&crash_root);
        let _ = fs::remove_dir_all(&oracle_root);
        // The crashed process: ingests everything, then dies (drop).
        let config = DurableConfig::new(&crash_root).with_cadence_words(8).with_drain_every(4);
        drop(run(&crash_root, &config, &all));
        // The oracle: same stream, no crash, drained.
        let (mut rt_o, _cm_o, id_o) =
            run(&oracle_root, &DurableConfig::new(&oracle_root).with_cadence_words(8).with_drain_every(4), &all);
        rt_o.drain_all();
        // Recovery in a fresh process.
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = open_stub(&mut rt);
        let mut cm = CheckpointManager::new(config).expect("manager");
        cm.attach(&rt, id).expect("attach");
        let report = cm.recover(&mut rt, id).expect("recover");
        assert_eq!(report.epoch_loaded, Some(2), "snapshot at word 16 loaded");
        assert_eq!(report.words_durable, 16);
        assert_eq!(report.words_replayed, 7);
        assert!(!report.torn_tail);
        assert_eq!(report.words_recovered(), 23);
        assert_sessions_match(rt.session(id).unwrap(), rt_o.session(id_o).unwrap(), "recovered");
        // The recovered manager keeps serving durably from where it left.
        let more = words(30);
        cm.ingest(&mut rt, id, more[23]).expect("post-recovery ingest");
        let _ = fs::remove_dir_all(&crash_root);
        let _ = fs::remove_dir_all(&oracle_root);
    }

    #[test]
    fn torn_wal_tail_recovers_the_clean_prefix() {
        evlab_util::obs::set_enabled(true);
        let torn_before = evlab_util::obs::counter_value("wal.torn_tails");
        let all = words(23);
        let crash_root = tmp("torn");
        let oracle_root = tmp("torn_oracle");
        let _ = fs::remove_dir_all(&crash_root);
        let _ = fs::remove_dir_all(&oracle_root);
        let config = DurableConfig::new(&crash_root).with_cadence_words(8).with_drain_every(4);
        let (_, cm0, id0) = run(&crash_root, &config, &all);
        // Tear the last WAL record: crash mid-append.
        let live_wal = wal_path(&cm0.session_dir(id0), 2);
        drop(cm0);
        let log = fs::read(&live_wal).expect("wal");
        fs::write(&live_wal, &log[..log.len() - 3]).expect("tear");
        // Oracle saw everything except the torn word.
        let (mut rt_o, _cm_o, id_o) =
            run(&oracle_root, &DurableConfig::new(&oracle_root).with_cadence_words(8).with_drain_every(4), &all[..22]);
        rt_o.drain_all();
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = open_stub(&mut rt);
        let mut cm = CheckpointManager::new(config).expect("manager");
        cm.attach(&rt, id).expect("attach");
        let report = cm.recover(&mut rt, id).expect("recover");
        assert!(report.torn_tail, "the torn record must be detected");
        assert_eq!(report.words_recovered(), 22, "clean prefix only");
        assert_sessions_match(rt.session(id).unwrap(), rt_o.session(id_o).unwrap(), "torn-tail");
        assert!(evlab_util::obs::counter_value("wal.torn_tails") > torn_before);
        evlab_util::obs::set_enabled(false);
        let _ = fs::remove_dir_all(&crash_root);
        let _ = fs::remove_dir_all(&oracle_root);
    }

    #[test]
    fn corrupt_snapshot_falls_back_one_epoch() {
        evlab_util::obs::set_enabled(true);
        let corrupt_before = evlab_util::obs::counter_value("ckpt.load_corrupt");
        let all = words(23);
        let crash_root = tmp("fallback");
        let oracle_root = tmp("fallback_oracle");
        let _ = fs::remove_dir_all(&crash_root);
        let _ = fs::remove_dir_all(&oracle_root);
        let config = DurableConfig::new(&crash_root).with_cadence_words(8).with_drain_every(4);
        let (_, cm0, id0) = run(&crash_root, &config, &all);
        // Flip one byte in the newest snapshot: its CRC must reject it.
        let newest = ckpt_path(&cm0.session_dir(id0), 2);
        drop(cm0);
        let mut bytes = fs::read(&newest).expect("snapshot");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&newest, &bytes).expect("corrupt");
        let (mut rt_o, _cm_o, id_o) =
            run(&oracle_root, &DurableConfig::new(&oracle_root).with_cadence_words(8).with_drain_every(4), &all);
        rt_o.drain_all();
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = open_stub(&mut rt);
        let mut cm = CheckpointManager::new(config).expect("manager");
        cm.attach(&rt, id).expect("attach");
        let report = cm.recover(&mut rt, id).expect("recover");
        assert_eq!(report.epoch_loaded, Some(1), "fell back to the older epoch");
        assert_eq!(report.snapshots_rejected, 1);
        assert_eq!(report.words_durable, 8);
        assert_eq!(report.words_replayed, 15, "both retained WAL epochs replayed");
        assert_sessions_match(rt.session(id).unwrap(), rt_o.session(id_o).unwrap(), "fallback");
        assert!(evlab_util::obs::counter_value("ckpt.load_corrupt") > corrupt_before);
        evlab_util::obs::set_enabled(false);
        let _ = fs::remove_dir_all(&crash_root);
        let _ = fs::remove_dir_all(&oracle_root);
    }

    #[test]
    fn recovery_of_a_fresh_directory_is_a_clean_start() {
        let root = tmp("fresh");
        let _ = fs::remove_dir_all(&root);
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = open_stub(&mut rt);
        let mut cm = CheckpointManager::new(DurableConfig::new(&root)).expect("manager");
        cm.attach(&rt, id).expect("attach");
        let report = cm.recover(&mut rt, id).expect("recover");
        assert_eq!(report.epoch_loaded, None);
        assert_eq!(report.words_recovered(), 0);
        assert!(!report.torn_tail);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn attach_rejects_sessions_without_durable_state() {
        /// No `as_snapshot` override: not durable.
        struct Opaque;
        impl OnlineClassifier for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn begin_session(&mut self) {}
            fn push_event(&mut self, _: Event, _: &mut OpCount) -> Result<(), EvlabError> {
                Ok(())
            }
            fn poll_decision(&mut self) -> Option<Decision> {
                None
            }
            fn flush(&mut self, _: &mut OpCount) -> Result<Option<Decision>, EvlabError> {
                Ok(None)
            }
        }
        let root = tmp("opaque");
        let _ = fs::remove_dir_all(&root);
        let mut rt = ServeRuntime::new(ServeConfig::new());
        let id = rt.open_session(Box::new(Opaque), (16, 16)).expect("open");
        let mut cm = CheckpointManager::new(DurableConfig::new(&root)).expect("manager");
        let err = cm.attach(&rt, id).unwrap_err();
        assert!(err.to_string().contains("no durable state"), "{err}");
        // Ingest through an unattached session is a typed error too.
        let err = cm.ingest(&mut rt, id, 0).unwrap_err();
        assert!(err.to_string().contains("not attached"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }
}
