//! One client session: an ingress queue feeding an online classifier.
//!
//! A session owns everything it touches — its [`BoundedQueue`], its
//! [`OnlineClassifier`] (network weights cloned from the trained
//! pipeline), its op counter, and its statistics — so the runtime can hand
//! whole sessions to worker threads with no shared mutable state and no
//! locks on the hot path.

use std::time::Instant;

use evlab_core::online::{
    load_opt_decision, save_opt_decision, Decision, OnlineClassifier,
};
use evlab_events::aer::AerCodec;
use evlab_events::reorder::ReorderBuffer;
use evlab_events::Event;
use evlab_tensor::OpCount;
use evlab_util::check::{self, Invariant, Report};
use evlab_util::frame::{Decoder, Encoder, FrameError, StateSnapshot};
use evlab_util::{obs, EvlabError};

use crate::queue::{Admission, BoundedQueue, DropPolicy};
use crate::runtime::SupervisorPolicy;

/// Identifies a session within one [`crate::runtime::ServeRuntime`].
pub type SessionId = usize;

/// Per-session ingress / processing / shedding counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Events offered at ingress (accepted + shed).
    pub offered: u64,
    /// Events admitted to the queue.
    pub accepted: u64,
    /// Queued events evicted by drop-oldest.
    pub shed_oldest: u64,
    /// Incoming events rejected by a full queue (drop-newest).
    pub shed_newest: u64,
    /// Incoming events shed by the rate controller.
    pub shed_rate: u64,
    /// Events pushed into the classifier.
    pub processed: u64,
    /// Decisions produced (per-event polls plus flushes).
    pub decisions: u64,
    /// Malformed AER words quarantined at decode (never became events).
    pub quarantined: u64,
    /// Events quarantined by the reorder buffer for arriving later than
    /// the configured skew tolerance.
    pub late_dropped: u64,
    /// Supervisor restarts after classifier failures.
    pub restarts: u64,
    /// Decisions whose logits contained NaN/Inf and were repaired.
    pub nonfinite_decisions: u64,
}

impl SessionStats {
    /// Total events shed by any mechanism.
    pub fn shed(&self) -> u64 {
        self.shed_oldest + self.shed_newest + self.shed_rate
    }
}

/// A single client's streaming classification session.
pub struct Session {
    id: SessionId,
    queue: BoundedQueue,
    classifier: Box<dyn OnlineClassifier + Send>,
    codec: AerCodec,
    ops: OpCount,
    stats: SessionStats,
    /// Compact decision log `(t_us, class)` — enough to compare runs for
    /// determinism without retaining every logit vector.
    history: Vec<(u64, usize)>,
    /// Event-to-decision latencies (µs), queueing delay included.
    latencies_us: Vec<f64>,
    last_decision: Option<Decision>,
    /// Enqueue instant of the oldest event not yet covered by a decision.
    oldest_pending: Option<Instant>,
    /// Bounded-skew timestamp repair between the queue and the classifier
    /// (`ServeConfig::reorder_skew_us`); `None` keeps strict-order ingress.
    reorder: Option<ReorderBuffer>,
    /// Supervisor restarts performed so far.
    restarts: u32,
    /// Ticks left before the supervisor retries a failed session.
    cooldown: Option<u32>,
    error: Option<EvlabError>,
    open: bool,
}

impl Session {
    /// Opens a session: the classifier's state is reset and ingress
    /// expects AER words (or decoded events) for `resolution`.
    ///
    /// # Errors
    ///
    /// Returns an error if `resolution` cannot be AER-encoded.
    pub fn open(
        id: SessionId,
        mut classifier: Box<dyn OnlineClassifier + Send>,
        resolution: (u16, u16),
        queue_depth: usize,
        policy: DropPolicy,
    ) -> Result<Self, EvlabError> {
        let codec = AerCodec::try_new(resolution).map_err(EvlabError::decode_aer)?;
        classifier.begin_session();
        obs::counter_add("serve.session.opened", 1);
        Ok(Session {
            id,
            queue: BoundedQueue::new(queue_depth, policy),
            classifier,
            codec,
            ops: OpCount::new(),
            stats: SessionStats::default(),
            history: Vec::new(),
            latencies_us: Vec::new(),
            last_decision: None,
            oldest_pending: None,
            reorder: None,
            restarts: 0,
            cooldown: None,
            error: None,
            open: true,
        })
    }

    /// Enables bounded-skew timestamp repair: events popped from the queue
    /// pass through an `evlab_events::reorder::ReorderBuffer` before
    /// reaching the classifier, so ingress disorder up to `skew_us` no
    /// longer fails the session. Hopelessly late events are quarantined
    /// (`SessionStats::late_dropped`).
    pub fn with_reorder_skew(mut self, skew_us: u64) -> Self {
        self.reorder = Some(ReorderBuffer::new(skew_us));
        self
    }

    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The paradigm name of the classifier being served.
    pub fn paradigm(&self) -> &'static str {
        self.classifier.name()
    }

    /// Ingress/processing counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Operations performed by this session's classifier so far.
    pub fn ops(&self) -> &OpCount {
        &self.ops
    }

    /// Events currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The AER codec for this session's resolution.
    pub fn codec(&self) -> &AerCodec {
        &self.codec
    }

    /// The newest decision, if any.
    pub fn last_decision(&self) -> Option<&Decision> {
        self.last_decision.as_ref()
    }

    /// The full `(t_us, class)` decision log.
    pub fn history(&self) -> &[(u64, usize)] {
        &self.history
    }

    /// Recorded event-to-decision latencies in microseconds.
    pub fn latencies_us(&self) -> &[f64] {
        &self.latencies_us
    }

    /// The error that failed this session, if any. A failed session stops
    /// processing but keeps its statistics and history readable.
    pub fn error(&self) -> Option<&EvlabError> {
        self.error.as_ref()
    }

    /// Whether the session still accepts and processes events.
    pub fn is_active(&self) -> bool {
        self.open && self.error.is_none()
    }

    /// Offers one decoded event at ingress.
    pub fn offer(&mut self, event: Event) -> Admission {
        self.offer_at(event, Instant::now())
    }

    /// Offers one AER-encoded word at ingress, decoding it first.
    ///
    /// # Errors
    ///
    /// Returns an error if the word does not decode for this session's
    /// resolution; malformed ingress does not fail the session.
    pub fn offer_aer(&mut self, word: u64) -> Result<Admission, EvlabError> {
        let event = self.codec.decode(word).map_err(EvlabError::decode_aer)?;
        Ok(self.offer(event))
    }

    /// Offers one AER word, quarantining malformed words instead of
    /// erroring: the degraded-ingress entry point for faulted transports.
    /// An undecodable word is counted (`SessionStats::quarantined`,
    /// `ingest.quarantined`) and reported as [`Admission::Quarantined`];
    /// the session keeps serving.
    pub fn ingest_aer(&mut self, word: u64) -> Admission {
        match self.codec.decode(word) {
            Ok(event) => self.offer(event),
            Err(_) => {
                self.stats.quarantined += 1;
                obs::counter_add("ingest.quarantined", 1);
                Admission::Quarantined
            }
        }
    }

    fn offer_at(&mut self, event: Event, now: Instant) -> Admission {
        if !self.is_active() {
            return Admission::RejectedFull;
        }
        self.stats.offered += 1;
        obs::counter_add("serve.queue.offered", 1);
        let admission = self.queue.offer(event, now);
        match admission {
            Admission::Accepted => {
                self.stats.accepted += 1;
                obs::counter_add("serve.queue.accepted", 1);
            }
            Admission::Evicted => {
                // The incoming event was admitted; the *oldest* was shed.
                self.stats.accepted += 1;
                self.stats.shed_oldest += 1;
                obs::counter_add("serve.queue.accepted", 1);
                obs::counter_add("serve.shed.oldest", 1);
            }
            Admission::RejectedFull => {
                self.stats.shed_newest += 1;
                obs::counter_add("serve.shed.newest", 1);
            }
            Admission::RejectedRate => {
                self.stats.shed_rate += 1;
                obs::counter_add("serve.shed.rate", 1);
            }
            // Quarantine happens at decode, before the queue; a decoded
            // event can never surface it here.
            Admission::Quarantined => {}
        }
        check::run(self);
        admission
    }

    /// Processes up to `quantum` queued events through the classifier,
    /// returning how many were consumed. Called by the runtime's
    /// round-robin scheduler; bounding the quantum is what gives
    /// co-scheduled sessions fairness.
    pub fn drain(&mut self, quantum: usize) -> usize {
        if !self.is_active() {
            return 0;
        }
        let mut consumed = 0usize;
        let mut released: Vec<Event> = Vec::new();
        while consumed < quantum {
            let Some((event, enqueued)) = self.queue.pop() else {
                break;
            };
            if self.oldest_pending.is_none() {
                self.oldest_pending = Some(enqueued);
            }
            released.clear();
            match &mut self.reorder {
                Some(buf) => {
                    let late_before = buf.late_dropped();
                    buf.push(event, &mut released);
                    self.stats.late_dropped += buf.late_dropped() - late_before;
                }
                None => released.push(event),
            }
            if !self.push_released(&released) {
                break;
            }
            consumed += 1;
        }
        self.stats.processed += consumed as u64;
        check::run(self);
        consumed
    }

    /// Pushes reorder-released events into the classifier, recording any
    /// decisions. Returns `false` when the classifier failed (the session
    /// is marked failed).
    fn push_released(&mut self, released: &[Event]) -> bool {
        for e in released {
            if let Err(err) = self.classifier.push_event(*e, &mut self.ops) {
                self.error = Some(err);
                obs::counter_add("serve.session.errors", 1);
                return false;
            }
            if let Some(decision) = self.classifier.poll_decision() {
                self.record_decision(decision);
            }
        }
        true
    }

    /// Forces a decision from the classifier's accumulated state (e.g. a
    /// partial CNN window). Queued events are not consumed.
    ///
    /// # Errors
    ///
    /// Returns the classifier's error; the session is marked failed.
    pub fn flush(&mut self) -> Result<Option<Decision>, EvlabError> {
        if !self.is_active() {
            return Ok(None);
        }
        // Drain the reorder buffer first: the skew window it was holding
        // back belongs to this session's accumulated state.
        if let Some(buf) = &mut self.reorder {
            let mut released = Vec::new();
            buf.flush(&mut released);
            if !self.push_released(&released) {
                return Err(EvlabError::serve("flush failed: classifier error on reordered tail"));
            }
        }
        let result = match self.classifier.flush(&mut self.ops) {
            Ok(Some(decision)) => {
                self.record_decision(decision.clone());
                Ok(Some(decision))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.error = Some(EvlabError::serve(format!("flush failed: {e}")));
                obs::counter_add("serve.session.errors", 1);
                Err(e)
            }
        };
        check::run(self);
        result
    }

    /// Closes the session; further offers are rejected.
    pub fn close(&mut self) {
        if self.open {
            self.open = false;
            obs::counter_add("serve.session.closed", 1);
        }
    }

    /// The supervisor restarts performed on this session so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// One supervision step, called by the runtime once per tick when a
    /// [`SupervisorPolicy`] is configured. A failed session waits out its
    /// backoff (doubling with each restart), then restarts: the error is
    /// cleared and the classifier begins a fresh session, while history,
    /// statistics and the last decision survive as the last-good
    /// checkpoint. Returns whether a restart happened this step.
    pub(crate) fn supervise(&mut self, policy: SupervisorPolicy) -> bool {
        if !self.open || self.error.is_none() || self.restarts >= policy.max_restarts {
            return false;
        }
        let backoff = policy
            .backoff_ticks
            .saturating_mul(1u32 << self.restarts.min(16));
        let cooldown = self.cooldown.get_or_insert(backoff);
        if *cooldown > 0 {
            *cooldown -= 1;
            return false;
        }
        self.cooldown = None;
        self.error = None;
        self.restarts += 1;
        self.stats.restarts += 1;
        self.classifier.begin_session();
        if let Some(buf) = &mut self.reorder {
            buf.reset();
        }
        obs::counter_add("serve.supervisor.restarts", 1);
        check::run(self);
        true
    }

    /// Whether a supervisor restart is scheduled (failed, with backoff
    /// still counting down).
    pub(crate) fn restart_pending(&self) -> bool {
        self.open && self.error.is_some() && self.cooldown.is_some()
    }

    /// Whether this session can be checkpointed: its classifier exposes
    /// durable state through
    /// [`evlab_util::frame::StateSnapshot`]. Adapter-served classifiers
    /// (e.g. `Batched`) are not durable.
    pub fn supports_snapshot(&self) -> bool {
        self.classifier.as_snapshot().is_some()
    }

    fn record_decision(&mut self, mut decision: Decision) {
        // NaN/Inf guard: corrupted ingress can poison activations; repair
        // to a valid (if low-confidence) decision and count the incident.
        if decision.sanitize() > 0 {
            self.stats.nonfinite_decisions += 1;
            obs::counter_add("serve.decision.nonfinite", 1);
        }
        if let Some(start) = self.oldest_pending.take() {
            self.latencies_us
                .push(start.elapsed().as_secs_f64() * 1e6);
        }
        self.stats.decisions += 1;
        obs::counter_add("serve.session.decisions", 1);
        self.history.push((decision.t_us, decision.class));
        self.last_decision = Some(decision);
    }
}

/// Machine-checked queue/state-machine legality ([`evlab_util::check`]):
/// run after every offer, drain, flush and supervisor restart, and
/// against every restored snapshot. All conservation laws hold across
/// restore too — the queue is not durable, which only slackens the
/// admission inequality, never inverts it.
impl Invariant for Session {
    fn invariant_name(&self) -> &'static str {
        "serve-session"
    }

    fn check_invariants(&self, r: &mut Report) {
        let s = &self.stats;
        // Every offered event is accounted for exactly once at ingress.
        r.require(s.offered == s.accepted + s.shed_newest + s.shed_rate, || {
            format!(
                "{} offered != {} accepted + {} shed_newest + {} shed_rate",
                s.offered, s.accepted, s.shed_newest, s.shed_rate
            )
        });
        // Accepted events are still queued, processed, or shed-oldest;
        // the remainder is bounded by classifier failures (an event can
        // be lost mid-push when the classifier errors).
        r.require(
            s.accepted >= s.shed_oldest + s.processed + self.queue.len() as u64,
            || {
                format!(
                    "{} accepted < {} shed_oldest + {} processed + {} queued",
                    s.accepted,
                    s.shed_oldest,
                    s.processed,
                    self.queue.len()
                )
            },
        );
        r.require(self.queue.len() <= self.queue.capacity(), || {
            format!(
                "queue holds {} events, capacity {}",
                self.queue.len(),
                self.queue.capacity()
            )
        });
        r.require(s.decisions == self.history.len() as u64, || {
            format!(
                "{} decisions but {} history entries",
                s.decisions,
                self.history.len()
            )
        });
        r.require(self.latencies_us.len() as u64 <= s.decisions, || {
            format!(
                "{} latency samples exceed {} decisions",
                self.latencies_us.len(),
                s.decisions
            )
        });
        r.require(self.cooldown.is_none() || self.error.is_some(), || {
            "cooldown counting down without a live error".to_string()
        });
        r.require(u64::from(self.restarts) == s.restarts, || {
            format!(
                "session counted {} restarts, stats say {}",
                self.restarts, s.restarts
            )
        });
        if let Some(buf) = &self.reorder {
            r.require(s.late_dropped >= buf.late_dropped(), || {
                format!(
                    "stats late_dropped {} behind the buffer's {}",
                    s.late_dropped,
                    buf.late_dropped()
                )
            });
        }
    }
}

fn save_stats(s: &SessionStats, enc: &mut Encoder) {
    enc.put_u64(s.offered);
    enc.put_u64(s.accepted);
    enc.put_u64(s.shed_oldest);
    enc.put_u64(s.shed_newest);
    enc.put_u64(s.shed_rate);
    enc.put_u64(s.processed);
    enc.put_u64(s.decisions);
    enc.put_u64(s.quarantined);
    enc.put_u64(s.late_dropped);
    enc.put_u64(s.restarts);
    enc.put_u64(s.nonfinite_decisions);
}

fn load_stats(dec: &mut Decoder) -> Result<SessionStats, FrameError> {
    Ok(SessionStats {
        offered: dec.take_u64()?,
        accepted: dec.take_u64()?,
        shed_oldest: dec.take_u64()?,
        shed_newest: dec.take_u64()?,
        shed_rate: dec.take_u64()?,
        processed: dec.take_u64()?,
        decisions: dec.take_u64()?,
        quarantined: dec.take_u64()?,
        late_dropped: dec.take_u64()?,
        restarts: dec.take_u64()?,
        nonfinite_decisions: dec.take_u64()?,
    })
}

fn save_ops(o: &OpCount, enc: &mut Encoder) {
    enc.put_u64(o.macs);
    enc.put_u64(o.effective_macs);
    enc.put_u64(o.mults);
    enc.put_u64(o.adds);
    enc.put_u64(o.comparisons);
    enc.put_u64(o.mem_reads);
    enc.put_u64(o.mem_writes);
}

fn load_ops(dec: &mut Decoder) -> Result<OpCount, FrameError> {
    let mut o = OpCount::new();
    o.macs = dec.take_u64()?;
    o.effective_macs = dec.take_u64()?;
    o.mults = dec.take_u64()?;
    o.adds = dec.take_u64()?;
    o.comparisons = dec.take_u64()?;
    o.mem_reads = dec.take_u64()?;
    o.mem_writes = dec.take_u64()?;
    Ok(o)
}

/// Durable session state: the classifier's
/// [`StateSnapshot`] payload plus everything the session itself
/// accumulated (reorder buffer, statistics, decision history, supervisor
/// counters, op counts).
///
/// **Quiescence contract.** A snapshot captures the session *between*
/// events: the ingress queue is not serialized, so the caller must drain
/// it (e.g. `ServeRuntime::drain_all`) before saving — the checkpoint
/// manager enforces this. Events still queued at save time are not lost
/// by the format; they remain in the write-ahead log and are re-ingested
/// on replay. Wall-clock state ([`Session::latencies_us`], the pending
/// latency anchor) is measurement, not state, and resets on restore.
impl StateSnapshot for Session {
    fn state_kind(&self) -> &'static str {
        "serve-session"
    }

    fn save_state(&self, enc: &mut Encoder) {
        // Classifier state, tagged with its own kind/version so a restore
        // into a session serving a different paradigm fails loudly.
        match self.classifier.as_snapshot() {
            Some(snap) => {
                enc.put_bool(true);
                enc.put_str(snap.state_kind());
                enc.put_u16(snap.state_version());
                snap.save_state(enc);
            }
            None => enc.put_bool(false),
        }
        match &self.reorder {
            Some(buf) => {
                enc.put_bool(true);
                buf.save_state(enc);
            }
            None => enc.put_bool(false),
        }
        save_stats(&self.stats, enc);
        enc.put_u64(self.history.len() as u64);
        for &(t, class) in &self.history {
            enc.put_u64(t);
            enc.put_u64(class as u64);
        }
        save_opt_decision(&self.last_decision, enc);
        save_ops(&self.ops, enc);
        enc.put_u64(self.restarts as u64);
        enc.put_opt_u64(self.cooldown.map(u64::from));
        enc.put_bool(self.open);
    }

    fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
        if dec.take_bool()? {
            let Some(snap) = self.classifier.as_snapshot_mut() else {
                return Err(dec.corrupt("snapshot has classifier state, session has none"));
            };
            let kind = dec.take_str()?.to_string();
            if kind != snap.state_kind() {
                return Err(FrameError::KindMismatch {
                    expected: snap.state_kind().to_string(),
                    found: kind,
                });
            }
            let version = dec.take_u16()?;
            if version != snap.state_version() {
                return Err(FrameError::StateVersionMismatch {
                    expected: snap.state_version(),
                    found: version,
                });
            }
            snap.load_state(dec)?;
        } else if self.classifier.as_snapshot().is_some() {
            return Err(dec.corrupt("snapshot has no classifier state, session expects it"));
        }
        if dec.take_bool()? {
            let Some(buf) = &mut self.reorder else {
                return Err(dec.corrupt("snapshot has a reorder buffer, session has none"));
            };
            buf.load_state(dec)?;
        } else if self.reorder.is_some() {
            return Err(dec.corrupt("snapshot has no reorder buffer, session expects one"));
        }
        self.stats = load_stats(dec)?;
        let n = dec.take_u64()? as usize;
        if n > dec.remaining() / 16 {
            return Err(dec.corrupt(format!("{n} history entries exceed the payload")));
        }
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            let t = dec.take_u64()?;
            let class = dec.take_u64()? as usize;
            history.push((t, class));
        }
        self.history = history;
        self.last_decision = load_opt_decision(dec)?;
        self.ops = load_ops(dec)?;
        let restarts = dec.take_u64()?;
        self.restarts = u32::try_from(restarts)
            .map_err(|_| dec.corrupt(format!("restart count {restarts} overflows u32")))?;
        // Consume the recorded cooldown for format compatibility, but do
        // not restore it: the cooldown counts down a *live* error's
        // backoff, and the error itself is not durable (cleared below).
        // Restoring it would leave a stale backoff that a future failure
        // silently inherits.
        if let Some(c) = dec.take_opt_u64()? {
            u32::try_from(c).map_err(|_| dec.corrupt(format!("cooldown {c} overflows u32")))?;
        }
        self.cooldown = None;
        self.open = dec.take_bool()?;
        // Wall-clock measurement state restarts with the process.
        self.latencies_us.clear();
        self.oldest_pending = None;
        self.error = None;
        if let Some(violation) = check::verify(self).into_iter().next() {
            return Err(dec.corrupt(format!("snapshot violates invariant: {violation}")));
        }
        Ok(())
    }
}
