//! Running statistics and histogram helpers.
//!
//! Used throughout the workspace to summarize event rates, sparsity levels
//! and benchmark measurements.

/// Single-pass running statistics (Welford's online algorithm).
///
/// # Examples
///
/// ```
/// use evlab_util::stats::Running;
///
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance, or 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut r = Running::new();
        for x in iter {
            r.push(x);
        }
        r
    }
}

impl Extend<f64> for Running {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of the data by sorting a copy and
/// linearly interpolating between the two nearest order statistics.
///
/// Returns `None` for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the data contains NaN.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| match a.partial_cmp(b) {
        Some(ord) => ord,
        None => panic!("NaN in quantile input"),
    });
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Arithmetic mean of a slice, or 0 for empty input.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f64>() / data.len() as f64
    }
}

/// Geometric mean of strictly-positive values, or 0 for empty input.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = data
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values");
            x.ln()
        })
        .sum();
    (log_sum / data.len() as f64).exp()
}

/// A fixed-bin histogram over `[lo, hi)`.
///
/// Out-of-range observations are clamped into the first/last bin so that
/// `total()` always equals the number of `push` calls.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "lo must be below hi");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        let n = self.bins.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.bins[idx.min(n - 1)] += 1;
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Centre of the `i`-th bin.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

/// Ordinary least squares fit `y = a + b x`; returns `(a, b)`.
///
/// Returns `None` when fewer than two points or when all x are identical.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let b = sxy / sxx;
    Some((my - b * mx, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_and_variance() {
        let r: Running = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Running = data.iter().copied().collect();
        let mut left: Running = data[..40].iter().copied().collect();
        let right: Running = data[40..].iter().copied().collect();
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(quantile(&data, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-1.0);
        h.push(100.0);
        h.push(5.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[4], 1);
        assert_eq!(h.bins()[2], 1);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys).expect("fit");
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert_eq!(linear_fit(&[1.0], &[2.0]), None);
        assert_eq!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]), None);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
