//! Zero-dependency pipeline observability: named counters, wall-clock
//! span timers and fixed-bucket histograms behind one global, thread-safe
//! registry.
//!
//! The paper's Table I compares *measured* quantities — event rates,
//! sparsity, operation counts, latency — but without instrumentation those
//! numbers are only visible at the very end of a run. This module lets
//! every pipeline stage record what it actually did (events emitted,
//! frames encoded, spikes fired, graph nodes built, serial fallbacks
//! taken) so a run can be audited stage by stage.
//!
//! # Cost model
//!
//! Observability is off by default. It turns on when the `EVLAB_OBS`
//! environment variable is set to anything but `0`/empty, or when a
//! harness calls [`set_enabled`]`(true)` (the `--metrics` flag does this).
//! While off, every recording call is a single relaxed atomic load and a
//! branch — hot paths pay essentially nothing. While on, counter updates
//! take a registry mutex, so instrumented code batches its increments
//! (one `counter_add` per stage invocation, never per event).
//!
//! # Naming scheme
//!
//! Counter and span names follow `crate.stage.metric`, e.g.
//! `sensor.camera.events`, `cnn.encode.voxel-grid.nonzero_cells`,
//! `gnn.serial_fallback`. Names are plain strings: stages that exist in
//! several flavours (the frame encoders) interpolate their flavour into
//! the name.
//!
//! # Examples
//!
//! ```
//! use evlab_util::obs;
//!
//! obs::set_enabled(true);
//! obs::counter_add("doc.example.events", 128);
//! {
//!     let _span = obs::span("doc.example.work");
//!     // ... timed region ...
//! }
//! assert!(obs::counter_value("doc.example.events") >= 128);
//! let json = obs::snapshot_json();
//! assert!(json.get("counters").is_some());
//! ```

use crate::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock, PoisonError};
use std::time::Instant;

/// Locks a registry mutex, tolerating poisoning: the registries hold
/// plain data that stays structurally valid if a recording thread
/// panicked, and losing metrics to a poisoned lock would hide exactly
/// the failure observability exists to surface.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Environment variable that switches observability on (`EVLAB_OBS=1`).
pub const ENV_TOGGLE: &str = "EVLAB_OBS";

/// Number of fixed histogram buckets; see [`bucket_index`] for the
/// boundaries.
pub const HIST_BUCKETS: usize = 32;

static INIT: Once = Once::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability is currently on. The first call reads
/// [`ENV_TOGGLE`]; afterwards this is one relaxed atomic load — the only
/// cost instrumented hot paths pay while the layer is off.
#[inline]
pub fn enabled() -> bool {
    INIT.call_once(|| {
        let on = std::env::var(ENV_TOGGLE)
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false);
        ENABLED.store(on, Ordering::Relaxed);
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Programmatically switches observability on or off, overriding the
/// environment toggle. Used by `--metrics` flags and tests.
pub fn set_enabled(on: bool) {
    enabled(); // settle the env-derived initial state first
    ENABLED.store(on, Ordering::Relaxed);
}

/// One span-duration histogram: fixed power-of-two buckets over
/// microseconds plus running count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all durations in microseconds.
    pub total_us: f64,
    /// Shortest recorded duration in microseconds.
    pub min_us: f64,
    /// Longest recorded duration in microseconds.
    pub max_us: f64,
    /// `buckets[0]` counts durations under 1 µs; `buckets[i]` counts
    /// durations in `[2^(i-1), 2^i)` µs; the last bucket absorbs the tail.
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    fn new() -> Self {
        HistSnapshot {
            count: 0,
            total_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    fn record(&mut self, us: f64) {
        let us = us.max(0.0);
        self.count += 1;
        self.total_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.buckets[bucket_index(us)] += 1;
    }

    /// Mean duration in microseconds (0 for an empty histogram).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }
}

/// Bucket index for a duration: 0 for under 1 µs, otherwise
/// `floor(log2(us)) + 1`, clamped to the last bucket. The boundaries are
/// exact powers of two: bucket `i ≥ 1` covers `[2^(i-1), 2^i)` µs, so the
/// last in-range bucket starts at `2^(HIST_BUCKETS-2)` µs (≈ 18 min).
/// Durations past that are clamped into the last bucket; the clamp is
/// **not silent** — [`record_duration_us`] counts every clamped duration
/// in the `obs.span_overflow` counter, since a histogram whose top bucket
/// quietly absorbs hour-long stalls would hide exactly the tail latencies
/// worth alarming on.
pub fn bucket_index(us: f64) -> usize {
    let whole = us as u64;
    match whole.checked_ilog2() {
        None => 0,
        Some(l) => ((l + 1) as usize).min(HIST_BUCKETS - 1),
    }
}

/// Whether [`bucket_index`] had to clamp: true for durations at or past
/// `2^(HIST_BUCKETS-1)` µs, whose natural index would fall outside the
/// fixed bucket array.
fn bucket_overflows(us: f64) -> bool {
    (us as u64)
        .checked_ilog2()
        .is_some_and(|l| (l + 1) as usize > HIST_BUCKETS - 1)
}

struct Registry {
    counters: Mutex<Vec<(String, AtomicU64)>>,
    hists: Mutex<Vec<(String, HistSnapshot)>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        hists: Mutex::new(Vec::new()),
    })
}

/// Adds `delta` to the named counter, creating it at zero first if it does
/// not exist yet. No-op while observability is off.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut counters = lock_unpoisoned(&registry().counters);
    match counters.iter().find(|(n, _)| n == name) {
        Some((_, c)) => {
            c.fetch_add(delta, Ordering::Relaxed);
        }
        None => counters.push((name.to_string(), AtomicU64::new(delta))),
    }
}

/// Current value of a counter (0 if it was never touched).
pub fn counter_value(name: &str) -> u64 {
    let counters = lock_unpoisoned(&registry().counters);
    counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| c.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// All counters, sorted by name.
pub fn counters() -> Vec<(String, u64)> {
    let counters = lock_unpoisoned(&registry().counters);
    let mut out: Vec<(String, u64)> = counters
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .collect();
    out.sort();
    out
}

/// Records one duration (in microseconds) into the named histogram.
/// A duration too long for the fixed bucket range lands in the top
/// bucket *and* increments `obs.span_overflow`, so clamping is always
/// visible. No-op while observability is off.
pub fn record_duration_us(name: &str, us: f64) {
    if !enabled() {
        return;
    }
    {
        let mut hists = lock_unpoisoned(&registry().hists);
        match hists.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.record(us),
            None => {
                let mut h = HistSnapshot::new();
                h.record(us);
                hists.push((name.to_string(), h));
            }
        }
    }
    // Outside the hists lock: counter_add takes the counter lock and the
    // two registries must never nest.
    if bucket_overflows(us) {
        counter_add("obs.span_overflow", 1);
    }
}

/// All span histograms, sorted by name.
pub fn spans() -> Vec<(String, HistSnapshot)> {
    let hists = lock_unpoisoned(&registry().hists);
    let mut out: Vec<(String, HistSnapshot)> = hists.to_vec();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// A wall-clock span: started by [`span`], it records its elapsed time
/// into the named histogram when dropped. While observability is off the
/// guard holds nothing and drop is free.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    armed: Option<(String, Instant)>,
}

impl Span {
    /// Ends the span now instead of at scope exit.
    pub fn finish(mut self) {
        self.record_now();
    }

    fn record_now(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            record_duration_us(&name, start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_now();
    }
}

/// Starts a wall-clock span over the named histogram.
pub fn span(name: &str) -> Span {
    Span {
        armed: enabled().then(|| (name.to_string(), Instant::now())),
    }
}

/// Clears every counter and histogram. Intended for tests and
/// long-running harnesses that emit periodic deltas.
pub fn reset() {
    lock_unpoisoned(&registry().counters).clear();
    lock_unpoisoned(&registry().hists).clear();
}

/// Serializes the registry as a JSON document:
///
/// ```json
/// {
///   "enabled": true,
///   "counters": { "sensor.camera.events": 12345, ... },
///   "spans": {
///     "gnn.build.kdtree": {
///       "count": 4, "total_us": 1234.5, "min_us": 200.1, "max_us": 400.9,
///       "buckets": [0, 0, 1, 3, ...]
///     }
///   }
/// }
/// ```
///
/// Keys in both maps are sorted, and `buckets[i]` counts durations in
/// `[2^(i-1), 2^i)` microseconds (`buckets[0]`: under 1 µs).
pub fn snapshot_json() -> Json {
    let counter_pairs: Vec<(String, Json)> = counters()
        .into_iter()
        .map(|(n, v)| (n, Json::from(v)))
        .collect();
    let span_pairs: Vec<(String, Json)> = spans()
        .into_iter()
        .map(|(n, h)| {
            let min = if h.count == 0 { 0.0 } else { h.min_us };
            (
                n,
                Json::obj([
                    ("count", Json::from(h.count)),
                    ("total_us", Json::from(h.total_us)),
                    ("min_us", Json::from(min)),
                    ("max_us", Json::from(h.max_us)),
                    (
                        "buckets",
                        Json::arr(h.buckets.iter().map(|&b| Json::from(b))),
                    ),
                ]),
            )
        })
        .collect();
    Json::obj([
        ("enabled", Json::from(enabled())),
        ("counters", Json::Obj(counter_pairs)),
        ("spans", Json::Obj(span_pairs)),
    ])
}

/// Writes [`snapshot_json`] to `path` atomically (temp file + rename), so
/// a crash mid-write can never leave a truncated artifact behind.
///
/// # Errors
///
/// Returns [`crate::EvlabError::Io`] if the write or rename fails; the
/// temp file does not survive the failure.
pub fn write_metrics(path: impl AsRef<std::path::Path>) -> Result<(), crate::EvlabError> {
    crate::json::write_atomic(path, &(snapshot_json().to_string_pretty() + "\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run concurrently, so every
    // test uses its own counter names and asserts deltas, never absolutes.
    // Tests that depend on the enabled flag staying put additionally hold
    // TOGGLE_LOCK, because `disabled_counter_add_is_a_no_op` flips the
    // global toggle off for a moment.
    static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_accumulate_when_enabled() {
        let _guard = TOGGLE_LOCK.lock().expect("toggle lock");
        set_enabled(true);
        let before = counter_value("obs.test.accumulate");
        counter_add("obs.test.accumulate", 3);
        counter_add("obs.test.accumulate", 4);
        assert_eq!(counter_value("obs.test.accumulate") - before, 7);
    }

    #[test]
    fn disabled_counter_add_is_a_no_op() {
        let _guard = TOGGLE_LOCK.lock().expect("toggle lock");
        set_enabled(true);
        counter_add("obs.test.gated", 1); // ensure the counter exists
        let before = counter_value("obs.test.gated");
        set_enabled(false);
        counter_add("obs.test.gated", 100);
        set_enabled(true);
        assert_eq!(counter_value("obs.test.gated"), before);
    }

    #[test]
    fn unknown_counter_reads_zero() {
        assert_eq!(counter_value("obs.test.never_touched"), 0);
    }

    #[test]
    fn spans_record_into_histograms() {
        let _guard = TOGGLE_LOCK.lock().expect("toggle lock");
        set_enabled(true);
        {
            let _s = span("obs.test.span");
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        let hist = spans()
            .into_iter()
            .find(|(n, _)| n == "obs.test.span")
            .map(|(_, h)| h)
            .expect("span recorded");
        assert!(hist.count >= 1);
        assert!(hist.total_us > 0.0);
        assert!(hist.max_us >= hist.min_us);
        assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
    }

    #[test]
    fn span_finish_records_early() {
        let _guard = TOGGLE_LOCK.lock().expect("toggle lock");
        set_enabled(true);
        let s = span("obs.test.finish");
        s.finish();
        let count = spans()
            .into_iter()
            .find(|(n, _)| n == "obs.test.finish")
            .map(|(_, h)| h.count)
            .unwrap_or(0);
        assert!(count >= 1);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.9), 0);
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(1.9), 1);
        assert_eq!(bucket_index(2.0), 2);
        assert_eq!(bucket_index(3.9), 2);
        assert_eq!(bucket_index(4.0), 3);
        assert_eq!(bucket_index(1e30), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_index_is_exact_at_every_power_of_two_boundary() {
        // Bucket i ≥ 1 covers [2^(i-1), 2^i): at each boundary the index
        // must step up exactly, and one ulp below it must not.
        for i in 1..HIST_BUCKETS - 1 {
            let lo = (1u64 << (i - 1)) as f64;
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(2.0 * lo - 1.0), i, "upper interior of bucket {i}");
            assert_eq!(bucket_index(2.0 * lo), i + 1, "next boundary leaves bucket {i}");
        }
        // The last bucket's lower edge is in range without clamping...
        let top = (1u64 << (HIST_BUCKETS - 2)) as f64;
        assert_eq!(bucket_index(top), HIST_BUCKETS - 1);
        assert!(!bucket_overflows(top));
        assert!(!bucket_overflows(2.0 * top - 1.0));
        // ...and exactly one past its span, the clamp (= overflow) begins.
        assert!(bucket_overflows(2.0 * top));
        assert_eq!(bucket_index(2.0 * top), HIST_BUCKETS - 1);
        assert!(bucket_overflows(1e30));
    }

    #[test]
    fn span_overflow_counter_tracks_clamped_durations() {
        let _guard = TOGGLE_LOCK.lock().expect("toggle lock");
        set_enabled(true);
        let before = counter_value("obs.span_overflow");
        // In range: the longest duration the histogram can place exactly.
        record_duration_us("obs.test.overflow", ((1u64 << 31) - 1) as f64);
        assert_eq!(counter_value("obs.span_overflow"), before, "in-range clamped");
        // Past the top bucket: clamped AND counted.
        record_duration_us("obs.test.overflow", (1u64 << 31) as f64);
        record_duration_us("obs.test.overflow", 1e30);
        assert_eq!(counter_value("obs.span_overflow"), before + 2);
        let hist = spans()
            .into_iter()
            .find(|(n, _)| n == "obs.test.overflow")
            .map(|(_, h)| h)
            .expect("histogram recorded");
        assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count, "no duration lost");
    }

    #[test]
    fn snapshot_round_trips_through_the_json_parser() {
        let _guard = TOGGLE_LOCK.lock().expect("toggle lock");
        set_enabled(true);
        counter_add("obs.test.snapshot", 42);
        record_duration_us("obs.test.snapshot_span", 12.5);
        let doc = snapshot_json();
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).expect("snapshot parses");
        assert!(
            back.get("counters")
                .and_then(|c| c.get("obs.test.snapshot"))
                .and_then(Json::as_u64)
                .expect("counter present")
                >= 42
        );
        let span = back
            .get("spans")
            .and_then(|s| s.get("obs.test.snapshot_span"))
            .expect("span present");
        assert!(span.get("count").and_then(Json::as_u64).expect("count") >= 1);
        assert_eq!(
            span.get("buckets").and_then(Json::as_array).map(|b| b.len()),
            Some(HIST_BUCKETS)
        );
    }

    #[test]
    fn write_metrics_emits_parseable_file() {
        let _guard = TOGGLE_LOCK.lock().expect("toggle lock");
        set_enabled(true);
        counter_add("obs.test.file", 1);
        let path = std::env::temp_dir().join(format!(
            "evlab_obs_test_{}.json",
            std::process::id()
        ));
        write_metrics(&path).expect("write metrics");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let doc = Json::parse(&text).expect("file parses");
        assert!(doc.get("counters").is_some());
    }
}
