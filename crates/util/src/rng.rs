//! Deterministic pseudo-random number generation.
//!
//! The workspace uses xoshiro256++ (Blackman & Vigna) seeded through
//! splitmix64. The generator is small, fast, passes BigCrush, and — unlike
//! pulling in an external crate on a core code path — guarantees that the
//! sequence never changes underneath the experiments when dependencies are
//! upgraded.

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use evlab_util::rng::Rng64;
///
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second normal deviate from the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed, expanding it with splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Rng64 {
            s,
            gauss_spare: None,
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a standard normal deviate via the Box–Muller transform.
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0) by drawing from (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a normal deviate with the given mean and standard deviation.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_gaussian()
    }

    /// Draws from an exponential distribution with the given rate (events per
    /// unit time). Used for Poisson event inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Splits off an independently-seeded child generator.
    ///
    /// Useful for giving each dataset sample or each layer its own stream
    /// without coupling their consumption order.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::seed_from_u64(123);
        let mut b = Rng64::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng64::seed_from_u64(77);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.next_gaussian();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng64::seed_from_u64(3);
        let rate = 4.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Rng64::seed_from_u64(1);
        let mut child = parent.fork();
        // A forked child must not replay the parent stream.
        let parent_next = parent.next_u64();
        let child_next = child.next_u64();
        assert_ne!(parent_next, child_next);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Rng64::seed_from_u64(0).next_below(0);
    }
}
