//! The workspace-wide error type.
//!
//! Each crate keeps its own precise error enum ([`EventOrderError`],
//! [`DecodeAerError`], [`ReadStreamError`], [`ShapeError`],
//! [`crate::json::JsonError`]) — those stay the right type for library
//! code that can act on the specific failure. [`EvlabError`] is the
//! umbrella the *application* layers (the serve runtime, the bench
//! binaries) return, so their `main` functions and session loops can use
//! `?` instead of `expect`-ing across crate boundaries.
//!
//! `evlab-util` sits at the bottom of the dependency graph, so it cannot
//! name the error types of the crates above it. Each variant therefore
//! carries its source as a boxed [`Error`]; the crate that *defines* a
//! wrapped error provides the `From` impl (allowed by the orphan rule
//! because the source type is local there) via the typed constructors
//! below. `Display` renders the category plus the source message, and
//! [`Error::source`] exposes the original error for callers that want to
//! downcast.
//!
//! # Examples
//!
//! ```
//! use evlab_util::error::EvlabError;
//! use evlab_util::json::Json;
//!
//! fn parse(text: &str) -> Result<Json, EvlabError> {
//!     Ok(Json::parse(text)?)
//! }
//! let err = parse("{nope").unwrap_err();
//! assert!(err.to_string().contains("json"));
//! ```

use crate::json::JsonError;
use std::error::Error;
use std::fmt;
use std::io;

/// Boxed source of a wrapped per-crate error.
pub type BoxedSource = Box<dyn Error + Send + Sync + 'static>;

/// The umbrella error for application-level (`serve`, bench-binary) code.
#[derive(Debug)]
pub enum EvlabError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON parse failure ([`crate::json::JsonError`]).
    Json(JsonError),
    /// Events were not time-ordered (`evlab_events::EventOrderError`).
    EventOrder(BoxedSource),
    /// An AER word failed to decode (`evlab_events::aer::DecodeAerError`).
    DecodeAer(BoxedSource),
    /// An event-stream file failed to read
    /// (`evlab_events::io::ReadStreamError`).
    ReadStream(BoxedSource),
    /// A tensor shape mismatch (`evlab_tensor::tensor::ShapeError`).
    Shape(BoxedSource),
    /// A snapshot/WAL framing failure ([`crate::frame::FrameError`] or
    /// [`crate::frame::RecordError`]).
    Frame(BoxedSource),
    /// A serve-runtime failure (unknown session, closed session, …).
    Serve(String),
    /// Free-form application error.
    Msg(String),
}

impl EvlabError {
    /// Wraps an `EventOrderError` (used by its `From` impl in
    /// `evlab-events`).
    pub fn event_order(source: impl Error + Send + Sync + 'static) -> Self {
        EvlabError::EventOrder(Box::new(source))
    }

    /// Wraps a `DecodeAerError` (used by its `From` impl in
    /// `evlab-events`).
    pub fn decode_aer(source: impl Error + Send + Sync + 'static) -> Self {
        EvlabError::DecodeAer(Box::new(source))
    }

    /// Wraps a `ReadStreamError` (used by its `From` impl in
    /// `evlab-events`).
    pub fn read_stream(source: impl Error + Send + Sync + 'static) -> Self {
        EvlabError::ReadStream(Box::new(source))
    }

    /// Wraps a `ShapeError` (used by its `From` impl in `evlab-tensor`).
    pub fn shape(source: impl Error + Send + Sync + 'static) -> Self {
        EvlabError::Shape(Box::new(source))
    }

    /// Wraps a [`crate::frame::FrameError`] or
    /// [`crate::frame::RecordError`] from the snapshot/WAL layer.
    pub fn frame(source: impl Error + Send + Sync + 'static) -> Self {
        EvlabError::Frame(Box::new(source))
    }

    /// A serve-runtime error with the given message.
    pub fn serve(message: impl Into<String>) -> Self {
        EvlabError::Serve(message.into())
    }

    /// A free-form application error.
    pub fn msg(message: impl Into<String>) -> Self {
        EvlabError::Msg(message.into())
    }
}

impl fmt::Display for EvlabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvlabError::Io(e) => write!(f, "i/o error: {e}"),
            EvlabError::Json(e) => write!(f, "json error: {e}"),
            EvlabError::EventOrder(e) => write!(f, "event order error: {e}"),
            EvlabError::DecodeAer(e) => write!(f, "aer decode error: {e}"),
            EvlabError::ReadStream(e) => write!(f, "stream read error: {e}"),
            EvlabError::Shape(e) => write!(f, "shape error: {e}"),
            EvlabError::Frame(e) => write!(f, "frame error: {e}"),
            EvlabError::Serve(m) => write!(f, "serve error: {m}"),
            EvlabError::Msg(m) => write!(f, "{m}"),
        }
    }
}

impl Error for EvlabError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvlabError::Io(e) => Some(e),
            EvlabError::Json(e) => Some(e),
            EvlabError::EventOrder(e)
            | EvlabError::DecodeAer(e)
            | EvlabError::ReadStream(e)
            | EvlabError::Shape(e)
            | EvlabError::Frame(e) => Some(e.as_ref()),
            EvlabError::Serve(_) | EvlabError::Msg(_) => None,
        }
    }
}

impl From<io::Error> for EvlabError {
    fn from(e: io::Error) -> Self {
        EvlabError::Io(e)
    }
}

impl From<JsonError> for EvlabError {
    fn from(e: JsonError) -> Self {
        EvlabError::Json(e)
    }
}

impl From<String> for EvlabError {
    fn from(m: String) -> Self {
        EvlabError::Msg(m)
    }
}

impl From<&str> for EvlabError {
    fn from(m: &str) -> Self {
        EvlabError::Msg(m.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_round_trips_through_question_mark() {
        fn fails() -> Result<(), EvlabError> {
            Err(io::Error::new(io::ErrorKind::NotFound, "missing"))?;
            Ok(())
        }
        let e = fails().unwrap_err();
        assert!(matches!(e, EvlabError::Io(_)));
        assert!(e.to_string().contains("missing"));
        assert!(e.source().is_some());
    }

    #[test]
    fn json_errors_convert() {
        let parse = crate::json::Json::parse("{broken");
        let e: EvlabError = parse.unwrap_err().into();
        assert!(matches!(e, EvlabError::Json(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn boxed_variants_expose_source() {
        #[derive(Debug)]
        struct Dummy;
        impl fmt::Display for Dummy {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "dummy failure")
            }
        }
        impl Error for Dummy {}
        let e = EvlabError::shape(Dummy);
        assert!(e.to_string().contains("dummy failure"));
        assert!(e.source().unwrap().to_string().contains("dummy"));
    }

    #[test]
    fn serve_and_msg_have_no_source() {
        assert!(EvlabError::serve("queue full").source().is_none());
        assert_eq!(EvlabError::msg("plain").to_string(), "plain");
    }
}
