//! Deterministic, seeded fault injection for event-camera pipelines.
//!
//! The paper's Table I partly grades the three paradigms on how they cope
//! with the messy reality of event-camera data — shot noise, hot pixels,
//! bus corruption, timestamp disorder. The lab, however, always feeds the
//! pipelines clean simulator output. This module closes that gap with a
//! *reproducible* fault model: every corruption decision is a pure
//! function of a seed and the event's position in the stream, so a chaos
//! run can be replayed bit-for-bit (and is independent of
//! `EVLAB_THREADS`, because injection happens serially at ingest).
//!
//! # Fault taxonomy
//!
//! | key        | spec form      | model                                         |
//! |------------|----------------|-----------------------------------------------|
//! | `corrupt`  | `corrupt=P`    | flip 1–3 random bits of an AER word           |
//! | `drop`     | `drop=P`       | lose an event/word (packet loss)              |
//! | `dup`      | `dup=P`        | deliver an event/word twice (retransmission)  |
//! | `reorder`  | `reorder=P:S`  | jitter a timestamp by up to ±S µs             |
//! | `drift`    | `drift=PPM`    | multiply timestamps by `1 + PPM·1e-6`         |
//! | `rollover` | `rollover=OFF` | shift by OFF µs, wrap at the 32-bit boundary  |
//! | `hot`      | `hot=K:P`      | K hot pixels each firing alongside real events|
//! | `burst`    | `burst=P:N`    | inject an N-event noise burst                 |
//! | `file_trunc` | `file_trunc=P` | truncate a durable file at a seeded offset  |
//! | `file_torn`  | `file_torn=P`  | garble a durable file's tail (torn write)   |
//!
//! Rates are probabilities in `[0, 1]` per offered event. Fault decisions
//! are **nested across rates**: the per-event uniform draw depends only on
//! `(seed, index)`, so the events dropped at rate 0.1 are a subset of
//! those dropped at rate 0.3 — degradation curves are monotone by
//! construction in the *set* of surviving events, which keeps chaos sweeps
//! well-behaved.
//!
//! # Spec strings
//!
//! A spec is a comma-separated `key=value` list, e.g.
//! `seed=42,drop=0.05,corrupt=0.01,reorder=0.2:300`. The `EVLAB_FAULTS`
//! environment variable carries the same syntax and is read once (cached)
//! via [`env_spec`]; an empty/unset variable disables injection.
//!
//! # Examples
//!
//! ```
//! use evlab_util::fault::{FaultInjector, FaultSpec, RawEvent};
//!
//! let spec: FaultSpec = "seed=7,drop=0.5".parse().unwrap();
//! let mut inj = FaultInjector::new(&spec);
//! let events: Vec<RawEvent> = (0..100)
//!     .map(|i| RawEvent { t_us: i * 10, x: 1, y: 1, on: true })
//!     .collect();
//! let out = inj.apply_events(&events, (16, 16));
//! assert!(out.len() < 100, "half the events are gone");
//! let mut replay = FaultInjector::new(&spec);
//! assert_eq!(replay.apply_events(&events, (16, 16)), out, "replayable");
//! ```

use crate::obs;
use crate::rng::Rng64;
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Environment variable carrying the fault spec (`EVLAB_FAULTS`).
pub const ENV_FAULTS: &str = "EVLAB_FAULTS";

/// The 32-bit timestamp boundary (µs) that sensor timestamps wrap at.
pub const ROLLOVER_PERIOD_US: u64 = 1 << 32;

/// A plain event view, so the fault layer (which sits below `evlab-events`
/// in the dependency graph) can transform events without naming the
/// `Event` type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Timestamp in microseconds.
    pub t_us: u64,
    /// Pixel column.
    pub x: u16,
    /// Pixel row.
    pub y: u16,
    /// Polarity (`true` = ON).
    pub on: bool,
}

/// Error produced by [`FaultSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending `key=value` item.
    pub item: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec item `{}`: {}", self.item, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

impl From<FaultSpecError> for crate::EvlabError {
    fn from(e: FaultSpecError) -> Self {
        crate::EvlabError::msg(e.to_string())
    }
}

/// A parsed, composable fault configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for every stochastic fault decision.
    pub seed: u64,
    /// Probability of corrupting an AER word (1–3 bit flips).
    pub corrupt: f64,
    /// Probability of dropping an event/word.
    pub drop: f64,
    /// Probability of duplicating an event/word.
    pub dup: f64,
    /// Probability of jittering a timestamp.
    pub reorder: f64,
    /// Maximum timestamp displacement (µs) of a jittered event.
    pub reorder_skew_us: u64,
    /// Clock drift in parts-per-million (0 = no drift).
    pub drift_ppm: f64,
    /// Offset (µs) added before wrapping at 2³² µs; `None` disables the
    /// rollover model entirely (timestamps stay unwrapped u64).
    pub rollover_offset_us: Option<u64>,
    /// Number of hot/stuck pixels.
    pub hot_pixels: usize,
    /// Probability per real event that each hot pixel also fires.
    pub hot_rate: f64,
    /// Probability per real event of starting a noise burst.
    pub burst: f64,
    /// Events per noise burst.
    pub burst_len: usize,
    /// Probability of truncating a durable file at a seeded offset
    /// (crash mid-write), applied per [`FaultInjector::damage_file`] call.
    pub file_trunc: f64,
    /// Probability of garbling a durable file's tail bytes (torn sector
    /// write), applied per [`FaultInjector::damage_file`] call.
    pub file_torn: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            corrupt: 0.0,
            drop: 0.0,
            dup: 0.0,
            reorder: 0.0,
            reorder_skew_us: 0,
            drift_ppm: 0.0,
            rollover_offset_us: None,
            hot_pixels: 0,
            hot_rate: 0.0,
            burst: 0.0,
            burst_len: 0,
            file_trunc: 0.0,
            file_torn: 0.0,
        }
    }
}

fn parse_rate(item: &str, v: &str) -> Result<f64, FaultSpecError> {
    let p: f64 = v.parse().map_err(|_| FaultSpecError {
        item: item.to_string(),
        reason: format!("`{v}` is not a number"),
    })?;
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultSpecError {
            item: item.to_string(),
            reason: format!("rate {p} outside [0, 1]"),
        });
    }
    Ok(p)
}

fn parse_u64(item: &str, v: &str) -> Result<u64, FaultSpecError> {
    v.parse().map_err(|_| FaultSpecError {
        item: item.to_string(),
        reason: format!("`{v}` is not an integer"),
    })
}

impl FaultSpec {
    /// Parses a comma-separated `key=value` spec string. Whitespace around
    /// items is ignored; an empty string yields the no-fault default.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] on an unknown key, malformed number, or
    /// out-of-range rate.
    pub fn parse(text: &str) -> Result<FaultSpec, FaultSpecError> {
        let mut spec = FaultSpec::default();
        for raw in text.split(',') {
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = item.split_once('=').ok_or_else(|| FaultSpecError {
                item: item.to_string(),
                reason: "expected key=value".to_string(),
            })?;
            match key {
                "seed" => spec.seed = parse_u64(item, value)?,
                "corrupt" => spec.corrupt = parse_rate(item, value)?,
                "drop" => spec.drop = parse_rate(item, value)?,
                "dup" => spec.dup = parse_rate(item, value)?,
                "reorder" => {
                    let (p, skew) = value.split_once(':').ok_or_else(|| FaultSpecError {
                        item: item.to_string(),
                        reason: "expected reorder=P:SKEW_US".to_string(),
                    })?;
                    spec.reorder = parse_rate(item, p)?;
                    spec.reorder_skew_us = parse_u64(item, skew)?;
                }
                "drift" => {
                    spec.drift_ppm = value.parse().map_err(|_| FaultSpecError {
                        item: item.to_string(),
                        reason: format!("`{value}` is not a number"),
                    })?;
                }
                "rollover" => spec.rollover_offset_us = Some(parse_u64(item, value)?),
                "hot" => {
                    let (k, p) = value.split_once(':').ok_or_else(|| FaultSpecError {
                        item: item.to_string(),
                        reason: "expected hot=K:RATE".to_string(),
                    })?;
                    spec.hot_pixels = parse_u64(item, k)? as usize;
                    spec.hot_rate = parse_rate(item, p)?;
                }
                "burst" => {
                    let (p, n) = value.split_once(':').ok_or_else(|| FaultSpecError {
                        item: item.to_string(),
                        reason: "expected burst=P:LEN".to_string(),
                    })?;
                    spec.burst = parse_rate(item, p)?;
                    spec.burst_len = parse_u64(item, n)? as usize;
                }
                "file_trunc" => spec.file_trunc = parse_rate(item, value)?,
                "file_torn" => spec.file_torn = parse_rate(item, value)?,
                other => {
                    return Err(FaultSpecError {
                        item: item.to_string(),
                        reason: format!("unknown fault key `{other}`"),
                    })
                }
            }
        }
        Ok(spec)
    }

    /// Whether any fault model is active.
    pub fn is_active(&self) -> bool {
        self.corrupt > 0.0
            || self.drop > 0.0
            || self.dup > 0.0
            || self.reorder > 0.0
            || self.drift_ppm != 0.0
            || self.rollover_offset_us.is_some()
            || (self.hot_pixels > 0 && self.hot_rate > 0.0)
            || (self.burst > 0.0 && self.burst_len > 0)
            || self.file_trunc > 0.0
            || self.file_torn > 0.0
    }

    /// Returns a copy with a different seed (e.g. per session or per
    /// sample, derived from the base seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy restricted to the order-preserving sensor-side
    /// faults (drop, dup, hot pixels, burst, drift) — the transforms a
    /// sensor can exhibit *before* the AER bus, which never break the
    /// monotone-timestamp contract of `EventStream`.
    pub fn sensor_subset(&self) -> FaultSpec {
        FaultSpec {
            corrupt: 0.0,
            reorder: 0.0,
            reorder_skew_us: 0,
            rollover_offset_us: None,
            file_trunc: 0.0,
            file_torn: 0.0,
            ..self.clone()
        }
    }
}

impl FromStr for FaultSpec {
    type Err = FaultSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultSpec::parse(s)
    }
}

/// The cached `EVLAB_FAULTS` spec, or `None` when unset/empty/inactive.
///
/// Read once per process: chaos runs set the variable before launch, and
/// caching keeps hot ingest paths from re-parsing per call. A malformed
/// spec is reported on stderr once and treated as inactive — a typo in a
/// chaos harness must degrade to a clean run, not a panic.
pub fn env_spec() -> Option<&'static FaultSpec> {
    static SPEC: OnceLock<Option<FaultSpec>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let text = std::env::var(ENV_FAULTS).unwrap_or_default();
        if text.trim().is_empty() {
            return None;
        }
        match FaultSpec::parse(&text) {
            Ok(spec) if spec.is_active() => Some(spec),
            Ok(_) => None,
            Err(e) => {
                eprintln!("[fault] ignoring malformed {ENV_FAULTS}: {e}");
                None
            }
        }
    })
    .as_ref()
}

/// Counters describing what one injector did — mirrored into the
/// `fault.*` obs counters when observability is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Events/words offered to the injector.
    pub offered: u64,
    /// Events/words dropped.
    pub dropped: u64,
    /// Events/words duplicated.
    pub duplicated: u64,
    /// AER words with flipped bits.
    pub corrupted: u64,
    /// Events whose timestamps were jittered.
    pub reordered: u64,
    /// Hot-pixel events injected.
    pub hot_events: u64,
    /// Burst-noise events injected.
    pub burst_events: u64,
    /// Events whose timestamps wrapped at the 32-bit boundary.
    pub rolled_over: u64,
    /// Durable files truncated at a seeded offset.
    pub file_truncated: u64,
    /// Durable files whose tail bytes were garbled (torn write).
    pub file_torn: u64,
}

impl FaultReport {
    /// Total events/words injected beyond the offered stream.
    pub fn injected(&self) -> u64 {
        self.duplicated + self.hot_events + self.burst_events
    }

    fn publish(&self) {
        obs::counter_add("fault.offered", self.offered);
        obs::counter_add("fault.dropped", self.dropped);
        obs::counter_add("fault.duplicated", self.duplicated);
        obs::counter_add("fault.corrupted", self.corrupted);
        obs::counter_add("fault.reordered", self.reordered);
        obs::counter_add("fault.hot_events", self.hot_events);
        obs::counter_add("fault.burst_events", self.burst_events);
        obs::counter_add("fault.rolled_over", self.rolled_over);
        obs::counter_add("fault.file.truncated", self.file_truncated);
        obs::counter_add("fault.file.torn", self.file_torn);
    }
}

/// Per-event keyed uniform draw in `[0, 1)`: depends only on
/// `(seed, index, channel)`, so fault decisions are nested across rates
/// and independent of how many other fault models are active.
fn keyed_uniform(seed: u64, index: u64, channel: u64) -> f64 {
    let mut rng = Rng64::seed_from_u64(
        seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ channel.rotate_left(32),
    );
    rng.next_f64()
}

/// Channel tags separating the independent per-event fault decisions.
mod chan {
    pub const DROP: u64 = 1;
    pub const DUP: u64 = 2;
    pub const CORRUPT: u64 = 3;
    pub const REORDER: u64 = 4;
    pub const HOT: u64 = 5;
    pub const BURST: u64 = 6;
    pub const DETAIL: u64 = 7;
    pub const FILE_TRUNC: u64 = 8;
    pub const FILE_TORN: u64 = 9;
}

/// A stateful, seeded injector applying one [`FaultSpec`].
///
/// Two entry points: [`FaultInjector::apply_events`] transforms decoded
/// events (sensor output — order-preserving faults keep the stream
/// sorted; timestamp faults may leave it *disordered*, which is the
/// point), and [`FaultInjector::apply_words`] / [`FaultInjector::word`]
/// transform 64-bit AER words (serve ingress).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    index: u64,
    report: FaultReport,
}

impl FaultInjector {
    /// Creates an injector for the given spec.
    pub fn new(spec: &FaultSpec) -> Self {
        FaultInjector {
            spec: spec.clone(),
            index: 0,
            report: FaultReport::default(),
        }
    }

    /// What the injector has done so far.
    pub fn report(&self) -> FaultReport {
        self.report
    }

    /// Publishes the current report into the `fault.*` obs counters and
    /// resets the running report.
    pub fn publish_report(&mut self) -> FaultReport {
        let r = self.report;
        r.publish();
        self.report = FaultReport::default();
        r
    }

    fn draw(&self, channel: u64) -> f64 {
        keyed_uniform(self.spec.seed, self.index, channel)
    }

    /// A deterministic detail RNG for the current event (bit positions,
    /// jitter magnitudes, burst contents) — separate from the rate draws
    /// so adding detail entropy never perturbs which events are faulted.
    fn detail_rng(&self) -> Rng64 {
        Rng64::seed_from_u64(
            self.spec.seed
                ^ self
                    .index
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                    .wrapping_add(chan::DETAIL),
        )
    }

    fn transform_time(&mut self, t_us: u64, rng: &mut Option<Rng64>) -> u64 {
        let mut t = t_us;
        if self.spec.drift_ppm != 0.0 {
            let drifted = t as f64 * (1.0 + self.spec.drift_ppm * 1e-6);
            t = drifted.max(0.0) as u64;
        }
        if self.spec.reorder > 0.0 && self.draw(chan::REORDER) < self.spec.reorder {
            let skew = self.spec.reorder_skew_us;
            if skew > 0 {
                let r = rng.get_or_insert_with(|| self.detail_rng());
                let jitter = r.next_below(2 * skew + 1) as i64 - skew as i64;
                t = t.saturating_add_signed(jitter);
                self.report.reordered += 1;
            }
        }
        if let Some(offset) = self.spec.rollover_offset_us {
            let shifted = t.wrapping_add(offset);
            let wrapped = shifted % ROLLOVER_PERIOD_US;
            if wrapped != shifted {
                self.report.rolled_over += 1;
            }
            t = wrapped;
        }
        t
    }

    /// Applies the order-preserving and timestamp fault models to a slice
    /// of decoded events. The output is re-sorted **only** when no
    /// disordering fault (reorder jitter, rollover) is active; otherwise
    /// the disorder is the injected fault and downstream ingestion must
    /// cope (that is what `evlab_events::reorder::ReorderBuffer` is for).
    pub fn apply_events(&mut self, events: &[RawEvent], resolution: (u16, u16)) -> Vec<RawEvent> {
        let mut out = Vec::with_capacity(events.len());
        let (w, h) = (resolution.0.max(1), resolution.1.max(1));
        // Hot pixels are fixed per spec seed, not per event.
        let hot: Vec<(u16, u16, bool)> = {
            let mut r = Rng64::seed_from_u64(self.spec.seed ^ 0x1107);
            (0..self.spec.hot_pixels)
                .map(|_| {
                    (
                        r.next_below(w as u64) as u16,
                        r.next_below(h as u64) as u16,
                        r.bernoulli(0.5),
                    )
                })
                .collect()
        };
        for e in events {
            self.report.offered += 1;
            let mut detail = None;
            if self.spec.drop > 0.0 && self.draw(chan::DROP) < self.spec.drop {
                self.report.dropped += 1;
                self.index += 1;
                continue;
            }
            let t = self.transform_time(e.t_us, &mut detail);
            let faulted = RawEvent { t_us: t, ..*e };
            out.push(faulted);
            if self.spec.dup > 0.0 && self.draw(chan::DUP) < self.spec.dup {
                self.report.duplicated += 1;
                out.push(faulted);
            }
            if self.spec.hot_rate > 0.0 && self.draw(chan::HOT) < self.spec.hot_rate {
                let r = detail.get_or_insert_with(|| self.detail_rng());
                for &(hx, hy, hp) in &hot {
                    // A stuck pixel fires with the real event's timing
                    // plus a little deterministic smear.
                    let smear = r.next_below(16);
                    out.push(RawEvent {
                        t_us: t.saturating_add(smear),
                        x: hx,
                        y: hy,
                        on: hp,
                    });
                    self.report.hot_events += 1;
                }
            }
            if self.spec.burst > 0.0
                && self.spec.burst_len > 0
                && self.draw(chan::BURST) < self.spec.burst
            {
                let r = detail.get_or_insert_with(|| self.detail_rng());
                for _ in 0..self.spec.burst_len {
                    out.push(RawEvent {
                        t_us: t.saturating_add(r.next_below(64)),
                        x: r.next_below(w as u64) as u16,
                        y: r.next_below(h as u64) as u16,
                        on: r.bernoulli(0.5),
                    });
                    self.report.burst_events += 1;
                }
            }
            self.index += 1;
        }
        if !self.disorders_time() {
            // Injected hot/burst events carry smeared timestamps; keep the
            // sensor-side contract (monotone time) when no disordering
            // fault was requested. The sort key includes arrival order so
            // ties resolve deterministically.
            let mut keyed: Vec<(u64, usize, RawEvent)> = out
                .into_iter()
                .enumerate()
                .map(|(i, e)| (e.t_us, i, e))
                .collect();
            keyed.sort_unstable_by_key(|&(t, i, _)| (t, i));
            out = keyed.into_iter().map(|(_, _, e)| e).collect();
        }
        out
    }

    /// Whether the active spec can emit non-monotone timestamps.
    pub fn disorders_time(&self) -> bool {
        (self.spec.reorder > 0.0 && self.spec.reorder_skew_us > 0)
            || self.spec.rollover_offset_us.is_some()
    }

    /// Applies the word-level fault models to one AER word at serve
    /// ingress: `None` means the word was dropped; one or two copies
    /// otherwise (duplication), possibly with flipped bits.
    pub fn word(&mut self, word: u64) -> (Option<u64>, Option<u64>) {
        self.report.offered += 1;
        if self.spec.drop > 0.0 && self.draw(chan::DROP) < self.spec.drop {
            self.report.dropped += 1;
            self.index += 1;
            return (None, None);
        }
        let mut w = word;
        if self.spec.corrupt > 0.0 && self.draw(chan::CORRUPT) < self.spec.corrupt {
            let mut r = self.detail_rng();
            let flips = 1 + r.next_below(3);
            for _ in 0..flips {
                w ^= 1u64 << r.next_below(64);
            }
            self.report.corrupted += 1;
        }
        let dup = if self.spec.dup > 0.0 && self.draw(chan::DUP) < self.spec.dup {
            self.report.duplicated += 1;
            Some(w)
        } else {
            None
        };
        self.index += 1;
        (Some(w), dup)
    }

    /// Applies the file-level fault models to the raw bytes of a durable
    /// artifact (a snapshot or WAL as it would land on disk): `file_trunc`
    /// truncates at a seeded offset (crash mid-write), `file_torn` XORs
    /// nonzero masks over the final bytes (torn sector write — length
    /// preserved, content garbled). Returns `true` if the bytes were
    /// damaged.
    ///
    /// Each call consumes one injector index, so a sequence of files is
    /// damaged deterministically and the decisions nest across rates like
    /// every other fault channel.
    pub fn damage_file(&mut self, bytes: &mut Vec<u8>) -> bool {
        let mut detail = None;
        let mut damaged = false;
        if !bytes.is_empty()
            && self.spec.file_trunc > 0.0
            && self.draw(chan::FILE_TRUNC) < self.spec.file_trunc
        {
            let r = detail.get_or_insert_with(|| self.detail_rng());
            let keep = r.next_below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
            self.report.file_truncated += 1;
            damaged = true;
        }
        if !bytes.is_empty()
            && self.spec.file_torn > 0.0
            && self.draw(chan::FILE_TORN) < self.spec.file_torn
        {
            let r = detail.get_or_insert_with(|| self.detail_rng());
            let n = 1 + r.next_below(bytes.len().min(16) as u64) as usize;
            let start = bytes.len() - n;
            for b in &mut bytes[start..] {
                // XOR with a nonzero mask: every torn byte really changes.
                *b ^= 1 + r.next_below(255) as u8;
            }
            self.report.file_torn += 1;
            damaged = true;
        }
        self.index += 1;
        damaged
    }

    /// Applies the word-level fault models to a batch of AER words.
    pub fn apply_words(&mut self, words: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(words.len());
        for &word in words {
            let (first, dup) = self.word(word);
            out.extend(first);
            out.extend(dup);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(n: u64) -> Vec<RawEvent> {
        (0..n)
            .map(|i| RawEvent {
                t_us: i * 100,
                x: (i % 16) as u16,
                y: (i % 16) as u16,
                on: i % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn parse_full_spec() {
        let s = FaultSpec::parse(
            "seed=42, corrupt=0.01, drop=0.05, dup=0.02, reorder=0.2:300, \
             drift=150, rollover=4294000000, hot=3:0.1, burst=0.01:40",
        )
        .expect("valid spec");
        assert_eq!(s.seed, 42);
        assert_eq!(s.reorder_skew_us, 300);
        assert_eq!(s.rollover_offset_us, Some(4_294_000_000));
        assert_eq!(s.hot_pixels, 3);
        assert_eq!(s.burst_len, 40);
        assert!(s.is_active());
    }

    #[test]
    fn parse_rejects_bad_items() {
        assert!(FaultSpec::parse("drop=1.5").is_err());
        assert!(FaultSpec::parse("nonsense=1").is_err());
        assert!(FaultSpec::parse("drop").is_err());
        assert!(FaultSpec::parse("reorder=0.1").is_err());
        let e = FaultSpec::parse("drop=x").unwrap_err();
        assert!(e.to_string().contains("drop=x"));
    }

    #[test]
    fn empty_spec_is_inactive() {
        let s = FaultSpec::parse("").expect("empty ok");
        assert!(!s.is_active());
        assert_eq!(s, FaultSpec::default());
        assert!(!FaultSpec::parse("seed=9").unwrap().is_active());
    }

    #[test]
    fn drops_are_nested_across_rates() {
        let base = events(400);
        let lo = FaultInjector::new(&FaultSpec::parse("seed=5,drop=0.1").unwrap())
            .apply_events(&base, (16, 16));
        let hi = FaultInjector::new(&FaultSpec::parse("seed=5,drop=0.4").unwrap())
            .apply_events(&base, (16, 16));
        assert!(hi.len() < lo.len());
        // Every survivor at the higher rate also survives the lower rate.
        for e in &hi {
            assert!(lo.contains(e), "rate nesting violated");
        }
    }

    #[test]
    fn injector_is_deterministic() {
        let spec =
            FaultSpec::parse("seed=3,drop=0.1,dup=0.1,hot=2:0.2,burst=0.05:8").unwrap();
        let base = events(300);
        let a = FaultInjector::new(&spec).apply_events(&base, (16, 16));
        let b = FaultInjector::new(&spec).apply_events(&base, (16, 16));
        assert_eq!(a, b);
        assert_ne!(a.len(), base.len());
    }

    #[test]
    fn order_preserving_faults_keep_time_monotone() {
        let spec = FaultSpec::parse("seed=8,dup=0.3,hot=4:0.3,burst=0.1:16,drift=500").unwrap();
        let mut inj = FaultInjector::new(&spec);
        assert!(!inj.disorders_time());
        let out = inj.apply_events(&events(500), (16, 16));
        for w in out.windows(2) {
            assert!(w[0].t_us <= w[1].t_us, "sensor-side faults reordered time");
        }
        let r = inj.report();
        assert!(r.hot_events > 0 && r.burst_events > 0 && r.duplicated > 0);
    }

    #[test]
    fn reorder_jitter_is_bounded() {
        let spec = FaultSpec::parse("seed=2,reorder=1.0:250").unwrap();
        let mut inj = FaultInjector::new(&spec);
        assert!(inj.disorders_time());
        let base = events(200);
        let out = inj.apply_events(&base, (16, 16));
        assert_eq!(out.len(), base.len());
        for (orig, faulted) in base.iter().zip(&out) {
            let d = orig.t_us.abs_diff(faulted.t_us);
            assert!(d <= 250, "jitter {d} exceeds skew");
        }
        assert!(inj.report().reordered > 150);
    }

    #[test]
    fn rollover_wraps_at_32_bits() {
        let offset = ROLLOVER_PERIOD_US - 50_000;
        let spec = FaultSpec::default();
        let spec = FaultSpec {
            rollover_offset_us: Some(offset),
            ..spec
        };
        let mut inj = FaultInjector::new(&spec);
        let out = inj.apply_events(&events(1000), (16, 16));
        // The stream straddles the boundary: late timestamps wrapped to
        // small values while early ones stayed large.
        assert!(out.iter().any(|e| e.t_us > ROLLOVER_PERIOD_US - 60_000));
        assert!(out.iter().any(|e| e.t_us < 60_000));
        assert!(inj.report().rolled_over > 0);
    }

    #[test]
    fn word_faults_drop_corrupt_duplicate() {
        let spec = FaultSpec::parse("seed=6,drop=0.2,corrupt=0.2,dup=0.2").unwrap();
        let mut inj = FaultInjector::new(&spec);
        let words: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0xABCD_EF01)).collect();
        let out = inj.apply_words(&words);
        let r = inj.report();
        assert!(r.dropped > 50 && r.corrupted > 50 && r.duplicated > 50);
        assert_eq!(
            out.len() as u64,
            r.offered - r.dropped + r.duplicated,
            "survivors + dups account for every word"
        );
        // Replays identically.
        let again = FaultInjector::new(&spec).apply_words(&words);
        assert_eq!(out, again);
    }

    #[test]
    fn sensor_subset_strips_disordering_faults() {
        let spec =
            FaultSpec::parse("seed=1,drop=0.1,corrupt=0.5,reorder=0.5:100,rollover=7").unwrap();
        let sub = spec.sensor_subset();
        assert_eq!(sub.corrupt, 0.0);
        assert_eq!(sub.reorder, 0.0);
        assert_eq!(sub.rollover_offset_us, None);
        assert_eq!(sub.drop, 0.1);
        assert!(!FaultInjector::new(&sub).disorders_time());
    }

    #[test]
    fn file_faults_parse_and_activate() {
        let s = FaultSpec::parse("seed=11,file_trunc=0.5,file_torn=0.25").expect("valid");
        assert_eq!(s.file_trunc, 0.5);
        assert_eq!(s.file_torn, 0.25);
        assert!(s.is_active());
        assert!(FaultSpec::parse("file_trunc=2").is_err());
        // File faults never reach the sensor-side subset.
        let sub = s.sensor_subset();
        assert_eq!(sub.file_trunc, 0.0);
        assert_eq!(sub.file_torn, 0.0);
    }

    #[test]
    fn damage_file_is_deterministic_and_counted() {
        let spec = FaultSpec::parse("seed=13,file_trunc=0.5,file_torn=0.5").unwrap();
        let run = |spec: &FaultSpec| {
            let mut inj = FaultInjector::new(spec);
            let files: Vec<Vec<u8>> = (0..64u8)
                .map(|i| {
                    let mut f: Vec<u8> = (0..200u8).map(|b| b ^ i).collect();
                    inj.damage_file(&mut f);
                    f
                })
                .collect();
            (files, inj.report())
        };
        let (a, ra) = run(&spec);
        let (b, rb) = run(&spec);
        assert_eq!(a, b, "file damage must replay bit-identically");
        assert_eq!(ra, rb);
        assert!(ra.file_truncated > 10, "truncations fired: {}", ra.file_truncated);
        assert!(ra.file_torn > 10, "torn writes fired: {}", ra.file_torn);
        // Truncation shortens; a torn write alone preserves length but
        // garbles content.
        assert!(a.iter().any(|f| f.len() < 200));
        assert!(a
            .iter()
            .enumerate()
            .any(|(i, f)| f.len() == 200 && *f != (0..200u8).map(|b| b ^ i as u8).collect::<Vec<_>>()));
    }

    #[test]
    fn file_faults_nest_across_rates() {
        let file = |i: u8| -> Vec<u8> { vec![i; 64] };
        let damaged_at = |rate: &str| -> Vec<bool> {
            let spec = FaultSpec::parse(&format!("seed=17,file_trunc={rate}")).unwrap();
            let mut inj = FaultInjector::new(&spec);
            (0..128u8)
                .map(|i| {
                    let mut f = file(i);
                    inj.damage_file(&mut f)
                })
                .collect()
        };
        let lo = damaged_at("0.1");
        let hi = damaged_at("0.6");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(!l || h, "file {i} damaged at 0.1 but not at 0.6");
        }
    }

    #[test]
    fn publish_report_resets() {
        let spec = FaultSpec::parse("seed=4,drop=0.5").unwrap();
        let mut inj = FaultInjector::new(&spec);
        inj.apply_events(&events(100), (16, 16));
        let r = inj.publish_report();
        assert!(r.dropped > 0);
        assert_eq!(inj.report(), FaultReport::default());
    }
}
