//! Shared utilities for the `evlab` workspace.
//!
//! This crate is dependency-free and provides the deterministic building
//! blocks every other `evlab` crate relies on:
//!
//! * [`rng::Rng64`] — a seedable xoshiro256++ pseudo-random number generator.
//!   All stochastic components of the workspace (sensor noise, weight
//!   initialization, dataset generation) draw from this generator so that
//!   every experiment is bit-reproducible across platforms.
//! * [`stats`] — running statistics, percentiles and histogram helpers used
//!   by the event-rate analyses and the benchmark reports.
//! * [`lut::ExpDecayLut`] — a lookup table for `exp(-dt/tau)` used by the
//!   event-driven spiking-neuron simulation, mirroring how digital
//!   neuromorphic hardware approximates exponential leak.
//! * [`fixed::Q16`] — a Q16.16 fixed-point type used by the hardware cost
//!   models to mimic integer-arithmetic datapaths.
//! * [`par`] — the std-only parallel execution layer (scoped threads,
//!   static chunking, ordered reduction) behind every hot path, controlled
//!   by `EVLAB_THREADS`.
//! * [`obs`] — the pipeline observability layer (named counters, span
//!   timers, fixed-bucket histograms) behind the `EVLAB_OBS` toggle, a
//!   no-op single branch on hot paths while off.
//! * [`json::Json`] — a minimal JSON writer/parser so reports and
//!   benchmark artifacts need no external serialization crates.
//! * [`error::EvlabError`] — the workspace-wide umbrella error that the
//!   serve runtime and the bench binaries return instead of `expect`-ing;
//!   the per-crate error types convert into it via `From`.
//! * [`fault`] — the seeded, deterministic fault-injection layer (AER word
//!   corruption, drop/duplication, timestamp disorder, hot pixels, burst
//!   noise, file truncation/torn writes) behind the `EVLAB_FAULTS` spec
//!   string, applied at sensor output, serve ingress and durable files
//!   for chaos runs.
//! * [`frame`] — versioned, CRC-framed binary serialization
//!   ([`frame::StateSnapshot`], checksummed record streams) under the
//!   crash-consistent checkpoint/WAL recovery layer in `evlab-serve`.
//! * [`check`] — the zero-cost-when-off runtime invariant layer behind
//!   `EVLAB_CHECK` (default on in debug builds): core data structures
//!   implement [`check::Invariant`] and their mutating entry points call
//!   [`check::run`], so contract drift panics at the corrupting operation
//!   instead of surfacing many operations later.
//!
//! # Examples
//!
//! ```
//! use evlab_util::rng::Rng64;
//!
//! let mut rng = Rng64::seed_from_u64(42);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```

pub mod check;
pub mod error;
pub mod fault;
pub mod fixed;
pub mod frame;
pub mod json;
pub mod lut;
pub mod obs;
pub mod par;
pub mod rng;
pub mod stats;

pub use error::EvlabError;
pub use fixed::Q16;
pub use lut::ExpDecayLut;
pub use rng::Rng64;
