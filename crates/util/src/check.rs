//! Zero-cost-when-off runtime invariant layer.
//!
//! The differential fuzz lab (`fuzz_lab` in `evlab-bench`) and the paper
//! pipelines share one failure mode that unit tests are bad at catching:
//! a data structure that silently drifts out of its documented contract
//! (a reorder buffer releasing an event before its skew horizon, a
//! sliding window whose out-edge lists stop mirroring its in-edge lists,
//! a CSR matrix with a non-monotone row pointer) and only corrupts
//! results many operations later. This module turns those contracts into
//! machine-checked invariants:
//!
//! * Core structures implement [`Invariant`], enumerating every internal
//!   consistency requirement through [`Report::require`].
//! * Mutating entry points call [`run`] on themselves. When checking is
//!   **off** — the default in release builds — that call is a single
//!   relaxed atomic load. When **on**, a violated invariant records
//!   `check.violations` / `check.<name>.violations` observability
//!   counters plus a process-global tally ([`total_violations`]) and then
//!   panics with the violation list, so the failing operation is caught
//!   at the moment of corruption rather than at the symptom.
//!
//! Checking is enabled by `EVLAB_CHECK=1` (any value other than `0` or
//! empty), disabled by `EVLAB_CHECK=0`, and defaults to **on under
//! `cfg(debug_assertions)`** — the workspace test suite therefore runs
//! fully checked, while release serving pays one branch per call site.
//! [`set_enabled`] overrides both for the current process (used by the
//! fuzz lab, which checks unconditionally regardless of build profile).
//!
//! # Examples
//!
//! ```
//! use evlab_util::check::{self, Invariant, Report};
//!
//! struct Window { len: usize, cap: usize }
//! impl Invariant for Window {
//!     fn invariant_name(&self) -> &'static str { "window" }
//!     fn check_invariants(&self, r: &mut Report) {
//!         r.require(self.len <= self.cap, || {
//!             format!("len {} exceeds cap {}", self.len, self.cap)
//!         });
//!     }
//! }
//!
//! check::set_enabled(true);
//! check::run(&Window { len: 3, cap: 8 }); // fine
//! assert!(check::verify(&Window { len: 9, cap: 8 }).len() == 1);
//! ```

use crate::obs;
use std::sync::atomic::{AtomicI8, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-wide override: -1 = follow `EVLAB_CHECK` / build profile,
/// 0 = forced off, 1 = forced on.
static OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// The `EVLAB_CHECK` / `debug_assertions` default, read once.
static DEFAULT: OnceLock<bool> = OnceLock::new();

/// Invariant runs performed while enabled (cheap liveness signal).
static RUNS: AtomicU64 = AtomicU64::new(0);

/// Violations detected since process start. Recorded *before* the panic,
/// so a harness that catches the unwind (the fuzz lab) still sees the
/// tally — and so does this module's own gate even when `EVLAB_OBS` is
/// off and no `check.*` counter was recorded.
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// Whether invariant checking is active. One relaxed atomic load on the
/// fast path; the environment is consulted once per process.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => *DEFAULT.get_or_init(|| match std::env::var("EVLAB_CHECK") {
            Ok(v) => {
                let v = v.trim();
                !v.is_empty() && v != "0"
            }
            Err(_) => cfg!(debug_assertions),
        }),
    }
}

/// Forces checking on or off for this process, overriding `EVLAB_CHECK`
/// and the build-profile default.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(i8::from(on), Ordering::Relaxed);
}

/// Reverts [`set_enabled`] to the `EVLAB_CHECK` / build-profile default.
pub fn clear_override() {
    OVERRIDE.store(-1, Ordering::Relaxed);
}

/// Invariant runs performed so far while checking was enabled.
pub fn total_runs() -> u64 {
    RUNS.load(Ordering::Relaxed)
}

/// Invariant violations detected so far (normally the process panics on
/// the first one; a harness catching the unwind reads the tally here).
pub fn total_violations() -> u64 {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// Collects the violations of one invariant check.
#[derive(Debug)]
pub struct Report {
    name: &'static str,
    violations: Vec<String>,
}

impl Report {
    /// Records a violation when `cond` is false. The message closure runs
    /// only on failure, so passing checks never format strings.
    pub fn require(&mut self, cond: bool, msg: impl FnOnce() -> String) {
        if !cond {
            self.violations.push(msg());
        }
    }

    /// The invariant name this report was opened for.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A machine-checkable consistency contract over a data structure.
pub trait Invariant {
    /// Stable kebab-case name, used in `check.<name>.violations` counters
    /// and panic messages.
    fn invariant_name(&self) -> &'static str;

    /// Enumerates every internal consistency requirement through
    /// [`Report::require`]. Must not mutate observable state.
    fn check_invariants(&self, r: &mut Report);
}

/// Runs `x`'s invariants as a pure query — no gating, no counters, no
/// panic — returning the violation messages. Unit tests use this to
/// assert that a deliberately corrupted structure *is* flagged.
pub fn verify<T: Invariant + ?Sized>(x: &T) -> Vec<String> {
    let mut r = Report {
        name: x.invariant_name(),
        violations: Vec::new(),
    };
    x.check_invariants(&mut r);
    r.violations
}

/// Checks `x`'s invariants when checking is [`enabled`]. Records
/// `check.runs` plus, per violation, `check.violations` and
/// `check.<name>.violations`; then panics listing every violation.
///
/// # Panics
///
/// Panics if any invariant is violated (that is the point: the contract
/// broke *here*, not wherever the corrupted state is consumed later).
pub fn run<T: Invariant + ?Sized>(x: &T) {
    if !enabled() {
        return;
    }
    RUNS.fetch_add(1, Ordering::Relaxed);
    obs::counter_add("check.runs", 1);
    let violations = verify(x);
    if violations.is_empty() {
        return;
    }
    let name = x.invariant_name();
    VIOLATIONS.fetch_add(violations.len() as u64, Ordering::Relaxed);
    obs::counter_add("check.violations", violations.len() as u64);
    obs::counter_add(&format!("check.{name}.violations"), violations.len() as u64);
    panic!(
        "invariant `{name}` violated ({} finding{}):\n  {}",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" },
        violations.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    struct Counter {
        value: u64,
        bound: u64,
    }

    impl Invariant for Counter {
        fn invariant_name(&self) -> &'static str {
            "test-counter"
        }

        fn check_invariants(&self, r: &mut Report) {
            r.require(self.value <= self.bound, || {
                format!("value {} exceeds bound {}", self.value, self.bound)
            });
            r.require(self.bound > 0, || "zero bound".to_string());
        }
    }

    #[test]
    fn verify_reports_each_violation() {
        assert!(verify(&Counter { value: 1, bound: 4 }).is_empty());
        assert_eq!(verify(&Counter { value: 9, bound: 4 }).len(), 1);
        assert_eq!(verify(&Counter { value: 9, bound: 0 }).len(), 2);
    }

    // One test, not several: `set_enabled` is process-global, and the
    // test harness runs tests concurrently.
    #[test]
    fn run_respects_override_and_counts_violations() {
        set_enabled(false);
        let before = total_violations();
        // Would panic if checking were active.
        run(&Counter { value: 9, bound: 0 });
        assert_eq!(total_violations(), before);

        set_enabled(true);
        run(&Counter { value: 1, bound: 4 });
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run(&Counter { value: 9, bound: 4 });
        }));
        clear_override();
        assert!(caught.is_err(), "violation must panic");
        assert_eq!(total_violations(), before + 1);
    }

    #[test]
    fn messages_are_lazy() {
        let mut r = Report {
            name: "lazy",
            violations: Vec::new(),
        };
        r.require(true, || unreachable!("message built for a passing check"));
        assert!(r.violations.is_empty());
    }
}
