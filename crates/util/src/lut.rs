//! Exponential-decay lookup table.
//!
//! Digital neuromorphic processors do not evaluate `exp()` in hardware; they
//! approximate the membrane leak `exp(-dt/tau)` with a small lookup table or
//! a bit-shift decay. [`ExpDecayLut`] reproduces that approximation so the
//! event-driven SNN simulation matches what a hardware implementation would
//! compute, and exposes the worst-case approximation error so tests can bound
//! the deviation from the analytic model.

/// Lookup table for `exp(-dt / tau)` over `dt ∈ [0, horizon]`.
///
/// Values of `dt` beyond the horizon decay to exactly zero, mirroring the
/// state flush hardware performs for long-silent neurons.
///
/// # Examples
///
/// ```
/// use evlab_util::lut::ExpDecayLut;
///
/// let lut = ExpDecayLut::new(10.0, 100.0, 1024);
/// let approx = lut.decay(5.0);
/// let exact = (-5.0f64 / 10.0).exp();
/// assert!((approx - exact).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExpDecayLut {
    tau: f64,
    horizon: f64,
    table: Vec<f64>,
}

impl ExpDecayLut {
    /// Builds a table with `entries` samples of `exp(-dt/tau)` for
    /// `dt ∈ [0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `tau <= 0`, `horizon <= 0`, or `entries < 2`.
    pub fn new(tau: f64, horizon: f64, entries: usize) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(entries >= 2, "need at least two table entries");
        let table = (0..entries)
            .map(|i| {
                let dt = horizon * i as f64 / (entries - 1) as f64;
                (-dt / tau).exp()
            })
            .collect();
        ExpDecayLut {
            tau,
            horizon,
            table,
        }
    }

    /// Time constant the table was built for.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Time horizon beyond which the decay is flushed to zero.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Returns the approximated `exp(-dt/tau)` using linear interpolation
    /// between table entries. Negative `dt` is treated as zero elapsed time;
    /// `dt > horizon` returns 0.
    pub fn decay(&self, dt: f64) -> f64 {
        if dt <= 0.0 {
            return 1.0;
        }
        if dt >= self.horizon {
            return 0.0;
        }
        let pos = dt / self.horizon * (self.table.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let frac = pos - lo as f64;
        self.table[lo] * (1.0 - frac) + self.table[lo + 1] * frac
    }

    /// Worst-case absolute error versus the analytic exponential, sampled at
    /// `samples` midpoints. Useful for sizing the table in tests.
    pub fn max_error(&self, samples: usize) -> f64 {
        (0..samples)
            .map(|i| {
                let dt = self.horizon * (i as f64 + 0.5) / samples as f64;
                (self.decay(dt) - (-dt / self.tau).exp()).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let lut = ExpDecayLut::new(1.0, 10.0, 64);
        assert_eq!(lut.decay(0.0), 1.0);
        assert_eq!(lut.decay(-5.0), 1.0);
        assert_eq!(lut.decay(10.0), 0.0);
        assert_eq!(lut.decay(1e9), 0.0);
    }

    #[test]
    fn error_shrinks_with_table_size() {
        let coarse = ExpDecayLut::new(5.0, 50.0, 16).max_error(1000);
        let fine = ExpDecayLut::new(5.0, 50.0, 4096).max_error(1000);
        assert!(fine < coarse);
        assert!(fine < 1e-6, "fine table error {fine}");
    }

    #[test]
    fn decay_is_monotone() {
        let lut = ExpDecayLut::new(2.0, 20.0, 256);
        let mut prev = 1.0;
        for i in 1..200 {
            let v = lut.decay(0.1 * i as f64);
            assert!(v <= prev + 1e-12, "non-monotone at {i}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn zero_tau_panics() {
        ExpDecayLut::new(0.0, 1.0, 8);
    }
}
