//! Q16.16 fixed-point arithmetic.
//!
//! The hardware cost models in `evlab-hw` and the quantized inference paths
//! operate on integer datapaths. [`Q16`] provides a saturating Q16.16
//! fixed-point number so quantization effects (rounding, saturation) can be
//! reproduced deterministically, without floating-point unit behaviour
//! leaking into "hardware" results.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Number of fractional bits in the Q16.16 format.
pub const FRACTIONAL_BITS: u32 = 16;
const ONE_RAW: i64 = 1 << FRACTIONAL_BITS;

/// A saturating signed Q16.16 fixed-point number.
///
/// The representable range is approximately `[-32768, 32768)` with a
/// resolution of `2^-16 ≈ 1.5e-5`. All arithmetic saturates instead of
/// wrapping, mirroring typical accelerator ALUs.
///
/// # Examples
///
/// ```
/// use evlab_util::fixed::Q16;
///
/// let a = Q16::from_f64(1.5);
/// let b = Q16::from_f64(2.0);
/// assert_eq!((a * b).to_f64(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q16(i32);

impl Q16 {
    /// The value zero.
    pub const ZERO: Q16 = Q16(0);
    /// The value one.
    pub const ONE: Q16 = Q16(ONE_RAW as i32);
    /// Largest representable value.
    pub const MAX: Q16 = Q16(i32::MAX);
    /// Most negative representable value.
    pub const MIN: Q16 = Q16(i32::MIN);

    /// Converts from `f64`, rounding to nearest and saturating.
    pub fn from_f64(x: f64) -> Self {
        let raw = (x * ONE_RAW as f64).round();
        if raw >= i32::MAX as f64 {
            Q16(i32::MAX)
        } else if raw <= i32::MIN as f64 {
            Q16(i32::MIN)
        } else {
            Q16(raw as i32)
        }
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / ONE_RAW as f64
    }

    /// Creates a value from its raw two's-complement representation.
    pub fn from_raw(raw: i32) -> Self {
        Q16(raw)
    }

    /// Raw two's-complement representation.
    pub fn raw(self) -> i32 {
        self.0
    }

    /// Saturating multiplication.
    pub fn saturating_mul(self, rhs: Q16) -> Q16 {
        let wide = (self.0 as i64 * rhs.0 as i64) >> FRACTIONAL_BITS;
        Q16(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Saturating division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn saturating_div(self, rhs: Q16) -> Q16 {
        assert!(rhs.0 != 0, "division by zero");
        let wide = ((self.0 as i64) << FRACTIONAL_BITS) / rhs.0 as i64;
        Q16(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Absolute value (saturating for `MIN`).
    pub fn abs(self) -> Q16 {
        Q16(self.0.saturating_abs())
    }

    /// Quantization step of the format (`2^-16`).
    pub fn epsilon() -> f64 {
        1.0 / ONE_RAW as f64
    }
}

impl Add for Q16 {
    type Output = Q16;
    fn add(self, rhs: Q16) -> Q16 {
        Q16(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Q16 {
    type Output = Q16;
    fn sub(self, rhs: Q16) -> Q16 {
        Q16(self.0.saturating_sub(rhs.0))
    }
}

impl Mul for Q16 {
    type Output = Q16;
    fn mul(self, rhs: Q16) -> Q16 {
        self.saturating_mul(rhs)
    }
}

impl Div for Q16 {
    type Output = Q16;
    fn div(self, rhs: Q16) -> Q16 {
        self.saturating_div(rhs)
    }
}

impl Neg for Q16 {
    type Output = Q16;
    fn neg(self) -> Q16 {
        Q16(self.0.saturating_neg())
    }
}

impl fmt::Display for Q16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.5}", self.to_f64())
    }
}

impl From<i16> for Q16 {
    fn from(x: i16) -> Q16 {
        Q16((x as i32) << FRACTIONAL_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_values() {
        for x in [-3.25, -0.5, 0.0, 0.75, 1.0, 123.456] {
            let q = Q16::from_f64(x);
            assert!((q.to_f64() - x).abs() <= Q16::epsilon(), "{x}");
        }
    }

    #[test]
    fn arithmetic_matches_float() {
        let a = Q16::from_f64(2.5);
        let b = Q16::from_f64(-1.25);
        assert_eq!((a + b).to_f64(), 1.25);
        assert_eq!((a - b).to_f64(), 3.75);
        assert_eq!((a * b).to_f64(), -3.125);
        assert_eq!((a / b).to_f64(), -2.0);
        assert_eq!((-a).to_f64(), -2.5);
        assert_eq!(b.abs().to_f64(), 1.25);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let big = Q16::from_f64(30_000.0);
        assert_eq!(big + big, Q16::MAX);
        assert_eq!(big * big, Q16::MAX);
        assert_eq!((-big) * big, Q16::MIN);
        assert_eq!(Q16::from_f64(1e12), Q16::MAX);
        assert_eq!(Q16::from_f64(-1e12), Q16::MIN);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Q16::ONE / Q16::ZERO;
    }

    #[test]
    fn from_i16() {
        assert_eq!(Q16::from(5i16).to_f64(), 5.0);
        assert_eq!(Q16::from(-5i16).to_f64(), -5.0);
    }
}
