//! Versioned, CRC-framed binary state serialization.
//!
//! The recovery layer (durable session snapshots and the event WAL in
//! `evlab-serve`) needs a binary format with three properties the JSON
//! module cannot give it: **bit-exactness** (an `f64` pool accumulator or
//! an `f32` membrane potential must restore to the identical bit
//! pattern, or replay diverges), **integrity** (a torn or bit-flipped
//! file must be *detected*, never silently half-loaded), and **torn-tail
//! tolerance** (a log whose producer died mid-append must yield its
//! clean prefix). This module provides those primitives; the state
//! owners above implement [`StateSnapshot`] over them.
//!
//! # Formats
//!
//! A **snapshot** file ([`snapshot_to_bytes`] / [`restore_from_bytes`]):
//!
//! ```text
//! magic "EVCK" | format version u16 | kind (len-prefixed str)
//! | state version u16 | payload len u64 | payload | crc32
//! ```
//!
//! The trailing CRC-32 (IEEE) covers every byte before it, so any
//! truncation or corruption anywhere in the file fails validation as a
//! whole — a snapshot is valid in full or not at all.
//!
//! A **record** stream ([`write_record`] / [`RecordCursor`]), the framing
//! under the write-ahead log:
//!
//! ```text
//! record := payload len u32 | payload | crc32(payload)
//! ```
//!
//! Records are self-delimiting and individually checksummed: a reader
//! walks the stream record by record and stops at the first frame that
//! is short or fails its CRC — the torn tail a crash mid-append leaves
//! behind ([`RecordError::TornTail`]). Everything before it is intact by
//! construction.
//!
//! All integers are little-endian; floats are serialized as their IEEE
//! bit patterns, so round-trips are bit-exact (NaN payloads included).
//!
//! # Examples
//!
//! ```
//! use evlab_util::frame::{Decoder, Encoder, FrameError, StateSnapshot};
//!
//! struct Counter(u64);
//! impl StateSnapshot for Counter {
//!     fn state_kind(&self) -> &'static str { "counter" }
//!     fn save_state(&self, enc: &mut Encoder) { enc.put_u64(self.0); }
//!     fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
//!         self.0 = dec.take_u64()?;
//!         Ok(())
//!     }
//! }
//!
//! let saved = evlab_util::frame::snapshot_to_bytes(&Counter(41));
//! let mut restored = Counter(0);
//! evlab_util::frame::restore_from_bytes(&mut restored, &saved).unwrap();
//! assert_eq!(restored.0, 41);
//! ```

use crate::EvlabError;
use std::fmt;

/// Snapshot file magic: `EVCK` (evlab checkpoint).
pub const MAGIC: [u8; 4] = *b"EVCK";
/// Current snapshot container format version.
pub const VERSION: u16 = 1;

/// Bytes of framing overhead per record (length prefix + CRC).
pub const RECORD_OVERHEAD: usize = 4 + 4;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the checksum zlib/PNG/Ethernet use.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Continues a CRC-32 over another chunk; start from `0xFFFF_FFFF` and
/// finish by XOR-ing with `0xFFFF_FFFF` (what [`crc32`] does in one go).
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Why a snapshot failed to decode or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The magic bytes did not match [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// Unsupported container format version.
    BadVersion {
        /// The version found.
        found: u16,
    },
    /// The snapshot holds state of a different kind than the target.
    KindMismatch {
        /// The target's [`StateSnapshot::state_kind`].
        expected: String,
        /// The kind recorded in the snapshot.
        found: String,
    },
    /// The snapshot's state version differs from the target's.
    StateVersionMismatch {
        /// The target's [`StateSnapshot::state_version`].
        expected: u16,
        /// The version recorded in the snapshot.
        found: u16,
    },
    /// The trailing checksum did not match the content.
    CrcMismatch {
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum computed over the content.
        found: u32,
    },
    /// The buffer ended before the structure was complete.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// A decoded value violated a structural invariant (bad enum tag,
    /// impossible length, state-shape mismatch against the live target).
    Corrupt {
        /// Byte offset of the offending value (best effort).
        offset: usize,
        /// What was violated.
        what: String,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:?}, expected {MAGIC:?}")
            }
            FrameError::BadVersion { found } => {
                write!(f, "unsupported snapshot format version {found}")
            }
            FrameError::KindMismatch { expected, found } => {
                write!(f, "snapshot holds `{found}` state, target is `{expected}`")
            }
            FrameError::StateVersionMismatch { expected, found } => {
                write!(f, "snapshot state version {found}, target expects {expected}")
            }
            FrameError::CrcMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: file says {expected:#010x}, content is {found:#010x}"
            ),
            FrameError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            FrameError::Corrupt { offset, what } => {
                write!(f, "corrupt snapshot at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for EvlabError {
    fn from(e: FrameError) -> Self {
        EvlabError::frame(e)
    }
}

/// Why walking a record stream stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The stream ends in an incomplete or checksum-failing record — the
    /// signature a crash mid-append leaves. Every record before `offset`
    /// was intact.
    TornTail {
        /// Byte offset of the first unusable record.
        offset: usize,
        /// Why the record was unusable.
        reason: TornReason,
    },
}

/// How the tail record was unusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer bytes remain than a record header needs.
    ShortHeader,
    /// The length prefix promises more payload than the stream holds.
    ShortPayload,
    /// The record's checksum failed (partial or bit-flipped write).
    BadCrc,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::TornTail { offset, reason } => {
                let why = match reason {
                    TornReason::ShortHeader => "short header",
                    TornReason::ShortPayload => "short payload",
                    TornReason::BadCrc => "checksum failure",
                };
                write!(f, "torn record at byte {offset}: {why}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

// ---------------------------------------------------------------------------
// Encoder / Decoder primitives.
// ---------------------------------------------------------------------------

/// Little-endian byte-buffer writer for snapshot payloads.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE bit pattern (bit-exact round trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its IEEE bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends an optional `u64` (presence byte + value).
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed `f32` slice, bit patterns verbatim.
    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Appends a length-prefixed `f64` slice, bit patterns verbatim.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }
}

/// Cursor over a snapshot payload; every `take_*` is bounds-checked and
/// returns [`FrameError::Truncated`] instead of panicking on short input.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// A [`FrameError::Corrupt`] anchored at the current offset — for
    /// `load_state` implementations to report structural violations.
    pub fn corrupt(&self, what: impl Into<String>) -> FrameError {
        FrameError::Corrupt {
            offset: self.pos,
            what: what.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated { offset: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] if the buffer is exhausted; likewise for
    /// every other `take_*`.
    pub fn take_u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn take_u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn take_u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an `i64`.
    pub fn take_i64(&mut self) -> Result<i64, FrameError> {
        Ok(self.take_u64()? as i64)
    }

    /// Reads an `f32` from its IEEE bit pattern.
    pub fn take_f32(&mut self) -> Result<f32, FrameError> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    /// Reads an `f64` from its IEEE bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn take_bool(&mut self) -> Result<bool, FrameError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(FrameError::Corrupt {
                offset: self.pos - 1,
                what: format!("bool byte {other}"),
            }),
        }
    }

    /// Reads an optional `u64` written by [`Encoder::put_opt_u64`].
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, FrameError> {
        if self.take_bool()? {
            Ok(Some(self.take_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed byte slice. The length is validated
    /// against the remaining buffer before any allocation, so a corrupt
    /// length cannot trigger an absurd reservation.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], FrameError> {
        let len = self.take_len()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, FrameError> {
        let at = self.pos;
        std::str::from_utf8(self.take_bytes()?).map_err(|_| FrameError::Corrupt {
            offset: at,
            what: "invalid UTF-8 in string".to_string(),
        })
    }

    /// Reads a length prefix, bounded by the remaining bytes.
    fn take_len(&mut self) -> Result<usize, FrameError> {
        let at = self.pos;
        let len = self.take_u64()?;
        if len > self.remaining() as u64 {
            return Err(FrameError::Corrupt {
                offset: at,
                what: format!("length {len} exceeds remaining {} bytes", self.remaining()),
            });
        }
        Ok(len as usize)
    }

    /// Reads a length prefix for multi-byte elements, validating
    /// `count * size` against the remaining bytes.
    fn take_count(&mut self, size: usize) -> Result<usize, FrameError> {
        let at = self.pos;
        let n = self.take_u64()?;
        if n.saturating_mul(size as u64) > self.remaining() as u64 {
            return Err(FrameError::Corrupt {
                offset: at,
                what: format!("{n} elements of {size} bytes exceed the remaining buffer"),
            });
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn take_f32_vec(&mut self) -> Result<Vec<f32>, FrameError> {
        let n = self.take_count(4)?;
        (0..n).map(|_| self.take_f32()).collect()
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>, FrameError> {
        let n = self.take_count(8)?;
        (0..n).map(|_| self.take_f64()).collect()
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn take_u64_vec(&mut self) -> Result<Vec<u64>, FrameError> {
        let n = self.take_count(8)?;
        (0..n).map(|_| self.take_u64()).collect()
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn take_u32_vec(&mut self) -> Result<Vec<u32>, FrameError> {
        let n = self.take_count(4)?;
        (0..n).map(|_| self.take_u32()).collect()
    }
}

// ---------------------------------------------------------------------------
// The snapshot trait and container.
// ---------------------------------------------------------------------------

/// Session state that can round-trip through the snapshot container.
///
/// Implementors serialize only their **session-mutable** state —
/// construction parameters (weights, configs, resolutions) are supplied
/// by whoever builds the target object before `load_state`, and
/// `load_state` must validate that the serialized shapes match the live
/// object rather than trusting the bytes.
///
/// The contract is bit-exactness: `save_state` then `load_state` into an
/// identically-constructed object must leave it behaviourally identical
/// to the original — every future output bit-for-bit the same.
pub trait StateSnapshot {
    /// Short identifier of the state's type (e.g. `"snn-online"`);
    /// recorded in the container and verified on restore.
    fn state_kind(&self) -> &'static str;

    /// Version of this implementor's payload layout; bump on layout
    /// changes. Verified on restore.
    fn state_version(&self) -> u16 {
        1
    }

    /// Serializes the session-mutable state into `enc`.
    fn save_state(&self, enc: &mut Encoder);

    /// Restores state serialized by [`StateSnapshot::save_state`],
    /// replacing the target's current session state.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] if the payload is truncated, corrupt, or
    /// shaped for a differently-constructed object.
    fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError>;
}

/// Serializes `state` into a self-validating snapshot container
/// (magic, versions, kind, payload, trailing CRC-32).
pub fn snapshot_to_bytes(state: &dyn StateSnapshot) -> Vec<u8> {
    let mut payload = Encoder::new();
    state.save_state(&mut payload);
    let payload = payload.into_bytes();
    let mut out = Encoder::new();
    out.buf.extend_from_slice(&MAGIC);
    out.put_u16(VERSION);
    out.put_str(state.state_kind());
    out.put_u16(state.state_version());
    out.put_bytes(&payload);
    let crc = crc32(out.as_bytes());
    out.put_u32(crc);
    out.into_bytes()
}

/// Validates a snapshot container (magic, versions, kind, CRC) and
/// restores its payload into `state`.
///
/// Validation order matters for crash recovery: the CRC is checked over
/// the *whole* container before a single payload byte reaches
/// `load_state`, so a torn or bit-flipped snapshot is rejected atomically
/// and the target object is left untouched.
///
/// # Errors
///
/// Returns [`FrameError`] describing the first violation found.
pub fn restore_from_bytes(state: &mut dyn StateSnapshot, bytes: &[u8]) -> Result<(), FrameError> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(FrameError::Truncated { offset: bytes.len() });
    }
    let (content, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let computed = crc32(content);
    if stored != computed {
        return Err(FrameError::CrcMismatch {
            expected: stored,
            found: computed,
        });
    }
    let mut dec = Decoder::new(content);
    let magic = dec.take(4)?;
    if magic != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(FrameError::BadMagic { found });
    }
    let version = dec.take_u16()?;
    if version != VERSION {
        return Err(FrameError::BadVersion { found: version });
    }
    let kind = dec.take_str()?;
    if kind != state.state_kind() {
        return Err(FrameError::KindMismatch {
            expected: state.state_kind().to_string(),
            found: kind.to_string(),
        });
    }
    let state_version = dec.take_u16()?;
    if state_version != state.state_version() {
        return Err(FrameError::StateVersionMismatch {
            expected: state.state_version(),
            found: state_version,
        });
    }
    let payload = dec.take_bytes()?;
    if !dec.is_exhausted() {
        return Err(dec.corrupt("trailing bytes after snapshot payload"));
    }
    let mut pdec = Decoder::new(payload);
    state.load_state(&mut pdec)?;
    if !pdec.is_exhausted() {
        return Err(pdec.corrupt("trailing bytes after state payload"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Length-prefixed, checksummed record framing (the WAL substrate).
// ---------------------------------------------------------------------------

/// Appends one framed record (`len | payload | crc32(payload)`) to `out`.
pub fn write_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Walks a record stream, yielding each intact payload in order and
/// stopping at the first torn frame.
///
/// # Examples
///
/// ```
/// use evlab_util::frame::{write_record, RecordCursor};
///
/// let mut log = Vec::new();
/// write_record(&mut log, b"first");
/// write_record(&mut log, b"second");
/// log.truncate(log.len() - 3); // crash mid-append
///
/// let mut cur = RecordCursor::new(&log);
/// assert_eq!(cur.next_record().unwrap(), Some(&b"first"[..]));
/// assert!(cur.next_record().is_err(), "torn tail detected");
/// ```
#[derive(Debug, Clone)]
pub struct RecordCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordCursor<'a> {
    /// A cursor at the start of the stream.
    pub fn new(buf: &'a [u8]) -> Self {
        RecordCursor { buf, pos: 0 }
    }

    /// Byte offset of the next unread record.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Yields the next record's payload, `Ok(None)` at a clean end of
    /// stream (the cursor sits exactly on the stream boundary).
    ///
    /// # Errors
    ///
    /// [`RecordError::TornTail`] when the remaining bytes are not a whole,
    /// checksum-valid record. The cursor does not advance past a torn
    /// frame; everything yielded before it was intact.
    pub fn next_record(&mut self) -> Result<Option<&'a [u8]>, RecordError> {
        let remaining = self.buf.len() - self.pos;
        if remaining == 0 {
            return Ok(None);
        }
        if remaining < 4 {
            return Err(RecordError::TornTail {
                offset: self.pos,
                reason: TornReason::ShortHeader,
            });
        }
        let len = u32::from_le_bytes([
            self.buf[self.pos],
            self.buf[self.pos + 1],
            self.buf[self.pos + 2],
            self.buf[self.pos + 3],
        ]) as usize;
        if remaining < 4 + len + 4 {
            return Err(RecordError::TornTail {
                offset: self.pos,
                reason: TornReason::ShortPayload,
            });
        }
        let payload = &self.buf[self.pos + 4..self.pos + 4 + len];
        let at = self.pos + 4 + len;
        let stored =
            u32::from_le_bytes([self.buf[at], self.buf[at + 1], self.buf[at + 2], self.buf[at + 3]]);
        if stored != crc32(payload) {
            return Err(RecordError::TornTail {
                offset: self.pos,
                reason: TornReason::BadCrc,
            });
        }
        self.pos = at + 4;
        Ok(Some(payload))
    }
}

/// Atomically writes raw bytes to `path` via a sibling temp file and
/// rename — the binary sibling of [`crate::json::write_atomic`], sharing
/// its guarantee: a crash mid-write never leaves a partial file at
/// `path`, and the temp file never outlives a failure.
///
/// # Errors
///
/// Returns [`EvlabError::Io`] if the write or the rename fails; the temp
/// file is removed on either failure.
pub fn write_atomic_bytes(
    path: impl AsRef<std::path::Path>,
    contents: &[u8],
) -> Result<(), EvlabError> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    if let Err(e) = std::fs::write(&tmp, contents) {
        // A partial temp file may exist even when the write errored.
        let _ = std::fs::remove_file(&tmp);
        return Err(EvlabError::Io(e));
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(EvlabError::Io(e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u16(u16::MAX);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX - 1);
        enc.put_i64(-42);
        enc.put_f32(f32::NAN);
        enc.put_f64(-0.0);
        enc.put_bool(true);
        enc.put_opt_u64(None);
        enc.put_opt_u64(Some(9));
        enc.put_str("héllo");
        enc.put_f32_slice(&[1.5, f32::MIN_POSITIVE]);
        enc.put_f64_slice(&[1e300]);
        enc.put_u64_slice(&[1, 2, 3]);
        enc.put_u32_slice(&[4, 5]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_u8().unwrap(), 7);
        assert_eq!(dec.take_u16().unwrap(), u16::MAX);
        assert_eq!(dec.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.take_i64().unwrap(), -42);
        assert!(dec.take_f32().unwrap().is_nan());
        assert_eq!(dec.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.take_bool().unwrap());
        assert_eq!(dec.take_opt_u64().unwrap(), None);
        assert_eq!(dec.take_opt_u64().unwrap(), Some(9));
        assert_eq!(dec.take_str().unwrap(), "héllo");
        let f = dec.take_f32_vec().unwrap();
        assert_eq!(f[0].to_bits(), 1.5f32.to_bits());
        assert_eq!(f[1].to_bits(), f32::MIN_POSITIVE.to_bits());
        assert_eq!(dec.take_f64_vec().unwrap(), vec![1e300]);
        assert_eq!(dec.take_u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(dec.take_u32_vec().unwrap(), vec![4, 5]);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn decoder_rejects_short_and_corrupt_input() {
        let mut dec = Decoder::new(&[1, 2]);
        assert!(matches!(dec.take_u64(), Err(FrameError::Truncated { .. })));
        // A length prefix beyond the buffer must not allocate or panic.
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.take_bytes(), Err(FrameError::Corrupt { .. })));
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.take_f32_vec(), Err(FrameError::Corrupt { .. })));
        // Bad bool byte.
        let mut dec = Decoder::new(&[3]);
        assert!(matches!(dec.take_bool(), Err(FrameError::Corrupt { .. })));
    }

    struct Pair {
        a: u64,
        b: Vec<f32>,
    }

    impl StateSnapshot for Pair {
        fn state_kind(&self) -> &'static str {
            "pair"
        }
        fn save_state(&self, enc: &mut Encoder) {
            enc.put_u64(self.a);
            enc.put_f32_slice(&self.b);
        }
        fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
            self.a = dec.take_u64()?;
            self.b = dec.take_f32_vec()?;
            Ok(())
        }
    }

    #[test]
    fn snapshot_container_round_trips() {
        let orig = Pair { a: 99, b: vec![1.0, f32::NAN, -0.0] };
        let bytes = snapshot_to_bytes(&orig);
        let mut back = Pair { a: 0, b: Vec::new() };
        restore_from_bytes(&mut back, &bytes).expect("valid container");
        assert_eq!(back.a, 99);
        assert_eq!(back.b.len(), 3);
        for (x, y) in orig.b.iter().zip(&back.b) {
            assert_eq!(x.to_bits(), y.to_bits(), "bit-exact floats");
        }
    }

    #[test]
    fn snapshot_detects_corruption_at_every_byte() {
        let bytes = snapshot_to_bytes(&Pair { a: 5, b: vec![2.5] });
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let mut target = Pair { a: 0, b: Vec::new() };
            let err = restore_from_bytes(&mut target, &bad);
            assert!(err.is_err(), "flip at byte {i} accepted");
            assert_eq!(target.a, 0, "corrupt restore must not touch the target");
        }
    }

    #[test]
    fn snapshot_detects_truncation_at_every_byte() {
        let bytes = snapshot_to_bytes(&Pair { a: 5, b: vec![2.5, 3.5] });
        for cut in 0..bytes.len() {
            let mut target = Pair { a: 0, b: Vec::new() };
            assert!(
                restore_from_bytes(&mut target, &bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn snapshot_rejects_kind_and_version_mismatch() {
        struct Other(u64);
        impl StateSnapshot for Other {
            fn state_kind(&self) -> &'static str {
                "other"
            }
            fn save_state(&self, enc: &mut Encoder) {
                enc.put_u64(self.0);
            }
            fn load_state(&mut self, dec: &mut Decoder) -> Result<(), FrameError> {
                self.0 = dec.take_u64()?;
                Ok(())
            }
        }
        let bytes = snapshot_to_bytes(&Other(1));
        let mut pair = Pair { a: 0, b: Vec::new() };
        assert!(matches!(
            restore_from_bytes(&mut pair, &bytes),
            Err(FrameError::KindMismatch { .. })
        ));
    }

    #[test]
    fn record_stream_yields_clean_prefix_under_any_truncation() {
        let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 1 + i as usize]).collect();
        let mut log = Vec::new();
        for p in &payloads {
            write_record(&mut log, p);
        }
        for cut in 0..=log.len() {
            let mut cur = RecordCursor::new(&log[..cut]);
            let mut got = Vec::new();
            let torn = loop {
                match cur.next_record() {
                    Ok(Some(p)) => got.push(p.to_vec()),
                    Ok(None) => break false,
                    Err(RecordError::TornTail { .. }) => break true,
                }
            };
            // Every yielded record is a true prefix of what was written.
            assert_eq!(&payloads[..got.len()], &got[..], "cut at {cut}");
            // A cut off a record boundary must be flagged torn.
            let boundary = got.iter().map(|p| p.len() + RECORD_OVERHEAD).sum::<usize>() == cut;
            assert_eq!(torn, !boundary, "cut at {cut}: torn={torn}");
        }
    }

    #[test]
    fn record_crc_failure_is_a_torn_tail() {
        let mut log = Vec::new();
        write_record(&mut log, b"abc");
        write_record(&mut log, b"defg");
        let flip = log.len() - 6; // inside the second payload
        log[flip] ^= 0xFF;
        let mut cur = RecordCursor::new(&log);
        assert_eq!(cur.next_record().unwrap(), Some(&b"abc"[..]));
        assert!(matches!(
            cur.next_record(),
            Err(RecordError::TornTail { reason: TornReason::BadCrc, .. })
        ));
    }

    #[test]
    fn write_atomic_bytes_round_trips_and_cleans_up_on_error() {
        let dir = std::env::temp_dir().join(format!("evlab_frame_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("snap.bin");
        write_atomic_bytes(&path, &[1, 2, 3]).expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), vec![1, 2, 3]);
        // Writing into a missing directory fails typed and leaves no temp.
        let missing = dir.join("nope").join("snap.bin");
        let err = write_atomic_bytes(&missing, &[9]).unwrap_err();
        assert!(matches!(err, EvlabError::Io(_)));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
