//! Minimal hand-rolled JSON support (writer + parser), std-only.
//!
//! The workspace builds in a network-isolated environment, so `serde` /
//! `serde_json` are unavailable. The few places that genuinely emit or
//! check JSON — the dichotomy report archive, the hardware reports and the
//! `hotpaths` benchmark — use this module instead. It is deliberately
//! small: a tree type, a pretty writer and a strict recursive-descent
//! parser for round-trip testing. It is not a general-purpose JSON
//! library (no escapes beyond the JSON-required set, no streaming).
//!
//! # Examples
//!
//! ```
//! use evlab_util::json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::str("evlab")),
//!     ("threads", Json::from(4u64)),
//!     ("speedup", Json::from(1.5f64)),
//! ]);
//! let text = doc.to_string_pretty();
//! let back = Json::parse(&text).expect("round trip");
//! assert_eq!(back.get("threads").and_then(Json::as_u64), Some(4));
//! ```

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A finite double. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The `(key, value)` pairs of an object, in insertion order
    /// (`None` for other variants).
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Indexes into an array (`None` for other variants).
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The elements of an array (`None` for other variants).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert losslessly within 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Unsigned integer value, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// final line, matching conventional pretty-printer output.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's shortest round-trip formatting; ensure a
                    // decimal point so the value reads back as a float.
                    let s = v.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Strict: exactly one value, standard JSON
    /// grammar. `\uXXXX` escapes cover all of Unicode — astral-plane
    /// characters arrive as `\uHHHH\uLLLL` surrogate pairs and are
    /// assembled into the real character; an unpaired surrogate half is
    /// a typed [`JsonError`], never a mangled `String`.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { pos, message: "trailing characters" });
        }
        Ok(value)
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a sibling
/// temporary file first, which is then renamed over the target. A crash
/// or failure mid-write can therefore never leave a truncated or partial
/// artifact at `path` — readers see either the old file or the new one.
///
/// # Errors
///
/// Returns [`crate::EvlabError::Io`] if the temp-file write or the rename
/// fails. On either failure the temp file is removed, so an error never
/// leaks a stray `*.tmp.<pid>` sibling.
pub fn write_atomic(
    path: impl AsRef<std::path::Path>,
    contents: &str,
) -> Result<(), crate::EvlabError> {
    crate::frame::write_atomic_bytes(path, contents.as_bytes())
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Four hex digits starting at `start`, or `None` when short or not all
/// `[0-9a-fA-F]` (stricter than `from_str_radix`, which takes a `+`).
fn hex4(bytes: &[u8], start: usize) -> Option<u32> {
    let hex = bytes.get(start..start + 4)?;
    if !hex.iter().all(u8::is_ascii_hexdigit) {
        return None;
    }
    let hex = std::str::from_utf8(hex).ok()?;
    u32::from_str_radix(hex, 16).ok()
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, message: &'static str) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { pos: *pos, message })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(JsonError { pos: *pos, message: "unexpected end of input" }),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':'")?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(JsonError { pos: *pos, message: "expected ',' or '}'" }),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError { pos: *pos, message: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError { pos: *pos, message: "invalid literal" })
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected string")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError { pos: *pos, message: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = hex4(bytes, *pos + 1)
                            .ok_or(JsonError { pos: *pos, message: "bad \\u escape" })?;
                        let ch = match hi {
                            // High surrogate: JSON encodes astral-plane
                            // characters as a \uHHHH\uLLLL pair. Assemble
                            // it; a surrogate half on its own is not a
                            // Unicode scalar value and must be rejected,
                            // never smuggled into a String.
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 5) != Some(&b'\\')
                                    || bytes.get(*pos + 6) != Some(&b'u')
                                {
                                    return Err(JsonError {
                                        pos: *pos,
                                        message: "unpaired high surrogate \\u escape",
                                    });
                                }
                                let lo = hex4(bytes, *pos + 7)
                                    .ok_or(JsonError { pos: *pos, message: "bad \\u escape" })?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(JsonError {
                                        pos: *pos,
                                        message: "unpaired high surrogate \\u escape",
                                    });
                                }
                                *pos += 6;
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or(JsonError { pos: *pos, message: "bad \\u escape" })?
                            }
                            0xDC00..=0xDFFF => {
                                return Err(JsonError {
                                    pos: *pos,
                                    message: "unpaired low surrogate \\u escape",
                                })
                            }
                            _ => char::from_u32(hi)
                                .ok_or(JsonError { pos: *pos, message: "bad \\u escape" })?,
                        };
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(JsonError { pos: *pos, message: "bad escape" }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // byte stream is valid UTF-8).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                match std::str::from_utf8(&bytes[start..*pos]) {
                    Ok(s) => out.push_str(s),
                    // Unreachable for input that arrived as a &str, but a
                    // malformed boundary must surface as a parse error,
                    // not a panic.
                    Err(_) => {
                        return Err(JsonError { pos: start, message: "invalid utf8" })
                    }
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    // The consumed bytes are all ASCII digits/signs, so this cannot fail;
    // a failure still maps to a parse error rather than a panic.
    let Ok(text) = std::str::from_utf8(&bytes[start..*pos]) else {
        return Err(JsonError { pos: start, message: "expected value" });
    };
    if text.is_empty() || text == "-" {
        return Err(JsonError { pos: start, message: "expected value" });
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError { pos: start, message: "invalid number" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj([
            ("dataset", Json::str("shapes")),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("count", Json::from(42u64)),
            ("delta", Json::Int(-7)),
            ("ratio", Json::from(0.5f64)),
            (
                "rows",
                Json::arr([
                    Json::obj([("label", Json::str("Latency"))]),
                    Json::arr([Json::from(1u64), Json::from(2u64)]),
                ]),
            ),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }

    #[test]
    fn escapes_round_trip() {
        let doc = Json::obj([("k", Json::str("a\"b\\c\nd\te\u{1}"))]);
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }

    #[test]
    fn surrogate_pairs_assemble_outside_bmp() {
        // The pair form other JSON writers emit for astral-plane
        // characters: U+1F600.
        let parsed = Json::parse(r#""\ud83d\ude00""#).expect("parses");
        assert_eq!(parsed, Json::str("\u{1F600}"));
        // Mixed-case hex, surrounded by plain text.
        let parsed = Json::parse(r#""ok \uD83D\uDE00!""#).expect("parses");
        assert_eq!(parsed, Json::str("ok \u{1F600}!"));
        // BMP escapes are unaffected, including the top of the plane.
        assert_eq!(Json::parse(r#""\uffff""#).expect("parses"), Json::str("\u{FFFF}"));
        assert_eq!(Json::parse(r#""\u0041""#).expect("parses"), Json::str("A"));
    }

    #[test]
    fn lone_surrogates_are_typed_errors() {
        for (bad, want) in [
            (r#""\ud800""#, "unpaired high surrogate \\u escape"),
            (r#""\ud83d tail""#, "unpaired high surrogate \\u escape"),
            (r#""\ud83d\n""#, "unpaired high surrogate \\u escape"),
            (r#""\ud83dA""#, "unpaired high surrogate \\u escape"),
            (r#""\ude00""#, "unpaired low surrogate \\u escape"),
            (r#""\ud83d\ude0""#, "bad \\u escape"),
            (r#""\u12g4""#, "bad \\u escape"),
            (r#""\u+123""#, "bad \\u escape"),
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert_eq!(err.message, want, "{bad}");
        }
    }

    #[test]
    fn astral_text_round_trips_through_writer() {
        // The writer emits astral characters as raw UTF-8; the parser
        // must take both that form and the escaped-pair form to the same
        // value.
        let doc = Json::obj([("emoji", Json::str("a\u{1F600}b\u{10FFFF}"))]);
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
        assert_eq!(
            Json::parse(r#"{"emoji": "a\ud83d\ude00b\udbff\udfff"}"#).expect("parses"),
            doc
        );
    }

    #[test]
    fn floats_keep_bits() {
        for v in [0.1, -1.5e-30, 123456.789, 1.0, f64::MIN_POSITIVE] {
            let text = Json::Num(v).to_string_pretty();
            let back = Json::parse(&text).expect("parses");
            assert_eq!(back.as_f64().expect("number").to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn large_u64_is_exact() {
        let v = u64::MAX - 3;
        let text = Json::from(v).to_string_pretty();
        assert_eq!(Json::parse(&text).expect("parses").as_u64(), Some(v));
    }

    #[test]
    fn integral_float_reads_back_as_float() {
        let text = Json::Num(3.0).to_string_pretty();
        assert_eq!(text, "3.0");
        assert_eq!(Json::parse(&text).expect("parses"), Json::Num(3.0));
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_pretty(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01x", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn write_atomic_replaces_target_and_leaves_no_temp() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("evlab_json_atomic_{}.json", std::process::id()));
        write_atomic(&path, "{}").expect("first write");
        write_atomic(&path, "[1]").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "[1]");
        let tmp_left = std::fs::read_dir(&dir)
            .expect("list temp dir")
            .filter_map(Result::ok)
            .any(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("evlab_json_atomic_{}.json.tmp", std::process::id()))
            });
        let _ = std::fs::remove_file(&path);
        assert!(!tmp_left, "temporary file must not survive");
    }

    #[test]
    fn write_atomic_surfaces_typed_error_and_no_temp_leak() {
        // Point at a file inside a directory that cannot be written to:
        // a path whose parent is a *file*, which fails on every platform
        // (and regardless of uid, unlike permission bits under root).
        let dir = std::env::temp_dir();
        let blocker = dir.join(format!("evlab_json_blocker_{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").expect("blocker");
        let target = blocker.join("out.json");
        let err = write_atomic(&target, "{}").expect_err("write into non-directory");
        assert!(
            matches!(err, crate::EvlabError::Io(_)),
            "expected typed Io error, got {err}"
        );
        // The failed attempt must not leak a temp sibling anywhere.
        let leaked = std::fs::read_dir(&dir)
            .expect("list temp dir")
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().contains("out.json.tmp"));
        let _ = std::fs::remove_file(&blocker);
        assert!(!leaked, "error path must not leak a temp file");
    }

    #[test]
    fn get_and_at_navigate() {
        let doc = Json::parse(r#"{"a": [10, {"b": true}]}"#).expect("parses");
        assert_eq!(doc.get("a").and_then(|a| a.at(0)).and_then(Json::as_u64), Some(10));
        assert_eq!(
            doc.get("a")
                .and_then(|a| a.at(1))
                .and_then(|o| o.get("b"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }
}
