//! Zero-dependency parallel execution built on [`std::thread::scope`].
//!
//! Every hot path in the workspace (pixel-array simulation, frame
//! encoding, LIF stepping, graph construction) funnels through the
//! primitives in this module. The design rule is **ordered reduction**:
//! work is split into *statically chunked* units whose boundaries depend
//! only on the input size (never on the thread count), each unit produces
//! an independent partial result, and partial results are combined on the
//! coordinating thread in chunk-index order. Because floating-point
//! reduction order is fixed by the chunk structure, the output of every
//! parallel path is bit-identical for any thread count — `EVLAB_THREADS=1`
//! is the exact serial fallback, not an approximation of it.
//!
//! Thread-count control, in priority order:
//!
//! 1. [`with_threads`] — a thread-local override for the current scope,
//!    used by tests and the `hotpaths` benchmark sweep. The override is
//!    propagated into every scoped worker this module spawns, so parallel
//!    regions started *from worker threads* (nested regions) see the same
//!    setting as the thread that started the outer region.
//! 2. The `EVLAB_THREADS` environment variable.
//! 3. [`std::thread::available_parallelism`].
//!
//! All three sources are clamped to `[1, MAX_THREADS]`; an absurd
//! `EVLAB_THREADS=100000` asks for [`MAX_THREADS`] workers, it does not
//! crash thread spawn mid-scope. If the OS refuses to spawn a worker
//! anyway, the worker's share of the work runs inline on the coordinating
//! thread (recorded in the `par.spawn_fallback` observability counter)
//! instead of panicking — the result is identical either way because
//! chunk structure never depends on the thread count.
//!
//! Threads are spawned per parallel region with [`std::thread::scope`],
//! which lets workers borrow from the caller's stack without `unsafe` or
//! reference counting. On Linux a scoped spawn costs ~10–20 µs; the hot
//! paths dispatch work in millisecond-scale regions, so a persistent
//! channel-fed pool (which would force `'static` closures or unsafe
//! lifetime erasure) is not worth its complexity.
//!
//! # Examples
//!
//! ```
//! use evlab_util::par;
//!
//! let partials = par::map_chunks(4, |chunk| chunk * 10);
//! assert_eq!(partials, vec![0, 10, 20, 30]);
//!
//! // The same call under a forced serial override is bit-identical.
//! let serial = par::with_threads(1, || par::map_chunks(4, |chunk| chunk * 10));
//! assert_eq!(partials, serial);
//! ```

use crate::obs;
use std::cell::Cell;
use std::ops::Range;
use std::sync::Mutex;
use std::thread;

/// Ceiling on the worker count from any source. Scoped spawns cost real
/// OS threads; far past the core count they only add scheduling overhead,
/// and unbounded requests (`EVLAB_THREADS=100000`) can exhaust process
/// limits and fail thread spawn mid-scope.
pub const MAX_THREADS: usize = 256;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count used by parallel regions started from this thread:
/// the [`with_threads`] override if active, else `EVLAB_THREADS`, else
/// [`std::thread::available_parallelism`]. Clamped to `[1, MAX_THREADS]`.
pub fn threads() -> usize {
    if let Some(n) = OVERRIDE.with(|o| o.get()) {
        return n.clamp(1, MAX_THREADS);
    }
    if let Ok(v) = std::env::var("EVLAB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, MAX_THREADS);
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_THREADS)
}

/// The raw [`with_threads`] override active on this thread, for
/// propagation into scoped workers.
fn current_override() -> Option<usize> {
    OVERRIDE.with(|o| o.get())
}

/// Runs `f` with this thread's override set to `ovr` — the worker-side
/// half of override propagation. Workers are short-lived, but the
/// previous value is still restored so nested scoped regions compose.
fn with_propagated<R>(ovr: Option<usize>, f: impl FnOnce() -> R) -> R {
    match ovr {
        Some(n) => with_threads(n, f),
        None => f(),
    }
}

/// Runs `f` with the thread count forced to `n` (clamped to
/// `[1, MAX_THREADS]` on read) for parallel regions started from the
/// current thread — and, because every scoped spawn in this module
/// carries the override along, for nested regions started from worker
/// threads too. Restores the previous setting afterwards, panic or not.
///
/// This is how the equivalence tests compare `threads = 1` against
/// `threads = 4` within one process without racing on the environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Number of chunks for an ordered reduction over `len` items: one chunk
/// per `min_per_chunk` items, clamped to `[1, max_chunks]`.
///
/// The result depends only on the input length — never on the thread
/// count — so the reduction tree (and therefore every floating-point
/// rounding) is invariant under `EVLAB_THREADS`.
pub fn chunk_count(len: usize, min_per_chunk: usize, max_chunks: usize) -> usize {
    (len / min_per_chunk.max(1)).clamp(1, max_chunks.max(1))
}

/// Splits `0..len` into `chunks` contiguous, near-equal ranges (the first
/// `len % chunks` ranges are one longer). Empty ranges never occur when
/// `chunks <= len`; for `len == 0` a single empty range is returned.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Evaluates `worker(c)` for every chunk index `c in 0..n_chunks` and
/// returns the results in chunk order.
///
/// Chunks are statically assigned: thread `t` of `T` computes chunks
/// `t, t + T, t + 2T, …`. With one thread (or one chunk) the workers run
/// inline in index order — the exact serial fallback.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn map_chunks<R: Send>(n_chunks: usize, worker: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let t = threads().min(n_chunks);
    if t <= 1 {
        return (0..n_chunks).map(worker).collect();
    }
    let ovr = current_override();
    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    thread::scope(|s| {
        let worker = &worker;
        let mut handles = Vec::with_capacity(t);
        let mut inline: Vec<(usize, R)> = Vec::new();
        for tid in 0..t {
            let spawned = thread::Builder::new().spawn_scoped(s, move || {
                with_propagated(ovr, || {
                    let mut produced = Vec::new();
                    let mut c = tid;
                    while c < n_chunks {
                        produced.push((c, worker(c)));
                        c += t;
                    }
                    produced
                })
            });
            match spawned {
                Ok(h) => handles.push(h),
                Err(_) => {
                    // The OS refused the thread: run this worker's chunks
                    // on the coordinator. Chunk structure is unchanged, so
                    // the result is bit-identical.
                    obs::counter_add("par.spawn_fallback", 1);
                    let mut c = tid;
                    while c < n_chunks {
                        inline.push((c, worker(c)));
                        c += t;
                    }
                }
            }
        }
        for h in handles {
            for (c, r) in h.join().expect("par worker panicked") {
                slots[c] = Some(r);
            }
        }
        for (c, r) in inline {
            slots[c] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every chunk computed"))
        .collect()
}

/// Runs `f(index, &mut task)` over a set of independent mutable work
/// units (typically disjoint slice chunks zipped into tuples), statically
/// assigned to threads. With one thread the tasks run inline in order.
///
/// Use this for elementwise updates where each task owns a disjoint
/// region of the output — such updates are bit-identical under any
/// chunking, so the task count may follow the thread count.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn for_each_task<T: Send>(tasks: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    let n = tasks.len();
    let t = threads().min(n);
    if t <= 1 {
        for (i, task) in tasks.iter_mut().enumerate() {
            f(i, task);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut T)>> = (0..t).map(|_| Vec::new()).collect();
    for (i, task) in tasks.iter_mut().enumerate() {
        buckets[i % t].push((i, task));
    }
    // Each bucket lives in a one-shot cell so that when a thread fails to
    // spawn (its closure is dropped unrun), the coordinator can reclaim
    // the bucket and run it inline instead of losing the work.
    type Bucket<'a, T> = Vec<(usize, &'a mut T)>;
    let cells: Vec<Mutex<Option<Bucket<'_, T>>>> =
        buckets.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let ovr = current_override();
    thread::scope(|s| {
        let f = &f;
        for cell in &cells {
            let run_bucket = move || {
                if let Some(bucket) = cell.lock().expect("par bucket cell").take() {
                    for (i, task) in bucket {
                        f(i, task);
                    }
                }
            };
            let spawned = thread::Builder::new()
                .spawn_scoped(s, move || with_propagated(ovr, run_bucket));
            if spawned.is_err() {
                obs::counter_add("par.spawn_fallback", 1);
                if let Some(bucket) = cell.lock().expect("par bucket cell").take() {
                    for (i, task) in bucket {
                        f(i, task);
                    }
                }
            }
        }
    });
}

/// Splits one mutable slice into disjoint chunks following `ranges`,
/// which must be contiguous, ascending and start at 0 (the shape
/// [`chunk_ranges`] produces). The chunks can then be zipped into task
/// tuples for [`for_each_task`].
///
/// # Panics
///
/// Panics if the ranges are not a contiguous partition of a prefix of
/// the slice.
pub fn split_slices<'a, T>(mut slice: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut covered = 0;
    for r in ranges {
        assert_eq!(r.start, covered, "ranges must be contiguous from 0");
        let (head, tail) = slice.split_at_mut(r.len());
        out.push(head);
        slice = tail;
        covered = r.end;
    }
    out
}

/// Runs two closures, `fb` on a scoped worker thread while `fa` runs on
/// the current thread, and returns both results. Used for subtree-per-task
/// recursion (kd-tree construction); the *caller* gates spawning with a
/// depth budget derived from [`threads`].
///
/// # Panics
///
/// Propagates a panic from either closure.
pub fn join<A, B>(fa: impl FnOnce() -> A + Send, fb: impl FnOnce() -> B + Send) -> (A, B)
where
    A: Send,
    B: Send,
{
    let ovr = current_override();
    // `fb` sits in a one-shot cell: normally the worker takes it, but
    // if the spawn fails (closure dropped unrun) the coordinator
    // reclaims it and runs both halves serially.
    let fb_cell = Mutex::new(Some(fb));
    thread::scope(|s| {
        let fb_cell = &fb_cell;
        let spawned = thread::Builder::new().spawn_scoped(s, || {
            with_propagated(ovr, || {
                let fb = fb_cell
                    .lock()
                    .expect("join cell")
                    .take()
                    .expect("fb taken once");
                fb()
            })
        });
        match spawned {
            Ok(hb) => {
                let a = fa();
                let b = hb.join().expect("joined worker panicked");
                (a, b)
            }
            Err(_) => {
                obs::counter_add("par.spawn_fallback", 1);
                let fb = fb_cell
                    .lock()
                    .expect("join cell")
                    .take()
                    .expect("fb unclaimed after failed spawn");
                let a = fa();
                let b = fb();
                (a, b)
            }
        }
    })
}

/// Depth budget for binary-recursive parallelism: `log2` of the thread
/// count, rounded up. A budget of 0 means "never spawn".
pub fn join_levels() -> u32 {
    let t = threads();
    if t <= 1 {
        0
    } else {
        usize::BITS - (t - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_preserves_order() {
        for t in [1, 2, 4, 7] {
            let got = with_threads(t, || map_chunks(13, |c| c * c));
            let want: Vec<usize> = (0..13).map(|c| c * c).collect();
            assert_eq!(got, want, "threads = {t}");
        }
    }

    #[test]
    fn for_each_task_touches_every_task_once() {
        for t in [1, 3, 8] {
            let mut v = vec![0u32; 17];
            let mut tasks: Vec<&mut u32> = v.iter_mut().collect();
            with_threads(t, || for_each_task(&mut tasks, |i, x| **x += i as u32 + 1));
            let want: Vec<u32> = (0..17).map(|i| i + 1).collect();
            assert_eq!(v, want, "threads = {t}");
        }
    }

    #[test]
    fn chunk_count_ignores_thread_count() {
        let a = with_threads(1, || chunk_count(100_000, 8_192, 16));
        let b = with_threads(8, || chunk_count(100_000, 8_192, 16));
        assert_eq!(a, b);
        assert_eq!(chunk_count(0, 8_192, 16), 1);
        assert_eq!(chunk_count(1 << 30, 8_192, 16), 16);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (len, chunks) in [(10, 3), (3, 10), (0, 4), (16, 16), (100, 7)] {
            let ranges = chunk_ranges(len, chunks);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous");
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn threads_clamps_absurd_overrides() {
        assert_eq!(with_threads(100_000, threads), MAX_THREADS);
        assert_eq!(with_threads(0, threads), 1);
    }

    #[test]
    fn override_propagates_into_map_chunks_workers() {
        // Workers are fresh threads with empty thread-locals; the spawn
        // must carry the override so nested regions see it.
        let seen = with_threads(3, || map_chunks(4, |_| threads()));
        assert_eq!(seen, vec![3; 4]);
    }

    #[test]
    fn override_propagates_into_for_each_task_workers() {
        let mut v = vec![0usize; 6];
        let mut tasks: Vec<&mut usize> = v.iter_mut().collect();
        with_threads(5, || for_each_task(&mut tasks, |_, t| **t = threads()));
        assert_eq!(v, vec![5; 6]);
    }

    #[test]
    fn override_propagates_into_join_worker() {
        let (on_caller, on_worker) = with_threads(7, || join(threads, threads));
        assert_eq!(on_caller, 7);
        assert_eq!(on_worker, 7);
    }

    #[test]
    fn with_threads_restores_previous_value() {
        let outer = with_threads(3, || {
            let inner = with_threads(5, threads);
            assert_eq!(inner, 5);
            threads()
        });
        assert_eq!(outer, 3);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_levels_matches_thread_count() {
        assert_eq!(with_threads(1, join_levels), 0);
        assert_eq!(with_threads(2, join_levels), 1);
        assert_eq!(with_threads(4, join_levels), 2);
        assert_eq!(with_threads(5, join_levels), 3);
    }

    #[test]
    fn ordered_float_reduction_is_thread_invariant() {
        // The canonical use: per-chunk partial sums reduced in chunk order
        // must produce the same bits for any thread count.
        let data: Vec<f32> = (0..100_000).map(|i| (i as f32).sin()).collect();
        let reduce = || {
            let ranges = chunk_ranges(data.len(), chunk_count(data.len(), 4_096, 16));
            let partials = map_chunks(ranges.len(), |c| {
                data[ranges[c].clone()].iter().sum::<f32>()
            });
            partials.iter().fold(0.0f32, |acc, &p| acc + p).to_bits()
        };
        let serial = with_threads(1, reduce);
        for t in [2, 4, 8] {
            assert_eq!(with_threads(t, reduce), serial, "threads = {t}");
        }
    }
}
