//! Zero-dependency parallel execution built on [`std::thread::scope`]
//! plus a persistent fork-join pool for the kernel layer.
//!
//! Every hot path in the workspace (pixel-array simulation, frame
//! encoding, LIF stepping, graph construction, the blocked GEMM/conv
//! kernels) funnels through the primitives in this module. The design
//! rule is **ordered reduction**: work is split into *statically chunked*
//! units whose boundaries depend only on the input size (never on the
//! thread count), each unit produces an independent partial result, and
//! partial results are combined on the coordinating thread in chunk-index
//! order. Because floating-point reduction order is fixed by the chunk
//! structure, the output of every parallel path is bit-identical for any
//! thread count — `EVLAB_THREADS=1` is the exact serial fallback, not an
//! approximation of it.
//!
//! Thread-count control, in priority order:
//!
//! 1. [`with_threads`] — a thread-local override for the current scope,
//!    used by tests and the `hotpaths` benchmark sweep. The override is
//!    propagated into every worker this module dispatches to (scoped or
//!    pooled), so parallel regions started *from worker threads* (nested
//!    regions) see the same setting as the thread that started the outer
//!    region.
//! 2. The `EVLAB_THREADS` environment variable.
//! 3. [`std::thread::available_parallelism`].
//!
//! All three sources are clamped to `[1, MAX_THREADS]`; an absurd
//! `EVLAB_THREADS=100000` asks for [`MAX_THREADS`] workers, it does not
//! crash thread spawn mid-scope. If the OS refuses to spawn a worker
//! anyway, the worker's share of the work runs inline on the coordinating
//! thread (recorded in the `par.spawn_fallback` observability counter)
//! instead of panicking — the result is identical either way because
//! chunk structure never depends on the thread count.
//!
//! Two dispatch mechanisms coexist, chosen by granularity:
//!
//! * **Scoped regions** ([`map_chunks`], [`for_each_task`], [`join`])
//!   spawn per region with [`std::thread::scope`], letting workers borrow
//!   from the caller's stack without reference counting. A scoped spawn
//!   costs ~10–20 µs and a handful of heap allocations, which disappears
//!   into the millisecond-scale regions of the event-pipeline stages.
//! * **The persistent pool** ([`for_each_chunk`]) keeps detached workers
//!   alive across calls and hands them lifetime-erased chunk closures
//!   through a single mutex-guarded job slot. Dispatch performs **zero
//!   heap allocations**, which is what the compute kernels (blocked
//!   GEMM, im2col conv2d, SpMV, batch training) require: they dispatch
//!   at microsecond granularity inside steady-state loops whose
//!   allocation count is gated at exactly zero by
//!   `BENCH_alloc_budget.json`. Workers are spawned lazily on first use
//!   (growth allocations land in warmup, outside any gated window) and
//!   one region runs at a time; a thread already executing pool chunks
//!   runs nested [`for_each_chunk`] calls inline, so kernels may nest
//!   freely (batch training fans out over samples whose conv layers fan
//!   out over GEMM panels) without deadlock.
//!
//! # Degenerate-input contract
//!
//! [`chunk_count`], [`chunk_ranges`] and [`chunk_range_at`] share one
//! contract: the chunk count is always at least 1, `chunks` is clamped to
//! `len` so **empty ranges never occur for `len > 0`**, and `len == 0`
//! yields exactly one empty range `0..0` (so callers may index chunk 0
//! unconditionally). [`split_slices`] accepts that shape verbatim,
//! including the single empty range.
//!
//! # Examples
//!
//! ```
//! use evlab_util::par;
//!
//! let partials = par::map_chunks(4, |chunk| chunk * 10);
//! assert_eq!(partials, vec![0, 10, 20, 30]);
//!
//! // The same call under a forced serial override is bit-identical.
//! let serial = par::with_threads(1, || par::map_chunks(4, |chunk| chunk * 10));
//! assert_eq!(partials, serial);
//! ```

use crate::obs;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;

/// Ceiling on the worker count from any source. Spawns cost real OS
/// threads; far past the core count they only add scheduling overhead,
/// and unbounded requests (`EVLAB_THREADS=100000`) can exhaust process
/// limits and fail thread spawn mid-scope.
pub const MAX_THREADS: usize = 256;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True while this thread executes chunks of an active pool region —
    /// as a pool worker or as the posting coordinator. Nested
    /// [`for_each_chunk`] calls then run inline instead of waiting on the
    /// (already held) region lock.
    static IN_POOL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Locks a mutex, tolerating poisoning: every mutex in this module guards
/// plain bookkeeping that stays structurally valid across a panic, and
/// worker panics are propagated separately (through join results or the
/// pool's `panicked` flag), never swallowed by the lock.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The worker count used by parallel regions started from this thread:
/// the [`with_threads`] override if active, else `EVLAB_THREADS`, else
/// [`std::thread::available_parallelism`]. Clamped to `[1, MAX_THREADS]`.
pub fn threads() -> usize {
    if let Some(n) = OVERRIDE.with(|o| o.get()) {
        return n.clamp(1, MAX_THREADS);
    }
    if let Ok(v) = std::env::var("EVLAB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, MAX_THREADS);
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_THREADS)
}

/// The raw [`with_threads`] override active on this thread, for
/// propagation into workers.
fn current_override() -> Option<usize> {
    OVERRIDE.with(|o| o.get())
}

/// Runs `f` with this thread's override set to `ovr` — the worker-side
/// half of override propagation. The previous value is restored so that
/// pool workers (which are long-lived) and nested scoped regions compose.
fn with_propagated<R>(ovr: Option<usize>, f: impl FnOnce() -> R) -> R {
    match ovr {
        Some(n) => with_threads(n, f),
        None => f(),
    }
}

/// Runs `f` with the thread count forced to `n` (clamped to
/// `[1, MAX_THREADS]` on read) for parallel regions started from the
/// current thread — and, because every worker dispatch in this module
/// carries the override along, for nested regions started from worker
/// threads too. Restores the previous setting afterwards, panic or not.
///
/// This is how the equivalence tests compare `threads = 1` against
/// `threads = 4` within one process without racing on the environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Number of chunks for an ordered reduction over `len` items: one chunk
/// per `min_per_chunk` items, clamped to `[1, max_chunks]`.
///
/// The result depends only on the input length — never on the thread
/// count — so the reduction tree (and therefore every floating-point
/// rounding) is invariant under `EVLAB_THREADS`. `len == 0` yields 1
/// (one empty chunk), matching [`chunk_ranges`].
///
/// Degenerate tuning values are clamped rather than rejected:
/// `min_per_chunk == 0` behaves as 1 (no division by zero) and
/// `max_chunks == 0` behaves as 1, so the result is always in
/// `[1, max(max_chunks, 1)]` and feeding it to [`chunk_ranges`] always
/// produces a valid exact partition.
pub fn chunk_count(len: usize, min_per_chunk: usize, max_chunks: usize) -> usize {
    (len / min_per_chunk.max(1)).clamp(1, max_chunks.max(1))
}

/// The `c`-th range of the [`chunk_ranges`] partition of `0..len`,
/// computed without allocating — the accessor form for steady-state hot
/// paths that must not touch the heap. `chunks` is clamped exactly as in
/// [`chunk_ranges`] (to `[1, max(len, 1)]`), so the two functions always
/// agree: `chunk_ranges(len, chunks)[c] == chunk_range_at(len, chunks, c)`.
///
/// # Panics
///
/// Panics if `c` is not below the clamped chunk count.
pub fn chunk_range_at(len: usize, chunks: usize, c: usize) -> Range<usize> {
    let chunks = chunks.max(1).min(len.max(1));
    assert!(c < chunks, "chunk {c} out of range for {chunks} chunks");
    let base = len / chunks;
    let extra = len % chunks;
    let start = c * base + c.min(extra);
    start..start + base + usize::from(c < extra)
}

/// Splits `0..len` into `chunks` contiguous, near-equal ranges (the first
/// `len % chunks` ranges are one longer). `chunks` is clamped to
/// `[1, max(len, 1)]`: empty ranges never occur when `len > 0`, and
/// `len == 0` returns a single empty range — the vector is never empty,
/// so callers may index `[0]` unconditionally.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(len.max(1));
    (0..chunks).map(|c| chunk_range_at(len, chunks, c)).collect()
}

/// Evaluates `worker(c)` for every chunk index `c in 0..n_chunks` and
/// returns the results in chunk order.
///
/// Chunks are statically assigned: thread `t` of `T` computes chunks
/// `t, t + T, t + 2T, …`. With one thread (or one chunk) the workers run
/// inline in index order — the exact serial fallback.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn map_chunks<R: Send>(n_chunks: usize, worker: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let t = threads().min(n_chunks);
    if t <= 1 {
        return (0..n_chunks).map(worker).collect();
    }
    let ovr = current_override();
    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    thread::scope(|s| {
        let worker = &worker;
        let mut handles = Vec::with_capacity(t);
        let mut inline: Vec<(usize, R)> = Vec::new();
        for tid in 0..t {
            let spawned = thread::Builder::new().spawn_scoped(s, move || {
                with_propagated(ovr, || {
                    let mut produced = Vec::new();
                    let mut c = tid;
                    while c < n_chunks {
                        produced.push((c, worker(c)));
                        c += t;
                    }
                    produced
                })
            });
            match spawned {
                Ok(h) => handles.push(h),
                Err(_) => {
                    // The OS refused the thread: run this worker's chunks
                    // on the coordinator. Chunk structure is unchanged, so
                    // the result is bit-identical.
                    obs::counter_add("par.spawn_fallback", 1);
                    let mut c = tid;
                    while c < n_chunks {
                        inline.push((c, worker(c)));
                        c += t;
                    }
                }
            }
        }
        for h in handles {
            match h.join() {
                Ok(produced) => {
                    for (c, r) in produced {
                        slots[c] = Some(r);
                    }
                }
                Err(payload) => resume_unwind(payload),
            }
        }
        for (c, r) in inline {
            slots[c] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| match r {
            Some(v) => v,
            None => unreachable!("every chunk computed"),
        })
        .collect()
}

/// A unit of pool work: a lifetime-erased chunk closure plus its static
/// chunk assignment. The job lives behind the pool mutex only while the
/// posting coordinator is inside [`for_each_chunk`], which drains every
/// participating worker before returning — the pointer never outlives the
/// closure it points to.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    n_chunks: usize,
    /// Participants (live workers + the coordinator): worker `w` runs
    /// chunks `w, w + stride, w + 2·stride, …`, the coordinator runs the
    /// `0 mod stride` residue. Assignment never affects results — chunk
    /// boundaries and per-chunk work are fixed before dispatch.
    stride: usize,
    /// The coordinator's [`with_threads`] override, replayed on workers.
    ovr: Option<usize>,
}

// SAFETY: the closure pointer crosses threads only while the posting
// coordinator blocks inside `for_each_chunk`, which keeps the referent
// alive; the referent is `Sync`, so concurrent calls from several
// workers are sound.
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped once per posted job; workers detect new work by comparing
    /// against the last epoch they observed.
    epoch: u64,
    job: Option<Job>,
    /// Participating workers that have not yet finished the current job.
    remaining: usize,
    /// Set when a worker chunk panicked; the coordinator re-raises after
    /// the drain so no chunk is ever silently lost.
    panicked: bool,
    /// Detached workers spawned so far (their indices are `1..=workers`).
    workers: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that `epoch` moved.
    work: Condvar,
    /// Signals the coordinator that `remaining` reached zero.
    done: Condvar,
}

/// The process-wide kernel pool: detached workers plus a region lock that
/// serializes coordinators (one fork-join region at a time; concurrent
/// callers queue rather than oversubscribe).
struct Pool {
    shared: Arc<PoolShared>,
    region: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                workers: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }),
        region: Mutex::new(()),
    })
}

fn worker_loop(shared: Arc<PoolShared>, widx: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock_unpoisoned(&shared.state);
            loop {
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { continue };
        if widx >= job.stride {
            continue;
        }
        IN_POOL_REGION.with(|g| g.set(true));
        // SAFETY: the coordinator that posted `job` blocks until this
        // worker decrements `remaining` below, so the closure behind
        // `job.f` outlives the entire execution here.
        let f = unsafe { &*job.f };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            with_propagated(job.ovr, || {
                let mut c = widx;
                while c < job.n_chunks {
                    f(c);
                    c += job.stride;
                }
            });
        }));
        IN_POOL_REGION.with(|g| g.set(false));
        let mut st = lock_unpoisoned(&shared.state);
        if outcome.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Grows the pool to `needed` workers (spawning is the only allocating
/// step in pool dispatch and happens once per worker for the process
/// lifetime). Returns how many live workers are available; a refused
/// spawn degrades the region to fewer participants — never to an error —
/// and is recorded in `par.spawn_fallback`.
fn ensure_workers(p: &Pool, needed: usize) -> usize {
    let mut st = lock_unpoisoned(&p.shared.state);
    while st.workers < needed {
        let widx = st.workers + 1;
        let shared = Arc::clone(&p.shared);
        match thread::Builder::new()
            .name(format!("evlab-par-{widx}"))
            .spawn(move || worker_loop(shared, widx))
        {
            Ok(_) => st.workers += 1,
            Err(_) => {
                obs::counter_add("par.spawn_fallback", 1);
                break;
            }
        }
    }
    st.workers.min(needed)
}

/// Waits (on drop) until every participating worker has finished the
/// posted job, then clears the job slot. Running this during unwinding is
/// what makes the lifetime erasure in [`Job`] sound: the coordinator
/// cannot leave [`for_each_chunk`] — not even by panic — while a worker
/// might still call the chunk closure.
struct DrainGuard<'a> {
    shared: &'a PoolShared,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_unpoisoned(&self.shared.state);
        while st.remaining != 0 {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
    }
}

/// Evaluates `f(c)` for every chunk index `c in 0..n_chunks` on the
/// persistent worker pool, returning when all chunks are done. The
/// zero-allocation dispatch primitive for the compute kernels: posting a
/// job, executing it and draining the pool touch no heap (workers are
/// spawned lazily, once per process).
///
/// Chunks must be independent — `f` typically writes a disjoint region of
/// the output per chunk index. As everywhere in this module, callers
/// derive `n_chunks` and chunk boundaries from input sizes only, so
/// results are bit-identical at every thread count; with one thread, one
/// chunk, or from inside another pool region the chunks run inline in
/// ascending order (the exact serial fallback — nested kernel parallelism
/// degrades to the serial path rather than deadlocking on the region
/// lock).
///
/// # Panics
///
/// Propagates a panic from any chunk.
pub fn for_each_chunk(n_chunks: usize, f: impl Fn(usize) + Sync) {
    let t = threads().min(n_chunks);
    if t <= 1 || IN_POOL_REGION.with(|g| g.get()) {
        for c in 0..n_chunks {
            f(c);
        }
        return;
    }
    let p = pool();
    let _region = lock_unpoisoned(&p.region);
    let live = ensure_workers(p, t - 1);
    if live == 0 {
        for c in 0..n_chunks {
            f(c);
        }
        return;
    }
    let stride = live + 1;
    // SAFETY: erase the closure's lifetime so it fits the process-global
    // job slot. The `DrainGuard` below guarantees no worker can still be
    // calling the closure when this function returns (even by unwinding),
    // so the erased reference never dangles.
    let erased: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(&f) };
    {
        let mut st = lock_unpoisoned(&p.shared.state);
        st.epoch += 1;
        st.remaining = live;
        st.panicked = false;
        st.job = Some(Job {
            f: erased,
            n_chunks,
            stride,
            ovr: current_override(),
        });
        p.shared.work.notify_all();
    }
    let drain = DrainGuard { shared: &p.shared };
    IN_POOL_REGION.with(|g| g.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut c = 0;
        while c < n_chunks {
            f(c);
            c += stride;
        }
    }));
    IN_POOL_REGION.with(|g| g.set(false));
    drop(drain);
    let worker_panicked = {
        let mut st = lock_unpoisoned(&p.shared.state);
        std::mem::replace(&mut st.panicked, false)
    };
    if let Err(payload) = outcome {
        resume_unwind(payload);
    }
    assert!(!worker_panicked, "par pool worker panicked");
}

/// Runs `f(index, &mut task)` over a set of independent mutable work
/// units (typically disjoint slice chunks zipped into tuples), statically
/// assigned to threads. With one thread the tasks run inline in order.
///
/// Use this for elementwise updates where each task owns a disjoint
/// region of the output — such updates are bit-identical under any
/// chunking, so the task count may follow the thread count.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn for_each_task<T: Send>(tasks: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    let n = tasks.len();
    let t = threads().min(n);
    if t <= 1 {
        for (i, task) in tasks.iter_mut().enumerate() {
            f(i, task);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut T)>> = (0..t).map(|_| Vec::new()).collect();
    for (i, task) in tasks.iter_mut().enumerate() {
        buckets[i % t].push((i, task));
    }
    // Each bucket lives in a one-shot cell so that when a thread fails to
    // spawn (its closure is dropped unrun), the coordinator can reclaim
    // the bucket and run it inline instead of losing the work.
    type Bucket<'a, T> = Vec<(usize, &'a mut T)>;
    let cells: Vec<Mutex<Option<Bucket<'_, T>>>> =
        buckets.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let ovr = current_override();
    thread::scope(|s| {
        let f = &f;
        for cell in &cells {
            let run_bucket = move || {
                if let Some(bucket) = lock_unpoisoned(cell).take() {
                    for (i, task) in bucket {
                        f(i, task);
                    }
                }
            };
            let spawned = thread::Builder::new()
                .spawn_scoped(s, move || with_propagated(ovr, run_bucket));
            if spawned.is_err() {
                obs::counter_add("par.spawn_fallback", 1);
                if let Some(bucket) = lock_unpoisoned(cell).take() {
                    for (i, task) in bucket {
                        f(i, task);
                    }
                }
            }
        }
    });
}

/// Splits one mutable slice into disjoint chunks following `ranges`,
/// which must be contiguous, ascending and start at 0 (the shape
/// [`chunk_ranges`] produces, including its degenerate `len == 0` form —
/// a single empty range yields a single empty chunk). The chunks can then
/// be zipped into task tuples for [`for_each_task`].
///
/// # Panics
///
/// Panics if the ranges are not a contiguous partition of a prefix of
/// the slice.
pub fn split_slices<'a, T>(mut slice: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut covered = 0;
    for r in ranges {
        assert_eq!(r.start, covered, "ranges must be contiguous from 0");
        let (head, tail) = slice.split_at_mut(r.len());
        out.push(head);
        slice = tail;
        covered = r.end;
    }
    out
}

/// Runs two closures, `fb` on a scoped worker thread while `fa` runs on
/// the current thread, and returns both results. Used for subtree-per-task
/// recursion (kd-tree construction); the *caller* gates spawning with a
/// depth budget derived from [`threads`].
///
/// # Panics
///
/// Propagates a panic from either closure.
pub fn join<A, B>(fa: impl FnOnce() -> A + Send, fb: impl FnOnce() -> B + Send) -> (A, B)
where
    A: Send,
    B: Send,
{
    let ovr = current_override();
    // `fb` sits in a one-shot cell: normally the worker takes it, but
    // if the spawn fails (closure dropped unrun) the coordinator
    // reclaims it and runs both halves serially.
    let fb_cell = Mutex::new(Some(fb));
    thread::scope(|s| {
        let fb_cell = &fb_cell;
        let spawned = thread::Builder::new().spawn_scoped(s, || {
            with_propagated(ovr, || {
                let fb = match lock_unpoisoned(fb_cell).take() {
                    Some(fb) => fb,
                    None => unreachable!("fb taken once"),
                };
                fb()
            })
        });
        match spawned {
            Ok(hb) => {
                let a = fa();
                let b = match hb.join() {
                    Ok(b) => b,
                    Err(payload) => resume_unwind(payload),
                };
                (a, b)
            }
            Err(_) => {
                obs::counter_add("par.spawn_fallback", 1);
                let fb = match lock_unpoisoned(fb_cell).take() {
                    Some(fb) => fb,
                    None => unreachable!("fb unclaimed after failed spawn"),
                };
                let a = fa();
                let b = fb();
                (a, b)
            }
        }
    })
}

/// Depth budget for binary-recursive parallelism: `log2` of the thread
/// count, rounded up. A budget of 0 means "never spawn".
pub fn join_levels() -> u32 {
    let t = threads();
    if t <= 1 {
        0
    } else {
        usize::BITS - (t - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_chunks_preserves_order() {
        for t in [1, 2, 4, 7] {
            let got = with_threads(t, || map_chunks(13, |c| c * c));
            let want: Vec<usize> = (0..13).map(|c| c * c).collect();
            assert_eq!(got, want, "threads = {t}");
        }
    }

    #[test]
    fn for_each_task_touches_every_task_once() {
        for t in [1, 3, 8] {
            let mut v = vec![0u32; 17];
            let mut tasks: Vec<&mut u32> = v.iter_mut().collect();
            with_threads(t, || for_each_task(&mut tasks, |i, x| **x += i as u32 + 1));
            let want: Vec<u32> = (0..17).map(|i| i + 1).collect();
            assert_eq!(v, want, "threads = {t}");
        }
    }

    #[test]
    fn chunk_count_ignores_thread_count() {
        let a = with_threads(1, || chunk_count(100_000, 8_192, 16));
        let b = with_threads(8, || chunk_count(100_000, 8_192, 16));
        assert_eq!(a, b);
        assert_eq!(chunk_count(0, 8_192, 16), 1);
        assert_eq!(chunk_count(1 << 30, 8_192, 16), 16);
    }

    #[test]
    fn chunk_count_degenerate_tuning_property() {
        // Seeded sweep over the full degenerate cross-product:
        // min_per_chunk == 0 acts as 1, max_chunks == 0 acts as 1, and
        // the result always drives chunk_ranges to an exact partition.
        let mut rng = crate::rng::Rng64::seed_from_u64(0x9aa7);
        for case in 0..2_000u32 {
            let len = match case % 4 {
                0 => 0,
                1 => rng.next_below(4) as usize,
                _ => rng.next_below(1 << 20) as usize,
            };
            let min_per_chunk = match case % 3 {
                0 => 0,
                _ => rng.next_below(10_000) as usize,
            };
            let max_chunks = match case % 5 {
                0 => 0,
                _ => rng.next_below(64) as usize,
            };
            let n = chunk_count(len, min_per_chunk, max_chunks);
            assert!(n >= 1, "len {len} mpc {min_per_chunk} mc {max_chunks}");
            assert!(n <= max_chunks.max(1), "count exceeds requested cap");
            assert_eq!(
                n,
                chunk_count(len, min_per_chunk.max(1), max_chunks.max(1)),
                "0 must behave exactly as 1"
            );
            let ranges = chunk_ranges(len, n);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous, non-overlapping");
                assert!(r.end >= r.start);
                covered = r.end;
            }
            assert_eq!(covered, len, "exact partition of 0..{len}");
            if len > 0 {
                assert!(ranges.iter().all(|r| !r.is_empty()), "no empty chunk");
            } else {
                assert_eq!(ranges, vec![0..0], "len 0: single empty range");
            }
        }
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (len, chunks) in [(10, 3), (3, 10), (0, 4), (16, 16), (100, 7)] {
            let ranges = chunk_ranges(len, chunks);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous");
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn chunk_ranges_degenerate_inputs_obey_the_contract() {
        // len == 0: exactly one empty range, never an empty vector.
        assert_eq!(chunk_ranges(0, 0), vec![0..0]);
        assert_eq!(chunk_ranges(0, 1), vec![0..0]);
        assert_eq!(chunk_ranges(0, 17), vec![0..0]);
        // chunks == 0 is clamped up to 1.
        assert_eq!(chunk_ranges(5, 0), vec![0..5]);
        // chunks > len is clamped down: no empty trailing ranges.
        for (len, chunks) in [(1usize, 2usize), (3, 10), (7, 8), (1, usize::MAX)] {
            let ranges = chunk_ranges(len, chunks);
            assert_eq!(ranges.len(), len, "clamped to len");
            assert!(ranges.iter().all(|r| !r.is_empty()), "{len}/{chunks}");
        }
    }

    #[test]
    fn chunk_range_at_agrees_with_chunk_ranges() {
        for (len, chunks) in [
            (0usize, 0usize),
            (0, 4),
            (1, 1),
            (1, 9),
            (10, 3),
            (3, 10),
            (16, 16),
            (100, 7),
            (12_345, 8),
        ] {
            let ranges = chunk_ranges(len, chunks);
            for (c, r) in ranges.iter().enumerate() {
                assert_eq!(
                    chunk_range_at(len, chunks, c),
                    *r,
                    "len {len} chunks {chunks} c {c}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_range_at_rejects_out_of_range_index() {
        // chunks clamps to len = 3, so index 3 is past the partition.
        chunk_range_at(3, 10, 3);
    }

    #[test]
    fn split_slices_accepts_degenerate_range_shapes() {
        // The len == 0 shape from chunk_ranges: one empty range.
        let mut empty: [u8; 0] = [];
        let chunks = split_slices(&mut empty, &chunk_ranges(0, 4));
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].is_empty());
        // chunks > len: clamped ranges still partition the slice.
        let mut v = [1u8, 2, 3];
        let chunks = split_slices(&mut v, &chunk_ranges(3, 10));
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 3);
    }

    #[test]
    fn threads_clamps_absurd_overrides() {
        assert_eq!(with_threads(100_000, threads), MAX_THREADS);
        assert_eq!(with_threads(0, threads), 1);
    }

    #[test]
    fn override_propagates_into_map_chunks_workers() {
        // Workers are fresh threads with empty thread-locals; the spawn
        // must carry the override so nested regions see it.
        let seen = with_threads(3, || map_chunks(4, |_| threads()));
        assert_eq!(seen, vec![3; 4]);
    }

    #[test]
    fn override_propagates_into_for_each_task_workers() {
        let mut v = vec![0usize; 6];
        let mut tasks: Vec<&mut usize> = v.iter_mut().collect();
        with_threads(5, || for_each_task(&mut tasks, |_, t| **t = threads()));
        assert_eq!(v, vec![5; 6]);
    }

    #[test]
    fn override_propagates_into_join_worker() {
        let (on_caller, on_worker) = with_threads(7, || join(threads, threads));
        assert_eq!(on_caller, 7);
        assert_eq!(on_worker, 7);
    }

    #[test]
    fn with_threads_restores_previous_value() {
        let outer = with_threads(3, || {
            let inner = with_threads(5, threads);
            assert_eq!(inner, 5);
            threads()
        });
        assert_eq!(outer, 3);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_levels_matches_thread_count() {
        assert_eq!(with_threads(1, join_levels), 0);
        assert_eq!(with_threads(2, join_levels), 1);
        assert_eq!(with_threads(4, join_levels), 2);
        assert_eq!(with_threads(5, join_levels), 3);
    }

    #[test]
    fn for_each_chunk_visits_every_chunk_exactly_once() {
        for t in [1, 2, 4, 7] {
            let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            with_threads(t, || {
                for_each_chunk(hits.len(), |c| {
                    hits[c].fetch_add(1, Ordering::Relaxed);
                });
            });
            for (c, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {c}, threads {t}");
            }
        }
        // n_chunks == 0 is a no-op, not a panic.
        for_each_chunk(0, |_| unreachable!("no chunks"));
    }

    #[test]
    fn for_each_chunk_override_reaches_pool_workers() {
        let seen: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        with_threads(3, || {
            for_each_chunk(seen.len(), |c| {
                seen[c].store(threads(), Ordering::Relaxed);
            });
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 3, "override lost in pool worker");
        }
    }

    #[test]
    fn nested_for_each_chunk_runs_inline_without_deadlock() {
        let total = AtomicUsize::new(0);
        with_threads(4, || {
            for_each_chunk(6, |_| {
                // The nested region must degrade to inline execution on
                // whichever thread runs this chunk.
                for_each_chunk(5, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 6 * 5);
    }

    #[test]
    fn for_each_chunk_ordered_reduction_is_thread_invariant() {
        // Per-chunk partials written to disjoint slots, reduced in chunk
        // order afterwards: the pool analogue of the map_chunks contract.
        let data: Vec<f32> = (0..100_000).map(|i| (i as f32).sin()).collect();
        let reduce = || {
            let chunks = chunk_count(data.len(), 4_096, 16);
            let mut partials = vec![0.0f32; chunks];
            let cells: Vec<Mutex<&mut f32>> = partials.iter_mut().map(Mutex::new).collect();
            for_each_chunk(chunks, |c| {
                let r = chunk_range_at(data.len(), chunks, c);
                **lock_unpoisoned(&cells[c]) = data[r].iter().sum::<f32>();
            });
            drop(cells);
            partials.iter().fold(0.0f32, |acc, &p| acc + p).to_bits()
        };
        let serial = with_threads(1, reduce);
        for t in [2, 4, 8] {
            assert_eq!(with_threads(t, reduce), serial, "threads = {t}");
        }
    }

    #[test]
    fn for_each_chunk_propagates_chunk_panics() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                for_each_chunk(8, |c| {
                    if c == 5 {
                        panic!("chunk 5 exploded");
                    }
                });
            });
        }));
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool must still be usable afterwards.
        let n = AtomicUsize::new(0);
        with_threads(4, || {
            for_each_chunk(8, |_| {
                n.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn ordered_float_reduction_is_thread_invariant() {
        // The canonical use: per-chunk partial sums reduced in chunk order
        // must produce the same bits for any thread count.
        let data: Vec<f32> = (0..100_000).map(|i| (i as f32).sin()).collect();
        let reduce = || {
            let ranges = chunk_ranges(data.len(), chunk_count(data.len(), 4_096, 16));
            let partials = map_chunks(ranges.len(), |c| {
                data[ranges[c].clone()].iter().sum::<f32>()
            });
            partials.iter().fold(0.0f32, |acc, &p| acc + p).to_bits()
        };
        let serial = with_threads(1, reduce);
        for t in [2, 4, 8] {
            assert_eq!(with_threads(t, reduce), serial, "threads = {t}");
        }
    }
}
