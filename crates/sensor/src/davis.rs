//! Dual active + event pixel (DAVIS-style) capture.
//!
//! §II notes the renewed momentum of sensors whose pixels record both events
//! and intensity frames ([Brandli et al. 2014], [Posch et al. 2010]). This
//! module couples the DVS simulation with a frame sampler on a shared scene
//! so both modalities are available to hybrid pipelines (e.g. the recurrent
//! CNN of [Perot et al. 2020]).

use crate::camera::{CameraConfig, EventCamera};
use crate::scene::Scene;
use evlab_events::EventStream;

/// An intensity frame sampled from the scene.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensityFrame {
    /// Capture time in microseconds.
    pub t_us: u64,
    /// Frame width in pixels.
    pub width: u16,
    /// Frame height in pixels.
    pub height: u16,
    /// Row-major luminance values.
    pub pixels: Vec<f32>,
}

impl IntensityFrame {
    /// Luminance at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn at(&self, x: u16, y: u16) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of range");
        self.pixels[y as usize * self.width as usize + x as usize]
    }
}

/// Output of a dual-pixel recording: events plus periodic frames.
#[derive(Debug, Clone, PartialEq)]
pub struct DualRecording {
    /// The asynchronous event stream.
    pub events: EventStream,
    /// Global-shutter intensity frames at the configured frame period.
    pub frames: Vec<IntensityFrame>,
}

/// A DAVIS-style camera producing events and frames simultaneously.
#[derive(Debug, Clone, PartialEq)]
pub struct DavisCamera {
    camera: EventCamera,
    frame_period_us: u64,
}

impl DavisCamera {
    /// Creates a dual camera with the given event configuration and frame
    /// period.
    ///
    /// # Panics
    ///
    /// Panics if `frame_period_us == 0`.
    pub fn new(config: CameraConfig, frame_period_us: u64) -> Self {
        assert!(frame_period_us > 0, "frame period must be nonzero");
        DavisCamera {
            camera: EventCamera::new(config),
            frame_period_us,
        }
    }

    /// Frame period in microseconds.
    pub fn frame_period_us(&self) -> u64 {
        self.frame_period_us
    }

    /// Records both modalities over `[t_start_us, t_end_us)`.
    pub fn record(
        &self,
        scene: &dyn Scene,
        t_start_us: u64,
        t_end_us: u64,
        seed: u64,
    ) -> DualRecording {
        let events = self.camera.record(scene, t_start_us, t_end_us, seed);
        let (w, h) = self.camera.config().resolution();
        let mut frames = Vec::new();
        let mut t = t_start_us;
        while t < t_end_us {
            let mut pixels = Vec::with_capacity(w as usize * h as usize);
            for y in 0..h {
                for x in 0..w {
                    pixels.push(
                        scene.luminance(x as f64 + 0.5, y as f64 + 0.5, t as f64) as f32,
                    );
                }
            }
            frames.push(IntensityFrame {
                t_us: t,
                width: w,
                height: h,
                pixels,
            });
            t += self.frame_period_us;
        }
        DualRecording { events, frames }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::PixelConfig;
    use crate::scene::MovingBar;

    #[test]
    fn dual_recording_has_both_modalities() {
        let cfg = CameraConfig::new((16, 16)).with_pixel(PixelConfig::ideal());
        let davis = DavisCamera::new(cfg, 5_000);
        let rec = davis.record(&MovingBar::horizontal(0.001, 2.0), 0, 20_000, 1);
        assert_eq!(rec.frames.len(), 4);
        assert!(!rec.events.is_empty());
        assert_eq!(rec.frames[0].width, 16);
    }

    #[test]
    fn frames_capture_the_moving_bar() {
        let cfg = CameraConfig::new((32, 8)).with_pixel(PixelConfig::ideal());
        let davis = DavisCamera::new(cfg, 10_000);
        let rec = davis.record(&MovingBar::horizontal(0.001, 3.0), 0, 20_000, 1);
        // At t = 10_000us the bar's leading edge is at x = 10.
        let f = &rec.frames[1];
        assert_eq!(f.t_us, 10_000);
        assert!(f.at(8, 4) > f.at(20, 4), "bar brighter than background");
    }

    #[test]
    fn events_between_frames_preserve_timing() {
        let cfg = CameraConfig::new((16, 16)).with_pixel(PixelConfig::ideal());
        let davis = DavisCamera::new(cfg, 10_000);
        let rec = davis.record(&MovingBar::horizontal(0.001, 2.0), 0, 20_000, 1);
        // Events exist strictly between the two frame times.
        assert!(rec
            .events
            .iter()
            .any(|e| e.t.as_micros() > 0 && e.t.as_micros() < 10_000));
    }

    #[test]
    #[should_panic(expected = "pixel out of range")]
    fn frame_bounds_checked() {
        let frame = IntensityFrame {
            t_us: 0,
            width: 2,
            height: 2,
            pixels: vec![0.0; 4],
        };
        frame.at(2, 0);
    }
}
