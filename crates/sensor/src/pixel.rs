//! The temporal-contrast (DVS) pixel model.
//!
//! Each pixel continuously compares the log of its photocurrent against a
//! memorized reference level; when the difference exceeds the ON (+) or OFF
//! (−) contrast threshold, the pixel emits an event and resets its reference.
//! The model includes the non-idealities that shape real event data:
//! threshold mismatch between pixels, a refractory dead time, background
//! leak events, and timestamp jitter.

use evlab_events::{Event, Polarity};
use evlab_util::Rng64;

/// Configuration of a single DVS pixel (shared by the whole array, with
/// per-pixel mismatch applied on top).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelConfig {
    /// Nominal ON/OFF contrast threshold in log-luminance units
    /// (e.g. 0.2 ≈ 22 % contrast).
    pub contrast_threshold: f64,
    /// Relative per-pixel threshold mismatch (standard deviation as a
    /// fraction of the threshold), mimicking transistor mismatch.
    pub threshold_mismatch: f64,
    /// Refractory period after each event, in microseconds.
    pub refractory_us: u64,
    /// Background leak-event rate per pixel, in events per second
    /// (spontaneous ON events, the dominant DVS noise source).
    pub leak_rate_hz: f64,
    /// Timestamp jitter standard deviation, in microseconds.
    pub jitter_us: f64,
}

impl PixelConfig {
    /// A typical mid-sensitivity configuration (θ = 0.2, 3 % mismatch,
    /// 50 µs refractory, 0.1 Hz leak, 20 µs jitter).
    pub fn new() -> Self {
        PixelConfig {
            contrast_threshold: 0.2,
            threshold_mismatch: 0.03,
            refractory_us: 50,
            leak_rate_hz: 0.1,
            jitter_us: 20.0,
        }
    }

    /// An idealized noiseless pixel — useful for deterministic tests.
    pub fn ideal() -> Self {
        PixelConfig {
            contrast_threshold: 0.2,
            threshold_mismatch: 0.0,
            refractory_us: 0,
            leak_rate_hz: 0.0,
            jitter_us: 0.0,
        }
    }

    /// Returns a copy with a different contrast threshold.
    ///
    /// # Panics
    ///
    /// Panics if `theta <= 0`.
    pub fn with_threshold(mut self, theta: f64) -> Self {
        assert!(theta > 0.0, "threshold must be positive");
        self.contrast_threshold = theta;
        self
    }

    /// Returns a copy with a different refractory period.
    pub fn with_refractory_us(mut self, refractory_us: u64) -> Self {
        self.refractory_us = refractory_us;
        self
    }

    /// Returns a copy with a different leak rate.
    pub fn with_leak_rate_hz(mut self, leak_rate_hz: f64) -> Self {
        self.leak_rate_hz = leak_rate_hz;
        self
    }
}

impl Default for PixelConfig {
    fn default() -> Self {
        PixelConfig::new()
    }
}

/// State of one simulated DVS pixel.
///
/// Feed it log-luminance samples in time order via [`DvsPixel::sample`];
/// it returns any events generated between the previous and current sample.
///
/// # Examples
///
/// ```
/// use evlab_sensor::pixel::{DvsPixel, PixelConfig};
/// use evlab_util::Rng64;
///
/// let mut rng = Rng64::seed_from_u64(1);
/// let mut px = DvsPixel::new(3, 4, &PixelConfig::ideal(), &mut rng);
/// px.reset(0.0_f64.ln().max(-10.0), 0);
/// // A 4x luminance step crosses the 0.2 threshold several times.
/// let events = px.sample(4.0_f64.ln(), 1_000, &mut rng);
/// assert!(!events.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvsPixel {
    x: u16,
    y: u16,
    theta_on: f64,
    theta_off: f64,
    refractory_us: u64,
    leak_rate_hz: f64,
    jitter_us: f64,
    reference: f64,
    last_event_t: Option<u64>,
    last_sample_t: u64,
    initialized: bool,
}

impl DvsPixel {
    /// Creates a pixel at `(x, y)`, drawing its mismatched thresholds from
    /// `rng`.
    pub fn new(x: u16, y: u16, config: &PixelConfig, rng: &mut Rng64) -> Self {
        let mismatch = |rng: &mut Rng64| {
            (1.0 + config.threshold_mismatch * rng.next_gaussian()).max(0.1)
        };
        DvsPixel {
            x,
            y,
            theta_on: config.contrast_threshold * mismatch(rng),
            theta_off: config.contrast_threshold * mismatch(rng),
            refractory_us: config.refractory_us,
            leak_rate_hz: config.leak_rate_hz,
            jitter_us: config.jitter_us,
            reference: 0.0,
            last_event_t: None,
            last_sample_t: 0,
            initialized: false,
        }
    }

    /// Pixel coordinates.
    pub fn position(&self) -> (u16, u16) {
        (self.x, self.y)
    }

    /// Effective ON threshold after mismatch.
    pub fn theta_on(&self) -> f64 {
        self.theta_on
    }

    /// Effective OFF threshold after mismatch.
    pub fn theta_off(&self) -> f64 {
        self.theta_off
    }

    /// Initializes the reference level without generating events.
    pub fn reset(&mut self, log_luminance: f64, t_us: u64) {
        self.reference = log_luminance;
        self.last_sample_t = t_us;
        self.last_event_t = None;
        self.initialized = true;
    }

    fn in_refractory(&self, t_us: u64) -> bool {
        match self.last_event_t {
            Some(last) => t_us.saturating_sub(last) < self.refractory_us,
            None => false,
        }
    }

    /// Advances the pixel to time `t_us` with the given log-luminance,
    /// returning the events generated since the previous sample.
    ///
    /// Multiple threshold crossings within one sampling interval produce
    /// multiple events with interpolated timestamps — this is how the model
    /// retains sub-sample temporal precision.
    pub fn sample(&mut self, log_luminance: f64, t_us: u64, rng: &mut Rng64) -> Vec<Event> {
        if !self.initialized {
            self.reset(log_luminance, t_us);
            return Vec::new();
        }
        let mut events = Vec::new();
        let prev_t = self.last_sample_t;
        let dt = t_us.saturating_sub(prev_t);

        // Leak (noise) events: Poisson with the configured rate.
        if self.leak_rate_hz > 0.0 && dt > 0 {
            let expected = self.leak_rate_hz * dt as f64 * 1e-6;
            if rng.bernoulli(expected.min(1.0)) {
                let t_noise = prev_t + rng.next_below(dt.max(1));
                if !self.in_refractory(t_noise) {
                    events.push(Event::new(t_noise, self.x, self.y, Polarity::On));
                    self.last_event_t = Some(t_noise);
                    // A leak event also resets the reference upward.
                    self.reference += self.theta_on;
                }
            }
        }

        // Contrast crossings, with linear interpolation of crossing times.
        let start_ref = self.reference;
        let diff = log_luminance - start_ref;
        let (theta, polarity) = if diff >= 0.0 {
            (self.theta_on, Polarity::On)
        } else {
            (self.theta_off, Polarity::Off)
        };
        let crossings = (diff.abs() / theta).floor() as u64;
        for k in 1..=crossings {
            // Fraction of the interval at which the k-th crossing occurs.
            let frac = if diff.abs() < f64::EPSILON {
                1.0
            } else {
                (k as f64 * theta) / diff.abs()
            };
            let mut t_event = prev_t as f64 + frac.min(1.0) * dt as f64;
            if self.jitter_us > 0.0 {
                t_event += self.jitter_us * rng.next_gaussian();
            }
            let t_event = t_event.max(prev_t as f64).round() as u64;
            if self.in_refractory(t_event) {
                continue;
            }
            events.push(Event::new(t_event, self.x, self.y, polarity));
            self.last_event_t = Some(t_event);
            self.reference = start_ref
                + polarity.as_sign() as f64 * k as f64 * theta;
        }

        self.last_sample_t = t_us;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_pixel(rng: &mut Rng64) -> DvsPixel {
        DvsPixel::new(0, 0, &PixelConfig::ideal(), rng)
    }

    #[test]
    fn no_events_without_change() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut px = ideal_pixel(&mut rng);
        px.reset(0.5, 0);
        for t in 1..100u64 {
            assert!(px.sample(0.5, t * 10, &mut rng).is_empty());
        }
    }

    #[test]
    fn step_generates_proportional_events() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut px = ideal_pixel(&mut rng);
        px.reset(0.0, 0);
        // Log step of 1.0 at threshold 0.2 -> 5 ON events.
        let events = px.sample(1.0, 1_000, &mut rng);
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| e.polarity == Polarity::On));
        // Timestamps interpolated within the interval, increasing.
        for pair in events.windows(2) {
            assert!(pair[0].t <= pair[1].t);
        }
        assert!(events[0].t.as_micros() >= 190 && events[0].t.as_micros() <= 210);
    }

    #[test]
    fn negative_step_generates_off_events() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut px = ideal_pixel(&mut rng);
        px.reset(1.0, 0);
        let events = px.sample(0.0, 1_000, &mut rng);
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| e.polarity == Polarity::Off));
    }

    #[test]
    fn reference_tracks_after_events() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut px = ideal_pixel(&mut rng);
        px.reset(0.0, 0);
        px.sample(0.5, 100, &mut rng); // 2 events, reference -> 0.4
        // Going back to 0.41 produces nothing (|0.41-0.4| < 0.2).
        assert!(px.sample(0.41, 200, &mut rng).is_empty());
        // Dropping to 0.1 crosses one OFF threshold (0.4 - 0.2 = 0.2 > 0.1).
        let events = px.sample(0.1, 300, &mut rng);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].polarity, Polarity::Off);
    }

    #[test]
    fn refractory_suppresses_bursts() {
        let mut rng = Rng64::seed_from_u64(5);
        let cfg = PixelConfig::ideal().with_refractory_us(10_000);
        let mut px = DvsPixel::new(0, 0, &cfg, &mut rng);
        px.reset(0.0, 0);
        let events = px.sample(1.0, 1_000, &mut rng);
        assert_eq!(events.len(), 1, "only the first of the burst survives");
    }

    #[test]
    fn leak_events_fire_spontaneously() {
        let mut rng = Rng64::seed_from_u64(6);
        let cfg = PixelConfig::ideal().with_leak_rate_hz(1_000.0);
        let mut px = DvsPixel::new(0, 0, &cfg, &mut rng);
        px.reset(0.0, 0);
        let mut total = 0;
        for i in 1..=100u64 {
            total += px.sample(0.0, i * 10_000, &mut rng).len();
        }
        // 1 kHz leak over 1 s of simulated time: expect many events.
        assert!(total > 20, "got {total} leak events");
    }

    #[test]
    fn mismatch_varies_thresholds() {
        let mut rng = Rng64::seed_from_u64(7);
        let cfg = PixelConfig {
            threshold_mismatch: 0.1,
            ..PixelConfig::ideal()
        };
        let a = DvsPixel::new(0, 0, &cfg, &mut rng);
        let b = DvsPixel::new(1, 0, &cfg, &mut rng);
        assert_ne!(a.theta_on(), b.theta_on());
    }

    #[test]
    fn first_sample_initializes_silently() {
        let mut rng = Rng64::seed_from_u64(8);
        let mut px = ideal_pixel(&mut rng);
        assert!(px.sample(5.0, 0, &mut rng).is_empty());
        assert!(!px.sample(5.2, 100, &mut rng).is_empty());
    }
}
