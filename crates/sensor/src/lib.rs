//! Event-camera (DVS) simulation.
//!
//! The paper's comparison runs on data from physical event cameras; this
//! crate substitutes a faithful behavioural simulator built from the
//! standard temporal-contrast pixel model ([Lichtsteiner et al. 2008], the
//! model every sensor in the paper's Fig. 1 implements):
//!
//! * [`scene`] — analytic luminance fields `L(x, y, t)`: moving bars and
//!   dots, rotating disks, gratings, textured egomotion pans, and moving
//!   glyphs (used by the dataset generators).
//! * [`pixel`] — the per-pixel change detector: log-luminance front end,
//!   ± contrast thresholds with mismatch, refractory period, leak (background
//!   noise) events and shot-noise jitter.
//! * [`camera`] — [`EventCamera`]: scans a scene at a configurable clock and
//!   produces an [`evlab_events::EventStream`], optionally pushed through the
//!   readout model.
//! * [`readout`] — array readout with finite throughput (GEPS-class caps),
//!   modelled via the AER bus of `evlab-events`.
//! * [`davis`] — the dual active+event pixel (DAVIS-style): simultaneous
//!   intensity frames and events.
//! * [`sensordb`] — a database of published event sensors (2006–2022) used
//!   to regenerate the paper's Fig. 1 scaling trends.
//!
//! # Examples
//!
//! ```
//! use evlab_sensor::{CameraConfig, EventCamera};
//! use evlab_sensor::scene::MovingBar;
//!
//! let scene = MovingBar::horizontal(0.0005, 3.0);
//! let camera = EventCamera::new(CameraConfig::new((64, 64)));
//! let stream = camera.record(&scene, 0, 10_000, 7);
//! assert!(stream.len() > 0);
//! ```

pub mod camera;
pub mod davis;
pub mod pixel;
pub mod readout;
pub mod scene;
pub mod sensordb;

pub use camera::{CameraConfig, EventCamera};
pub use pixel::{DvsPixel, PixelConfig};
pub use readout::ReadoutConfig;
pub use sensordb::{SensorRecord, published_sensors};
