//! Array readout throughput model.
//!
//! The readout system arbitrates events from the pixel array onto the
//! output bus. Modern sensors reach the GEPS (giga-events per second)
//! range precisely so that temporal precision survives at large array sizes
//! (paper §II); this module wraps the [`evlab_events::aer::AerBus`] model
//! with named presets for the sensor generations in the Fig. 1 database.

use evlab_events::aer::AerBus;

/// Readout configuration: sustained throughput and FIFO depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutConfig {
    throughput_eps: f64,
    fifo_depth: usize,
}

impl ReadoutConfig {
    /// Creates a readout sustaining `throughput_eps` events/second with a
    /// FIFO of `fifo_depth` events.
    ///
    /// # Panics
    ///
    /// Panics if `throughput_eps <= 0`.
    pub fn new(throughput_eps: f64, fifo_depth: usize) -> Self {
        assert!(throughput_eps > 0.0, "throughput must be positive");
        ReadoutConfig {
            throughput_eps,
            fifo_depth,
        }
    }

    /// First-generation readout (~1 Meps), typical of 128×128 sensors.
    pub fn first_generation() -> Self {
        ReadoutConfig::new(1e6, 64)
    }

    /// Mid-generation readout (~50 Meps), typical of VGA-class sensors.
    pub fn mid_generation() -> Self {
        ReadoutConfig::new(50e6, 1024)
    }

    /// GEPS-class readout (~1.066 Geps, as in [Finateu et al. 2020]).
    pub fn geps_class() -> Self {
        ReadoutConfig::new(1.066e9, 8192)
    }

    /// Sustained throughput in events per second.
    pub fn throughput_eps(&self) -> f64 {
        self.throughput_eps
    }

    /// FIFO depth in events.
    pub fn fifo_depth(&self) -> usize {
        self.fifo_depth
    }

    /// The underlying bus model.
    pub fn bus(&self) -> AerBus {
        AerBus::new(self.throughput_eps, self.fifo_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlab_events::{Event, EventStream, Polarity};

    #[test]
    fn presets_are_ordered() {
        assert!(
            ReadoutConfig::first_generation().throughput_eps()
                < ReadoutConfig::mid_generation().throughput_eps()
        );
        assert!(
            ReadoutConfig::mid_generation().throughput_eps()
                < ReadoutConfig::geps_class().throughput_eps()
        );
    }

    #[test]
    fn geps_readout_survives_burst_that_saturates_first_gen() {
        let burst: Vec<Event> = (0..20_000)
            .map(|i| Event::new(i / 100, (i % 64) as u16, 0, Polarity::On))
            .collect();
        let stream = EventStream::from_events((64, 64), burst).expect("ok");
        let old = ReadoutConfig::first_generation().bus().transfer(&stream);
        let new = ReadoutConfig::geps_class().bus().transfer(&stream);
        assert!(old.dropped > 0, "first-gen drops under 100 Meps burst");
        assert_eq!(new.dropped, 0, "GEPS-class passes it");
        assert!(new.max_delay_us <= old.max_delay_us);
    }
}
