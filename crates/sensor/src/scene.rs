//! Analytic luminance scenes.
//!
//! A [`Scene`] is a deterministic luminance field `L(x, y, t)` sampled by the
//! camera simulator. Coordinates are in pixels (continuous), time in
//! microseconds, luminance in arbitrary positive units (the pixel model takes
//! logs, so only ratios matter).

/// A time-varying luminance field.
///
/// Implementors must return strictly positive luminance for all inputs; the
/// log front-end of the pixel model divides by it. The `Sync` bound lets the
/// camera simulator sample one scene from several row-band worker threads at
/// once; scenes are pure functions of `(x, y, t)` so this costs nothing.
pub trait Scene: Sync {
    /// Luminance at continuous pixel position `(x, y)` and time `t_us`.
    fn luminance(&self, x: f64, y: f64, t_us: f64) -> f64;
}

/// Background (dark) luminance level shared by the built-in scenes.
pub const BACKGROUND_LUMINANCE: f64 = 1.0;
/// Foreground (bright) luminance level shared by the built-in scenes.
pub const FOREGROUND_LUMINANCE: f64 = 8.0;

fn smooth_step(edge0: f64, edge1: f64, x: f64) -> f64 {
    let t = ((x - edge0) / (edge1 - edge0)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// A bright bar sweeping across the field of view at constant velocity.
///
/// # Examples
///
/// ```
/// use evlab_sensor::scene::{MovingBar, Scene};
///
/// let bar = MovingBar::horizontal(0.001, 2.0); // 0.001 px/us = 1000 px/s
/// let before = bar.luminance(5.0, 10.0, 0.0);     // bar not yet at x=5
/// let after = bar.luminance(5.0, 10.0, 6_000.0);  // leading edge passed x=5
/// assert!(after > before);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingBar {
    /// Velocity in px/us along the motion axis.
    pub velocity: f64,
    /// Bar width in pixels.
    pub width: f64,
    /// If true the bar is vertical and moves along x; otherwise horizontal
    /// moving along y.
    pub vertical_bar: bool,
    /// Initial offset of the leading edge, in pixels.
    pub offset: f64,
}

impl MovingBar {
    /// A vertical bar moving horizontally (+x) at `velocity` px/us.
    pub fn horizontal(velocity: f64, width: f64) -> Self {
        MovingBar {
            velocity,
            width,
            vertical_bar: true,
            offset: 0.0,
        }
    }

    /// A horizontal bar moving vertically (+y) at `velocity` px/us.
    pub fn vertical(velocity: f64, width: f64) -> Self {
        MovingBar {
            velocity,
            width,
            vertical_bar: false,
            offset: 0.0,
        }
    }
}

impl Scene for MovingBar {
    fn luminance(&self, x: f64, y: f64, t_us: f64) -> f64 {
        let pos = if self.vertical_bar { x } else { y };
        let leading = self.offset + self.velocity * t_us;
        let inside = smooth_step(leading - self.width, leading - self.width + 1.0, pos)
            * (1.0 - smooth_step(leading, leading + 1.0, pos));
        BACKGROUND_LUMINANCE + (FOREGROUND_LUMINANCE - BACKGROUND_LUMINANCE) * inside
    }
}

/// A bright dot moving along a straight line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingDot {
    /// Start position in pixels.
    pub start: (f64, f64),
    /// Velocity in px/us.
    pub velocity: (f64, f64),
    /// Dot radius in pixels.
    pub radius: f64,
}

impl MovingDot {
    /// Creates a dot of `radius` starting at `start` with `velocity` px/us.
    pub fn new(start: (f64, f64), velocity: (f64, f64), radius: f64) -> Self {
        MovingDot {
            start,
            velocity,
            radius,
        }
    }

    /// Dot centre at time `t_us`.
    pub fn center_at(&self, t_us: f64) -> (f64, f64) {
        (
            self.start.0 + self.velocity.0 * t_us,
            self.start.1 + self.velocity.1 * t_us,
        )
    }
}

impl Scene for MovingDot {
    fn luminance(&self, x: f64, y: f64, t_us: f64) -> f64 {
        let (cx, cy) = self.center_at(t_us);
        let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
        let inside = 1.0 - smooth_step(self.radius - 0.5, self.radius + 0.5, d);
        BACKGROUND_LUMINANCE + (FOREGROUND_LUMINANCE - BACKGROUND_LUMINANCE) * inside
    }
}

/// A disk with painted spokes rotating about a centre — the classic DVS demo
/// stimulus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotatingDisk {
    /// Rotation centre in pixels.
    pub center: (f64, f64),
    /// Disk radius in pixels.
    pub radius: f64,
    /// Angular velocity in radians per microsecond.
    pub omega: f64,
    /// Number of bright spokes.
    pub spokes: u32,
}

impl RotatingDisk {
    /// Creates a disk with `spokes` spokes spinning at `omega` rad/us.
    pub fn new(center: (f64, f64), radius: f64, omega: f64, spokes: u32) -> Self {
        RotatingDisk {
            center,
            radius,
            omega,
            spokes,
        }
    }
}

impl Scene for RotatingDisk {
    fn luminance(&self, x: f64, y: f64, t_us: f64) -> f64 {
        let dx = x - self.center.0;
        let dy = y - self.center.1;
        let r = (dx * dx + dy * dy).sqrt();
        if r > self.radius || r < 1.0 {
            return BACKGROUND_LUMINANCE;
        }
        let angle = dy.atan2(dx) - self.omega * t_us;
        let phase = (angle * self.spokes as f64).sin();
        let bright = smooth_step(-0.2, 0.2, phase);
        BACKGROUND_LUMINANCE + (FOREGROUND_LUMINANCE - BACKGROUND_LUMINANCE) * bright
    }
}

/// A sinusoidal grating translating at constant velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranslatingGrating {
    /// Spatial period in pixels.
    pub period: f64,
    /// Velocity in px/us along x.
    pub velocity: f64,
    /// Contrast in `(0, 1]` scaling the modulation depth.
    pub contrast: f64,
}

impl TranslatingGrating {
    /// Creates a grating of `period` px moving at `velocity` px/us with the
    /// given `contrast`.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0` or `contrast` outside `(0, 1]`.
    pub fn new(period: f64, velocity: f64, contrast: f64) -> Self {
        assert!(period > 0.0, "period must be positive");
        assert!(
            contrast > 0.0 && contrast <= 1.0,
            "contrast must be in (0, 1]"
        );
        TranslatingGrating {
            period,
            velocity,
            contrast,
        }
    }
}

impl Scene for TranslatingGrating {
    fn luminance(&self, x: f64, _y: f64, t_us: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (x - self.velocity * t_us) / self.period;
        let mid = (BACKGROUND_LUMINANCE + FOREGROUND_LUMINANCE) / 2.0;
        let amp = (FOREGROUND_LUMINANCE - BACKGROUND_LUMINANCE) / 2.0 * self.contrast;
        mid + amp * phase.sin()
    }
}

/// Camera egomotion over a static random texture.
///
/// Models the §II scenario in which *every* pixel sees contrast change: the
/// camera pans at `velocity` px/us over a procedurally generated texture
/// (value-noise with smooth interpolation), producing the resolution-
/// dependent event-rate explosion of [Gehrig & Scaramuzza 2022].
#[derive(Debug, Clone, PartialEq)]
pub struct EgomotionPan {
    /// Pan velocity in px/us along x.
    pub velocity: f64,
    /// Texture feature size in pixels.
    pub feature_size: f64,
    seed: u64,
}

impl EgomotionPan {
    /// Creates a pan over texture with features of `feature_size` pixels.
    ///
    /// # Panics
    ///
    /// Panics if `feature_size <= 0`.
    pub fn new(velocity: f64, feature_size: f64, seed: u64) -> Self {
        assert!(feature_size > 0.0, "feature size must be positive");
        EgomotionPan {
            velocity,
            feature_size,
            seed,
        }
    }

    fn lattice_value(&self, ix: i64, iy: i64) -> f64 {
        // Hash the lattice point into [0, 1) deterministically.
        let mut h = (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ self.seed.wrapping_mul(0x165667B19E3779F9);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Scene for EgomotionPan {
    fn luminance(&self, x: f64, y: f64, t_us: f64) -> f64 {
        let u = (x + self.velocity * t_us) / self.feature_size;
        let v = y / self.feature_size;
        let (iu, iv) = (u.floor() as i64, v.floor() as i64);
        let (fu, fv) = (u - iu as f64, v - iv as f64);
        let (su, sv) = (fu * fu * (3.0 - 2.0 * fu), fv * fv * (3.0 - 2.0 * fv));
        let v00 = self.lattice_value(iu, iv);
        let v10 = self.lattice_value(iu + 1, iv);
        let v01 = self.lattice_value(iu, iv + 1);
        let v11 = self.lattice_value(iu + 1, iv + 1);
        let noise = v00 * (1.0 - su) * (1.0 - sv)
            + v10 * su * (1.0 - sv)
            + v01 * (1.0 - su) * sv
            + v11 * su * sv;
        BACKGROUND_LUMINANCE + (FOREGROUND_LUMINANCE - BACKGROUND_LUMINANCE) * noise
    }
}

/// A bitmap glyph translating across the field of view — the primitive the
/// dataset generators use to render digit/shape classes.
#[derive(Debug, Clone, PartialEq)]
pub struct MovingGlyph {
    bitmap: Vec<bool>,
    cols: usize,
    rows: usize,
    /// Top-left start position in pixels.
    pub start: (f64, f64),
    /// Velocity in px/us.
    pub velocity: (f64, f64),
    /// Integer scale factor applied to the bitmap.
    pub scale: f64,
}

impl MovingGlyph {
    /// Creates a moving glyph from a row-major boolean bitmap.
    ///
    /// # Panics
    ///
    /// Panics if `bitmap.len() != cols * rows` or `scale <= 0`.
    pub fn new(
        bitmap: Vec<bool>,
        cols: usize,
        rows: usize,
        start: (f64, f64),
        velocity: (f64, f64),
        scale: f64,
    ) -> Self {
        assert_eq!(bitmap.len(), cols * rows, "bitmap size mismatch");
        assert!(scale > 0.0, "scale must be positive");
        MovingGlyph {
            bitmap,
            cols,
            rows,
            start,
            velocity,
            scale,
        }
    }

    /// Parses a glyph from rows of `'#'` (on) and `'.'`/' ' (off).
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or the pattern is empty.
    pub fn from_pattern(
        pattern: &[&str],
        start: (f64, f64),
        velocity: (f64, f64),
        scale: f64,
    ) -> Self {
        assert!(!pattern.is_empty(), "empty glyph pattern");
        let cols = pattern[0].len();
        let mut bitmap = Vec::with_capacity(cols * pattern.len());
        for row in pattern {
            assert_eq!(row.len(), cols, "ragged glyph pattern");
            bitmap.extend(row.chars().map(|c| c == '#'));
        }
        Self::new(bitmap, cols, pattern.len(), start, velocity, scale)
    }

    /// Glyph size in pixels `(width, height)` after scaling.
    pub fn size(&self) -> (f64, f64) {
        (self.cols as f64 * self.scale, self.rows as f64 * self.scale)
    }
}

impl Scene for MovingGlyph {
    fn luminance(&self, x: f64, y: f64, t_us: f64) -> f64 {
        let gx = (x - self.start.0 - self.velocity.0 * t_us) / self.scale;
        let gy = (y - self.start.1 - self.velocity.1 * t_us) / self.scale;
        if gx < 0.0 || gy < 0.0 {
            return BACKGROUND_LUMINANCE;
        }
        let (cx, cy) = (gx as usize, gy as usize);
        if cx >= self.cols || cy >= self.rows {
            return BACKGROUND_LUMINANCE;
        }
        if self.bitmap[cy * self.cols + cx] {
            FOREGROUND_LUMINANCE
        } else {
            BACKGROUND_LUMINANCE
        }
    }
}

/// A static uniform field — produces no events; useful as a noise-floor
/// control in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UniformField;

impl Scene for UniformField {
    fn luminance(&self, _x: f64, _y: f64, _t_us: f64) -> f64 {
        BACKGROUND_LUMINANCE
    }
}

/// Superposition of two scenes: the pixel sees whichever is brighter.
/// Composes foreground objects over structured backgrounds (e.g. a moving
/// dot over texture, a glyph over flicker) for robustness experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct Superpose<A, B> {
    /// Foreground scene.
    pub foreground: A,
    /// Background scene.
    pub background: B,
}

impl<A: Scene, B: Scene> Superpose<A, B> {
    /// Creates the composition.
    pub fn new(foreground: A, background: B) -> Self {
        Superpose {
            foreground,
            background,
        }
    }
}

impl<A: Scene, B: Scene> Scene for Superpose<A, B> {
    fn luminance(&self, x: f64, y: f64, t_us: f64) -> f64 {
        self.foreground
            .luminance(x, y, t_us)
            .max(self.background.luminance(x, y, t_us))
    }
}

/// A square-wave flicker of the whole field at `period_us` — stresses the
/// rate controller and the centre-surround filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalFlicker {
    /// Full flicker period in microseconds.
    pub period_us: f64,
}

impl Scene for GlobalFlicker {
    fn luminance(&self, _x: f64, _y: f64, t_us: f64) -> f64 {
        if (t_us / self.period_us).fract() < 0.5 {
            BACKGROUND_LUMINANCE
        } else {
            FOREGROUND_LUMINANCE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenes_positive_luminance() {
        let scenes: Vec<Box<dyn Scene>> = vec![
            Box::new(MovingBar::horizontal(0.001, 2.0)),
            Box::new(MovingDot::new((5.0, 5.0), (0.001, 0.0), 2.0)),
            Box::new(RotatingDisk::new((16.0, 16.0), 10.0, 1e-5, 4)),
            Box::new(TranslatingGrating::new(8.0, 0.001, 0.9)),
            Box::new(EgomotionPan::new(0.001, 4.0, 1)),
            Box::new(UniformField),
            Box::new(GlobalFlicker { period_us: 1000.0 }),
        ];
        for (i, s) in scenes.iter().enumerate() {
            for t in [0.0, 123.0, 99_999.0] {
                for (x, y) in [(0.0, 0.0), (7.5, 3.2), (31.0, 31.0)] {
                    let l = s.luminance(x, y, t);
                    assert!(l > 0.0 && l.is_finite(), "scene {i} at ({x},{y},{t}): {l}");
                }
            }
        }
    }

    #[test]
    fn moving_dot_travels() {
        let dot = MovingDot::new((0.0, 0.0), (0.01, 0.005), 1.0);
        assert_eq!(dot.center_at(1000.0), (10.0, 5.0));
        // Bright at the centre, dark far away.
        assert!(dot.luminance(10.0, 5.0, 1000.0) > dot.luminance(30.0, 30.0, 1000.0));
    }

    #[test]
    fn grating_is_periodic() {
        let g = TranslatingGrating::new(10.0, 0.0, 1.0);
        let a = g.luminance(3.0, 0.0, 0.0);
        let b = g.luminance(13.0, 0.0, 0.0);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn egomotion_is_deterministic_and_translates() {
        let e = EgomotionPan::new(0.001, 4.0, 42);
        let l0 = e.luminance(10.0, 10.0, 0.0);
        assert_eq!(l0, EgomotionPan::new(0.001, 4.0, 42).luminance(10.0, 10.0, 0.0));
        // Panning by exactly one feature at v*t = x-shift reproduces value.
        let shifted = e.luminance(9.0, 10.0, 1000.0); // x + v*t = 9 + 1 = 10
        assert!((l0 - shifted).abs() < 1e-9);
    }

    #[test]
    fn glyph_pattern_parsing() {
        let g = MovingGlyph::from_pattern(&["#.", ".#"], (0.0, 0.0), (0.0, 0.0), 2.0);
        assert_eq!(g.size(), (4.0, 4.0));
        assert_eq!(g.luminance(0.5, 0.5, 0.0), FOREGROUND_LUMINANCE);
        assert_eq!(g.luminance(3.5, 0.5, 0.0), BACKGROUND_LUMINANCE);
        assert_eq!(g.luminance(3.5, 3.5, 0.0), FOREGROUND_LUMINANCE);
        assert_eq!(g.luminance(10.0, 10.0, 0.0), BACKGROUND_LUMINANCE);
    }

    #[test]
    #[should_panic(expected = "ragged glyph pattern")]
    fn ragged_glyph_panics() {
        MovingGlyph::from_pattern(&["##", "#"], (0.0, 0.0), (0.0, 0.0), 1.0);
    }

    #[test]
    fn superpose_takes_the_brighter_scene() {
        let dot = MovingDot::new((5.0, 5.0), (0.0, 0.0), 2.0);
        let grating = TranslatingGrating::new(8.0, 0.0, 0.3);
        let combo = Superpose::new(dot, grating);
        // At the dot centre the foreground dominates.
        assert_eq!(
            combo.luminance(5.0, 5.0, 0.0),
            dot.luminance(5.0, 5.0, 0.0)
        );
        // Far from the dot the background shows through.
        assert_eq!(
            combo.luminance(30.0, 30.0, 0.0),
            grating.luminance(30.0, 30.0, 0.0)
        );
    }

    #[test]
    fn flicker_alternates() {
        let f = GlobalFlicker { period_us: 100.0 };
        assert_eq!(f.luminance(0.0, 0.0, 10.0), BACKGROUND_LUMINANCE);
        assert_eq!(f.luminance(0.0, 0.0, 60.0), FOREGROUND_LUMINANCE);
    }
}
