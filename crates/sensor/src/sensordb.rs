//! Database of published event-camera sensors (paper Fig. 1).
//!
//! The paper's Fig. 1 plots pixel pitch and array size of published
//! event sensors across the decade, showing aggressive scaling driven by
//! backside illumination (BSI) and 3-D wafer stacking. The records below are
//! the publicly documented devices from the paper's §II references; the
//! [`pitch_trend`] and [`array_trend`] fits regenerate the figure's two
//! series.

use evlab_util::stats::linear_fit;

/// Fabrication style of the pixel front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelProcess {
    /// Front-side illuminated, single die.
    FrontSide,
    /// Backside illuminated, single die.
    BackSide,
    /// Backside illuminated with 3-D wafer stacking.
    Stacked,
}

/// One published event sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorRecord {
    /// Device or publication name.
    pub name: &'static str,
    /// Institution or company.
    pub vendor: &'static str,
    /// Publication year.
    pub year: u16,
    /// Pixel pitch in micrometres.
    pub pitch_um: f64,
    /// Array width in pixels.
    pub width: u32,
    /// Array height in pixels.
    pub height: u32,
    /// Pixel fill factor in percent, when published.
    pub fill_factor_pct: Option<f64>,
    /// Peak readout throughput in events/second, when published.
    pub readout_eps: Option<f64>,
    /// Process generation.
    pub process: PixelProcess,
    /// Whether the pixel also captures intensity (dual active+event).
    pub dual_pixel: bool,
}

impl SensorRecord {
    /// Array size in megapixels.
    pub fn megapixels(&self) -> f64 {
        self.width as f64 * self.height as f64 / 1e6
    }
}

/// Returns the published sensors in chronological order.
///
/// Figures are taken from the cited publications ([6], [10]–[14], [16] of
/// the paper, plus the widely documented Samsung Gen2/3 and CeleX devices).
pub fn published_sensors() -> Vec<SensorRecord> {
    vec![
        SensorRecord {
            name: "DVS128",
            vendor: "ETH Zurich / iniVation",
            year: 2008,
            pitch_um: 40.0,
            width: 128,
            height: 128,
            fill_factor_pct: Some(8.1),
            readout_eps: Some(1e6),
            process: PixelProcess::FrontSide,
            dual_pixel: false,
        },
        SensorRecord {
            name: "ATIS",
            vendor: "AIT / Prophesee",
            year: 2010,
            pitch_um: 30.0,
            width: 304,
            height: 240,
            fill_factor_pct: Some(20.0),
            readout_eps: Some(10e6),
            process: PixelProcess::FrontSide,
            dual_pixel: true,
        },
        SensorRecord {
            name: "128x128 TIA DVS",
            vendor: "IMSE-CNM",
            year: 2013,
            pitch_um: 31.0,
            width: 128,
            height: 128,
            fill_factor_pct: Some(10.5),
            readout_eps: Some(20e6),
            process: PixelProcess::FrontSide,
            dual_pixel: false,
        },
        SensorRecord {
            name: "DAVIS240",
            vendor: "ETH Zurich / iniVation",
            year: 2014,
            pitch_um: 18.5,
            width: 240,
            height: 180,
            fill_factor_pct: Some(22.0),
            readout_eps: Some(12e6),
            process: PixelProcess::FrontSide,
            dual_pixel: true,
        },
        SensorRecord {
            name: "Samsung DVS Gen2",
            vendor: "Samsung",
            year: 2017,
            pitch_um: 9.0,
            width: 640,
            height: 480,
            fill_factor_pct: Some(11.0),
            readout_eps: Some(300e6),
            process: PixelProcess::BackSide,
            dual_pixel: false,
        },
        SensorRecord {
            name: "CeleX-V",
            vendor: "CelePixel / Omnivision",
            year: 2019,
            pitch_um: 9.8,
            width: 1280,
            height: 800,
            fill_factor_pct: None,
            readout_eps: Some(140e6),
            process: PixelProcess::BackSide,
            dual_pixel: true,
        },
        SensorRecord {
            name: "Gen4 / IMX636",
            vendor: "Prophesee / Sony",
            year: 2020,
            pitch_um: 4.86,
            width: 1280,
            height: 720,
            fill_factor_pct: Some(77.0),
            readout_eps: Some(1.066e9),
            process: PixelProcess::Stacked,
            dual_pixel: false,
        },
        SensorRecord {
            name: "Samsung DVS Gen3",
            vendor: "Samsung",
            year: 2020,
            pitch_um: 4.95,
            width: 1280,
            height: 960,
            fill_factor_pct: Some(78.0),
            readout_eps: Some(1.2e9),
            process: PixelProcess::Stacked,
            dual_pixel: false,
        },
        SensorRecord {
            name: "Hybrid APS-DVS",
            vendor: "CEA-Leti",
            year: 2021,
            pitch_um: 12.0,
            width: 320,
            height: 240,
            fill_factor_pct: None,
            readout_eps: Some(50e6),
            process: PixelProcess::BackSide,
            dual_pixel: true,
        },
    ]
}

/// Exponential-trend fit of a positive series vs year: returns
/// `(value_at_year0, annual_factor)` such that
/// `value(year) ≈ value_at_year0 * annual_factor^(year - year0)`.
fn exp_trend(points: &[(u16, f64)], year0: u16) -> Option<(f64, f64)> {
    let xs: Vec<f64> = points.iter().map(|&(y, _)| (y - year0) as f64).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, v)| v.ln()).collect();
    let (a, b) = linear_fit(&xs, &ys)?;
    Some((a.exp(), b.exp()))
}

/// Fits the pixel-pitch scaling trend (µm vs year).
///
/// Returns `(pitch_2008_um, annual_factor)`; the annual factor is below one,
/// reflecting the shrink from 40 µm (2008) towards ~5 µm (2020).
pub fn pitch_trend(records: &[SensorRecord]) -> Option<(f64, f64)> {
    let points: Vec<(u16, f64)> = records.iter().map(|r| (r.year, r.pitch_um)).collect();
    exp_trend(&points, 2008)
}

/// Fits the array-size scaling trend (megapixels vs year).
///
/// Returns `(mpx_2008, annual_factor)`; the annual factor exceeds one.
pub fn array_trend(records: &[SensorRecord]) -> Option<(f64, f64)> {
    let points: Vec<(u16, f64)> = records.iter().map(|r| (r.year, r.megapixels())).collect();
    exp_trend(&points, 2008)
}

/// Mean fill factor of front-side vs stacked devices, `(fsi, stacked)`,
/// substantiating the "one fifth to more than three quarters" claim of §II.
pub fn fill_factor_by_process(records: &[SensorRecord]) -> (Option<f64>, Option<f64>) {
    let mean_of = |p: &dyn Fn(&SensorRecord) -> bool| {
        let vals: Vec<f64> = records
            .iter()
            .filter(|r| p(r))
            .filter_map(|r| r.fill_factor_pct)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    (
        mean_of(&|r| r.process == PixelProcess::FrontSide),
        mean_of(&|r| r.process == PixelProcess::Stacked),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_is_chronological_and_nonempty() {
        let db = published_sensors();
        assert!(db.len() >= 8);
        for pair in db.windows(2) {
            assert!(pair[0].year <= pair[1].year);
        }
    }

    #[test]
    fn pitch_shrinks_over_the_decade() {
        let db = published_sensors();
        let (p0, factor) = pitch_trend(&db).expect("fit");
        assert!(p0 > 20.0, "2008 pitch near 40um, fit {p0}");
        assert!(factor < 1.0, "pitch must shrink, factor {factor}");
        // Roughly 40um -> ~5um over 12 years: factor ~ (5/40)^(1/12) ~ 0.84.
        assert!(factor > 0.7 && factor < 0.95, "factor {factor}");
    }

    #[test]
    fn array_size_grows_over_the_decade() {
        let db = published_sensors();
        let (m0, factor) = array_trend(&db).expect("fit");
        assert!(m0 < 0.5, "2008 arrays were far below 1Mpx, fit {m0}");
        assert!(factor > 1.2, "arrays grow, factor {factor}");
    }

    #[test]
    fn fill_factor_jump_with_stacking() {
        let db = published_sensors();
        let (fsi, stacked) = fill_factor_by_process(&db);
        let fsi = fsi.expect("fsi data");
        let stacked = stacked.expect("stacked data");
        // The paper: "from around one fifth to more than three quarters".
        assert!(fsi < 25.0, "FSI mean {fsi}");
        assert!(stacked > 75.0, "stacked mean {stacked}");
    }

    #[test]
    fn geps_class_readout_exists_by_2020() {
        let db = published_sensors();
        assert!(db
            .iter()
            .any(|r| r.year >= 2020 && r.readout_eps.unwrap_or(0.0) >= 1e9));
    }

    #[test]
    fn megapixels_computation() {
        let db = published_sensors();
        let gen4 = db.iter().find(|r| r.name.contains("Gen4")).expect("gen4");
        assert!((gen4.megapixels() - 0.9216).abs() < 1e-6);
    }
}
