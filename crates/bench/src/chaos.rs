//! Core of the chaos sweep: serve faulted streams, measure degradation.
//!
//! The `chaos_bench` binary and the `chaos_equivalence` integration test
//! share this module so the determinism contract is tested against the
//! exact code that produces `BENCH_chaos.json`. One **cell** is a
//! `(paradigm, fault kind, rate)` triple: every test sample of the tiny
//! shapes dataset is served through its own [`evlab_serve`] session while
//! a seeded [`FaultInjector`] corrupts the stream, and the cell's outcome
//! records what each session finally decided plus every degradation
//! counter (quarantined words, late-dropped events, supervisor restarts,
//! repaired decisions).
//!
//! Everything in a [`CellOutcome`] except the wall-clock latencies is a
//! pure function of the spec seed — fault injection happens serially at
//! ingest and the serve scheduler is thread-invariant — so a cell replays
//! bit-identically under any `EVLAB_THREADS`.

use evlab_core::online::OnlineClassifier;
use evlab_core::prelude::*;
use evlab_datasets::shapes::shape_silhouettes;
use evlab_datasets::{DatasetConfig, EventSample};
use evlab_events::aer::AerCodec;
use evlab_events::{Event, Polarity};
use evlab_serve::{DropPolicy, ServeConfig, ServeRuntime, SupervisorPolicy};
use evlab_util::fault::{FaultInjector, FaultReport, FaultSpec, RawEvent};
use evlab_util::EvlabError;

use crate::Fnv1a;

/// Timestamp jitter bound (µs) used by [`FaultKind::Reorder`] specs; the
/// serving session's reorder buffer is configured with twice this skew so
/// jittered events are salvageable rather than guaranteed-late.
pub const REORDER_SKEW_US: u64 = 400;

/// The fault models swept by the chaos bench, each parameterized by a
/// single rate so degradation curves share an x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Packet loss: events vanish before the AER bus.
    Drop,
    /// Bus corruption: 1–3 flipped bits per corrupted AER word.
    Corrupt,
    /// Timestamp jitter of up to ±[`REORDER_SKEW_US`] µs.
    Reorder,
    /// Three stuck pixels firing alongside real events.
    HotPixel,
    /// 12-event noise bursts triggered per real event.
    Burst,
}

impl FaultKind {
    /// Every swept kind, in report order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Drop,
        FaultKind::Corrupt,
        FaultKind::Reorder,
        FaultKind::HotPixel,
        FaultKind::Burst,
    ];

    /// The key used in report rows and log lines.
    pub fn key(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Reorder => "reorder",
            FaultKind::HotPixel => "hot",
            FaultKind::Burst => "burst",
        }
    }

    /// Builds the seeded [`FaultSpec`] for this kind at `rate`.
    ///
    /// # Errors
    ///
    /// Returns an error if `rate` is outside `[0, 1]`.
    pub fn spec(self, rate: f64, seed: u64) -> Result<FaultSpec, EvlabError> {
        let text = match self {
            FaultKind::Drop => format!("seed={seed},drop={rate}"),
            FaultKind::Corrupt => format!("seed={seed},corrupt={rate}"),
            FaultKind::Reorder => format!("seed={seed},reorder={rate}:{REORDER_SKEW_US}"),
            FaultKind::HotPixel => format!("seed={seed},hot=3:{rate}"),
            FaultKind::Burst => format!("seed={seed},burst={rate}:12"),
        };
        Ok(FaultSpec::parse(&text)?)
    }

    /// Whether the fault applies to 64-bit AER words at serve ingress
    /// (bus corruption) rather than to decoded events at the sensor
    /// boundary.
    pub fn word_stage(self) -> bool {
        matches!(self, FaultKind::Corrupt)
    }
}

/// The trained classifier bundle shared by every cell of a sweep.
pub struct Paradigms {
    /// Trained spiking pipeline.
    pub snn: SnnPipeline,
    /// Trained dense-frame pipeline.
    pub cnn: CnnPipeline,
    /// Trained event-graph pipeline.
    pub gnn: GnnPipeline,
}

/// Trains all three paradigms on the tiny shapes dataset, returning the
/// bundle plus the dataset (whose `test` split the cells serve).
pub fn train_paradigms(epochs: usize) -> (Paradigms, Dataset) {
    // Train split matches the other tiny benches; the test split is larger
    // (32 samples) so degradation curves have enough resolution to be
    // meaningfully monotone.
    let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(6, 8));
    let mut snn = SnnPipeline::new(SnnPipelineConfig::new().with_epochs(epochs).with_seed(7));
    let mut cnn = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(epochs).with_seed(7));
    let mut gnn = GnnPipeline::new(
        GnnPipelineConfig::new()
            .with_epochs(epochs)
            .with_max_nodes(128)
            .with_seed(7),
    );
    snn.fit(&data);
    cnn.fit(&data);
    gnn.fit(&data);
    (Paradigms { snn, cnn, gnn }, data)
}

/// Instantiates a fresh online classifier of the named paradigm.
///
/// # Errors
///
/// Returns an error for an unknown paradigm name or a failed construction.
pub fn make_session(
    paradigms: &Paradigms,
    paradigm: &str,
    resolution: (u16, u16),
) -> Result<Box<dyn OnlineClassifier + Send>, EvlabError> {
    // 2 ms micro-batch windows: several flushes per served stream.
    let config = OnlineConfig::new(resolution).with_window_us(2_000);
    match paradigm {
        "snn" => SessionBuilder::new(config).snn(&paradigms.snn).build(),
        "cnn" => SessionBuilder::new(config).cnn(&paradigms.cnn).build(),
        // The GNN ignores the window here: it bounds memory by node count.
        "gnn" => SessionBuilder::new(OnlineConfig::new(resolution))
            .gnn(&paradigms.gnn)
            .build(),
        other => Err(EvlabError::serve(format!("unknown paradigm {other}"))),
    }
}

/// What one chaos cell produced. Every field except `latencies_us` is
/// deterministic for a fixed spec (latencies are wall-clock queueing
/// delays and vary run to run) — compare cells via
/// [`CellOutcome::determinism_key`], never via full struct equality.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Final decision class per test sample (`None`: the session never
    /// decided, e.g. every event was dropped).
    pub decisions: Vec<Option<usize>>,
    /// Samples whose final decision matched the ground-truth label.
    pub label_hits: usize,
    /// Test samples served.
    pub samples: usize,
    /// Decisions recorded across all sessions.
    pub total_decisions: u64,
    /// Malformed AER words quarantined at decode.
    pub quarantined: u64,
    /// Events the reorder buffers gave up on (later than the skew bound).
    pub late_dropped: u64,
    /// Supervisor restarts after classifier failures.
    pub restarts: u64,
    /// Decisions whose logits needed NaN/Inf repair.
    pub nonfinite_decisions: u64,
    /// What the injectors did to the streams, summed over samples.
    pub fault: FaultReport,
    /// Wall-clock event-to-decision latencies (µs), all sessions pooled.
    /// Excluded from the determinism contract.
    pub latencies_us: Vec<f64>,
}

impl CellOutcome {
    /// Fraction of samples whose final decision matches the clean
    /// (no-fault) run of the same paradigm. An undecided session counts
    /// as disagreement.
    pub fn agreement_with(&self, clean: &CellOutcome) -> f64 {
        if self.samples == 0 {
            return 1.0;
        }
        let hits = self
            .decisions
            .iter()
            .zip(&clean.decisions)
            .filter(|(a, b)| a.is_some() && a == b)
            .count();
        hits as f64 / self.samples as f64
    }

    /// Fraction of samples whose final decision matches the label.
    pub fn label_accuracy(&self) -> f64 {
        if self.samples == 0 {
            return 1.0;
        }
        self.label_hits as f64 / self.samples as f64
    }

    /// FNV-1a digest of every deterministic field — two runs of the same
    /// cell must agree on this for any `EVLAB_THREADS`.
    pub fn determinism_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        for d in &self.decisions {
            match d {
                Some(c) => h.write_u64(1 + *c as u64),
                None => h.write_u64(0),
            }
        }
        h.write_u64(self.label_hits as u64);
        h.write_u64(self.total_decisions);
        h.write_u64(self.quarantined);
        h.write_u64(self.late_dropped);
        h.write_u64(self.restarts);
        h.write_u64(self.nonfinite_decisions);
        for v in [
            self.fault.offered,
            self.fault.dropped,
            self.fault.duplicated,
            self.fault.corrupted,
            self.fault.reordered,
            self.fault.hot_events,
            self.fault.burst_events,
            self.fault.rolled_over,
        ] {
            h.write_u64(v);
        }
        h.finish()
    }
}

fn accumulate(total: &mut FaultReport, r: FaultReport) {
    total.offered += r.offered;
    total.dropped += r.dropped;
    total.duplicated += r.duplicated;
    total.corrupted += r.corrupted;
    total.reordered += r.reordered;
    total.hot_events += r.hot_events;
    total.burst_events += r.burst_events;
    total.rolled_over += r.rolled_over;
}

/// Serves every sample through one faulted session and collects the
/// cell's outcome. `word_stage` selects where the injector sits: on AER
/// words at serve ingress (bus faults) or on decoded events at the
/// sensor boundary. An inactive spec (all rates zero) is the clean
/// baseline — the injector passes everything through.
///
/// # Errors
///
/// Returns an error only for harness failures (bad paradigm name,
/// unencodable resolution). Injected faults never error: they surface as
/// quarantine counters, restarts, and degraded decisions.
pub fn run_cell(
    paradigms: &Paradigms,
    paradigm: &str,
    samples: &[EventSample],
    resolution: (u16, u16),
    spec: &FaultSpec,
    word_stage: bool,
) -> Result<CellOutcome, EvlabError> {
    let disorders = FaultInjector::new(spec).disorders_time();
    let mut config = ServeConfig::new()
        .with_queue_depth(4096)
        .with_policy(DropPolicy::DropOldest)
        .with_quantum(64)
        .with_supervisor(SupervisorPolicy::default());
    if disorders {
        // Tolerance equal to the jitter bound: most displaced events are
        // salvaged, but the tail that lands beyond it is quarantined as
        // late — so heavier jitter produces genuine (visible) degradation
        // instead of being silently absorbed.
        config = config.with_reorder_skew(spec.reorder_skew_us.max(1));
    }
    let mut rt = ServeRuntime::new(config);
    for _ in samples {
        rt.open_session(make_session(paradigms, paradigm, resolution)?, resolution)?;
    }
    let codec =
        AerCodec::try_new(resolution).map_err(|e| EvlabError::serve(format!("aer codec: {e}")))?;

    // Corrupt each sample's stream up front, serially — injection order is
    // what makes the cell thread-invariant. Each sample gets its own
    // injector seed derived from the spec seed.
    let mut fault = FaultReport::default();
    let mut word_streams: Vec<Vec<u64>> = Vec::with_capacity(samples.len());
    for (sid, sample) in samples.iter().enumerate() {
        let per_sample = spec
            .clone()
            .with_seed(spec.seed ^ (sid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut inj = FaultInjector::new(&per_sample);
        let words = if word_stage {
            let clean: Vec<u64> = sample
                .stream
                .as_slice()
                .iter()
                .map(|e| codec.encode(e))
                .collect();
            inj.apply_words(&clean)
        } else {
            let raw: Vec<RawEvent> = sample
                .stream
                .as_slice()
                .iter()
                .map(|e| RawEvent {
                    t_us: e.t.as_micros(),
                    x: e.x,
                    y: e.y,
                    on: e.polarity == Polarity::On,
                })
                .collect();
            inj.apply_events(&raw, resolution)
                .into_iter()
                .map(|r| {
                    let p = if r.on { Polarity::On } else { Polarity::Off };
                    codec.encode(&Event::new(r.t_us, r.x, r.y, p))
                })
                .collect()
        };
        accumulate(&mut fault, inj.publish_report());
        word_streams.push(words);
    }

    // Round-robin burst ingestion, one scheduling round per burst.
    let mut cursors = vec![0usize; samples.len()];
    loop {
        let mut any = false;
        for (sid, cursor) in cursors.iter_mut().enumerate() {
            let words = &word_streams[sid];
            let end = (*cursor + 64).min(words.len());
            for &w in &words[*cursor..end] {
                rt.ingest_aer(sid, w);
            }
            any |= end > *cursor;
            *cursor = end;
        }
        rt.tick();
        if !any {
            break;
        }
    }
    rt.drain_all();
    for sid in 0..samples.len() {
        // A flush failure is a degraded outcome for that session alone —
        // it keeps its last-good decision — not an abort of the cell.
        let _ = rt.flush_session(sid);
    }

    let mut out = CellOutcome {
        decisions: Vec::with_capacity(samples.len()),
        label_hits: 0,
        samples: samples.len(),
        total_decisions: 0,
        quarantined: 0,
        late_dropped: 0,
        restarts: 0,
        nonfinite_decisions: 0,
        fault,
        latencies_us: Vec::new(),
    };
    for (sid, session) in rt.sessions().iter().enumerate() {
        let st = session.stats();
        out.total_decisions += st.decisions;
        out.quarantined += st.quarantined;
        out.late_dropped += st.late_dropped;
        out.restarts += st.restarts;
        out.nonfinite_decisions += st.nonfinite_decisions;
        let class = session.last_decision().map(|d| d.class);
        if class == Some(samples[sid].label) {
            out.label_hits += 1;
        }
        out.decisions.push(class);
        out.latencies_us.extend_from_slice(session.latencies_us());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_for_every_kind() {
        for kind in FaultKind::ALL {
            let spec = kind.spec(0.5, 11).expect("valid spec");
            assert!(spec.is_active(), "{} inactive at 0.5", kind.key());
            assert!(!kind.spec(0.0, 11).expect("zero rate").is_active());
        }
        assert!(FaultKind::Drop.spec(1.5, 0).is_err(), "rate out of range");
    }

    #[test]
    fn clean_cell_replays_and_agrees_with_itself() {
        let (paradigms, data) = train_paradigms(1);
        let clean = FaultSpec::default();
        let a = run_cell(&paradigms, "gnn", &data.test, data.resolution, &clean, false)
            .expect("clean cell");
        let b = run_cell(&paradigms, "gnn", &data.test, data.resolution, &clean, false)
            .expect("clean cell replay");
        assert_eq!(a.determinism_key(), b.determinism_key());
        assert_eq!(a.agreement_with(&b), 1.0);
        assert_eq!(a.quarantined + a.late_dropped + a.restarts, 0);
        assert!(a.decisions.iter().all(Option::is_some), "all sessions decide");
    }
}
