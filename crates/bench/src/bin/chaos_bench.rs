//! Chaos benchmark: degradation curves under seeded fault injection.
//!
//! Trains one tiny pipeline per paradigm, then serves the test split
//! through [`evlab_serve`] while a seeded [`evlab_util::fault`] injector
//! corrupts the streams — packet drop, AER bit corruption, timestamp
//! jitter, hot pixels and noise bursts, each swept across rates. Fault
//! decisions are nested across rates (the events faulted at 0.3 are a
//! superset of those faulted at 0.1), so the degradation curves share a
//! common baseline and degrade monotonically rather than jumping between
//! unrelated corruption patterns.
//!
//! For every `(paradigm, fault, rate)` cell the report records the
//! agreement with the clean run (1.0 at rate 0 by construction), the
//! ground-truth label accuracy, the p50/p99 event-to-decision latency,
//! and every degradation counter: quarantined AER words, late-dropped
//! events, supervisor restarts, NaN-repaired decisions. Rows land in
//! `BENCH_chaos.json`.
//!
//! Usage: `chaos_bench [--smoke] [--out PATH] [--metrics PATH]`
//!
//! `--smoke` runs a reduced sweep (3 fault kinds × 3 rates) and enforces
//! the graceful-degradation contract: no cell may error, every curve's
//! agreement must be monotone non-increasing in the fault rate, and the
//! fault/quarantine machinery must actually have fired. `--metrics PATH`
//! additionally writes the `fault.*` and `serve.*` observability counters
//! for `obs_check --require 'fault.*'` validation.

use evlab_bench::chaos::{self, CellOutcome, FaultKind};
use evlab_bench::{finish_metrics, metrics_arg};
use evlab_util::fault::FaultSpec;
use evlab_util::json::Json;
use evlab_util::stats::quantile;
use evlab_util::EvlabError;

/// Fault-decision seeds; each cell is averaged over all of them (and is
/// fixed, so every curve replays bit-identically). Averaging over seeds
/// smooths the per-sample Bernoulli noise that would otherwise let a
/// lucky high-rate cell beat a low-rate one.
const SEEDS: [u64; 5] = [41, 137, 1009, 4242, 90001];

/// Sweep axes, reduced by `--smoke`. Rate 0 (the clean baseline) is
/// always included as the first point of every curve.
struct Scale {
    kinds: Vec<FaultKind>,
    rates: Vec<f64>,
    epochs: usize,
}

impl Scale {
    fn full() -> Self {
        Scale {
            kinds: FaultKind::ALL.to_vec(),
            rates: vec![0.15, 0.35, 0.6, 0.85],
            epochs: 8,
        }
    }

    fn smoke() -> Self {
        Scale {
            kinds: vec![FaultKind::Drop, FaultKind::Corrupt, FaultKind::Reorder],
            rates: vec![0.1, 0.85],
            epochs: 8,
        }
    }
}

/// One report row: the seed-averaged outcome of a `(paradigm, fault,
/// rate)` cell. Counters are summed over seeds, accuracies averaged,
/// latencies pooled.
#[derive(Default)]
struct Cell {
    agreement: f64,
    label_accuracy: f64,
    samples: usize,
    decisions: u64,
    quarantined: u64,
    late_dropped: u64,
    restarts: u64,
    nonfinite_decisions: u64,
    fault_offered: u64,
    fault_dropped: u64,
    fault_corrupted: u64,
    fault_reordered: u64,
    fault_injected: u64,
    latencies_us: Vec<f64>,
    determinism_key: u64,
}

impl Cell {
    fn fold(outcomes: &[(CellOutcome, f64)]) -> Cell {
        let mut cell = Cell::default();
        let mut key = evlab_bench::Fnv1a::new();
        for (out, agreement) in outcomes {
            cell.agreement += agreement;
            cell.label_accuracy += out.label_accuracy();
            cell.samples = out.samples;
            cell.decisions += out.total_decisions;
            cell.quarantined += out.quarantined;
            cell.late_dropped += out.late_dropped;
            cell.restarts += out.restarts;
            cell.nonfinite_decisions += out.nonfinite_decisions;
            cell.fault_offered += out.fault.offered;
            cell.fault_dropped += out.fault.dropped;
            cell.fault_corrupted += out.fault.corrupted;
            cell.fault_reordered += out.fault.reordered;
            cell.fault_injected += out.fault.injected();
            cell.latencies_us.extend_from_slice(&out.latencies_us);
            key.write_u64(out.determinism_key());
        }
        let n = outcomes.len().max(1) as f64;
        cell.agreement /= n;
        cell.label_accuracy /= n;
        cell.determinism_key = key.finish();
        cell
    }
}

fn row(paradigm: &str, fault: &str, rate: f64, cell: &Cell) -> Json {
    Json::obj([
        ("paradigm", Json::str(paradigm)),
        ("fault", Json::str(fault)),
        ("rate", Json::from(rate)),
        ("agreement", Json::from(cell.agreement)),
        ("label_accuracy", Json::from(cell.label_accuracy)),
        ("samples", Json::from(cell.samples)),
        ("decisions", Json::from(cell.decisions)),
        (
            "p50_latency_us",
            Json::from(quantile(&cell.latencies_us, 0.5).unwrap_or(f64::NAN)),
        ),
        (
            "p99_latency_us",
            Json::from(quantile(&cell.latencies_us, 0.99).unwrap_or(f64::NAN)),
        ),
        ("quarantined", Json::from(cell.quarantined)),
        ("late_dropped", Json::from(cell.late_dropped)),
        ("restarts", Json::from(cell.restarts)),
        ("nonfinite_decisions", Json::from(cell.nonfinite_decisions)),
        ("fault_offered", Json::from(cell.fault_offered)),
        ("fault_dropped", Json::from(cell.fault_dropped)),
        ("fault_corrupted", Json::from(cell.fault_corrupted)),
        ("fault_reordered", Json::from(cell.fault_reordered)),
        ("fault_injected", Json::from(cell.fault_injected)),
        ("determinism_key", Json::from(cell.determinism_key)),
    ])
}

fn main() -> Result<(), EvlabError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let metrics_path = metrics_arg(&args);
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    eprintln!("[chaos_bench] training snn/cnn/gnn on tiny shapes ...");
    let (paradigms, data) = chaos::train_paradigms(scale.epochs);
    let samples = &data.test;
    let resolution = data.resolution;

    let mut rows = Vec::new();
    let mut total_faulted = 0u64;
    let mut total_quarantined = 0u64;
    let mut monotone_violations: Vec<String> = Vec::new();
    for paradigm in ["snn", "cnn", "gnn"] {
        let clean = chaos::run_cell(
            &paradigms,
            paradigm,
            samples,
            resolution,
            &FaultSpec::default(),
            false,
        )?;
        eprintln!(
            "[chaos_bench] {paradigm} clean: label_accuracy={:.2} decisions={}",
            clean.label_accuracy(),
            clean.total_decisions,
        );
        for &kind in &scale.kinds {
            // Every curve starts from the shared clean baseline at rate 0.
            let clean_cell = Cell::fold(&[(clean.clone(), 1.0)]);
            rows.push(row(paradigm, kind.key(), 0.0, &clean_cell));
            let mut prev = 1.0f64;
            for &rate in &scale.rates {
                let mut outcomes = Vec::with_capacity(SEEDS.len());
                for &seed in &SEEDS {
                    let spec = kind.spec(rate, seed)?;
                    let out = chaos::run_cell(
                        &paradigms,
                        paradigm,
                        samples,
                        resolution,
                        &spec,
                        kind.word_stage(),
                    )?;
                    let agreement = out.agreement_with(&clean);
                    outcomes.push((out, agreement));
                }
                let cell = Cell::fold(&outcomes);
                eprintln!(
                    "[chaos_bench] {paradigm} {}={rate}: agreement={:.2} \
                     quarantined={} late={} restarts={} repaired={}",
                    kind.key(),
                    cell.agreement,
                    cell.quarantined,
                    cell.late_dropped,
                    cell.restarts,
                    cell.nonfinite_decisions,
                );
                if cell.agreement > prev + 1e-9 {
                    monotone_violations.push(format!(
                        "{paradigm}/{} rose {prev:.3} -> {:.3} at rate {rate}",
                        kind.key(),
                        cell.agreement,
                    ));
                }
                prev = cell.agreement;
                total_faulted +=
                    cell.fault_dropped + cell.fault_corrupted + cell.fault_reordered;
                total_quarantined += cell.quarantined + cell.late_dropped;
                rows.push(row(paradigm, kind.key(), rate, &cell));
            }
        }
    }

    if smoke {
        // The graceful-degradation contract: faults fired, the hardened
        // ingress quarantined what it could not salvage, and every
        // degradation curve is monotone non-increasing (guaranteed at the
        // fault layer by rate-nested decisions; checked here end to end).
        if total_faulted == 0 {
            return Err(EvlabError::serve("smoke run injected no faults"));
        }
        if total_quarantined == 0 {
            return Err(EvlabError::serve(
                "smoke run quarantined nothing: hardened ingress did not engage",
            ));
        }
        if !monotone_violations.is_empty() {
            return Err(EvlabError::serve(format!(
                "non-monotone degradation curve(s): {}",
                monotone_violations.join("; ")
            )));
        }
    } else if !monotone_violations.is_empty() {
        eprintln!(
            "[chaos_bench] WARNING: non-monotone curve(s): {}",
            monotone_violations.join("; ")
        );
    }

    let report = Json::obj([
        ("smoke", Json::from(smoke)),
        (
            "seeds",
            Json::arr(SEEDS.iter().map(|&s| Json::from(s))),
        ),
        ("samples", Json::from(samples.len())),
        ("queue_depth", Json::from(4096usize)),
        ("quantum", Json::from(64usize)),
        ("cells", Json::arr(rows)),
    ]);
    evlab_util::json::write_atomic(&out_path, &(report.to_string_pretty() + "\n"))?;
    eprintln!("[chaos_bench] wrote {out_path}");
    finish_metrics(&metrics_path)
}
