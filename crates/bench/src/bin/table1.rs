//! Regenerates Table I: trains all three paradigms on two synthetic
//! datasets (spatial shapes + temporal motion-direction) and prints every
//! axis as a measured quantity next to the paper's published grades.
//!
//! Run with: `cargo run --release -p evlab-bench --bin table1`
//! (expect a few minutes — three models are trained per dataset).

use evlab_core::dichotomy::{ComparisonConfig, ComparisonRunner};
use evlab_datasets::direction::{motion_direction, motion_direction_unpolarized};
use evlab_datasets::shapes::shape_silhouettes;
use evlab_datasets::DatasetConfig;

fn main() -> Result<(), evlab_util::EvlabError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = evlab_bench::metrics_arg(&args);
    let fast = args.iter().any(|a| a == "--fast");
    let (config, runner_config) = if fast {
        (
            DatasetConfig::new((32, 32)).with_split(6, 3),
            ComparisonConfig::fast(),
        )
    } else {
        (
            DatasetConfig::new((32, 32)).with_split(10, 5),
            ComparisonConfig::new(),
        )
    };
    let runner = ComparisonRunner::new(runner_config);

    println!("=== Dataset 1: shape silhouettes (spatial task) ===");
    let shapes = shape_silhouettes(&config);
    println!(
        "{} train / {} test, {:.0} events/sample\n",
        shapes.train.len(),
        shapes.test.len(),
        shapes.mean_events_per_sample()
    );
    let report = runner.run(&shapes, 17);
    println!("{}", report.render());

    println!("\n=== Dataset 2: motion direction (temporal task) ===");
    let direction = motion_direction(&config);
    println!(
        "{} train / {} test, {:.0} events/sample\n",
        direction.train.len(),
        direction.test.len(),
        direction.mean_events_per_sample()
    );
    let report = runner.run(&direction, 17);
    println!("{}", report.render());

    println!("\n=== Dataset 3: motion direction, unpolarized (strictly temporal task) ===");
    println!("(polarity randomized: opposite directions are spatially identical,");
    println!(" so only models that exploit event timing can beat the 4-axis ceiling)\n");
    let strict = motion_direction_unpolarized(&config);
    let report = runner.run(&strict, 17);
    println!("{}", report.render());
    evlab_bench::finish_metrics(&metrics)
}
