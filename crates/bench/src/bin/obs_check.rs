//! Validates a metrics file emitted by `--metrics` / [`evlab_util::obs`].
//!
//! Parses the file with [`evlab_util::json`] (the same parser the library
//! uses to write it), then asserts that every pipeline stage reported
//! activity: a smoke sweep that runs the camera, the encoders, both SNN
//! engines and the graph builders must leave all of the required counters
//! nonzero — a zero means a stage silently stopped recording (or silently
//! stopped running), which is exactly the failure mode the observability
//! layer exists to catch.
//!
//! Usage: `obs_check [--require NAME ...] [--forbid PATTERN ...]
//! PATH [PATH ...]` — exits non-zero on the first missing/zero counter or
//! unparseable file. With one or more `--require NAME` flags the required
//! set is exactly those counters instead of the built-in pipeline list
//! (used by `verify.sh` to validate serving metrics, where only `serve.*`
//! counters exist). A required name ending in `.*` passes when at least
//! one counter under that prefix exists and is nonzero (used for
//! `fault.*`, where the exact counter set depends on which fault models
//! fired). `--forbid PATTERN` inverts the gate: any counter matching the
//! pattern (`*` matches any run of characters) with a nonzero value fails
//! the check — used for `check.*violations`, where a nonzero counter
//! means a runtime invariant fired.

use evlab_util::json::Json;

/// Counters that every full smoke sweep must leave nonzero, one (or more)
/// per pipeline stage. `snn.layer.spikes` is deliberately absent: silence
/// is a legitimate output of a spiking network.
const REQUIRED_NONZERO: &[&str] = &[
    "sensor.camera.events",
    "cnn.encode.frames",
    "cnn.encode.events",
    "snn.layer.steps",
    "snn.layer.membrane_updates",
    "snn.event_driven.injections",
    "gnn.build.graphs",
    "gnn.build.nodes",
    "gnn.build.edges",
    "gnn.serial_fallback",
];

/// Tiny glob: `*` matches any (possibly empty) run of characters;
/// everything else matches literally.
fn glob_matches(pattern: &str, name: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == name,
        Some((head, tail)) => match name.strip_prefix(head) {
            None => false,
            Some(rest) => (0..=rest.len())
                .any(|i| rest.is_char_boundary(i) && glob_matches(tail, &rest[i..])),
        },
    }
}

fn check_file(path: &str, required: &[String], forbidden: &[String]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e:?}"))?;
    let counters = doc
        .get("counters")
        .ok_or_else(|| format!("{path}: no `counters` object"))?;
    let mut failures = Vec::new();
    for name in required {
        if let Some(prefix) = name.strip_suffix(".*") {
            // Prefix requirement: at least one counter under `prefix.` must
            // exist and be nonzero (the exact set is fault-model dependent).
            let entries = counters.entries().unwrap_or(&[]);
            let mut live = 0usize;
            for (k, v) in entries {
                if k.starts_with(prefix) && k[prefix.len()..].starts_with('.') {
                    if let Some(n) = v.as_u64() {
                        if n > 0 {
                            eprintln!("[obs_check]   {k:<40} {n}");
                            live += 1;
                        }
                    }
                }
            }
            if live == 0 {
                failures.push(format!("no nonzero counter matching `{name}`"));
            }
            continue;
        }
        match counters.get(name).and_then(Json::as_u64) {
            None => failures.push(format!("counter `{name}` missing")),
            Some(0) => failures.push(format!("counter `{name}` is zero")),
            Some(v) => eprintln!("[obs_check]   {name:<40} {v}"),
        }
    }
    for pattern in forbidden {
        for (k, v) in counters.entries().unwrap_or(&[]) {
            if glob_matches(pattern, k) {
                if let Some(n) = v.as_u64() {
                    if n > 0 {
                        failures.push(format!("forbidden counter `{k}` is {n}"));
                    }
                }
            }
        }
    }
    if doc.get("spans").is_none() {
        failures.push("no `spans` object".to_string());
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{path}:\n  {}", failures.join("\n  ")))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut required: Vec<String> = Vec::new();
    let mut forbidden: Vec<String> = Vec::new();
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--require" || arg == "--forbid" {
            match it.next() {
                Some(name) if arg == "--require" => required.push(name),
                Some(name) => forbidden.push(name),
                None => {
                    eprintln!("{arg} needs a counter name");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(arg);
        }
    }
    if required.is_empty() && forbidden.is_empty() {
        required = REQUIRED_NONZERO.iter().map(|s| s.to_string()).collect();
    }
    if paths.is_empty() {
        eprintln!(
            "usage: obs_check [--require NAME ...] [--forbid PATTERN ...] PATH [PATH ...]"
        );
        std::process::exit(2);
    }
    for path in &paths {
        eprintln!("[obs_check] {path}");
        if let Err(e) = check_file(path, &required, &forbidden) {
            eprintln!("[obs_check] FAILED: {e}");
            std::process::exit(1);
        }
        eprintln!("[obs_check] {path} ok");
    }
}
