//! Streaming-serving benchmark: sessions × event-rate × queue-depth.
//!
//! Trains one tiny pipeline per paradigm, then serves N concurrent
//! sessions of each through [`evlab_serve::ServeRuntime`], feeding every
//! session a clustered event stream in per-tick bursts. When the burst
//! exceeds the queue depth the runtime must shed load — the sweep
//! deliberately includes such overload points to measure degradation
//! rather than avoid it. For every configuration the report records
//! ingress/shed/decision counts and the p50/p99 event-to-decision latency
//! (queueing delay included), per paradigm, in `BENCH_serve.json`.
//!
//! Usage: `serve_bench [--smoke] [--out PATH] [--metrics PATH]`
//!
//! `--smoke` runs one overloaded configuration (4 sessions per paradigm,
//! 16-deep queues, 64-event bursts) and asserts that load was actually
//! shed and that every session still produced decisions — the graceful-
//! degradation contract. `--metrics PATH` additionally writes the
//! `serve.*` observability counters for `obs_check --require` validation.

use evlab_bench::{finish_metrics, metrics_arg, moving_cluster_stream};
use evlab_core::online::OnlineClassifier;
use evlab_core::prelude::*;
use evlab_datasets::shapes::shape_silhouettes;
use evlab_datasets::DatasetConfig;
use evlab_events::EventStream;
use evlab_serve::{DropPolicy, ServeConfig, ServeRuntime};
use evlab_util::json::Json;
use evlab_util::stats::quantile;
use evlab_util::EvlabError;
use std::time::Instant;

/// Sweep axes, reduced by `--smoke`.
struct Scale {
    sessions: Vec<usize>,
    queue_depths: Vec<usize>,
    /// Events offered per session per tick; bursts larger than the queue
    /// depth force overload.
    bursts: Vec<usize>,
    events_per_session: usize,
    /// Microseconds between consecutive events of one session's stream.
    event_dt_us: u64,
}

impl Scale {
    fn full() -> Self {
        Scale {
            sessions: vec![2, 4, 8],
            queue_depths: vec![32, 256],
            bursts: vec![16, 128],
            events_per_session: 4_000,
            event_dt_us: 25,
        }
    }

    fn smoke() -> Self {
        Scale {
            sessions: vec![4],
            queue_depths: vec![16],
            bursts: vec![64],
            events_per_session: 1_200,
            event_dt_us: 25,
        }
    }
}

/// A trained pipeline bundle from which per-session classifiers are cloned.
struct Paradigms {
    snn: SnnPipeline,
    cnn: CnnPipeline,
    gnn: GnnPipeline,
    resolution: (u16, u16),
}

fn train_paradigms() -> Paradigms {
    let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(6, 2));
    let mut snn = SnnPipeline::new(SnnPipelineConfig::new().with_epochs(8).with_seed(7));
    let mut cnn = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(8).with_seed(7));
    let mut gnn = GnnPipeline::new(
        GnnPipelineConfig::new()
            .with_epochs(8)
            .with_max_nodes(128)
            .with_seed(7),
    );
    eprintln!("[serve_bench] training snn/cnn/gnn on tiny shapes ...");
    snn.fit(&data);
    cnn.fit(&data);
    gnn.fit(&data);
    Paradigms {
        snn,
        cnn,
        gnn,
        resolution: data.resolution,
    }
}

fn make_session(
    paradigms: &Paradigms,
    paradigm: &str,
) -> Result<Box<dyn OnlineClassifier + Send>, EvlabError> {
    // 2 ms micro-batch windows: several flushes per served stream.
    let config = OnlineConfig::new(paradigms.resolution).with_window_us(2_000);
    let builder = SessionBuilder::new(config);
    match paradigm {
        "snn" => builder.snn(&paradigms.snn).build(),
        "cnn" => builder.cnn(&paradigms.cnn).build(),
        // The GNN ignores the window here: it bounds memory by node count.
        "gnn" => SessionBuilder::new(OnlineConfig::new(paradigms.resolution))
            .gnn(&paradigms.gnn)
            .build(),
        other => Err(EvlabError::serve(format!("unknown paradigm {other}"))),
    }
}

/// The measured outcome of serving one (paradigm, sessions, depth, burst)
/// configuration.
struct RunResult {
    offered: u64,
    accepted: u64,
    shed: u64,
    processed: u64,
    decisions: u64,
    p50_us: f64,
    p99_us: f64,
    secs: f64,
    errors: usize,
}

fn serve_one(
    paradigms: &Paradigms,
    paradigm: &str,
    n_sessions: usize,
    queue_depth: usize,
    burst: usize,
    streams: &[EventStream],
) -> Result<RunResult, EvlabError> {
    let config = ServeConfig::new()
        .with_queue_depth(queue_depth)
        .with_policy(DropPolicy::DropOldest)
        .with_quantum(32);
    let mut rt = ServeRuntime::new(config);
    for _ in 0..n_sessions {
        let classifier = make_session(paradigms, paradigm)?;
        rt.open_session(classifier, paradigms.resolution)?;
    }
    let start = Instant::now();
    // Ingest in per-tick bursts: every session receives `burst` events,
    // then the scheduler runs one round-robin round across all sessions.
    let mut cursors = vec![0usize; n_sessions];
    loop {
        let mut any = false;
        for (sid, cursor) in cursors.iter_mut().enumerate() {
            let stream = &streams[sid % streams.len()];
            let events = stream.as_slice();
            let end = (*cursor + burst).min(events.len());
            for e in &events[*cursor..end] {
                rt.offer(sid, *e);
            }
            any |= end > *cursor;
            *cursor = end;
        }
        rt.tick();
        if !any {
            break;
        }
    }
    rt.drain_all();
    rt.flush_all()?;
    let secs = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let (mut offered, mut accepted, mut shed, mut processed, mut decisions) = (0, 0, 0, 0, 0);
    let mut errors = 0usize;
    for s in rt.sessions() {
        let st = s.stats();
        offered += st.offered;
        accepted += st.accepted;
        shed += st.shed();
        processed += st.processed;
        decisions += st.decisions;
        latencies.extend_from_slice(s.latencies_us());
        if s.error().is_some() {
            errors += 1;
        }
    }
    Ok(RunResult {
        offered,
        accepted,
        shed,
        processed,
        decisions,
        p50_us: quantile(&latencies, 0.5).unwrap_or(f64::NAN),
        p99_us: quantile(&latencies, 0.99).unwrap_or(f64::NAN),
        secs,
        errors,
    })
}

fn main() -> Result<(), EvlabError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let metrics_path = metrics_arg(&args);
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    let paradigms = train_paradigms();
    // Distinct per-session streams (clustered — the realistic case), all
    // the same length so every session finishes ingest together.
    let max_sessions = scale.sessions.iter().copied().max().unwrap_or(1);
    let span_us = scale.events_per_session as u64 * scale.event_dt_us;
    let streams: Vec<EventStream> = (0..max_sessions)
        .map(|i| {
            moving_cluster_stream(
                scale.events_per_session,
                paradigms.resolution.0,
                span_us,
                100 + i as u64,
            )
        })
        .collect();

    let mut rows = Vec::new();
    let mut smoke_shed = 0u64;
    let mut smoke_decisions = 0u64;
    for paradigm in ["snn", "cnn", "gnn"] {
        for &n_sessions in &scale.sessions {
            for &depth in &scale.queue_depths {
                for &burst in &scale.bursts {
                    let r = serve_one(&paradigms, paradigm, n_sessions, depth, burst, &streams)?;
                    if r.errors > 0 {
                        return Err(EvlabError::serve(format!(
                            "{paradigm}: {} session(s) failed",
                            r.errors
                        )));
                    }
                    eprintln!(
                        "[serve_bench] {paradigm} sessions={n_sessions} depth={depth} \
                         burst={burst}: shed {}/{} p50={:.0}us p99={:.0}us ({:.2} Mev/s)",
                        r.shed,
                        r.offered,
                        r.p50_us,
                        r.p99_us,
                        r.processed as f64 / r.secs.max(1e-12) / 1e6,
                    );
                    smoke_shed += r.shed;
                    smoke_decisions += r.decisions;
                    rows.push(Json::obj([
                        ("paradigm", Json::str(paradigm)),
                        ("sessions", Json::from(n_sessions)),
                        ("queue_depth", Json::from(depth)),
                        ("burst", Json::from(burst)),
                        ("offered", Json::from(r.offered)),
                        ("accepted", Json::from(r.accepted)),
                        ("shed", Json::from(r.shed)),
                        ("processed", Json::from(r.processed)),
                        ("decisions", Json::from(r.decisions)),
                        ("p50_latency_us", Json::from(r.p50_us)),
                        ("p99_latency_us", Json::from(r.p99_us)),
                        ("secs", Json::from(r.secs)),
                        (
                            "events_per_sec",
                            Json::from(r.processed as f64 / r.secs.max(1e-12)),
                        ),
                    ]));
                }
            }
        }
    }

    if smoke {
        // Graceful-degradation contract: the overloaded smoke config must
        // shed load *and* keep deciding — without either, serving under
        // overload silently degenerated.
        if smoke_shed == 0 {
            return Err(EvlabError::serve("smoke run shed nothing: not overloaded"));
        }
        if smoke_decisions == 0 {
            return Err(EvlabError::serve("smoke run produced no decisions"));
        }
    }

    let report = Json::obj([
        ("smoke", Json::from(smoke)),
        ("policy", Json::str("drop_oldest")),
        ("quantum", Json::from(32usize)),
        ("events_per_session", Json::from(scale.events_per_session)),
        ("event_dt_us", Json::from(scale.event_dt_us)),
        ("configs", Json::arr(rows)),
    ]);
    evlab_util::json::write_atomic(&out_path, &(report.to_string_pretty() + "\n"))?;
    eprintln!("[serve_bench] wrote {out_path}");
    finish_metrics(&metrics_path)
}
