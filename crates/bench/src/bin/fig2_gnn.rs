//! Regenerates the GNN panel of Fig. 2: how graphs are created from a set
//! of events — radius connectivity in the scaled (x, y, βt) space, degree
//! distributions, and the effect of the β time-scaling and radius choices.
//!
//! Run with: `cargo run -p evlab-bench --bin fig2_gnn`

use evlab_bench::moving_cluster_stream;
use evlab_gnn::build::{incremental_build, GraphConfig};
use evlab_tensor::OpCount;

fn main() -> Result<(), evlab_util::EvlabError> {
    let metrics = evlab_bench::metrics_arg(&std::env::args().skip(1).collect::<Vec<_>>());
    let stream = moving_cluster_stream(2_000, 64, 50_000, 11);
    println!(
        "Fig. 2 (right) — event-graph construction over {} events, 64x64, 50 ms\n",
        stream.len()
    );
    println!(
        "{:>8} {:>10} {:>8} {:>12} {:>12} {:>14}",
        "radius", "beta", "degree", "nodes", "edges", "isolated nodes"
    );
    for &(radius, beta) in &[
        (3.0, 0.001),
        (5.0, 0.001),
        (8.0, 0.001),
        (5.0, 0.0001),
        (5.0, 0.01),
    ] {
        let config = GraphConfig::new().with_radius(radius);
        let config = GraphConfig { beta, ..config };
        let mut ops = OpCount::new();
        let graph = incremental_build(stream.as_slice(), &config, &mut ops);
        let isolated = (0..graph.node_count())
            .filter(|&i| graph.in_neighbors(i).is_empty())
            .count();
        println!(
            "{:>8.1} {:>10.4} {:>8.2} {:>12} {:>12} {:>14}",
            radius,
            beta,
            graph.mean_degree(),
            graph.node_count(),
            graph.edge_count(),
            isolated
        );
    }

    // Degree histogram at the default configuration.
    let mut ops = OpCount::new();
    let graph = incremental_build(stream.as_slice(), &GraphConfig::new(), &mut ops);
    let mut hist = [0usize; 10];
    for i in 0..graph.node_count() {
        let d = graph.in_neighbors(i).len().min(9);
        hist[d] += 1;
    }
    println!("\nin-degree histogram (radius 5, beta 0.001, max degree 8):");
    for (d, &count) in hist.iter().enumerate() {
        println!(
            "  degree {d}: {:>5}  |{}",
            count,
            "#".repeat(count * 60 / graph.node_count().max(1))
        );
    }
    println!(
        "\nedge attributes carry (dx, dy, b*dt) — e.g. edge into node 100: {:?}",
        graph
            .in_neighbors(100)
            .first()
            .map(|&j| graph.relative_offset(100, j as usize))
    );
    evlab_bench::finish_metrics(&metrics)
}
