//! Ablations over the design choices DESIGN.md calls out: graph radius and
//! time scaling for the GNN, timestep count for the SNN, frame encoder and
//! post-training pruning for the CNN.
//!
//! Run with: `cargo run --release -p evlab-bench --bin ablations`

use evlab_cnn::prune::{prune_by_magnitude, quantize_weights};
use evlab_core::cnn_pipeline::{CnnPipeline, CnnPipelineConfig, FrameKind};
use evlab_core::gnn_pipeline::{GnnPipeline, GnnPipelineConfig};
use evlab_core::pipeline::{test_accuracy, EventClassifier};
use evlab_core::snn_pipeline::{SnnPipeline, SnnPipelineConfig};
use evlab_datasets::direction::motion_direction_unpolarized;
use evlab_datasets::shapes::shape_silhouettes;
use evlab_datasets::DatasetConfig;
use evlab_events::filters::BackgroundActivityFilter;
use evlab_gnn::build::GraphConfig;
use evlab_tensor::OpCount;

fn main() {
    let data_config = DatasetConfig::new((32, 32)).with_split(8, 4);
    let shapes = shape_silhouettes(&data_config);
    let temporal = motion_direction_unpolarized(&data_config);

    println!("=== GNN: graph radius and time scaling (shapes, 32x32) ===");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12}",
        "radius", "beta", "accuracy", "ops/inf", "mean degree"
    );
    for &(radius, beta) in &[(3.0, 0.001), (5.0, 0.001), (8.0, 0.001), (5.0, 0.01)] {
        let config = GnnPipelineConfig::new()
            .with_graph(GraphConfig {
                beta,
                ..GraphConfig::new().with_radius(radius)
            })
            .with_epochs(15)
            .with_seed(11);
        let mut clf = GnnPipeline::new(config);
        clf.fit(&shapes);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &shapes, &mut ops);
        let mut probe = OpCount::new();
        let graph = clf.build_graph(&shapes.test[0].stream, &mut probe);
        println!(
            "{:>8.1} {:>8.3} {:>10.2} {:>12.0} {:>12.2}",
            radius,
            beta,
            acc,
            ops.effective_arithmetic() as f64 / shapes.test.len() as f64,
            graph.mean_degree()
        );
    }

    println!("\n=== SNN: timestep count (shapes, 32x32) ===");
    println!("{:>8} {:>10} {:>10} {:>14}", "steps", "dt us", "accuracy", "adds/inf");
    for &(steps, dt_us) in &[(4usize, 8_000u64), (8, 4_000), (16, 2_000), (32, 1_000)] {
        let config = SnnPipelineConfig::new()
            .with_steps(steps)
            .with_dt_us(dt_us)
            .with_epochs(25)
            .with_seed(11);
        let mut clf = SnnPipeline::new(config);
        clf.fit(&shapes);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &shapes, &mut ops);
        println!(
            "{:>8} {:>10} {:>10.2} {:>14.0}",
            steps,
            dt_us,
            acc,
            ops.adds as f64 / shapes.test.len() as f64
        );
    }

    println!("\n=== CNN: frame encoder on the strictly-temporal task ===");
    println!("{:>14} {:>10} {:>10}", "encoder", "accuracy", "chance");
    for (name, frame) in [
        ("two-channel", FrameKind::TwoChannel),
        ("voxel-grid-5", FrameKind::VoxelGrid(5)),
    ] {
        let config = CnnPipelineConfig::new()
            .with_frame(frame)
            .with_epochs(20)
            .with_seed(11);
        let mut clf = CnnPipeline::new(config);
        clf.fit(&temporal);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &temporal, &mut ops);
        println!(
            "{:>14} {:>10.2} {:>10.2}",
            name,
            acc,
            1.0 / temporal.num_classes as f32
        );
    }

    println!("\n=== CNN: post-training pruning and quantization (shapes) ===");
    let mut clf = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(20).with_seed(11));
    clf.fit(&shapes);
    let mut ops = OpCount::new();
    let baseline = test_accuracy(&mut clf, &shapes, &mut ops);
    println!("{:>12} {:>10} {:>14}", "prune frac", "accuracy", "weight zeros");
    println!("{:>12} {:>10.2} {:>14}", "0.0", baseline, "0%");
    for &fraction in &[0.5f64, 0.7, 0.9] {
        let mut pruned = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(20).with_seed(11));
        pruned.fit(&shapes);
        let report =
            prune_by_magnitude(pruned.network_mut().expect("trained"), fraction);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut pruned, &shapes, &mut ops);
        println!(
            "{:>12} {:>10.2} {:>13.0}%",
            fraction,
            acc,
            report.weight_sparsity * 100.0
        );
    }
    println!("{:>12} {:>10} {:>14}", "quant bits", "accuracy", "model bytes");
    for &bits in &[8u32, 4, 2] {
        let mut quant = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(20).with_seed(11));
        quant.fit(&shapes);
        let report = quantize_weights(quant.network_mut().expect("trained"), bits);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut quant, &shapes, &mut ops);
        println!("{:>12} {:>10.2} {:>14}", bits, acc, report.quantized_bytes);
    }

    println!("\n=== GNN: relational vs B-spline edge kernel (shapes) ===");
    println!("{:>14} {:>10} {:>12}", "kernel", "accuracy", "params");
    for (name, spline) in [("relational", false), ("spline-3", true)] {
        let mut config = GnnPipelineConfig::new().with_epochs(15).with_seed(11);
        config.kernel_size = if spline { Some(3) } else { None };
        let mut clf = GnnPipeline::new(config);
        clf.fit(&shapes);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &shapes, &mut ops);
        println!("{:>14} {:>10.2} {:>12}", name, acc, clf.param_count());
    }

    println!("\n=== Noise robustness: background-activity filter under heavy sensor noise ===");
    let noisy_config = DatasetConfig::new((32, 32)).with_split(6, 4).with_noise(true);
    let noisy = shape_silhouettes(&noisy_config);
    println!("{:>16} {:>10} {:>14}", "pipeline", "accuracy", "events/sample");
    for (name, filter) in [("raw", false), ("BA-filtered", true)] {
        let data = if filter {
            let ba = BackgroundActivityFilter::new(5_000);
            let mut d = noisy.clone();
            for s in d.train.iter_mut().chain(d.test.iter_mut()) {
                s.stream = ba.apply(&s.stream);
            }
            d
        } else {
            noisy.clone()
        };
        let mut clf = GnnPipeline::new(GnnPipelineConfig::new().with_epochs(15).with_seed(11));
        clf.fit(&data);
        let mut ops = OpCount::new();
        let acc = test_accuracy(&mut clf, &data, &mut ops);
        println!(
            "{:>16} {:>10.2} {:>14.0}",
            name,
            acc,
            data.mean_events_per_sample()
        );
    }
}
