//! Regenerates Fig. 1: pixel-pitch and array-size scaling trends of
//! published event-camera sensors, 2008–2022, plus the fill-factor jump
//! from front-side illumination to 3-D stacking.
//!
//! Run with: `cargo run -p evlab-bench --bin fig1`

use evlab_sensor::sensordb::{
    array_trend, fill_factor_by_process, pitch_trend, published_sensors,
};

fn main() -> Result<(), evlab_util::EvlabError> {
    let metrics = evlab_bench::metrics_arg(&std::env::args().skip(1).collect::<Vec<_>>());
    let db = published_sensors();
    println!("Fig. 1 — event-camera scaling trends ({} devices)\n", db.len());
    println!(
        "{:<22} {:<22} {:>5} {:>9} {:>11} {:>7} {:>11} {:>9}",
        "device", "vendor", "year", "pitch um", "array", "Mpx", "fill %", "readout"
    );
    for r in &db {
        println!(
            "{:<22} {:<22} {:>5} {:>9.2} {:>6}x{:<4} {:>6.3} {:>11} {:>9}",
            r.name,
            r.vendor,
            r.year,
            r.pitch_um,
            r.width,
            r.height,
            r.megapixels(),
            r.fill_factor_pct
                .map(|f| format!("{f:.0}"))
                .unwrap_or_else(|| "-".into()),
            r.readout_eps
                .map(|e| format!("{:.2e}", e))
                .unwrap_or_else(|| "-".into()),
        );
    }
    let (p0, pf) = pitch_trend(&db).expect("pitch fit");
    let (m0, mf) = array_trend(&db).expect("array fit");
    println!("\npitch trend:  {:.1} um (2008) x {:.3}/year  (halving every {:.1} years)",
        p0, pf, (0.5f64).ln() / pf.ln());
    println!(
        "array trend:  {:.3} Mpx (2008) x {:.2}/year (doubling every {:.1} years)",
        m0,
        mf,
        (2.0f64).ln() / mf.ln()
    );
    let (fsi, stacked) = fill_factor_by_process(&db);
    println!(
        "fill factor:  FSI mean {:.0}% -> stacked mean {:.0}%  (\"one fifth to more than three quarters\")",
        fsi.unwrap_or(0.0),
        stacked.unwrap_or(0.0)
    );
    evlab_bench::finish_metrics(&metrics)
}
