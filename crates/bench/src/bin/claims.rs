//! Quantitative verification of the paper's load-bearing claims
//! (experiments CL-A … CL-I of DESIGN.md §3).
//!
//! Run with: `cargo run --release -p evlab-bench --bin claims`

use evlab_bench::{moving_cluster_stream, uniform_stream};
use evlab_cnn::encode::{FrameEncoder, TwoChannel};
use evlab_cnn::model::{build_cnn, CnnConfig};
use evlab_gnn::build::{incremental_build, kdtree_build, naive_build, GraphConfig};
use evlab_gnn::network::{GnnConfig, GnnNetwork};
use evlab_hw::energy::EnergyModel;
use evlab_hw::snn_core::{AnalogCore, NeuromorphicCore, UpdatePolicy};
use evlab_hw::zeroskip::ZeroSkipAccelerator;
use evlab_sensor::scene::EgomotionPan;
use evlab_sensor::{CameraConfig, EventCamera, PixelConfig};
use evlab_snn::convert::{rate_approximation_error, ConvertedSnn, ReluMlp};
use evlab_snn::encode::{events_to_spikes, rate_encode, ttfs_encode};
use evlab_snn::event_driven::EventDrivenSnn;
use evlab_snn::network::{SnnConfig, SnnNetwork};
use evlab_tensor::optim::Adam;
use evlab_tensor::{OpCount, Tensor};
use evlab_util::Rng64;
use std::time::Instant;

fn header(id: &str, claim: &str) {
    println!("\n--- {id}: {claim} ---");
}

fn main() {
    let mut rng = Rng64::seed_from_u64(99);

    // CL-A: memory accesses dominate digital SNN core energy (up to 99%).
    header("CL-A", "memory traffic dominates digital neuromorphic energy [42]");
    let mut net = SnnNetwork::new(SnnConfig::new(512, 10).with_hidden(vec![256]), &mut rng);
    let stream = moving_cluster_stream(3_000, 16, 30_000, 1);
    let train = events_to_spikes(&stream, 2_000, 15);
    let mut snn_ops = OpCount::new();
    net.forward(&train, &mut snn_ops);
    let core = NeuromorphicCore::new(EnergyModel::nm45(), UpdatePolicy::Clocked);
    for (label, state, weights) in [
        ("small core (RF-resident)", 300usize, 1_000usize),
        ("typical core (SRAM)", 266, 133_632),
        ("large core (big SRAM)", 1_000_000, 3_000_000),
    ] {
        let r = core.price(&snn_ops, state, weights);
        println!(
            "  {label:<28} memory fraction {:>5.1}%  total {:.3} uJ",
            r.memory_fraction() * 100.0,
            r.total_uj()
        );
    }

    // CL-B: event-driven updates cost more memory traffic at high rates.
    header("CL-B", "clocked vs event-driven update crossover [42],[44]");
    let mut small = SnnNetwork::new(SnnConfig::new(64, 4).with_hidden(vec![64]), &mut rng);
    let mut ed = EventDrivenSnn::from_network(&small);
    println!(
        "  {:>14} {:>16} {:>16} {:>8}",
        "input spikes", "clocked accesses", "event accesses", "winner"
    );
    for &spikes_per_step in &[0usize, 1, 4, 16, 48] {
        let mut trng = Rng64::seed_from_u64(5);
        let mut t = evlab_snn::encode::SpikeTrain::new(64, 20);
        for step in 0..20 {
            for _ in 0..spikes_per_step {
                t.push(step, trng.next_index(64) as u32);
            }
        }
        let mut ops_clocked = OpCount::new();
        small.forward(&t, &mut ops_clocked);
        let mut ops_event = OpCount::new();
        ed.process(&t, &mut ops_event);
        println!(
            "  {:>14} {:>16} {:>16} {:>8}",
            spikes_per_step * 20,
            ops_clocked.mem_accesses(),
            ops_event.mem_accesses(),
            if ops_event.mem_accesses() < ops_clocked.mem_accesses() {
                "event"
            } else {
                "clocked"
            }
        );
    }

    // CL-C: digital CNN accelerators can beat digital SNN cores — the §V
    // inversion. CNN cost is fixed per frame; SNN cost grows with event
    // rate, so the winner flips with activity.
    header("CL-C", "digital CNN accel vs digital SNN core: the winner flips with activity [42]");
    let mut cnn = build_cnn(&CnnConfig::small(2, 32, 10), &mut rng);
    let zs = ZeroSkipAccelerator::new(EnergyModel::nm45());
    println!(
        "  {:>14} {:>12} {:>12} {:>8}",
        "events/window", "CNN uJ", "SNN uJ", "winner"
    );
    for &n_events in &[50usize, 500, 2_000, 8_000, 32_000] {
        let stream = uniform_stream(n_events, 32, 30_000, 2);
        let frame = TwoChannel::new().encode(stream.as_slice(), (32, 32), &mut OpCount::new());
        let mut cnn_ops = OpCount::new();
        cnn.forward(&frame, &mut cnn_ops);
        let cnn_cost = zs.price(&cnn_ops, 0.0, 2.0, cnn.param_count());
        let mut busy_net =
            SnnNetwork::new(SnnConfig::new(2 * 32 * 32, 10).with_hidden(vec![256]), &mut rng);
        let busy_train = events_to_spikes(&stream, 2_000, 15);
        let mut busy_ops = OpCount::new();
        busy_net.forward(&busy_train, &mut busy_ops);
        let snn_cost = core.price(&busy_ops, 266, busy_net.param_count());
        println!(
            "  {:>14} {:>12.3} {:>12.3} {:>8}",
            n_events,
            cnn_cost.total_uj(),
            snn_cost.total_uj(),
            if cnn_cost.total_uj() < snn_cost.total_uj() {
                "CNN"
            } else {
                "SNN"
            }
        );
    }

    // CL-D: analog neuromorphic ~10x lower power.
    header("CL-D", "analog SNN core ~order of magnitude lower energy [46]");
    let analog = AnalogCore::new(EnergyModel::nm45());
    let d = core.price(&snn_ops, 266, 133_632);
    let a = analog.price(&snn_ops, 266);
    println!(
        "  digital {:.3} uJ vs analog {:.3} uJ -> {:.0}x",
        d.total_uj(),
        a.total_uj(),
        d.total_pj() / a.total_pj()
    );

    // CL-E: GNN needs orders of magnitude fewer ops/params than dense CNN.
    // Event count is a scene property (fixed here at 1024/window); dense
    // CNN work grows with pixel count, so the ratio crosses over and then
    // grows ~4x per resolution doubling. Parameters are resolution-
    // independent for the GNN.
    header("CL-E", "GNN ops/params advantage over dense-frame CNN grows with resolution [69]-[72]");
    println!(
        "  {:>10} {:>13} {:>13} {:>13} {:>7} {:>11} {:>11}",
        "resolution", "CNN net ops", "GNN net ops", "graph build", "ratio", "CNN params", "GNN params"
    );
    for &res in &[32usize, 64, 128, 256] {
        let mut cnn = build_cnn(&CnnConfig::small(2, res, 10), &mut rng);
        let mut ops_cnn = OpCount::new();
        cnn.forward(&Tensor::filled(&[2, res, res], 1.0), &mut ops_cnn);
        let stream = moving_cluster_stream(1_024, res as u16, 30_000, 3);
        let mut ops_build = OpCount::new();
        let graph = incremental_build(
            stream.as_slice(),
            &GraphConfig::new().with_cell_capacity(64),
            &mut ops_build,
        );
        let mut gnn = GnnNetwork::new(&GnnConfig::new(10), &mut rng);
        let mut ops_gnn = OpCount::new();
        gnn.forward(&graph, &mut ops_gnn);
        println!(
            "  {:>10} {:>13} {:>13} {:>13} {:>7.1} {:>11} {:>11}",
            format!("{res}x{res}"),
            ops_cnn.total_arithmetic(),
            ops_gnn.total_arithmetic(),
            ops_build.total_arithmetic(),
            ops_cnn.total_arithmetic() as f64
                / (ops_gnn.total_arithmetic() + ops_build.total_arithmetic()) as f64,
            cnn.param_count(),
            gnn.param_count()
        );
    }

    // CL-F: incremental graph construction speedup. Workload: spatially
    // spread activity over a large array (events from all over the scene),
    // a short 20 ms horizon and recency-capped cells — the streaming
    // configuration of [72]. The naive scan is O(N) per event; the
    // incremental insertion is O(1), so the gap grows without bound.
    header("CL-F", "incremental insertion vs tree/naive construction speedup [72],[75]");
    println!(
        "  {:>8} {:>12} {:>12} {:>12} {:>11} {:>13} {:>13}",
        "events", "naive ms", "kdtree ms", "incr ms", "naive/incr", "checks ratio", "us/event incr"
    );
    for &n in &[2_000usize, 10_000, 50_000, 200_000] {
        let stream = uniform_stream(n, 512, 200_000, 4);
        let config = GraphConfig {
            horizon_us: 20_000,
            ..GraphConfig::new().with_cell_capacity(32)
        };
        let (mut naive_ms, mut kd_ms) = (f64::NAN, f64::NAN);
        let mut ops_naive = OpCount::new();
        if n <= 50_000 {
            let t0 = Instant::now();
            naive_build(stream.as_slice(), &config, &mut ops_naive);
            naive_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let mut ops_kd = OpCount::new();
            kdtree_build(stream.as_slice(), &config, &mut ops_kd);
            kd_ms = t1.elapsed().as_secs_f64() * 1e3;
        }
        let mut ops_incr = OpCount::new();
        let t2 = Instant::now();
        incremental_build(stream.as_slice(), &config, &mut ops_incr);
        let incr_ms = t2.elapsed().as_secs_f64() * 1e3;
        println!(
            "  {:>8} {:>12.2} {:>12.2} {:>12.2} {:>11.0} {:>13.0} {:>13.3}",
            n,
            naive_ms,
            kd_ms,
            incr_ms,
            naive_ms / incr_ms.max(1e-6),
            ops_naive.mults as f64 / ops_incr.mults.max(1) as f64,
            incr_ms * 1e3 / n as f64
        );
    }

    // CL-G: egomotion rate explosion and mitigation.
    header("CL-G", "high resolution + egomotion -> rate explosion; in-sensor mitigation [20],[21]");
    println!(
        "  {:>10} {:>14} {:>14} {:>14}",
        "resolution", "raw events/s", "2x downsample", "rate-capped"
    );
    for &res in &[64u16, 128, 256] {
        let camera = EventCamera::new(
            CameraConfig::new((res, res))
                .with_pixel(PixelConfig::ideal())
                .with_sample_period_us(500),
        );
        let stream = camera.record(&EgomotionPan::new(0.002, 6.0, 7), 0, 20_000, 1);
        let down =
            evlab_events::downsample::SpatialDownsampler::new(2, 1_000).apply(&stream);
        let (capped, _) =
            evlab_events::downsample::EventRateController::new(500_000.0, 64).apply(&stream);
        println!(
            "  {:>10} {:>14.0} {:>14.0} {:>14.0}",
            format!("{res}x{res}"),
            stream.mean_rate_hz(),
            down.mean_rate_hz(),
            capped.mean_rate_hz()
        );
    }

    // CL-H: ANN->SNN conversion unevenness error vs timesteps; TTFS
    // sparsity.
    header("CL-H", "rate-coding unevenness error shrinks with T; temporal codes are sparser [36]-[38]");
    let mut mlp = ReluMlp::new(&[16, 32, 4], &mut rng);
    let calib: Vec<Tensor> = (0..24)
        .map(|i| {
            let mut v = vec![0.0f32; 16];
            for j in 0..4 {
                v[(i % 4) * 4 + j] = 0.4 + 0.6 * rng.next_f32();
            }
            Tensor::from_vec(&[16], v).expect("shape")
        })
        .collect();
    let mut opt = Adam::new(0.02);
    let mut train_ops = OpCount::new();
    for _ in 0..60 {
        for (i, x) in calib.iter().enumerate() {
            mlp.accumulate(x, i % 4, &mut train_ops);
        }
        mlp.step(&mut opt);
    }
    let snn = ConvertedSnn::convert(&mut mlp, &calib);
    println!("  {:>6} {:>18}", "T", "mean rate error");
    for &steps in &[5usize, 10, 25, 50, 100, 250] {
        let err = rate_approximation_error(&mut mlp, &snn, &calib[..8], steps);
        println!("  {steps:>6} {err:>18.4}");
    }
    let probe = calib[0].as_slice();
    let rate_spikes = rate_encode(probe, 100, 1.0, &mut rng).total_spikes();
    let ttfs_spikes = ttfs_encode(probe, 100).total_spikes();
    println!(
        "  coding sparsity over 100 steps: rate {} spikes vs TTFS {} spikes ({:.0}x sparser)",
        rate_spikes,
        ttfs_spikes,
        rate_spikes as f64 / ttfs_spikes.max(1) as f64
    );

    // CL-J: the 3-D integrated smart imager (§I): bringing the processor
    // into the sensor stack removes the event-transport bottleneck.
    header("CL-J", "3-D integration vs off-chip processing for the smart imager [9],[21]");
    {
        use evlab_hw::system::SmartImagerBudget;
        let inference = core.price(&snn_ops, 266, 133_632);
        println!(
            "  {:>12} {:>22} {:>22}",
            "event rate", "3-D stacked", "off-chip"
        );
        for &rate in &[1e5f64, 1e6, 1e7, 1e8] {
            let stacked =
                SmartImagerBudget::three_d_stacked().evaluate(rate, &inference, 100.0);
            let off = SmartImagerBudget::off_chip().evaluate(rate, &inference, 100.0);
            println!(
                "  {:>9.0e}/s {:>14.2} mW {:>6.1} us {:>13.2} mW {:>6.1} us",
                rate,
                stacked.total_mw(),
                stacked.decision_latency_us,
                off.total_mw(),
                off.decision_latency_us
            );
        }
    }

    // CL-K: §IV lists optical flow among the event-GNN wins — compare the
    // learned graph regressor against the classical plane-fit baseline.
    header("CL-K", "event-based optical flow: plane-fit baseline vs event-graph regressor [57],[72]");
    {
        use evlab_core::flow::{plane_fit_epe, GnnFlowRegressor};
        use evlab_datasets::flow::translating_texture;
        use evlab_datasets::DatasetConfig;
        let config = DatasetConfig::new((32, 32)).with_split(4, 3);
        let data = translating_texture(&config);
        let zero_motion = data.mean_speed();
        let plane = plane_fit_epe(&data, 2, 3_000);
        let mut ops = OpCount::new();
        let mut reg = GnnFlowRegressor::new(3);
        reg.fit(&data, 40, &mut ops);
        let gnn = reg.epe(&data, &mut ops);
        println!("  mean speed (zero-motion error): {zero_motion:.5} px/us");
        println!("  plane-fit EPE:                  {plane:.5} px/us");
        println!("  event-graph regressor EPE:      {gnn:.5} px/us");
    }

    // CL-I: structured sparsity restores deterministic access.
    header("CL-I", "structured sparsity removes the irregular-access penalty [65]");
    let mut ops = OpCount::new();
    ops.record_mac(2_000_000, 600_000);
    let unstructured = ZeroSkipAccelerator::new(EnergyModel::nm45());
    let structured = unstructured.with_structured_sparsity();
    let u = unstructured.price(&ops, 0.0, 2.5, 120_000);
    let s = structured.price(&ops, 0.0, 2.5, 120_000);
    println!(
        "  unstructured memory energy {:.3} uJ vs structured {:.3} uJ (penalty {:.2}x removed)",
        u.memory_pj * 1e-6,
        s.memory_pj * 1e-6,
        u.memory_pj / s.memory_pj
    );
}
