//! Regenerates the SNN panel of Fig. 2: the LIF membrane trace (the RC
//! circuit response) and the surrogate-gradient curves that replace the
//! spiking delta during training.
//!
//! Run with: `cargo run -p evlab-bench --bin fig2_snn`

use evlab_snn::neuron::{LifConfig, LifNeuron};
use evlab_snn::surrogate::Surrogate;

fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    let filled = ((value / max).clamp(0.0, 1.0) * width as f64) as usize;
    "#".repeat(filled)
}

fn main() -> Result<(), evlab_util::EvlabError> {
    let metrics = evlab_bench::metrics_arg(&std::env::args().skip(1).collect::<Vec<_>>());
    println!("Fig. 2 (left) — LIF membrane response to an input spike train\n");
    let mut neuron = LifNeuron::new(&LifConfig::new());
    // Input: bursts of current followed by silence.
    println!("{:>4} {:>8} {:>7}  trace", "t", "input", "V(t)");
    for t in 0..40 {
        let input = if (5..12).contains(&t) || (25..28).contains(&t) {
            0.35
        } else {
            0.0
        };
        let out = neuron.step(input);
        let marker = if out.spiked { " SPIKE" } else { "" };
        println!(
            "{:>4} {:>8.2} {:>7.3}  |{}{}",
            t,
            input,
            out.membrane,
            ascii_bar(out.membrane as f64, 1.2, 40),
            marker
        );
    }

    println!("\nFig. 2 (left) — surrogate gradients vs membrane distance to threshold\n");
    let surrogates = [
        ("fast-sigmoid(5)", Surrogate::FastSigmoid { slope: 5.0 }),
        ("triangle(1)", Surrogate::Triangle { width: 1.0 }),
        ("arctan(2)", Surrogate::Arctan { alpha: 2.0 }),
    ];
    print!("{:>8}", "v - th");
    for (name, _) in &surrogates {
        print!(" {name:>16}");
    }
    println!();
    let mut x = -2.0f32;
    while x <= 2.01 {
        print!("{x:>8.2}");
        for (_, s) in &surrogates {
            print!(" {:>16.4}", s.grad(x));
        }
        println!();
        x += 0.25;
    }
    evlab_bench::finish_metrics(&metrics)
}
