//! Crash-recovery benchmark: snapshot cadence × crash point × paradigm.
//!
//! For every configuration the harness serves a clustered event stream
//! through a durable session ([`evlab_serve::CheckpointManager`]), kills
//! the process state at the crash point (dropping the runtime and tearing
//! the live WAL tail mid-record, the signature of a real crash
//! mid-append), recovers into a fresh runtime, and finishes the stream.
//! The recovered run is compared decision-for-decision against an oracle
//! that served the same stream without a crash — the report records
//! whether they were identical, alongside recovery latency, replay
//! length, and on-disk footprint, per paradigm, in `BENCH_recovery.json`.
//!
//! Usage: `recovery_bench [--smoke] [--out PATH] [--metrics PATH]`
//!
//! `--smoke` runs one cadence × crash point over all three paradigms and
//! asserts the recovery contract: every recovered history identical to
//! its oracle, and at least one torn tail absorbed. `--metrics PATH`
//! additionally writes the `ckpt.*` / `wal.*` observability counters for
//! `obs_check --require` validation.

use evlab_bench::{finish_metrics, metrics_arg, moving_cluster_stream};
use evlab_core::online::OnlineClassifier;
use evlab_core::prelude::*;
use evlab_datasets::shapes::shape_silhouettes;
use evlab_datasets::DatasetConfig;
use evlab_events::aer::AerCodec;
use evlab_serve::{CheckpointManager, DurableConfig, ServeConfig, ServeRuntime};
use evlab_util::json::Json;
use evlab_util::EvlabError;
use std::path::PathBuf;
use std::time::Instant;

/// Sweep axes, reduced by `--smoke`.
struct Scale {
    cadences: Vec<u64>,
    crash_fractions: Vec<f64>,
    events: usize,
    event_dt_us: u64,
}

impl Scale {
    fn full() -> Self {
        Scale {
            cadences: vec![8, 32, 128],
            crash_fractions: vec![0.25, 0.6, 0.95],
            events: 1_500,
            event_dt_us: 40,
        }
    }

    fn smoke() -> Self {
        Scale {
            cadences: vec![8],
            crash_fractions: vec![0.6],
            events: 300,
            event_dt_us: 40,
        }
    }
}

struct Paradigms {
    snn: SnnPipeline,
    cnn: CnnPipeline,
    gnn: GnnPipeline,
    resolution: (u16, u16),
}

fn train_paradigms() -> Paradigms {
    let data = shape_silhouettes(&DatasetConfig::tiny((16, 16)).with_split(6, 2));
    let mut snn = SnnPipeline::new(SnnPipelineConfig::new().with_epochs(6).with_seed(11));
    let mut cnn = CnnPipeline::new(CnnPipelineConfig::new().with_epochs(6).with_seed(11));
    let mut gnn = GnnPipeline::new(
        GnnPipelineConfig::new()
            .with_epochs(6)
            .with_max_nodes(96)
            .with_seed(11),
    );
    eprintln!("[recovery_bench] training snn/cnn/gnn on tiny shapes ...");
    snn.fit(&data);
    cnn.fit(&data);
    gnn.fit(&data);
    Paradigms {
        snn,
        cnn,
        gnn,
        resolution: data.resolution,
    }
}

fn make_session(
    paradigms: &Paradigms,
    paradigm: &str,
) -> Result<Box<dyn OnlineClassifier + Send>, EvlabError> {
    let config = OnlineConfig::new(paradigms.resolution).with_window_us(2_000);
    match paradigm {
        "snn" => SessionBuilder::new(OnlineConfig::new(paradigms.resolution))
            .snn(&paradigms.snn)
            .build(),
        "cnn" => SessionBuilder::new(config).cnn(&paradigms.cnn).build(),
        "gnn" => SessionBuilder::new(OnlineConfig::new(paradigms.resolution))
            .gnn(&paradigms.gnn)
            .build(),
        other => Err(EvlabError::serve(format!("unknown paradigm {other}"))),
    }
}

fn open_durable(
    paradigms: &Paradigms,
    paradigm: &str,
    root: &PathBuf,
    cadence: u64,
) -> Result<(ServeRuntime, CheckpointManager, usize), EvlabError> {
    let mut rt = ServeRuntime::new(ServeConfig::new());
    let id = rt.open_session(make_session(paradigms, paradigm)?, paradigms.resolution)?;
    let mut cm = CheckpointManager::new(
        DurableConfig::new(root)
            .with_cadence_words(cadence)
            .with_drain_every(8),
    )?;
    cm.attach(&rt, id)?;
    Ok((rt, cm, id))
}

struct RunResult {
    crash_at: usize,
    words_durable: u64,
    words_replayed: u64,
    torn_tail: bool,
    recovery_secs: f64,
    decisions: u64,
    wal_disk_bytes: u64,
    identical: bool,
}

/// Serves `words` with a crash at index `crash_at`, recovers, finishes the
/// stream, and compares against an uncrashed oracle.
fn run_one(
    paradigms: &Paradigms,
    paradigm: &str,
    cadence: u64,
    crash_at: usize,
    words: &[u64],
    tag: &str,
) -> Result<RunResult, EvlabError> {
    let base = std::env::temp_dir().join(format!(
        "evlab_recovery_{}_{tag}",
        std::process::id()
    ));
    let crash_root = base.join("crash");
    let oracle_root = base.join("oracle");
    let _ = std::fs::remove_dir_all(&base);

    // Phase 1: the process that dies. Ingest the prefix, then drop the
    // runtime and manager cold and tear the live WAL mid-record.
    let (mut rt, mut cm, id) = open_durable(paradigms, paradigm, &crash_root, cadence)?;
    for &w in &words[..crash_at] {
        cm.ingest(&mut rt, id, w)?;
    }
    let session_dir = cm.session_dir(id);
    drop((rt, cm));
    let mut torn_word = false;
    if let Some(live_wal) = newest_wal(&session_dir) {
        let log = std::fs::read(&live_wal).map_err(EvlabError::Io)?;
        if log.len() > 3 {
            // A crash mid-append: the tail record loses its checksum.
            std::fs::write(&live_wal, &log[..log.len() - 3]).map_err(EvlabError::Io)?;
            torn_word = true;
        }
    }

    // Phase 2: recovery in a "new process".
    let started = Instant::now();
    let (mut rt, mut cm, id) = open_durable(paradigms, paradigm, &crash_root, cadence)?;
    let report = cm.recover(&mut rt, id)?;
    let recovery_secs = started.elapsed().as_secs_f64();
    // The torn word never became durable; the sensor re-sends from the
    // recovered offset.
    for &w in &words[report.words_recovered() as usize..] {
        cm.ingest(&mut rt, id, w)?;
    }
    rt.drain_all();

    // Phase 3: the oracle that never crashed.
    let (mut rt_o, mut cm_o, id_o) = open_durable(paradigms, paradigm, &oracle_root, cadence)?;
    for &w in words {
        cm_o.ingest(&mut rt_o, id_o, w)?;
    }
    rt_o.drain_all();

    let recovered = rt.session(id).ok_or_else(|| EvlabError::serve("lost session"))?;
    let oracle = rt_o
        .session(id_o)
        .ok_or_else(|| EvlabError::serve("lost oracle session"))?;
    let identical = recovered.history() == oracle.history()
        && recovered.stats().decisions == oracle.stats().decisions
        && recovered.ops() == oracle.ops()
        && match (recovered.last_decision(), oracle.last_decision()) {
            (Some(a), Some(b)) => {
                a.class == b.class
                    && a.logits.len() == b.logits.len()
                    && a.logits
                        .iter()
                        .zip(&b.logits)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (None, None) => true,
            _ => false,
        };
    let wal_disk_bytes = dir_size(&session_dir);
    let decisions = recovered.stats().decisions;
    let _ = std::fs::remove_dir_all(&base);
    Ok(RunResult {
        crash_at,
        words_durable: report.words_durable,
        words_replayed: report.words_replayed,
        torn_tail: report.torn_tail && torn_word,
        recovery_secs,
        decisions,
        wal_disk_bytes,
        identical,
    })
}

fn newest_wal(dir: &std::path::Path) -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name();
        let name = name.to_str()?;
        if let Some(e) = name
            .strip_prefix("wal.")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(b, _)| e > *b) {
                best = Some((e, entry.path()));
            }
        }
    }
    best.map(|(_, p)| p)
}

fn dir_size(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn main() -> Result<(), EvlabError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_recovery.json".to_string());
    let metrics_path = metrics_arg(&args);
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    let paradigms = train_paradigms();
    let span_us = scale.events as u64 * scale.event_dt_us;
    let stream = moving_cluster_stream(scale.events, paradigms.resolution.0, span_us, 77);
    let codec = AerCodec::try_new(paradigms.resolution).map_err(EvlabError::decode_aer)?;
    let words: Vec<u64> = stream.iter().map(|e| codec.encode(e)).collect();

    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut torn_tails = 0usize;
    for paradigm in ["snn", "cnn", "gnn"] {
        for &cadence in &scale.cadences {
            for &frac in &scale.crash_fractions {
                let mut crash_at =
                    ((words.len() as f64 * frac) as usize).clamp(1, words.len() - 1);
                if (crash_at as u64).is_multiple_of(cadence) {
                    // Land between checkpoints so the live WAL is non-empty
                    // and the tear has a record to damage.
                    crash_at += 1;
                }
                let tag = format!("{paradigm}_{cadence}_{}", (frac * 100.0) as u32);
                let r = run_one(&paradigms, paradigm, cadence, crash_at, &words, &tag)?;
                eprintln!(
                    "[recovery_bench] {paradigm} cadence={cadence} crash_at={}: durable={} \
                     replayed={} torn={} recovery={:.1}ms identical={}",
                    r.crash_at,
                    r.words_durable,
                    r.words_replayed,
                    r.torn_tail,
                    r.recovery_secs * 1e3,
                    r.identical,
                );
                all_identical &= r.identical;
                torn_tails += r.torn_tail as usize;
                rows.push(Json::obj([
                    ("paradigm", Json::str(paradigm)),
                    ("cadence_words", Json::from(cadence)),
                    ("crash_fraction", Json::from(frac)),
                    ("crash_at_word", Json::from(r.crash_at)),
                    ("words_durable", Json::from(r.words_durable)),
                    ("words_replayed", Json::from(r.words_replayed)),
                    ("torn_tail", Json::from(r.torn_tail)),
                    ("recovery_secs", Json::from(r.recovery_secs)),
                    ("decisions", Json::from(r.decisions)),
                    ("disk_bytes", Json::from(r.wal_disk_bytes)),
                    ("identical_to_oracle", Json::from(r.identical)),
                ]));
            }
        }
    }

    // The recovery contract, asserted on every run (smoke included): a
    // recovered session must be indistinguishable from one that never
    // crashed, and the sweep must have absorbed at least one torn tail or
    // the crash simulation went soft.
    if !all_identical {
        return Err(EvlabError::serve(
            "a recovered session diverged from its uncrashed oracle",
        ));
    }
    if torn_tails == 0 {
        return Err(EvlabError::serve("no torn WAL tail was exercised"));
    }

    let report = Json::obj([
        ("smoke", Json::from(smoke)),
        ("events", Json::from(scale.events)),
        ("event_dt_us", Json::from(scale.event_dt_us)),
        ("drain_every", Json::from(8usize)),
        ("torn_tails", Json::from(torn_tails)),
        ("configs", Json::arr(rows)),
    ]);
    evlab_util::json::write_atomic(&out_path, &(report.to_string_pretty() + "\n"))?;
    eprintln!("[recovery_bench] wrote {out_path}");
    finish_metrics(&metrics_path)
}
