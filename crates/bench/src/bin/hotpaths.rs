//! Std-only throughput benchmark for the four parallelized hot paths:
//! camera simulation, frame encoding, LIF stepping and graph
//! construction.
//!
//! Sweeps `EVLAB_THREADS` ∈ {1, 2, 4, 8} (or {1, 2} with `--smoke`) via
//! [`par::with_threads`], times each configuration with
//! [`std::time::Instant`], fingerprints every output with FNV-1a, and
//! writes `BENCH_hotpaths.json`. Exits non-zero if any thread count
//! produces a different checksum than the serial run — the ordered-
//! reduction determinism contract is part of what this binary verifies.
//!
//! Usage: `hotpaths [--smoke] [--out PATH] [--metrics PATH]`
//!
//! `--metrics PATH` switches the [`evlab_util::obs`] layer on and writes
//! its counter/span snapshot to `PATH` after the sweep; both JSON
//! artifacts are written atomically (temp file + rename).

use evlab_bench::{
    checksum_events, checksum_f32s, checksum_graph, finish_metrics, metrics_arg,
    moving_cluster_stream, uniform_stream, Fnv1a,
};
use evlab_cnn::encode::{FrameEncoder, SignedCount, TimeSurface, VoxelGrid};
use evlab_gnn::build::{incremental_build, kdtree_build, GraphConfig};
use evlab_sensor::scene::MovingBar;
use evlab_sensor::{CameraConfig, EventCamera};
use evlab_snn::encode::SpikeTrain;
use evlab_snn::event_driven::EventDrivenSnn;
use evlab_snn::layer::LifLayer;
use evlab_snn::network::{SnnConfig, SnnNetwork};
use evlab_snn::neuron::LifConfig;
use evlab_tensor::OpCount;
use evlab_util::json::Json;
use evlab_util::{par, Rng64};
use std::time::Instant;

/// Workload scale knobs, reduced by `--smoke`.
struct Scale {
    camera_res: u16,
    camera_span_us: u64,
    encode_events: usize,
    snn_out: usize,
    snn_steps: usize,
    ed_hidden: usize,
    ed_steps: usize,
    graph_events: usize,
    kdtree_events: usize,
    threads: Vec<usize>,
    reps: usize,
}

impl Scale {
    fn full() -> Self {
        Scale {
            camera_res: 96,
            camera_span_us: 100_000,
            encode_events: 400_000,
            snn_out: 4096,
            snn_steps: 30,
            ed_hidden: 2048,
            ed_steps: 40,
            graph_events: 60_000,
            kdtree_events: 20_000,
            threads: vec![1, 2, 4, 8],
            reps: 2,
        }
    }

    fn smoke() -> Self {
        Scale {
            camera_res: 32,
            camera_span_us: 30_000,
            encode_events: 60_000,
            snn_out: 1024,
            snn_steps: 6,
            ed_hidden: 512,
            ed_steps: 10,
            graph_events: 10_000,
            kdtree_events: 4_000,
            threads: vec![1, 2],
            reps: 1,
        }
    }
}

/// One timed configuration of a workload.
struct Sample {
    threads: usize,
    secs: f64,
    checksum: u64,
    /// Work items processed per run (events, synaptic updates, ...).
    items: u64,
}

/// Runs `work` `reps` times under a forced thread count and keeps the
/// fastest run. The checksum must not vary between reps.
fn time_workload(
    threads: usize,
    reps: usize,
    work: &dyn Fn() -> (u64, u64),
) -> Sample {
    let mut best_secs = f64::INFINITY;
    let mut checksum = 0u64;
    let mut items = 0u64;
    for rep in 0..reps.max(1) {
        let start = Instant::now();
        let (sum, n) = par::with_threads(threads, work);
        let secs = start.elapsed().as_secs_f64();
        if rep == 0 {
            checksum = sum;
            items = n;
        } else {
            assert_eq!(sum, checksum, "checksum varies between repetitions");
        }
        best_secs = best_secs.min(secs);
    }
    Sample {
        threads,
        secs: best_secs,
        checksum,
        items,
    }
}

fn camera_workload(scale: &Scale) -> (u64, u64) {
    let cfg = CameraConfig::new((scale.camera_res, scale.camera_res));
    let camera = EventCamera::new(cfg);
    let scene = MovingBar::horizontal(0.002, 4.0);
    let stream = camera.record(&scene, 0, scale.camera_span_us, 11);
    let n = stream.len() as u64;
    (checksum_events(&stream), n)
}

fn encode_workload(scale: &Scale) -> (u64, u64) {
    let stream = uniform_stream(scale.encode_events, 128, 100_000, 22);
    let events = stream.as_slice();
    let mut ops = OpCount::new();
    let mut h = Fnv1a::new();
    let encoders: Vec<Box<dyn FrameEncoder>> = vec![
        Box::new(SignedCount::new()),
        Box::new(VoxelGrid::new(8)),
        Box::new(TimeSurface::new(10_000.0)),
    ];
    let n = encoders.len() as u64 * events.len() as u64;
    for enc in encoders {
        let frame = enc.encode(events, stream.resolution(), &mut ops);
        h.write_u64(checksum_f32s(frame.as_slice()));
    }
    (h.finish(), n)
}

fn snn_workload(scale: &Scale) -> (u64, u64) {
    let mut h = Fnv1a::new();
    let mut items = 0u64;
    // Clocked dense LIF stepping: a wide layer under ~5 % input activity.
    let in_size = 1024;
    let mut rng = Rng64::seed_from_u64(5);
    let mut layer = LifLayer::new(in_size, scale.snn_out, LifConfig::new(), &mut rng);
    let mut ops = OpCount::new();
    for _ in 0..scale.snn_steps {
        let input: Vec<f32> = (0..in_size)
            .map(|_| if rng.bernoulli(0.05) { 1.0 } else { 0.0 })
            .collect();
        let active = input.iter().filter(|&&s| s != 0.0).count() as u64;
        let out = layer.step(&input, &mut ops);
        h.write_u64(checksum_f32s(&out.spikes));
        items += (active + 1) * scale.snn_out as u64;
        if let Some(&last) = out.membrane.last() {
            h.write_f32(last);
        }
    }
    // Event-driven injections through a hidden layer wide enough to chunk.
    let mut net = SnnNetwork::new(
        SnnConfig::new(64, 10).with_hidden(vec![scale.ed_hidden]),
        &mut rng,
    );
    let mut train = SpikeTrain::new(64, scale.ed_steps);
    for t in 0..scale.ed_steps {
        for _ in 0..8 {
            train.push(t, rng.next_index(64) as u32);
        }
        items += 8 * scale.ed_hidden as u64;
    }
    let mut ed = EventDrivenSnn::from_network(&net);
    let mut ed_ops = OpCount::new();
    let result = ed.process(&train, &mut ed_ops);
    h.write_u64(checksum_f32s(result.logits.as_slice()));
    // Keep the clocked reference in the fingerprint too.
    let logits = net.forward(&train, &mut ed_ops);
    h.write_u64(checksum_f32s(logits.as_slice()));
    (h.finish(), items)
}

fn graph_workload(scale: &Scale) -> (u64, u64) {
    let mut h = Fnv1a::new();
    let config = GraphConfig::new();
    let clustered = moving_cluster_stream(scale.graph_events, 128, 500_000, 33);
    let mut ops = OpCount::new();
    let incr = incremental_build(clustered.as_slice(), &config, &mut ops);
    h.write_u64(checksum_graph(&incr));
    // Capped cells force the serial stream (and, under --metrics, the
    // `gnn.serial_fallback` counter) at every swept thread count > 1; the
    // checksum still has to match the serial run bit for bit.
    let capped = config.with_cell_capacity(64);
    let capped_graph = incremental_build(clustered.as_slice(), &capped, &mut ops);
    h.write_u64(checksum_graph(&capped_graph));
    let uniform = uniform_stream(scale.kdtree_events, 128, 200_000, 34);
    let tree = kdtree_build(uniform.as_slice(), &config, &mut ops);
    h.write_u64(checksum_graph(&tree));
    (
        h.finish(),
        (2 * scale.graph_events + scale.kdtree_events) as u64,
    )
}

fn main() -> Result<(), evlab_util::EvlabError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpaths.json".to_string());
    let metrics_path = metrics_arg(&args);
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    type Workload = Box<dyn Fn() -> (u64, u64)>;
    let workloads: Vec<(&str, &str, Workload)> = vec![
        (
            "camera",
            "events/s",
            Box::new({
                let s = if smoke { Scale::smoke() } else { Scale::full() };
                move || camera_workload(&s)
            }),
        ),
        (
            "encode",
            "events/s",
            Box::new({
                let s = if smoke { Scale::smoke() } else { Scale::full() };
                move || encode_workload(&s)
            }),
        ),
        (
            "snn",
            "synaptic-updates/s",
            Box::new({
                let s = if smoke { Scale::smoke() } else { Scale::full() };
                move || snn_workload(&s)
            }),
        ),
        (
            "graph",
            "events/s",
            Box::new({
                let s = if smoke { Scale::smoke() } else { Scale::full() };
                move || graph_workload(&s)
            }),
        ),
    ];

    let mut mismatches = 0usize;
    let mut workload_json = Vec::new();
    for (name, unit, work) in &workloads {
        eprintln!("[hotpaths] {name} ...");
        let samples: Vec<Sample> = scale
            .threads
            .iter()
            .map(|&t| time_workload(t, scale.reps, work.as_ref()))
            .collect();
        let serial = &samples[0];
        for s in &samples[1..] {
            if s.checksum != serial.checksum {
                eprintln!(
                    "[hotpaths] CHECKSUM MISMATCH in `{name}`: threads={} gives \
                     {:#018x}, serial gives {:#018x}",
                    s.threads, s.checksum, serial.checksum
                );
                mismatches += 1;
            }
        }
        let results = samples.iter().map(|s| {
            Json::obj([
                ("threads", Json::from(s.threads)),
                ("secs", Json::from(s.secs)),
                ("throughput", Json::from(s.items as f64 / s.secs.max(1e-12))),
                ("speedup_vs_serial", Json::from(serial.secs / s.secs.max(1e-12))),
            ])
        });
        workload_json.push(Json::obj([
            ("name", Json::str(*name)),
            ("unit", Json::str(*unit)),
            ("items_per_run", Json::from(serial.items)),
            ("checksum", Json::str(format!("{:#018x}", serial.checksum))),
            (
                "checksums_match_serial",
                Json::from(samples[1..].iter().all(|s| s.checksum == serial.checksum)),
            ),
            ("results", Json::arr(results)),
        ]));
        for s in &samples {
            eprintln!(
                "[hotpaths]   threads={} {:.3}s ({:.2}x)",
                s.threads,
                s.secs,
                serial.secs / s.secs.max(1e-12)
            );
        }
    }

    let report = Json::obj([
        (
            "available_parallelism",
            Json::from(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        ),
        ("smoke", Json::from(smoke)),
        (
            "threads_swept",
            Json::arr(scale.threads.iter().map(|&t| Json::from(t))),
        ),
        ("workloads", Json::arr(workload_json)),
    ]);
    evlab_util::json::write_atomic(&out_path, &(report.to_string_pretty() + "\n"))?;
    eprintln!("[hotpaths] wrote {out_path}");
    finish_metrics(&metrics_path)?;
    if mismatches > 0 {
        eprintln!("[hotpaths] FAILED: {mismatches} checksum mismatch(es)");
        std::process::exit(1);
    }
    Ok(())
}
