//! Std-only throughput benchmark for the parallelized hot paths (camera
//! simulation, frame encoding, LIF stepping, graph construction) and the
//! dense kernels (blocked GEMM, im2col conv2d, the arena-backed CNN
//! training step) — the kernels are themselves panel/batch-parallel now,
//! so they sweep thread counts like every other workload.
//!
//! Swept workloads run at `EVLAB_THREADS` ∈ {1, 2, 4, 8} (both full and
//! `--smoke` scale — the kernel determinism gate in `scripts/verify.sh`
//! relies on the smoke sweep) via [`par::with_threads`]; only the naive
//! kernel baselines stay single-threaded by design. Every (workload,
//! threads) cell runs one untimed warmup followed by `reps` timed
//! repetitions; min/median/max seconds are recorded and all derived
//! numbers (`speedup_vs_serial`, `kernel_speedups`) use the median.
//! Every output is fingerprinted with FNV-1a and the binary exits
//! non-zero if
//!
//! * any thread count produces a different checksum than the serial run
//!   (the ordered-reduction / fixed-panel-partition determinism
//!   contract), or
//! * `gemm` vs `gemm_naive` or `conv_fwd` vs `conv_fwd_naive` disagree
//!   (the blocked kernels' summation-order contract), or
//! * the `count-alloc` feature is compiled in and any workload's
//!   steady-state allocation count exceeds `BENCH_alloc_budget.json` —
//!   the per-worker scratch arenas must keep the threaded steady state
//!   allocation-free, not just the serial one.
//!
//! Usage: `hotpaths [--smoke] [--out PATH] [--metrics PATH]
//! [--alloc-budget PATH]`
//!
//! `--metrics PATH` switches the [`evlab_util::obs`] layer on and writes
//! its counter/span snapshot (including `alloc.count.*` / `alloc.bytes.*`
//! when counting) to `PATH` after the sweep; all JSON artifacts are
//! written atomically (temp file + rename).

use evlab_bench::{
    alloc, checksum_events, checksum_f32s, checksum_graph, finish_metrics, metrics_arg,
    moving_cluster_stream, sparse_map, uniform_stream, Fnv1a,
};
use evlab_cnn::encode::{FrameEncoder, SignedCount, TimeSurface, VoxelGrid};
use evlab_cnn::model::{build_cnn, CnnConfig};
use evlab_gnn::build::{incremental_build, kdtree_build, GraphConfig};
use evlab_gnn::window::{SlidingWindowGraph, WindowPolicy};
use evlab_sensor::scene::MovingBar;
use evlab_sensor::{CameraConfig, EventCamera};
use evlab_snn::encode::SpikeTrain;
use evlab_snn::event_driven::EventDrivenSnn;
use evlab_snn::layer::LifLayer;
use evlab_snn::network::{SnnConfig, SnnNetwork};
use evlab_snn::neuron::LifConfig;
use evlab_tensor::gemm::{conv2d_forward, conv2d_forward_naive, gemm_into, gemm_naive_into, ConvShape};
use evlab_tensor::network::BatchTrainer;
use evlab_tensor::optim::Sgd;
use evlab_tensor::{OpCount, Scratch, Tensor};
use evlab_util::json::Json;
use evlab_util::{obs, par, Rng64};
use std::collections::BTreeMap;
use std::time::Instant;

#[cfg(feature = "count-alloc")]
#[global_allocator]
static COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Workload scale knobs, reduced by `--smoke`.
struct Scale {
    camera_res: u16,
    camera_span_us: u64,
    encode_events: usize,
    snn_out: usize,
    snn_steps: usize,
    ed_hidden: usize,
    ed_steps: usize,
    graph_events: usize,
    kdtree_events: usize,
    window_events: usize,
    gemm_dim: usize,
    gemm_iters: usize,
    conv_iters: usize,
    cnn_batch: usize,
    cnn_steps: usize,
    threads: Vec<usize>,
    reps: usize,
}

impl Scale {
    fn full() -> Self {
        Scale {
            camera_res: 96,
            camera_span_us: 100_000,
            encode_events: 400_000,
            snn_out: 4096,
            snn_steps: 30,
            ed_hidden: 2048,
            ed_steps: 40,
            graph_events: 60_000,
            kdtree_events: 20_000,
            window_events: 40_000,
            gemm_dim: 256,
            gemm_iters: 8,
            conv_iters: 300,
            cnn_batch: 8,
            cnn_steps: 20,
            threads: vec![1, 2, 4, 8],
            reps: 3,
        }
    }

    fn smoke() -> Self {
        Scale {
            camera_res: 32,
            camera_span_us: 30_000,
            encode_events: 60_000,
            snn_out: 1024,
            snn_steps: 6,
            ed_hidden: 512,
            ed_steps: 10,
            graph_events: 10_000,
            kdtree_events: 4_000,
            window_events: 8_000,
            gemm_dim: 96,
            gemm_iters: 3,
            conv_iters: 30,
            cnn_batch: 4,
            cnn_steps: 5,
            // The verify.sh smoke gate checks kernel determinism across
            // the full thread sweep, so --smoke shrinks workload sizes
            // but not the swept thread counts.
            threads: vec![1, 2, 4, 8],
            reps: 2,
        }
    }
}

/// One timed configuration of a workload.
struct Sample {
    threads: usize,
    secs_min: f64,
    secs_median: f64,
    secs_max: f64,
    checksum: u64,
    /// Work items processed per run (events, MACs, samples, ...).
    items: u64,
}

/// Runs `work` once untimed (warmup), then `reps` timed repetitions under
/// a forced thread count. The checksum must not vary between runs.
fn time_workload(threads: usize, reps: usize, work: &dyn Fn() -> (u64, u64)) -> Sample {
    let (checksum, items) = par::with_threads(threads, work);
    let reps = reps.max(1);
    let mut secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let (sum, n) = par::with_threads(threads, work);
        secs.push(start.elapsed().as_secs_f64());
        assert_eq!(sum, checksum, "checksum varies between repetitions");
        assert_eq!(n, items, "item count varies between repetitions");
    }
    secs.sort_by(f64::total_cmp);
    let secs_median = if secs.len() % 2 == 1 {
        secs[secs.len() / 2]
    } else {
        0.5 * (secs[secs.len() / 2 - 1] + secs[secs.len() / 2])
    };
    Sample {
        threads,
        secs_min: secs[0],
        secs_median,
        secs_max: secs[secs.len() - 1],
        checksum,
        items,
    }
}

fn camera_workload(scale: &Scale) -> (u64, u64) {
    let cfg = CameraConfig::new((scale.camera_res, scale.camera_res));
    let camera = EventCamera::new(cfg);
    let scene = MovingBar::horizontal(0.002, 4.0);
    let stream = camera.record(&scene, 0, scale.camera_span_us, 11);
    let n = stream.len() as u64;
    (checksum_events(&stream), n)
}

fn encode_workload(scale: &Scale) -> (u64, u64) {
    let stream = uniform_stream(scale.encode_events, 128, 100_000, 22);
    let events = stream.as_slice();
    let mut ops = OpCount::new();
    let mut h = Fnv1a::new();
    let encoders: Vec<Box<dyn FrameEncoder>> = vec![
        Box::new(SignedCount::new()),
        Box::new(VoxelGrid::new(8)),
        Box::new(TimeSurface::new(10_000.0)),
    ];
    let n = encoders.len() as u64 * events.len() as u64;
    for enc in encoders {
        let frame = enc.encode(events, stream.resolution(), &mut ops);
        h.write_u64(checksum_f32s(frame.as_slice()));
    }
    (h.finish(), n)
}

fn snn_workload(scale: &Scale) -> (u64, u64) {
    let mut h = Fnv1a::new();
    let mut items = 0u64;
    // Clocked dense LIF stepping: a wide layer under ~5 % input activity.
    let in_size = 1024;
    let mut rng = Rng64::seed_from_u64(5);
    let mut layer = LifLayer::new(in_size, scale.snn_out, LifConfig::new(), &mut rng);
    let mut ops = OpCount::new();
    for _ in 0..scale.snn_steps {
        let input: Vec<f32> = (0..in_size)
            .map(|_| if rng.bernoulli(0.05) { 1.0 } else { 0.0 })
            .collect();
        let active = input.iter().filter(|&&s| s != 0.0).count() as u64;
        let out = layer.step(&input, &mut ops);
        h.write_u64(checksum_f32s(&out.spikes));
        items += (active + 1) * scale.snn_out as u64;
        if let Some(&last) = out.membrane.last() {
            h.write_f32(last);
        }
    }
    // Event-driven injections through a hidden layer wide enough to chunk.
    let mut net = SnnNetwork::new(
        SnnConfig::new(64, 10).with_hidden(vec![scale.ed_hidden]),
        &mut rng,
    );
    let mut train = SpikeTrain::new(64, scale.ed_steps);
    for t in 0..scale.ed_steps {
        for _ in 0..8 {
            train.push(t, rng.next_index(64) as u32);
        }
        items += 8 * scale.ed_hidden as u64;
    }
    let mut ed = EventDrivenSnn::from_network(&net);
    let mut ed_ops = OpCount::new();
    let result = ed.process(&train, &mut ed_ops);
    h.write_u64(checksum_f32s(result.logits.as_slice()));
    // Keep the clocked reference in the fingerprint too.
    let logits = net.forward(&train, &mut ed_ops);
    h.write_u64(checksum_f32s(logits.as_slice()));
    (h.finish(), items)
}

fn graph_workload(scale: &Scale) -> (u64, u64) {
    let mut h = Fnv1a::new();
    let config = GraphConfig::new();
    let clustered = moving_cluster_stream(scale.graph_events, 128, 500_000, 33);
    let mut ops = OpCount::new();
    let incr = incremental_build(clustered.as_slice(), &config, &mut ops);
    h.write_u64(checksum_graph(&incr));
    // Capped cells force the serial stream (and, under --metrics, the
    // `gnn.serial_fallback` counter) at every swept thread count > 1; the
    // checksum still has to match the serial run bit for bit.
    let capped = config.with_cell_capacity(64);
    let capped_graph = incremental_build(clustered.as_slice(), &capped, &mut ops);
    h.write_u64(checksum_graph(&capped_graph));
    let uniform = uniform_stream(scale.kdtree_events, 128, 200_000, 34);
    let tree = kdtree_build(uniform.as_slice(), &config, &mut ops);
    h.write_u64(checksum_graph(&tree));
    (
        h.finish(),
        (2 * scale.graph_events + scale.kdtree_events) as u64,
    )
}

/// Streams a clustered event flow through the sliding-window store under
/// the combined eviction policy. The fingerprint covers the final live
/// graph *and* the per-phase multiply counts, so both the window contents
/// and its cost model must be bit-stable across the thread sweep. The
/// workload also enforces the flat-cost contract at steady state: once
/// the window has filled, per-event work must not grow as the stream
/// slides past (each phase's cost stays within 4x of the cheapest steady
/// phase — slack for local density variation in the clustered stream,
/// fatal for any O(stream length) regression).
fn window_workload(scale: &Scale) -> (u64, u64) {
    let stream = moving_cluster_stream(scale.window_events, 128, 500_000, 77);
    let events = stream.as_slice();
    let policy = WindowPolicy::Both {
        max_nodes: 1_024,
        max_age_us: 50_000,
    };
    let mut window = SlidingWindowGraph::new(GraphConfig::new(), policy);
    let mut ops = OpCount::new();
    let phases = 16usize;
    let phase_len = (events.len() / phases).max(1);
    let mut phase_mults: Vec<u64> = Vec::new();
    let mut last_mults = 0u64;
    for (i, e) in events.iter().enumerate() {
        window.push(*e, &mut ops);
        if (i + 1) % phase_len == 0 {
            phase_mults.push(ops.mults - last_mults);
            last_mults = ops.mults;
        }
    }
    // Skip the fill phases; the window saturates well within a quarter of
    // the stream.
    let steady = &phase_mults[phases / 4..];
    let cheapest = steady.iter().copied().min().unwrap_or(1).max(1);
    let dearest = steady.iter().copied().max().unwrap_or(0);
    assert!(
        dearest <= 4 * cheapest,
        "sliding-window per-event cost is not flat: steady phases range \
         {cheapest}..{dearest} mults"
    );
    let mut h = Fnv1a::new();
    h.write_u64(checksum_graph(&window.to_event_graph()));
    for &m in &phase_mults {
        h.write_u64(m);
    }
    (h.finish(), events.len() as u64)
}

/// Square `C = A·B` via either the blocked kernel or the naive triple
/// loop. Identical inputs, identical summation order — the checksums of
/// the two variants must agree bit for bit.
fn gemm_workload(scale: &Scale, blocked: bool) -> (u64, u64) {
    let d = scale.gemm_dim;
    let mut rng = Rng64::seed_from_u64(44);
    let a: Vec<f32> = (0..d * d).map(|_| rng.next_f32() - 0.5).collect();
    let b: Vec<f32> = (0..d * d).map(|_| rng.next_f32() - 0.5).collect();
    let mut c = vec![0.0f32; d * d];
    let mut scratch = Scratch::new();
    let run = |c: &mut [f32], scratch: &mut Scratch| {
        if blocked {
            gemm_into(d, d, d, &a, &b, c, scratch);
        } else {
            gemm_naive_into(d, d, d, &a, d, 1, &b, d, 1, c);
        }
    };
    // Warm iteration: lets the scratch arena allocate its pack buffers.
    run(&mut c, &mut scratch);
    let snap = alloc::snapshot();
    for _ in 0..scale.gemm_iters {
        run(&mut c, &mut scratch);
    }
    alloc::record_steady(
        if blocked { "gemm" } else { "gemm_naive" },
        alloc::delta_since(snap),
    );
    let items = (scale.gemm_iters + 1) as u64 * (d * d * d) as u64;
    (checksum_f32s(&c), items)
}

/// The table1 dense-CNN conv layers: conv1 (2→8 over 32×32, sparse event
/// frame) and conv2 (8→16 over 16×16, dense mid-network activations),
/// both 3×3 stride-1 pad-1. `blocked` picks im2col+GEMM vs the naive
/// zero-skipping nest; the checksums must agree bit for bit.
fn conv_workload(scale: &Scale, blocked: bool) -> (u64, u64) {
    let s1 = ConvShape {
        in_channels: 2,
        out_channels: 8,
        kernel: 3,
        stride: 1,
        padding: 1,
        in_h: 32,
        in_w: 32,
    };
    let s2 = ConvShape {
        in_channels: 8,
        out_channels: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
        in_h: 16,
        in_w: 16,
    };
    let mut rng = Rng64::seed_from_u64(55);
    let x1 = sparse_map(2 * 32 * 32, 0.9, 551);
    let x2: Vec<f32> = (0..8 * 16 * 16).map(|_| rng.next_f32() - 0.5).collect();
    let w1: Vec<f32> = (0..8 * 2 * 9).map(|_| rng.next_f32() - 0.5).collect();
    let w2: Vec<f32> = (0..16 * 8 * 9).map(|_| rng.next_f32() - 0.5).collect();
    let b1: Vec<f32> = (0..8).map(|_| rng.next_f32() - 0.5).collect();
    let b2: Vec<f32> = (0..16).map(|_| rng.next_f32() - 0.5).collect();
    let mut o1 = vec![0.0f32; 8 * 32 * 32];
    let mut o2 = vec![0.0f32; 16 * 16 * 16];
    let mut scratch = Scratch::new();
    let run = |o1: &mut [f32], o2: &mut [f32], scratch: &mut Scratch| {
        if blocked {
            conv2d_forward(&s1, &x1, &w1, &b1, o1, scratch);
            conv2d_forward(&s2, &x2, &w2, &b2, o2, scratch);
        } else {
            conv2d_forward_naive(&s1, &x1, &w1, &b1, o1);
            conv2d_forward_naive(&s2, &x2, &w2, &b2, o2);
        }
    };
    run(&mut o1, &mut o2, &mut scratch);
    let snap = alloc::snapshot();
    for _ in 0..scale.conv_iters {
        run(&mut o1, &mut o2, &mut scratch);
    }
    alloc::record_steady(
        if blocked { "conv_fwd" } else { "conv_fwd_naive" },
        alloc::delta_since(snap),
    );
    let mut h = Fnv1a::new();
    h.write_u64(checksum_f32s(&o1));
    h.write_u64(checksum_f32s(&o2));
    let macs = (s1.out_channels * 32 * 32 * s1.in_channels * 9
        + s2.out_channels * 16 * 16 * s2.in_channels * 9) as u64;
    (h.finish(), (scale.conv_iters + 1) as u64 * macs)
}

/// Steady-state training of the table1 dense CNN through the
/// data-parallel [`BatchTrainer`]: after two warmup batches (replicas,
/// per-replica arenas, optimizer state and staging all sized), the inner
/// loop must not touch the heap at all — at any thread count. The
/// trainer's fixed batch partition and ascending-chunk reductions make
/// the checksum bit-identical across the thread sweep.
fn cnn_step_workload(scale: &Scale) -> (u64, u64) {
    let mut rng = Rng64::seed_from_u64(66);
    let mut net = build_cnn(&CnnConfig::small(2, 32, 10), &mut rng);
    let mut trainer = BatchTrainer::new();
    let mut optimizer = Sgd::new(0.01, 0.9);
    let mut arena = Scratch::new();
    let mut ops = OpCount::new();
    let batch: Vec<(Tensor, usize)> = (0..scale.cnn_batch)
        .map(|i| {
            let data = sparse_map(2 * 32 * 32, 0.9, 660 + i as u64);
            (
                Tensor::from_vec(&[2, 32, 32], data).expect("event frame shape"),
                i % 10,
            )
        })
        .collect();
    for _ in 0..2 {
        trainer.train_batch(&mut net, &batch, &mut optimizer, &mut arena, &mut ops);
    }
    let snap = alloc::snapshot();
    let mut h = Fnv1a::new();
    for _ in 0..scale.cnn_steps {
        let (loss, acc) =
            trainer.train_batch(&mut net, &batch, &mut optimizer, &mut arena, &mut ops);
        h.write_f32(loss);
        h.write_f32(acc);
    }
    alloc::record_steady("cnn_step", alloc::delta_since(snap));
    net.visit_params(&mut |p| {
        for &v in p.value.as_slice() {
            h.write_f32(v);
        }
    });
    (
        h.finish(),
        (scale.cnn_steps + 2) as u64 * scale.cnn_batch as u64,
    )
}

/// Checks the published steady-state allocation deltas against the
/// committed budget file. Returns the number of violations; skipped (0)
/// when the counting allocator is not compiled in.
fn check_alloc_budget(budget_path: &str) -> usize {
    if !alloc::counting_enabled() {
        eprintln!("[hotpaths] alloc budget: skipped (build without `count-alloc`)");
        return 0;
    }
    let text = match std::fs::read_to_string(budget_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[hotpaths] alloc budget: cannot read {budget_path}: {e}");
            return 1;
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("[hotpaths] alloc budget: cannot parse {budget_path}: {e}");
            return 1;
        }
    };
    let records: BTreeMap<&str, alloc::AllocSnapshot> =
        alloc::steady_records().into_iter().collect();
    let Some(budgets) = json
        .get("steady_state_alloc_count")
        .and_then(|b| b.entries())
    else {
        eprintln!("[hotpaths] alloc budget: missing `steady_state_alloc_count` object");
        return 1;
    };
    let mut violations = 0usize;
    for (name, limit) in budgets {
        let limit = limit.as_u64().unwrap_or(0);
        match records.get(name.as_str()) {
            None => {
                eprintln!("[hotpaths] alloc budget: workload `{name}` recorded nothing");
                violations += 1;
            }
            Some(d) => {
                let ok = d.count <= limit;
                eprintln!(
                    "[hotpaths] alloc budget: {name:<16} count={} bytes={} (limit {limit}) {}",
                    d.count,
                    d.bytes,
                    if ok { "ok" } else { "EXCEEDED" }
                );
                if !ok {
                    violations += 1;
                }
            }
        }
    }
    violations
}

fn main() -> Result<(), evlab_util::EvlabError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_hotpaths.json".to_string());
    let budget_path =
        flag("--alloc-budget").unwrap_or_else(|| "BENCH_alloc_budget.json".to_string());
    let metrics_path = metrics_arg(&args);
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    type Workload = Box<dyn Fn() -> (u64, u64)>;
    let make_scale = || if smoke { Scale::smoke() } else { Scale::full() };
    // (name, unit, sweeps-threads?, work). Only the naive kernel
    // baselines are serial by design; the blocked/batched kernels sweep
    // thread counts under the bit-identity contract.
    let workloads: Vec<(&str, &str, bool, Workload)> = vec![
        (
            "camera",
            "events/s",
            true,
            Box::new({
                let s = make_scale();
                move || camera_workload(&s)
            }),
        ),
        (
            "encode",
            "events/s",
            true,
            Box::new({
                let s = make_scale();
                move || encode_workload(&s)
            }),
        ),
        (
            "snn",
            "synaptic-updates/s",
            true,
            Box::new({
                let s = make_scale();
                move || snn_workload(&s)
            }),
        ),
        (
            "graph",
            "events/s",
            true,
            Box::new({
                let s = make_scale();
                move || graph_workload(&s)
            }),
        ),
        (
            "window",
            "events/s",
            true,
            Box::new({
                let s = make_scale();
                move || window_workload(&s)
            }),
        ),
        (
            "gemm",
            "macs/s",
            true,
            Box::new({
                let s = make_scale();
                move || gemm_workload(&s, true)
            }),
        ),
        (
            "gemm_naive",
            "macs/s",
            false,
            Box::new({
                let s = make_scale();
                move || gemm_workload(&s, false)
            }),
        ),
        (
            "conv_fwd",
            "macs/s",
            true,
            Box::new({
                let s = make_scale();
                move || conv_workload(&s, true)
            }),
        ),
        (
            "conv_fwd_naive",
            "macs/s",
            false,
            Box::new({
                let s = make_scale();
                move || conv_workload(&s, false)
            }),
        ),
        (
            "cnn_step",
            "samples/s",
            true,
            Box::new({
                let s = make_scale();
                move || cnn_step_workload(&s)
            }),
        ),
    ];

    let mut mismatches = 0usize;
    let mut workload_json = Vec::new();
    let mut serial_checksums: BTreeMap<&str, u64> = BTreeMap::new();
    let mut serial_medians: BTreeMap<&str, f64> = BTreeMap::new();
    for (name, unit, sweep, work) in &workloads {
        eprintln!("[hotpaths] {name} ...");
        let threads: &[usize] = if *sweep { &scale.threads } else { &[1] };
        let samples: Vec<Sample> = threads
            .iter()
            .map(|&t| time_workload(t, scale.reps, work.as_ref()))
            .collect();
        let serial = &samples[0];
        serial_checksums.insert(name, serial.checksum);
        serial_medians.insert(name, serial.secs_median);
        for s in &samples[1..] {
            if s.checksum != serial.checksum {
                eprintln!(
                    "[hotpaths] CHECKSUM MISMATCH in `{name}`: threads={} gives \
                     {:#018x}, serial gives {:#018x}",
                    s.threads, s.checksum, serial.checksum
                );
                mismatches += 1;
            }
        }
        let results = samples.iter().map(|s| {
            Json::obj([
                ("threads", Json::from(s.threads)),
                ("secs", Json::from(s.secs_median)),
                ("secs_min", Json::from(s.secs_min)),
                ("secs_max", Json::from(s.secs_max)),
                (
                    "throughput",
                    Json::from(s.items as f64 / s.secs_median.max(1e-12)),
                ),
                (
                    "speedup_vs_serial",
                    Json::from(serial.secs_median / s.secs_median.max(1e-12)),
                ),
            ])
        });
        workload_json.push(Json::obj([
            ("name", Json::str(*name)),
            ("unit", Json::str(*unit)),
            ("reps", Json::from(scale.reps)),
            ("items_per_run", Json::from(serial.items)),
            ("checksum", Json::str(format!("{:#018x}", serial.checksum))),
            (
                "checksums_match_serial",
                Json::from(samples[1..].iter().all(|s| s.checksum == serial.checksum)),
            ),
            ("results", Json::arr(results)),
        ]));
        for s in &samples {
            eprintln!(
                "[hotpaths]   threads={} {:.3}s median (min {:.3}s, max {:.3}s) ({:.2}x)",
                s.threads,
                s.secs_median,
                s.secs_min,
                s.secs_max,
                serial.secs_median / s.secs_median.max(1e-12)
            );
        }
    }

    // The blocked kernels must reproduce the naive nests bit for bit —
    // this is the runtime half of the summation-order contract (the
    // compile-time half lives in tests/kernel_equivalence.rs).
    for (blocked, naive) in [("gemm", "gemm_naive"), ("conv_fwd", "conv_fwd_naive")] {
        if serial_checksums[blocked] != serial_checksums[naive] {
            eprintln!(
                "[hotpaths] CHECKSUM MISMATCH: `{blocked}` {:#018x} != `{naive}` {:#018x}",
                serial_checksums[blocked], serial_checksums[naive]
            );
            mismatches += 1;
        }
    }
    let kernel_speedup = |blocked: &str, naive: &str| {
        serial_medians[naive] / serial_medians[blocked].max(1e-12)
    };
    let gemm_speedup = kernel_speedup("gemm", "gemm_naive");
    let conv_speedup = kernel_speedup("conv_fwd", "conv_fwd_naive");
    eprintln!(
        "[hotpaths] kernel speedups (single thread, median): gemm {gemm_speedup:.2}x, \
         conv2d forward {conv_speedup:.2}x"
    );

    let alloc_records = alloc::steady_records();
    if obs::enabled() && alloc::counting_enabled() {
        for (name, d) in &alloc_records {
            obs::counter_add(&format!("alloc.count.{name}"), d.count);
            obs::counter_add(&format!("alloc.bytes.{name}"), d.bytes);
        }
    }

    let report = Json::obj([
        (
            "available_parallelism",
            Json::from(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        ),
        ("smoke", Json::from(smoke)),
        ("reps", Json::from(scale.reps)),
        (
            "threads_swept",
            Json::arr(scale.threads.iter().map(|&t| Json::from(t))),
        ),
        (
            "kernel_speedups",
            Json::obj([
                ("gemm_vs_naive", Json::from(gemm_speedup)),
                ("conv_fwd_vs_naive", Json::from(conv_speedup)),
            ]),
        ),
        ("alloc_counting", Json::from(alloc::counting_enabled())),
        (
            "alloc_steady",
            Json::obj(alloc_records.iter().map(|(name, d)| {
                (
                    *name,
                    Json::obj([
                        ("count", Json::from(d.count)),
                        ("bytes", Json::from(d.bytes)),
                    ]),
                )
            })),
        ),
        ("workloads", Json::arr(workload_json)),
    ]);
    evlab_util::json::write_atomic(&out_path, &(report.to_string_pretty() + "\n"))?;
    eprintln!("[hotpaths] wrote {out_path}");
    finish_metrics(&metrics_path)?;
    let budget_violations = check_alloc_budget(&budget_path);
    if mismatches > 0 || budget_violations > 0 {
        eprintln!(
            "[hotpaths] FAILED: {mismatches} checksum mismatch(es), \
             {budget_violations} alloc budget violation(s)"
        );
        std::process::exit(1);
    }
    Ok(())
}
