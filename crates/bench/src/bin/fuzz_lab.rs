//! Deterministic differential fuzz lab.
//!
//! Drives seeded random operation sequences through the workspace's core
//! data paths and cross-checks every naive implementation against its
//! optimized counterpart, with `evlab_util::check` invariants forced on
//! so contract drift panics at the corrupting operation. Six targets:
//!
//! * `graph_builders` — naive vs kd-tree vs incremental vs sliding-window
//!   graph construction over random event streams and configs.
//! * `gemm` — blocked/packed GEMM vs the naive triple nest, bit-exact,
//!   serial and threaded.
//! * `threads` — striped incremental graph build and panel-parallel GEMM
//!   at `EVLAB_THREADS` 1 vs 4, bit-exact.
//! * `checkpoint` — reorder-buffer and sliding-window sessions snapshotted
//!   and restored mid-stream vs an uninterrupted oracle, plus corrupted
//!   (bit-flipped / truncated) snapshots that must fail typed.
//! * `reorder_model` — `ReorderBuffer` vs an executable model of its
//!   documented release/quarantine contract, per-push release sequences
//!   compared exactly (this is the target that caught the near-zero-time
//!   warm-up bug).
//! * `json_roundtrip` — random documents (astral-plane strings included)
//!   through the writer and parser, plus crafted `\uXXXX` escape forms
//!   with known expected values.
//!
//! Every case is a pure function of `(target, seed, size)`: a mismatch
//! report names all three, and the lab shrinks the failing size by
//! bisection before reporting. Setting `EVLAB_FAULTS` additionally runs
//! the generated event streams of the `checkpoint` and `reorder_model`
//! targets through the fault injector. Exit code is non-zero on any
//! mismatch, panic, or invariant violation.
//!
//! Usage: `fuzz_lab [--smoke] [--seeds N] [--target NAME]
//! [--corpus PATH] [--metrics PATH]`. The committed corpus pins the
//! original failing seed of every bug the lab has caught; those cases run
//! in every mode, smoke included.

use evlab_events::reorder::ReorderBuffer;
use evlab_events::{Event, Polarity};
use evlab_gnn::build::{incremental_build, kdtree_build, naive_build, GraphConfig};
use evlab_gnn::graph::EventGraph;
use evlab_gnn::window::{SlidingWindowGraph, WindowPolicy};
use evlab_tensor::gemm::{gemm_into, gemm_naive_into};
use evlab_tensor::scratch::Scratch;
use evlab_tensor::OpCount;
use evlab_util::fault::{FaultInjector, FaultSpec, RawEvent};
use evlab_util::frame::{restore_from_bytes, snapshot_to_bytes, Decoder, Encoder};
use evlab_util::json::Json;
use evlab_util::{check, obs, par, EvlabError, Rng64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One differential target: a pure function of `(seed, size)` returning
/// `Err(description)` on mismatch.
struct Target {
    name: &'static str,
    /// Case size in full mode; shrinking bisects below this.
    full_size: usize,
    /// Case size in `--smoke` mode.
    smoke_size: usize,
    run: fn(u64, usize) -> Result<(), String>,
}

const TARGETS: &[Target] = &[
    Target { name: "graph_builders", full_size: 300, smoke_size: 60, run: graph_builders },
    Target { name: "gemm", full_size: 28, smoke_size: 10, run: gemm },
    Target { name: "threads", full_size: 5_000, smoke_size: 4_200, run: threads },
    Target { name: "checkpoint", full_size: 400, smoke_size: 60, run: checkpoint },
    Target { name: "reorder_model", full_size: 500, smoke_size: 80, run: reorder_model },
    Target { name: "json_roundtrip", full_size: 48, smoke_size: 16, run: json_roundtrip },
];

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A time-sorted random event stream on a 64×64 sensor. Timestamps start
/// near zero and advance by 0–400 µs steps.
fn sorted_events(rng: &mut Rng64, n: usize) -> Vec<Event> {
    let mut t = rng.next_below(300);
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(Event::new(
            t,
            rng.next_below(64) as u16,
            rng.next_below(64) as u16,
            if rng.bernoulli(0.5) { Polarity::On } else { Polarity::Off },
        ));
        t += rng.next_below(400);
    }
    events
}

/// A random-but-legal graph config: exact cells (the documented precondition
/// for builder equivalence and threaded striping).
fn random_config(rng: &mut Rng64) -> GraphConfig {
    let radii = [1.5, 3.0, 5.0, 8.0];
    let degrees = [1usize, 2, 4, 8, 16];
    let horizons = [800u64, 5_000, 50_000];
    let mut config = GraphConfig::new()
        .with_radius(radii[rng.next_index(radii.len())])
        .with_max_degree(degrees[rng.next_index(degrees.len())]);
    config.horizon_us = horizons[rng.next_index(horizons.len())];
    config
}

/// When `EVLAB_FAULTS` is set, runs `events` through the fault injector
/// (re-seeded per case so runs stay reproducible) and returns the damaged
/// stream re-sorted — the ingestion targets require sorted input; the
/// fault layer's *content* damage (drops, duplicates, hot pixels, bursts)
/// still exercises them with realistic streams.
fn apply_env_faults(events: Vec<Event>, seed: u64) -> Vec<Event> {
    let Ok(spec) = std::env::var("EVLAB_FAULTS") else {
        return events;
    };
    let Ok(spec) = FaultSpec::parse(&spec) else {
        return events;
    };
    let raw: Vec<RawEvent> = events
        .iter()
        .map(|e| RawEvent {
            t_us: e.t.as_micros(),
            x: e.x,
            y: e.y,
            on: e.polarity == Polarity::On,
        })
        .collect();
    let mut inj = FaultInjector::new(&spec.with_seed(seed));
    let mut out: Vec<Event> = inj
        .apply_events(&raw, (64, 64))
        .into_iter()
        .map(|r| {
            Event::new(r.t_us, r.x, r.y, if r.on { Polarity::On } else { Polarity::Off })
        })
        .collect();
    out.sort_by_key(|e| e.t);
    out
}

/// Flattened adjacency signature for exact graph comparison.
fn graph_sig(g: &EventGraph) -> Vec<(Event, Vec<u32>)> {
    (0..g.node_count())
        .map(|i| (*g.event(i), g.in_neighbors(i).to_vec()))
        .collect()
}

fn first_diff(a: &[(Event, Vec<u32>)], b: &[(Event, Vec<u32>)]) -> String {
    if a.len() != b.len() {
        return format!("{} vs {} nodes", a.len(), b.len());
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            return format!("node {i}: {x:?} vs {y:?}");
        }
    }
    "(identical?)".to_string()
}

// ---------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------

/// Naive vs kd-tree vs incremental vs sliding-window builders.
fn graph_builders(seed: u64, size: usize) -> Result<(), String> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x6772_6170);
    let events = sorted_events(&mut rng, size);
    let config = random_config(&mut rng);
    let mut ops = OpCount::new();
    let reference = graph_sig(&naive_build(&events, &config, &mut ops));
    let kdtree = graph_sig(&kdtree_build(&events, &config, &mut ops));
    if reference != kdtree {
        return Err(format!("naive vs kdtree: {}", first_diff(&reference, &kdtree)));
    }
    let incremental = graph_sig(&incremental_build(&events, &config, &mut ops));
    if reference != incremental {
        return Err(format!(
            "naive vs incremental: {}",
            first_diff(&reference, &incremental)
        ));
    }
    let mut window = SlidingWindowGraph::new(config, WindowPolicy::MaxNodes(usize::MAX));
    for e in &events {
        window.push(*e, &mut ops);
    }
    let windowed = graph_sig(&window.to_event_graph());
    if reference != windowed {
        return Err(format!("naive vs windowed: {}", first_diff(&reference, &windowed)));
    }
    Ok(())
}

/// Blocked GEMM vs the naive triple nest, serial and threaded, bit-exact.
fn gemm(seed: u64, size: usize) -> Result<(), String> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x6765_6D6D);
    let bound = size.max(1) as u64 + 1;
    let (m, n, k) = (
        rng.next_below(bound) as usize,
        rng.next_below(bound) as usize,
        rng.next_below(bound) as usize,
    );
    let fill = |rng: &mut Rng64, len: usize| -> Vec<f32> {
        (0..len).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
    };
    let a = fill(&mut rng, m * k);
    let b = fill(&mut rng, k * n);
    let c0 = fill(&mut rng, m * n);
    let mut want = c0.clone();
    gemm_naive_into(m, n, k, &a, k, 1, &b, n, 1, &mut want);
    for nthreads in [1usize, 4] {
        let mut got = c0.clone();
        par::with_threads(nthreads, || {
            let mut scratch = Scratch::new();
            gemm_into(m, n, k, &a, &b, &mut got, &mut scratch);
        });
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            if w.to_bits() != g.to_bits() {
                return Err(format!(
                    "{m}x{n}x{k} threads={nthreads}: c[{i}] {w:?} vs {g:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Serial vs threaded execution of the striped incremental build and a
/// pool-sized GEMM: bit-identical across `EVLAB_THREADS` 1 vs 4.
fn threads(seed: u64, size: usize) -> Result<(), String> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x7468_7264);
    // Past the striping threshold so the parallel path actually runs.
    let events = sorted_events(&mut rng, size);
    let config = random_config(&mut rng);
    let serial = par::with_threads(1, || {
        let mut ops = OpCount::new();
        graph_sig(&incremental_build(&events, &config, &mut ops))
    });
    let threaded = par::with_threads(4, || {
        let mut ops = OpCount::new();
        graph_sig(&incremental_build(&events, &config, &mut ops))
    });
    if serial != threaded {
        return Err(format!(
            "incremental 1 vs 4 threads: {}",
            first_diff(&serial, &threaded)
        ));
    }
    // 64·64·33 MACs clears the GEMM pool threshold.
    let (m, n, k) = (64, 64, 33);
    let a: Vec<f32> = (0..m * k).map(|_| rng.next_f32() - 0.5).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.next_f32() - 0.5).collect();
    let run = |nthreads: usize| {
        par::with_threads(nthreads, || {
            let mut c = vec![0.0f32; m * n];
            let mut scratch = Scratch::new();
            gemm_into(m, n, k, &a, &b, &mut c, &mut scratch);
            c
        })
    };
    let (c1, c4) = (run(1), run(4));
    for (i, (x, y)) in c1.iter().zip(&c4).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("gemm 1 vs 4 threads: c[{i}] {x:?} vs {y:?}"));
        }
    }
    Ok(())
}

/// Snapshot/restore mid-stream vs an uninterrupted oracle, plus corrupted
/// snapshots that must fail typed, for the reorder buffer and the sliding
/// window.
fn checkpoint(seed: u64, size: usize) -> Result<(), String> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x636B_7074);
    let skew = [0u64, 50, 300][rng.next_index(3)];
    let mut events = sorted_events(&mut rng, size);
    // Bounded disorder for the reorder leg.
    if skew > 0 {
        for e in &mut events {
            let t = e.t.as_micros();
            let jitter = rng.next_below(skew) as i64 - (skew / 2) as i64;
            *e = Event::new(t.saturating_add_signed(jitter), e.x, e.y, e.polarity);
        }
    }
    let events = apply_env_faults(events, seed);
    let cut = if events.is_empty() { 0 } else { rng.next_index(events.len()) };

    // Reorder buffer: oracle runs uninterrupted; the subject is
    // snapshotted at `cut` and restored into a fresh buffer.
    let mut oracle = ReorderBuffer::new(skew);
    let mut subject = ReorderBuffer::new(skew);
    let mut oracle_out = Vec::new();
    let mut subject_out = Vec::new();
    for e in &events[..cut] {
        oracle.push(*e, &mut oracle_out);
        subject.push(*e, &mut subject_out);
    }
    let bytes = snapshot_to_bytes(&subject);
    let mut restored = ReorderBuffer::new(skew);
    restore_from_bytes(&mut restored, &bytes)
        .map_err(|e| format!("valid reorder snapshot rejected: {e:?}"))?;
    for e in &events[cut..] {
        oracle.push(*e, &mut oracle_out);
        restored.push(*e, &mut subject_out);
    }
    oracle.flush(&mut oracle_out);
    restored.flush(&mut subject_out);
    if oracle_out != subject_out || oracle.late_dropped() != restored.late_dropped() {
        return Err(format!(
            "reorder restore diverged: {} vs {} released, {} vs {} late",
            oracle_out.len(),
            subject_out.len(),
            oracle.late_dropped(),
            restored.late_dropped()
        ));
    }
    // Corruption: a bit flip or truncation anywhere in the frame must
    // surface as a typed error, never load.
    if !bytes.is_empty() {
        let mut damaged = bytes.clone();
        if rng.bernoulli(0.5) {
            let i = rng.next_index(damaged.len());
            damaged[i] ^= 1 << rng.next_below(8);
        } else {
            damaged.truncate(rng.next_index(damaged.len()));
        }
        if damaged != bytes {
            let mut victim = ReorderBuffer::new(skew);
            if restore_from_bytes(&mut victim, &damaged).is_ok() {
                return Err("corrupted reorder snapshot restored silently".to_string());
            }
        }
    }

    // Sliding window: same shape — snapshot at the cut, compare compacted
    // graphs at the end. The window requires sorted input.
    let mut sorted = events;
    sorted.sort_by_key(|e| e.t);
    let policy = match rng.next_index(3) {
        0 => WindowPolicy::MaxNodes(1 + rng.next_below(40) as usize),
        1 => WindowPolicy::MaxAgeUs(1 + rng.next_below(20_000)),
        _ => WindowPolicy::Both {
            max_nodes: 1 + rng.next_below(40) as usize,
            max_age_us: 1 + rng.next_below(20_000),
        },
    };
    let config = random_config(&mut rng);
    let mut ops = OpCount::new();
    let mut w_oracle = SlidingWindowGraph::new(config, policy);
    let mut w_subject = SlidingWindowGraph::new(config, policy);
    for e in &sorted[..cut] {
        w_oracle.push(*e, &mut ops);
        w_subject.push(*e, &mut ops);
    }
    let mut enc = Encoder::new();
    w_subject.save_state(&mut enc);
    let bytes = enc.into_bytes();
    let mut w_restored = SlidingWindowGraph::new(config, policy);
    w_restored
        .load_state(&mut Decoder::new(&bytes))
        .map_err(|e| format!("valid window snapshot rejected: {e:?}"))?;
    for e in &sorted[cut..] {
        w_oracle.push(*e, &mut ops);
        w_restored.push(*e, &mut ops);
    }
    let (a, b) = (
        graph_sig(&w_oracle.to_event_graph()),
        graph_sig(&w_restored.to_event_graph()),
    );
    if a != b {
        return Err(format!("window restore diverged: {}", first_diff(&a, &b)));
    }
    Ok(())
}

/// Executable model of the reorder buffer's documented contract.
struct ReorderModel {
    skew: u64,
    held: Vec<(u64, u64, Event)>,
    next_seq: u64,
    max_seen: u64,
    last_released: Option<u64>,
    late: u64,
}

impl ReorderModel {
    fn new(skew: u64) -> Self {
        ReorderModel {
            skew,
            held: Vec::new(),
            next_seq: 0,
            max_seen: 0,
            last_released: None,
            late: 0,
        }
    }

    /// The contract, verbatim: quarantine below the released floor, hold
    /// everything inside the skew horizon (`max_seen - t < skew`), release
    /// the rest in `(t, arrival)` order. A stream starting at `t < skew`
    /// therefore releases nothing during warm-up — not even `t == 0`.
    fn push(&mut self, e: Event) -> Vec<Event> {
        let t = e.t.as_micros();
        if self.last_released.is_some_and(|l| t < l) {
            self.late += 1;
            return Vec::new();
        }
        self.held.push((t, self.next_seq, e));
        self.next_seq += 1;
        self.max_seen = self.max_seen.max(t);
        self.held.sort_by_key(|&(t, s, _)| (t, s));
        let releasable = self
            .held
            .iter()
            .take_while(|&&(t, _, _)| self.max_seen - t >= self.skew)
            .count();
        let released: Vec<Event> =
            self.held.drain(..releasable).map(|(_, _, e)| e).collect();
        if let Some(last) = released.last() {
            self.last_released = Some(last.t.as_micros());
        }
        released
    }

    fn flush(&mut self) -> Vec<Event> {
        self.held.sort_by_key(|&(t, s, _)| (t, s));
        self.held.drain(..).map(|(_, _, e)| e).collect()
    }
}

/// `ReorderBuffer` vs the model, per-push release sequences compared
/// exactly. Streams deliberately start near zero so the warm-up phase is
/// exercised on almost every seed.
fn reorder_model(seed: u64, size: usize) -> Result<(), String> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x7265_6F72);
    let skew = [0u64, 20, 100, 750][rng.next_index(4)];
    let mut events = Vec::with_capacity(size);
    let mut base = rng.next_below(40);
    for _ in 0..size {
        // Displacement up to ±skew (hopeless stragglers included).
        let spread = 2 * skew + 10;
        let t = (base + rng.next_below(spread)).saturating_sub(spread / 2);
        events.push(Event::new(
            t,
            rng.next_below(64) as u16,
            rng.next_below(64) as u16,
            Polarity::On,
        ));
        base += rng.next_below(60);
    }
    let events = apply_env_faults(events, seed);
    let mut model = ReorderModel::new(skew);
    let mut buf = ReorderBuffer::new(skew);
    for (i, e) in events.iter().enumerate() {
        let want = model.push(*e);
        let mut got = Vec::new();
        buf.push(*e, &mut got);
        if want != got {
            return Err(format!(
                "push {i} (t={}): model released {:?}, buffer {:?}",
                e.t.as_micros(),
                want.iter().map(|e| e.t.as_micros()).collect::<Vec<_>>(),
                got.iter().map(|e| e.t.as_micros()).collect::<Vec<_>>()
            ));
        }
        if model.late != buf.late_dropped() {
            return Err(format!(
                "push {i}: model quarantined {}, buffer {}",
                model.late,
                buf.late_dropped()
            ));
        }
    }
    let want = model.flush();
    let mut got = Vec::new();
    buf.flush(&mut got);
    if want != got {
        return Err(format!(
            "flush: model {:?}, buffer {:?}",
            want.iter().map(|e| e.t.as_micros()).collect::<Vec<_>>(),
            got.iter().map(|e| e.t.as_micros()).collect::<Vec<_>>()
        ));
    }
    Ok(())
}

/// A random character drawn from the interesting corners of Unicode:
/// ASCII, controls, BMP text, and astral planes.
fn random_char(rng: &mut Rng64) -> char {
    loop {
        let code = match rng.next_index(4) {
            0 => rng.next_below(0x80) as u32,
            1 => rng.next_below(0x20) as u32,
            2 => rng.next_below(0x1_0000) as u32,
            _ => 0x1_0000 + rng.next_below(0x10_0000) as u32,
        };
        if let Some(c) = char::from_u32(code) {
            return c;
        }
    }
}

fn random_json(rng: &mut Rng64, depth: usize, size: usize) -> Json {
    match if depth == 0 { rng.next_index(6) } else { rng.next_index(8) } {
        0 => Json::Null,
        1 => Json::Bool(rng.bernoulli(0.5)),
        // The parser normalizes non-negative integers to `UInt`, so a
        // variant-stable generator keeps `Int` strictly negative.
        2 => Json::Int(-1 - rng.next_below(i64::MAX as u64) as i64),
        3 => Json::UInt(rng.next_u64()),
        4 => Json::Num(f64::from(rng.next_f32()) * 1e6 - 5e5),
        5 => {
            let n = rng.next_index(size.max(1));
            Json::str((0..n).map(|_| random_char(rng)).collect::<String>())
        }
        6 => Json::arr((0..rng.next_index(4)).map(|_| random_json(rng, depth - 1, size))),
        _ => Json::obj(
            (0..rng.next_index(4)).map(|i| {
                (format!("k{i}"), random_json(rng, depth - 1, size))
            }),
        ),
    }
}

/// Writer→parser round trips over random documents, plus crafted escape
/// forms: every scalar value must survive `\uXXXX` encoding (surrogate
/// pairs outside the BMP), and lone surrogate halves must fail typed.
fn json_roundtrip(seed: u64, size: usize) -> Result<(), String> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x6A73_6F6E);
    let doc = random_json(&mut rng, 2, size);
    let text = doc.to_string_pretty();
    match Json::parse(&text) {
        Ok(back) if back == doc => {}
        Ok(_) => return Err(format!("round trip changed the document: {text}")),
        Err(e) => return Err(format!("writer output failed to parse: {e} in {text}")),
    }
    // Escape forms with a known expected value.
    for _ in 0..size {
        let c = random_char(&mut rng);
        let escaped = if (c as u32) < 0x1_0000 {
            format!("\"\\u{:04x}\"", c as u32)
        } else {
            let v = c as u32 - 0x1_0000;
            format!("\"\\u{:04x}\\u{:04x}\"", 0xD800 + (v >> 10), 0xDC00 + (v & 0x3FF))
        };
        match Json::parse(&escaped) {
            Ok(Json::Str(s)) if s == c.to_string() => {}
            other => {
                return Err(format!("escape {escaped} parsed to {other:?}, wanted {c:?}"))
            }
        }
    }
    // A lone surrogate half must be a typed error.
    let lone = 0xD800 + rng.next_below(0x800);
    let text = format!("\"\\u{lone:04x}\"");
    if let Ok(v) = Json::parse(&text) {
        return Err(format!("lone surrogate {text} parsed to {v:?}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// Runs one case, converting panics (invariant violations included) into
/// failures.
fn run_case(target: &Target, seed: u64, size: usize) -> Option<String> {
    obs::counter_add("fuzz.cases", 1);
    obs::counter_add(&format!("fuzz.{}.cases", target.name), 1);
    match catch_unwind(AssertUnwindSafe(|| (target.run)(seed, size))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".to_string());
            Some(format!("panicked: {msg}"))
        }
    }
}

/// Bisects the failing case size down to the smallest that still fails
/// (assuming monotonicity — good enough to shrink a report, and the full
/// size is always available as the fallback repro).
fn shrink(target: &Target, seed: u64, size: usize) -> (usize, String) {
    let mut failing = size;
    let mut msg = run_case(target, seed, size).unwrap_or_default();
    let (mut lo, mut hi) = (1usize, size);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match run_case(target, seed, mid) {
            Some(m) => {
                failing = mid;
                msg = m;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    obs::counter_add("fuzz.shrinks", 1);
    (failing, msg)
}

struct Corpus {
    regressions: Vec<(String, u64, usize, String)>,
}

/// Loads the committed corpus: `regressions` is a list of
/// `{target, seed, size, note}` objects pinning the original failing case
/// of every bug the lab has caught.
fn load_corpus(path: &str) -> Result<Corpus, EvlabError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| EvlabError::serve(format!("read corpus {path}: {e}")))?;
    let doc = Json::parse(&text)
        .map_err(|e| EvlabError::serve(format!("parse corpus {path}: {e}")))?;
    let mut regressions = Vec::new();
    for entry in doc
        .get("regressions")
        .and_then(Json::as_array)
        .unwrap_or(&[])
    {
        let target = entry
            .get("target")
            .and_then(Json::as_str)
            .ok_or_else(|| EvlabError::serve("corpus entry without target"))?;
        let seed = entry
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| EvlabError::serve("corpus entry without seed"))?;
        let size = entry
            .get("size")
            .and_then(Json::as_u64)
            .ok_or_else(|| EvlabError::serve("corpus entry without size"))?;
        let note = entry.get("note").and_then(Json::as_str).unwrap_or("");
        regressions.push((target.to_string(), seed, size as usize, note.to_string()));
    }
    Ok(Corpus { regressions })
}

fn main() -> Result<(), EvlabError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seeds: u64 = 64;
    let mut only: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut corpus_path = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz_corpus.json").to_string();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| EvlabError::serve(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seeds" => {
                seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| EvlabError::serve(format!("--seeds: {e}")))?;
            }
            "--target" => only = Some(value("--target")?),
            "--metrics" => metrics = Some(value("--metrics")?),
            "--corpus" => corpus_path = value("--corpus")?,
            other => {
                return Err(EvlabError::serve(format!("unknown argument {other}")));
            }
        }
    }
    if smoke {
        seeds = seeds.min(8);
    }
    // Invariants are the harness here: force them on regardless of the
    // build profile or EVLAB_CHECK.
    check::set_enabled(true);
    if metrics.is_some() {
        obs::set_enabled(true);
    }
    let corpus = load_corpus(&corpus_path)?;

    let mut failures: Vec<String> = Vec::new();
    let mut cases = 0u64;
    for target in TARGETS {
        if only.as_deref().is_some_and(|t| t != target.name) {
            continue;
        }
        obs::counter_add("fuzz.targets", 1);
        let size = if smoke { target.smoke_size } else { target.full_size };
        for seed in 0..seeds {
            cases += 1;
            if let Some(msg) = run_case(target, seed, size) {
                obs::counter_add("fuzz.mismatches", 1);
                let (small, small_msg) = shrink(target, seed, size);
                failures.push(format!(
                    "{} seed={seed} size={small} (full {size}): {small_msg}",
                    target.name
                ));
                eprintln!("[fuzz_lab] FAIL {}", failures.last().unwrap_or(&msg));
            }
        }
        // The pinned regressions for this target run in every mode.
        for (t, seed, size, note) in &corpus.regressions {
            if t != target.name {
                continue;
            }
            cases += 1;
            obs::counter_add("fuzz.regressions", 1);
            if let Some(msg) = run_case(target, *seed, *size) {
                obs::counter_add("fuzz.mismatches", 1);
                failures.push(format!(
                    "{} regression seed={seed} size={size} ({note}): {msg}",
                    target.name
                ));
            }
        }
        eprintln!(
            "[fuzz_lab] {:<16} {} seeds + {} pinned: {}",
            target.name,
            seeds,
            corpus.regressions.iter().filter(|(t, ..)| t == target.name).count(),
            if failures.is_empty() { "ok" } else { "FAILURES" }
        );
    }

    let violations = check::total_violations();
    eprintln!(
        "[fuzz_lab] {cases} cases, {} failures, {} invariant runs, {violations} violations",
        failures.len(),
        check::total_runs()
    );
    if let Some(path) = metrics {
        obs::write_metrics(&path)?;
        eprintln!("[fuzz_lab] metrics -> {path}");
    }
    if !failures.is_empty() || violations > 0 {
        for f in &failures {
            eprintln!("[fuzz_lab] FAIL {f}");
        }
        return Err(EvlabError::serve(format!(
            "{} differential failures, {violations} invariant violations",
            failures.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Original failing case of the reorder-buffer near-zero-time warm-up
    /// bug: with the clamped watermark (`max_seen.saturating_sub(skew)`),
    /// a stream starting at `t < skew` released its first events before
    /// the skew horizon had elapsed — the very first push of seed 0
    /// (a single `t = 0` event under nonzero skew) released `[0]` where
    /// the contract releases nothing. Shrunk by `fuzz_lab` from size 500.
    #[test]
    fn regression_reorder_warm_up_seed0() {
        check::set_enabled(true);
        reorder_model(0, 1).expect("reorder warm-up regression (seed 0)");
        reorder_model(1, 1).expect("reorder warm-up regression (seed 1)");
        check::clear_override();
    }

    /// Original failing case of the json `\uXXXX` surrogate bug: the
    /// parser rejected pairs encoding astral-plane characters (e.g. the
    /// escape text `\\udbfd\\udf31` for U+10F731) with "surrogate \u escape
    /// unsupported" instead of assembling them. Shrunk by `fuzz_lab`
    /// from size 48.
    #[test]
    fn regression_json_surrogate_pair_seed0() {
        json_roundtrip(0, 2).expect("json surrogate regression (seed 0)");
        json_roundtrip(1, 1).expect("json surrogate regression (seed 1)");
    }

    /// The committed corpus must parse and reference only known targets.
    #[test]
    fn corpus_entries_reference_known_targets() {
        let corpus = load_corpus(concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz_corpus.json"))
            .expect("committed corpus parses");
        assert!(!corpus.regressions.is_empty(), "corpus pins regressions");
        for (target, seed, size, _) in &corpus.regressions {
            assert!(
                TARGETS.iter().any(|t| t.name == target),
                "unknown target {target}"
            );
            let t = TARGETS
                .iter()
                .find(|t| t.name == target)
                .expect("target exists");
            assert!(
                run_case(t, *seed, *size).is_none(),
                "pinned case {target} seed={seed} size={size} fails"
            );
        }
    }
}
